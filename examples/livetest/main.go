// Livetest: run the real measurement protocols over localhost.
//
// This example starts an NDT-style TCP server, a Cloudflare-style HTTP
// server, and an Ookla-style multi-connection server, all emulating the
// same cable path, then runs each client against them and scores the
// single-subscriber results. It demonstrates that the wire protocols are
// real — the emulated path only paces them.
//
// Run: go run ./examples/livetest
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"iqb/internal/cfspeed"
	"iqb/internal/iqb"
	"iqb/internal/ndt"
	"iqb/internal/netem"
	"iqb/internal/ookla"
	"iqb/internal/rng"
	"iqb/internal/units"
)

func main() {
	// One emulated subscriber: a 60/12 cable line at moderate evening load.
	path := netem.DrawPath(netem.DefaultProfiles()[netem.Cable], 1, rng.New(3))
	path.DownMbps, path.UpMbps = 60, 12
	rho := 0.5
	fmt.Printf("emulated path: %s, %.0f/%.0f Mbps, base RTT %s, loss %s\n\n",
		path.Tech, path.DownMbps, path.UpMbps, path.BaseRTT, path.Loss)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// --- NDT-style single-stream test over real TCP ---
	ndtSrv, err := ndt.NewServer(path, rho, 42, nil)
	if err != nil {
		log.Fatal(err)
	}
	ndtAddr, err := ndtSrv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ndtSrv.Close()
	ndtClient := &ndt.Client{
		Addr:       ndtAddr.String(),
		Duration:   2 * time.Second, // shortened for the example
		UploadRate: units.Throughput(path.UpMbps),
	}
	ndtRes, err := ndtClient.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ndt        %6.1f down  %5.1f up  %5.1f ms  loss %.3f%%\n",
		ndtRes.DownloadMbps, ndtRes.UploadMbps, ndtRes.MinRTTms, ndtRes.LossRate*100)

	// --- Cloudflare-style HTTP ladder test ---
	cfHandler, err := cfspeed.NewHandler(path, rho, 42)
	if err != nil {
		log.Fatal(err)
	}
	cfSrv := httptest.NewServer(cfHandler)
	defer cfSrv.Close()
	cfClient := &cfspeed.Client{
		BaseURL:       cfSrv.URL,
		HTTPClient:    &http.Client{Timeout: time.Minute},
		UploadRate:    units.Throughput(path.UpMbps),
		LatencyProbes: 8,
		Probes:        100,
		DownLadder:    []int64{256 << 10, 1 << 20},
		UpLadder:      []int64{512 << 10},
	}
	cfRes, err := cfClient.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloudflare %6.1f down  %5.1f up  %5.1f ms  loss %.3f%%\n",
		cfRes.DownloadMbps, cfRes.UploadMbps, cfRes.LatencyMS, cfRes.LossRate*100)

	// --- Ookla-style multi-connection test ---
	okSrv, err := ookla.NewServer(path, rho, 42, nil)
	if err != nil {
		log.Fatal(err)
	}
	okAddr, err := okSrv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer okSrv.Close()
	okClient := &ookla.Client{
		Addr:       okAddr.String(),
		Bytes:      768 << 10,
		Pings:      5,
		UploadRate: units.Throughput(path.UpMbps),
	}
	okRes, err := okClient.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ookla      %6.1f down  %5.1f up  %5.1f ms  (published as aggregates, no loss)\n\n",
		okRes.DownloadMbps, okRes.UploadMbps, okRes.LatencyMS)

	// --- Score this single subscriber from the three live results ---
	cfg := iqb.DefaultConfig()
	cfg.MinSamples = 1 // a single live test per dataset
	agg := iqb.NewAggregates()
	agg.Set(iqb.DatasetNDT, iqb.Download, ndtRes.DownloadMbps, 1)
	agg.Set(iqb.DatasetNDT, iqb.Upload, ndtRes.UploadMbps, 1)
	agg.Set(iqb.DatasetNDT, iqb.Latency, ndtRes.MinRTTms, 1)
	agg.Set(iqb.DatasetNDT, iqb.Loss, ndtRes.LossRate, 1)
	agg.Set(iqb.DatasetCloudflare, iqb.Download, cfRes.DownloadMbps, 1)
	agg.Set(iqb.DatasetCloudflare, iqb.Upload, cfRes.UploadMbps, 1)
	agg.Set(iqb.DatasetCloudflare, iqb.Latency, cfRes.LatencyMS, 1)
	agg.Set(iqb.DatasetCloudflare, iqb.Loss, cfRes.LossRate, 1)
	agg.Set(iqb.DatasetOokla, iqb.Download, okRes.DownloadMbps, 1)
	agg.Set(iqb.DatasetOokla, iqb.Upload, okRes.UploadMbps, 1)
	agg.Set(iqb.DatasetOokla, iqb.Latency, okRes.LatencyMS, 1)

	score, err := cfg.ScoreAggregates(agg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("this connection's IQB score: %.3f (grade %s)\n", score.IQB, score.Grade)
	for _, uc := range score.UseCases {
		fmt.Printf("  %-20s %.3f\n", uc.Name, uc.Score)
	}
}
