// Quickstart: compute an IQB score from aggregated measurements.
//
// This is the smallest possible use of the framework: you already have
// the percentile-aggregated metrics for a region from each dataset, and
// you want the composite score with its explanation tree.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"iqb/internal/iqb"
	"iqb/internal/report"
)

func main() {
	// The default configuration reproduces the paper: Table 1 weights,
	// the Fig. 2 thresholds, three datasets, 95th-percentile aggregation,
	// high-quality bar.
	cfg := iqb.DefaultConfig()

	// Aggregates for a hypothetical county: suppose we computed these
	// from the raw datasets (the pipeline package automates this).
	// NDT and Cloudflare mostly agree; Ookla's published aggregate is a
	// touch more optimistic; latency is the weak spot.
	agg := iqb.NewAggregates()
	//                          dataset              requirement   value  #samples
	agg.Set(iqb.DatasetNDT, iqb.Download, 87.3, 412)
	agg.Set(iqb.DatasetNDT, iqb.Upload, 11.6, 412)
	agg.Set(iqb.DatasetNDT, iqb.Latency, 64.0, 412)
	agg.Set(iqb.DatasetNDT, iqb.Loss, 0.004, 412)
	agg.Set(iqb.DatasetCloudflare, iqb.Download, 74.9, 958)
	agg.Set(iqb.DatasetCloudflare, iqb.Upload, 10.2, 958)
	agg.Set(iqb.DatasetCloudflare, iqb.Latency, 58.5, 958)
	agg.Set(iqb.DatasetCloudflare, iqb.Loss, 0.003, 958)
	agg.Set(iqb.DatasetOokla, iqb.Download, 102.4, 37)
	agg.Set(iqb.DatasetOokla, iqb.Upload, 14.8, 37)
	agg.Set(iqb.DatasetOokla, iqb.Latency, 49.0, 37)
	// No Ookla loss: the public aggregate has no such column, and the
	// framework renormalizes the remaining dataset weights.

	score, err := cfg.ScoreAggregates(agg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("IQB score: %.3f (grade %s)\n\n", score.IQB, score.Grade)
	if err := report.RenderScoreCard(os.Stdout, "example-county", score); err != nil {
		log.Fatal(err)
	}

	// The breakdown tree explains every number: here is why gaming
	// scored what it did.
	gaming, _ := score.UseCaseByName(iqb.Gaming)
	fmt.Printf("\ngaming breakdown (S(u) = %.3f):\n", gaming.Score)
	for _, rs := range gaming.Requirements {
		fmt.Printf("  %-9s agreement %.2f (weight %d)\n", rs.Name, rs.Agreement, rs.Weight)
		for _, cell := range rs.Datasets {
			status := "meets"
			if cell.Missing {
				status = "no data"
			} else if !cell.Met {
				status = "fails"
			}
			fmt.Printf("    %-11s %8.3f vs %8.3f -> %s\n", cell.Dataset, cell.Aggregate, cell.Threshold, status)
		}
	}
}
