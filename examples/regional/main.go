// Regional: simulate a synthetic country end to end and rank its
// counties by IQB score — the paper's intended decision-maker view.
//
// The pipeline synthesizes a geography (states, counties, ISP markets,
// urban/rural access-technology mixes), schedules a week of measurement
// tests with diurnal load, runs the three measurement systems for every
// test, and scores each region from the resulting datasets.
//
// Run: go run ./examples/regional
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"iqb/internal/geo"
	"iqb/internal/iqb"
	"iqb/internal/pipeline"
	"iqb/internal/report"
)

func main() {
	spec := pipeline.DefaultSpec()
	spec.Geo.States = 3
	spec.Geo.CountiesPer = 3
	spec.TestsPerCounty = 60
	spec.Seed = 7

	fmt.Println("simulating a 9-county country (this runs the three measurement systems ~540 times)...")
	res, err := pipeline.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("produced %d records in %v\n\n", res.Store.Len(), res.Elapsed.Round(time.Millisecond))

	cfg := iqb.DefaultConfig()
	ranked, err := res.RankCounties(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rows := make([]report.RankedRegion, len(ranked))
	for i, rs := range ranked {
		rows[i] = report.RankedRegion{
			Region:    rs.Region,
			Character: rs.Character.String(),
			Score:     rs.Score.IQB,
			Grade:     rs.Score.Grade,
		}
	}
	if err := report.RenderRanking(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}

	// The urban/rural gap, quantified.
	var urban, rural []float64
	for _, rs := range ranked {
		switch rs.Character {
		case geo.Urban:
			urban = append(urban, rs.Score.IQB)
		case geo.Rural:
			rural = append(rural, rs.Score.IQB)
		}
	}
	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	fmt.Printf("\nurban mean IQB %.3f vs rural mean %.3f — the digital divide, in one composite number\n",
		mean(urban), mean(rural))

	// Zoom into the worst county: which use case suffers most, and why?
	worst := ranked[len(ranked)-1]
	fmt.Println()
	if err := report.RenderScoreCard(os.Stdout, worst.Region, worst.Score); err != nil {
		log.Fatal(err)
	}
}
