// ISP policy what-if: how much does a rural county's IQB score move if
// its DSL subscribers are migrated to fiber?
//
// This is the "actionable insights for decision-makers" use the paper
// motivates: the framework is run twice on the same county — once with
// the current access mix, once with a hypothetical post-investment mix —
// and the score delta quantifies the intervention.
//
// Run: go run ./examples/isppolicy
package main

import (
	"fmt"
	"log"
	"time"

	"iqb/internal/cfspeed"
	"iqb/internal/dataset"
	"iqb/internal/iqb"
	"iqb/internal/ndt"
	"iqb/internal/netem"
	"iqb/internal/ookla"
	"iqb/internal/rng"
)

// simulateCounty runs nSubs subscribers drawn from the mix through all
// three measurement systems at evening load and returns the county's
// score under both quality bars (high, minimum).
func simulateCounty(label string, mix netem.TechMix, nSubs int, seed uint64) (iqb.Score, iqb.Score, error) {
	cfg := iqb.DefaultConfig()
	store := dataset.NewStore()
	pub := ookla.NewPublisher()
	profiles := netem.DefaultProfiles()
	root := rng.New(seed).Fork(label)
	base := time.Date(2025, 6, 2, 19, 0, 0, 0, time.UTC)

	for i := 0; i < nSubs; i++ {
		src := root.Fork(fmt.Sprintf("sub-%d", i))
		tech := mix.Draw(src)
		path := netem.DrawPath(profiles[tech], 1, src)
		rho := netem.Diurnal(19 + src.Range(0, 4)) // evening tests
		at := base.Add(time.Duration(i) * time.Minute)

		nres, err := ndt.Simulate(path, rho, src)
		if err != nil {
			return iqb.Score{}, iqb.Score{}, err
		}
		rec, err := nres.ToRecord(fmt.Sprintf("ndt-%d", i), "POLICY", 64500, tech.String(), at)
		if err != nil {
			return iqb.Score{}, iqb.Score{}, err
		}
		if err := store.Add(rec); err != nil {
			return iqb.Score{}, iqb.Score{}, err
		}

		cres, err := cfspeed.Simulate(path, rho, src)
		if err != nil {
			return iqb.Score{}, iqb.Score{}, err
		}
		crec, err := cres.ToRecord(fmt.Sprintf("cf-%d", i), "POLICY", 64500, tech.String(), at)
		if err != nil {
			return iqb.Score{}, iqb.Score{}, err
		}
		if err := store.Add(crec); err != nil {
			return iqb.Score{}, iqb.Score{}, err
		}

		ores, err := ookla.Simulate(path, rho, src)
		if err != nil {
			return iqb.Score{}, iqb.Score{}, err
		}
		if err := pub.Add(ookla.RawSample{Region: "POLICY", ASN: 64500, Time: at, Result: ores}); err != nil {
			return iqb.Score{}, iqb.Score{}, err
		}
	}
	aggs, err := pub.Publish(1)
	if err != nil {
		return iqb.Score{}, iqb.Score{}, err
	}
	if err := store.AddAll(aggs); err != nil {
		return iqb.Score{}, iqb.Score{}, err
	}
	high, err := cfg.ScoreRegion(store, "POLICY", time.Time{}, time.Time{})
	if err != nil {
		return iqb.Score{}, iqb.Score{}, err
	}
	minCfg := cfg
	minCfg.Quality = iqb.MinimumQuality
	minScore, err := minCfg.ScoreRegion(store, "POLICY", time.Time{}, time.Time{})
	if err != nil {
		return iqb.Score{}, iqb.Score{}, err
	}
	return high, minScore, nil
}

func main() {
	const subscribers = 60

	// Today: a DSL/satellite-heavy rural county.
	before := netem.TechMix{
		netem.Fiber: 0.05, netem.Cable: 0.15, netem.DSL: 0.35,
		netem.LTE: 0.15, netem.WISP: 0.15, netem.SatGEO: 0.15,
	}
	// After the buildout: DSL and satellite subscribers moved to fiber.
	after := netem.TechMix{
		netem.Fiber: 0.55, netem.Cable: 0.15,
		netem.LTE: 0.15, netem.WISP: 0.15,
	}
	for _, mix := range []netem.TechMix{before, after} {
		if err := mix.Validate(); err != nil {
			log.Fatal(err)
		}
	}

	scoreBefore, minBefore, err := simulateCounty("before", before, subscribers, 42)
	if err != nil {
		log.Fatal(err)
	}
	scoreAfter, minAfter, err := simulateCounty("after", after, subscribers, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("policy what-if: migrate rural DSL + satellite subscribers to fiber")
	fmt.Printf("\n  high-quality bar:    before %.3f (%s)  after %.3f (%s)  delta %+.3f\n",
		scoreBefore.IQB, scoreBefore.Grade, scoreAfter.IQB, scoreAfter.Grade, scoreAfter.IQB-scoreBefore.IQB)
	fmt.Printf("  minimum-quality bar: before %.3f (%s)  after %.3f (%s)  delta %+.3f\n\n",
		minBefore.IQB, minBefore.Grade, minAfter.IQB, minAfter.Grade, minAfter.IQB-minBefore.IQB)

	fmt.Println("per-use-case movement:")
	for _, u := range iqb.AllUseCases() {
		b, _ := scoreBefore.UseCaseByName(u)
		a, _ := scoreAfter.UseCaseByName(u)
		marker := ""
		if a.Score-b.Score >= 0.25 {
			marker = "  <-- biggest winners"
		}
		fmt.Printf("  %-20s %.3f -> %.3f (%+.3f)%s\n", u.Title(), b.Score, a.Score, a.Score-b.Score, marker)
	}
	fmt.Println("\nthe framework turns 'we laid fiber' into per-use-case score movement a regulator can read")
}
