package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"iqb/internal/httpapi"
	"iqb/internal/ingest"
	"iqb/internal/iqb"
	"iqb/internal/pipeline"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("ingest=70,score=20,ranking=10")
	if err != nil {
		t.Fatal(err)
	}
	if mix["ingest"] != 70 || mix["score"] != 20 || mix["ranking"] != 10 {
		t.Fatalf("mix = %v", mix)
	}
	if mix, err := parseMix("ingest=100"); err != nil || mix["score"] != 0 {
		t.Fatalf("single-op mix: %v, %v", mix, err)
	}
	for _, bad := range []string{"", "bogus=1", "ingest", "ingest=-1", "ingest=0,score=0,ranking=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
}

func TestMixWeightsStableOrder(t *testing.T) {
	ops, weights := mixWeights(map[string]int{"ranking": 1, "ingest": 2, "score": 3})
	if len(ops) != 3 || ops[0] != "ingest" || ops[1] != "score" || ops[2] != "ranking" {
		t.Fatalf("ops = %v, want fixed ingest,score,ranking order", ops)
	}
	if weights[0] != 2 || weights[1] != 3 || weights[2] != 1 {
		t.Fatalf("weights = %v", weights)
	}
}

// startTestServer boots a real API server (in-process, memory-only)
// with live ingest attached, mirroring iqbserver's wiring.
func startTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	spec := pipeline.DefaultSpec()
	spec.Geo.States = 2
	spec.Geo.CountiesPer = 2
	spec.TestsPerCounty = 10
	spec.Days = 2
	spec.OoklaMinGroup = 2
	res, err := pipeline.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	api, err := httpapi.New(iqb.DefaultConfig(), res.Store, res.World.DB, logger)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := ingest.New(res.Store, ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := ing.Close(); err != nil {
			t.Errorf("closing ingester: %v", err)
		}
	})
	api.SetIngest(ing, httpapi.DefaultIngestBodyCap)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	return srv
}

// TestRunLoadMixedTraffic drives the load generator against a live
// in-process server and checks the report: every op in the mix ran,
// ingested records were committed, and latency summaries exist.
func TestRunLoadMixedTraffic(t *testing.T) {
	srv := startTestServer(t)
	rep, err := runLoad(context.Background(), loadConfig{
		baseURL:  srv.URL,
		clients:  3,
		duration: 400 * time.Millisecond,
		mix:      map[string]int{"ingest": 60, "score": 25, "ranking": 15},
		batch:    5,
		seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("load run issued no requests")
	}
	ingestRep, ok := rep.Ops["ingest"]
	if !ok {
		t.Fatalf("report has no ingest op: %+v", rep.Ops)
	}
	if ingestRep.AcceptedRecords == 0 {
		t.Fatalf("no records accepted: %+v", ingestRep)
	}
	if ingestRep.Errors != 0 {
		t.Fatalf("ingest saw %d hard errors", ingestRep.Errors)
	}
	if ingestRep.LatencyMS == nil || ingestRep.LatencyMS.P50 <= 0 {
		t.Fatalf("ingest latency summary missing: %+v", ingestRep.LatencyMS)
	}
	for _, name := range []string{"score", "ranking"} {
		op, ok := rep.Ops[name]
		if !ok {
			// A very short run can roll no requests for a low-weight
			// op; tolerate absence but not failure.
			continue
		}
		if op.Errors != 0 {
			t.Fatalf("%s saw %d errors", name, op.Errors)
		}
	}
	if rep.AchievedRPS <= 0 {
		t.Fatalf("achieved rps = %v", rep.AchievedRPS)
	}
}

// TestRunLoadPacedSingleOp pins the -rps pacing path and a single-op
// mix: a paced run must not exceed its target by an order of
// magnitude (closed-loop pacing is approximate, not a hard limiter).
func TestRunLoadPacedSingleOp(t *testing.T) {
	srv := startTestServer(t)
	rep, err := runLoad(context.Background(), loadConfig{
		baseURL:  srv.URL,
		clients:  2,
		rps:      20,
		duration: 500 * time.Millisecond,
		mix:      map[string]int{"ranking": 1},
		batch:    1,
		seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Ops["ingest"]; ok {
		t.Fatal("single-op mix still issued ingest requests")
	}
	if rep.Requests == 0 {
		t.Fatal("paced run issued no requests")
	}
	// 20 rps for 0.5s is ~10 requests; allow generous slack for timer
	// coarseness but catch a broken (unthrottled) pacing path, which
	// would do hundreds.
	if rep.Requests > 60 {
		t.Fatalf("paced run issued %d requests, pacing is not limiting", rep.Requests)
	}
}

// TestWriteReportFile pins the -out path: the file holds the same JSON
// the stdout path would print, and close errors are not swallowed.
func TestWriteReportFile(t *testing.T) {
	rep := Report{Addr: "http://x", Clients: 1, Ops: map[string]OpReport{}}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := writeReport(rep, path, nil); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatalf("report file is not valid JSON: %v", err)
	}
	if got.Addr != "http://x" || got.Clients != 1 {
		t.Fatalf("round-tripped report = %+v", got)
	}
}
