// Command iqbsim runs the full synthetic-world simulation and prints the
// per-county IQB ranking plus a score card for the best and worst
// counties — the one-command demonstration of the whole system.
//
// Usage:
//
//	iqbsim [-seed 42] [-days 7] [-tests 120] [-states 4] [-counties 3]
//	       [-quality high|minimum] [-verbose]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"iqb/internal/iqb"
	"iqb/internal/pipeline"
	"iqb/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iqbsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iqbsim", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "random seed")
	days := fs.Int("days", 7, "measurement window in days")
	tests := fs.Int("tests", 120, "tests per county per dataset")
	states := fs.Int("states", 4, "synthetic states")
	counties := fs.Int("counties", 3, "counties per state")
	quality := fs.String("quality", "high", "quality bar: high or minimum")
	verbose := fs.Bool("verbose", false, "print a score card for every county")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := pipeline.DefaultSpec()
	spec.Seed = *seed
	spec.Days = *days
	spec.TestsPerCounty = *tests
	spec.Geo.States = *states
	spec.Geo.CountiesPer = *counties

	cfg := iqb.DefaultConfig()
	switch *quality {
	case "high":
	case "minimum":
		cfg.Quality = iqb.MinimumQuality
	default:
		return fmt.Errorf("unknown quality %q", *quality)
	}

	res, err := pipeline.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	fmt.Printf("simulated %d records in %v (", res.Store.Len(), res.Elapsed.Round(1e6))
	for i, name := range res.Store.Datasets() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s: %d", name, res.Counts[name])
	}
	fmt.Println(")")
	fmt.Println()

	ranked, err := res.RankCounties(cfg)
	if err != nil {
		return err
	}
	rows := make([]report.RankedRegion, len(ranked))
	for i, rs := range ranked {
		rows[i] = report.RankedRegion{
			Region:    rs.Region,
			Character: rs.Character.String(),
			Score:     rs.Score.IQB,
			Grade:     rs.Score.Grade,
		}
	}
	if err := report.RenderRanking(os.Stdout, rows); err != nil {
		return err
	}
	fmt.Println()

	if *verbose {
		for _, rs := range ranked {
			if err := report.RenderScoreCard(os.Stdout, rs.Region, rs.Score); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	// Best and worst score cards.
	if len(ranked) > 0 {
		if err := report.RenderScoreCard(os.Stdout, ranked[0].Region, ranked[0].Score); err != nil {
			return err
		}
		fmt.Println()
		last := ranked[len(ranked)-1]
		if err := report.RenderScoreCard(os.Stdout, last.Region, last.Score); err != nil {
			return err
		}
	}
	return nil
}
