// Command iqbsim drives a live iqbserver as a closed-loop load
// generator: N concurrent clients send a weighted mix of ingest, score,
// and ranking traffic, each client issuing its next request only after
// the previous one completes (closed loop), optionally paced to a
// target aggregate request rate. The run ends after -duration (or on
// interrupt) and reports per-operation latency percentiles, shed
// counts, and accepted/rejected record totals as JSON.
//
// Usage:
//
//	iqbsim [-addr http://127.0.0.1:8600] [-clients 8] [-rps 0]
//	       [-duration 10s] [-mix ingest=70,score=20,ranking=10]
//	       [-batch 50] [-seed 1] [-out report.json]
//
// Operations:
//
//   - ingest: POST -batch synthetic measurement records to /v1/ingest
//     as NDJSON. A 429 (admission queue full) counts as a shed, not an
//     error — sheds are the backpressure working as designed, and the
//     report keeps them distinct so a capacity run can find the knee.
//   - score: GET /v1/score for a random county.
//   - ranking: GET /v1/ranking.
//
// The client fetches /v1/regions and /v1/datasets once at startup, so
// generated records always land in regions the server can score.
// Record IDs embed the seed, client index, and sequence number: two
// runs with the same -seed generate identical record streams, and two
// clients never collide on an ID. Latency percentiles come from the
// repo's own DDSketch (relative-error bounded, mergeable across
// clients).
//
// A zero -rps runs the closed loop unthrottled: each client issues
// requests back-to-back, so aggregate throughput floats to whatever
// the server sustains — that is the capacity-probe mode. With -rps R,
// each of the N clients paces itself to R/N requests per second.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/httpapi"
	"iqb/internal/rng"
	"iqb/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "iqbsim:", err)
		os.Exit(1)
	}
}

// opNames is the fixed operation vocabulary, in report order.
var opNames = []string{"ingest", "score", "ranking"}

// loadConfig is everything a load run needs, decoupled from flag
// parsing so tests drive runLoad directly.
type loadConfig struct {
	baseURL  string
	clients  int
	rps      float64 // aggregate target; 0 = unthrottled closed loop
	duration time.Duration
	mix      map[string]int // op name -> weight
	batch    int            // records per ingest request
	seed     uint64
}

// parseMix parses "ingest=70,score=20,ranking=10" into weights. Ops
// omitted from the string get weight 0; at least one weight must be
// positive.
func parseMix(s string) (map[string]int, error) {
	mix := map[string]int{}
	for _, name := range opNames {
		mix[name] = 0
	}
	total := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not name=weight", part)
		}
		if _, known := mix[name]; !known {
			return nil, fmt.Errorf("unknown mix operation %q (have ingest, score, ranking)", name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix weight %q must be a non-negative integer", val)
		}
		mix[name] = w
		total += w
	}
	if total == 0 {
		return nil, errors.New("mix has no positive weight")
	}
	return mix, nil
}

// opResult accumulates one operation's outcomes for one client. Sheds
// (429) and errors both also count as requests; latency is recorded for
// every request that produced an HTTP response, including sheds — the
// server's rejection latency is part of its behavior under load.
type opResult struct {
	sketch    *stats.DDSketch // latency in seconds
	requests  int64
	errs      int64
	sheds     int64
	accepted  int64 // ingest only: records the server committed
	rejected  int64 // ingest only: records the server shed
	maxSecs   float64
	totalSecs float64
}

func newOpResult() *opResult {
	return &opResult{sketch: stats.NewDDSketch(0.01)}
}

func (o *opResult) observe(d time.Duration) {
	s := d.Seconds()
	o.sketch.Add(s)
	o.totalSecs += s
	if s > o.maxSecs {
		o.maxSecs = s
	}
}

func (o *opResult) merge(other *opResult) {
	// Sketches with identical alpha always merge.
	_ = o.sketch.Merge(other.sketch)
	o.requests += other.requests
	o.errs += other.errs
	o.sheds += other.sheds
	o.accepted += other.accepted
	o.rejected += other.rejected
	o.totalSecs += other.totalSecs
	if other.maxSecs > o.maxSecs {
		o.maxSecs = other.maxSecs
	}
}

// OpReport is one operation's slice of the JSON report.
type OpReport struct {
	Requests        int64    `json:"requests"`
	Errors          int64    `json:"errors"`
	Sheds           int64    `json:"sheds,omitempty"`
	AcceptedRecords int64    `json:"accepted_records,omitempty"`
	RejectedRecords int64    `json:"rejected_records,omitempty"`
	LatencyMS       *Latency `json:"latency_ms,omitempty"`
}

// Latency is a percentile summary in milliseconds.
type Latency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// Report is the run's JSON output.
type Report struct {
	Addr        string              `json:"addr"`
	Clients     int                 `json:"clients"`
	TargetRPS   float64             `json:"target_rps,omitempty"`
	Batch       int                 `json:"batch"`
	Seed        uint64              `json:"seed"`
	Mix         map[string]int      `json:"mix"`
	ElapsedSecs float64             `json:"elapsed_s"`
	Requests    int64               `json:"requests"`
	AchievedRPS float64             `json:"achieved_rps"`
	Ops         map[string]OpReport `json:"ops"`
}

// worker is one closed-loop client.
type worker struct {
	id       int
	client   *httpapi.Client
	src      *rng.Source
	cfg      loadConfig
	counties []string
	datasets []string
	results  map[string]*opResult
	seq      int
}

// record builds one synthetic measurement. IDs are unique across
// clients and deterministic per seed.
func (w *worker) record(i int) dataset.Record {
	r := dataset.NewRecord(
		fmt.Sprintf("sim-%d-c%d-%d-%d", w.cfg.seed, w.id, w.seq, i),
		w.datasets[w.src.Intn(len(w.datasets))],
		w.counties[w.src.Intn(len(w.counties))],
		time.Now().UTC(),
	)
	r.DownloadMbps = w.src.Range(10, 500)
	r.UploadMbps = w.src.Range(2, 100)
	r.LatencyMS = w.src.Range(4, 90)
	r.LossFrac = w.src.Float64() * 0.02
	return r
}

// step issues one request of the given op and records its outcome.
func (w *worker) step(ctx context.Context, op string) {
	res := w.results[op]
	res.requests++
	start := time.Now()
	var err error
	switch op {
	case "ingest":
		rs := make([]dataset.Record, w.cfg.batch)
		for i := range rs {
			rs[i] = w.record(i)
		}
		w.seq++
		var resp httpapi.IngestResponse
		resp, err = w.client.Ingest(ctx, rs)
		res.accepted += int64(resp.Accepted)
		res.rejected += int64(resp.Rejected)
		var apiErr *httpapi.APIError
		if errors.As(err, &apiErr) && apiErr.Status == 429 {
			res.sheds++
			res.observe(time.Since(start))
			return
		}
	case "score":
		_, err = w.client.Score(ctx, w.counties[w.src.Intn(len(w.counties))])
	case "ranking":
		_, err = w.client.Ranking(ctx)
	}
	if err != nil {
		// A canceled context at the end of the run is not a server
		// failure; drop the half-done request from the tallies.
		if ctx.Err() != nil {
			res.requests--
			return
		}
		res.errs++
		return
	}
	res.observe(time.Since(start))
}

// loop runs the closed loop until ctx is done. With pacing, each
// client targets its 1/N share of the aggregate rate; a slow response
// eats into the pace deficit rather than triggering a burst later
// (next is rebased on now when behind).
func (w *worker) loop(ctx context.Context) {
	ops, weights := mixWeights(w.cfg.mix)
	var interval time.Duration
	if w.cfg.rps > 0 {
		interval = time.Duration(float64(w.cfg.clients) / w.cfg.rps * float64(time.Second))
	}
	next := time.Now()
	for {
		if ctx.Err() != nil {
			return
		}
		if interval > 0 {
			now := time.Now()
			if wait := next.Sub(now); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-ctx.Done():
					t.Stop()
					return
				case <-t.C:
				}
				next = next.Add(interval)
			} else {
				next = now.Add(interval)
			}
		}
		w.step(ctx, ops[w.src.Categorical(weights)])
	}
}

// mixWeights flattens the mix map into parallel slices in stable op
// order (map iteration order must not leak into the request stream).
func mixWeights(mix map[string]int) ([]string, []float64) {
	var ops []string
	var weights []float64
	for _, name := range opNames {
		if mix[name] > 0 {
			ops = append(ops, name)
			weights = append(weights, float64(mix[name]))
		}
	}
	return ops, weights
}

// discoverTargets fetches the server's counties and dataset names so
// generated traffic matches the world being served.
func discoverTargets(ctx context.Context, c *httpapi.Client) (counties, datasets []string, err error) {
	regions, err := c.Regions(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("fetching regions: %w", err)
	}
	for _, r := range regions {
		if r.Level == "county" {
			counties = append(counties, r.Code)
		}
	}
	if len(counties) == 0 {
		return nil, nil, errors.New("server reports no counties to target")
	}
	sort.Strings(counties)
	counts, err := c.Datasets(ctx)
	if err != nil {
		return nil, nil, fmt.Errorf("fetching datasets: %w", err)
	}
	for _, d := range counts {
		datasets = append(datasets, d.Name)
	}
	if len(datasets) == 0 {
		return nil, nil, errors.New("server reports no datasets")
	}
	sort.Strings(datasets)
	return counties, datasets, nil
}

// runLoad executes the configured load run and assembles the report.
func runLoad(ctx context.Context, cfg loadConfig) (Report, error) {
	client := &httpapi.Client{BaseURL: cfg.baseURL}
	counties, datasets, err := discoverTargets(ctx, client)
	if err != nil {
		return Report{}, err
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()
	workers := make([]*worker, cfg.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range workers {
		w := &worker{
			id:       i,
			client:   client,
			src:      rng.New(cfg.seed).Fork(fmt.Sprintf("client-%d", i)),
			cfg:      cfg,
			counties: counties,
			datasets: datasets,
			results:  map[string]*opResult{},
		}
		for _, name := range opNames {
			w.results[name] = newOpResult()
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loop(runCtx)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := map[string]*opResult{}
	for _, name := range opNames {
		merged[name] = newOpResult()
		for _, w := range workers {
			merged[name].merge(w.results[name])
		}
	}
	rep := Report{
		Addr:        cfg.baseURL,
		Clients:     cfg.clients,
		TargetRPS:   cfg.rps,
		Batch:       cfg.batch,
		Seed:        cfg.seed,
		Mix:         cfg.mix,
		ElapsedSecs: elapsed.Seconds(),
		Ops:         map[string]OpReport{},
	}
	for _, name := range opNames {
		res := merged[name]
		if res.requests == 0 {
			continue
		}
		op := OpReport{
			Requests:        res.requests,
			Errors:          res.errs,
			Sheds:           res.sheds,
			AcceptedRecords: res.accepted,
			RejectedRecords: res.rejected,
		}
		if res.sketch.Count() > 0 {
			op.LatencyMS = &Latency{
				P50:  quantileMS(res.sketch, 0.50),
				P90:  quantileMS(res.sketch, 0.90),
				P99:  quantileMS(res.sketch, 0.99),
				Max:  res.maxSecs * 1e3,
				Mean: res.totalSecs / res.sketch.Count() * 1e3,
			}
		}
		rep.Ops[name] = op
		rep.Requests += res.requests
	}
	if elapsed > 0 {
		rep.AchievedRPS = float64(rep.Requests) / elapsed.Seconds()
	}
	return rep, nil
}

func quantileMS(d *stats.DDSketch, q float64) float64 {
	v, err := d.Quantile(q)
	if err != nil {
		return 0
	}
	return v * 1e3
}

// writeReport emits the report as indented JSON to stdout or -out.
func writeReport(rep Report, out string, stdout io.Writer) error {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "" {
		_, err := stdout.Write(blob)
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		return errors.Join(err, f.Close())
	}
	// The report is the run's only output; a lost close is a lost run.
	return f.Close()
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("iqbsim", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8600", "base URL of the iqbserver under load")
	clients := fs.Int("clients", 8, "concurrent closed-loop clients")
	rps := fs.Float64("rps", 0, "aggregate target request rate (0 = unthrottled)")
	duration := fs.Duration("duration", 10*time.Second, "how long to run")
	mixFlag := fs.String("mix", "ingest=70,score=20,ranking=10", "operation weights, name=weight comma-separated")
	batch := fs.Int("batch", 50, "records per ingest request")
	seed := fs.Uint64("seed", 1, "random seed for the generated record stream")
	out := fs.String("out", "", "write the JSON report here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clients < 1 {
		return errors.New("-clients must be at least 1")
	}
	if *batch < 1 {
		return errors.New("-batch must be at least 1")
	}
	if *duration <= 0 {
		return errors.New("-duration must be positive")
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := runLoad(ctx, loadConfig{
		baseURL:  strings.TrimRight(base, "/"),
		clients:  *clients,
		rps:      *rps,
		duration: *duration,
		mix:      mix,
		batch:    *batch,
		seed:     *seed,
	})
	if err != nil {
		return err
	}
	return writeReport(rep, *out, stdout)
}
