// Command experiments regenerates the paper's tables and figures plus
// the extension experiments (DESIGN.md E1-E13).
//
// Usage:
//
//	experiments [-run all|fig1|fig2|table1|regional|corroboration|aggregation|
//	                  sensitivity|sweep|agreement|diurnal|streaming|stack|isps]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"iqb/internal/experiments"
)

func main() {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	name := fs.String("run", "all", "experiment to run")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := experiments.Run(ctx, *name, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
