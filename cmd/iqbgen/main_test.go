package main

import (
	"os"
	"path/filepath"
	"testing"

	"iqb/internal/dataset"
)

func TestGenerateNDJSON(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-out", dir, "-format", "ndjson", "-seed", "1",
		"-days", "2", "-tests", "10", "-states", "1", "-counties", "2", "-isps", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ndt", "cloudflare", "ookla"} {
		path := filepath.Join(dir, name+".ndjson")
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("expected output %s: %v", path, err)
		}
		records, err := dataset.ReadNDJSON(f)
		f.Close()
		if err != nil {
			t.Fatalf("re-reading %s: %v", path, err)
		}
		if len(records) == 0 {
			t.Errorf("%s is empty", path)
		}
		for _, r := range records {
			if r.Dataset != name {
				t.Fatalf("record in %s has dataset %q", path, r.Dataset)
			}
		}
	}
}

func TestGenerateCSV(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-out", dir, "-format", "csv", "-seed", "1",
		"-days", "1", "-tests", "5", "-states", "1", "-counties", "1", "-isps", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "ndt.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := dataset.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Error("csv output empty")
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run([]string{"-format", "yaml"}); err == nil {
		t.Error("unknown format should error")
	}
	if err := run([]string{"-days", "0"}); err == nil {
		t.Error("invalid spec should error")
	}
}
