// Command iqbgen generates synthetic measurement datasets by running the
// full simulation pipeline and writing the resulting records to NDJSON or
// CSV files, one per dataset — the offline stand-in for downloading
// M-Lab/Cloudflare/Ookla archives.
//
// Usage:
//
//	iqbgen -out ./data [-format ndjson|csv] [-seed 42] [-days 7]
//	       [-tests 120] [-states 4] [-counties 3] [-isps 3]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"iqb/internal/dataset"
	"iqb/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iqbgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iqbgen", flag.ContinueOnError)
	out := fs.String("out", ".", "output directory")
	format := fs.String("format", "ndjson", "output format: ndjson or csv")
	seed := fs.Uint64("seed", 42, "random seed")
	days := fs.Int("days", 7, "measurement window in days")
	tests := fs.Int("tests", 120, "tests per county per dataset")
	states := fs.Int("states", 4, "synthetic states")
	counties := fs.Int("counties", 3, "counties per state")
	isps := fs.Int("isps", 3, "national ISPs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "ndjson" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}

	spec := pipeline.DefaultSpec()
	spec.Seed = *seed
	spec.Days = *days
	spec.TestsPerCounty = *tests
	spec.Geo.States = *states
	spec.Geo.CountiesPer = *counties
	spec.Geo.ISPs = *isps

	fmt.Fprintf(os.Stderr, "iqbgen: simulating %d states x %d counties, %d tests/county/dataset over %d days (seed %d)\n",
		*states, *counties, *tests, *days, *seed)
	res, err := pipeline.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return fmt.Errorf("creating output directory: %w", err)
	}
	for _, name := range res.Store.Datasets() {
		records := res.Store.Select(dataset.Filter{Dataset: name})
		path := filepath.Join(*out, fmt.Sprintf("%s.%s", name, *format))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("creating %s: %w", path, err)
		}
		if *format == "csv" {
			err = dataset.WriteCSV(f, records)
		} else {
			err = dataset.WriteNDJSON(f, records)
		}
		cerr := f.Close()
		if err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		if cerr != nil {
			return fmt.Errorf("closing %s: %w", path, cerr)
		}
		fmt.Fprintf(os.Stderr, "iqbgen: wrote %d records to %s\n", len(records), path)
	}
	return nil
}
