package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/iqb"
	"iqb/internal/pipeline"
)

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testSpec() pipeline.Spec {
	spec := pipeline.DefaultSpec()
	spec.Geo.States = 2
	spec.Geo.CountiesPer = 2
	spec.TestsPerCounty = 10
	spec.Days = 2
	spec.OoklaMinGroup = 2
	return spec
}

// scoreFingerprint serializes every region's full score plus the county
// ranking, so two worlds compare bit-for-bit.
func scoreFingerprint(t *testing.T, w *world) string {
	t.Helper()
	cfg := iqb.DefaultConfig()
	scores := map[string]iqb.Score{}
	for _, code := range w.db.AllRegions() {
		s, err := cfg.ScoreRegion(w.store, code, time.Time{}, time.Time{})
		if err != nil {
			t.Fatalf("scoring %s: %v", code, err)
		}
		scores[code] = s
	}
	type ranked struct {
		Code string
		IQB  float64
	}
	var ranking []ranked
	for code, s := range scores {
		ranking = append(ranking, ranked{code, s.IQB})
	}
	sort.Slice(ranking, func(i, j int) bool {
		if ranking[i].IQB != ranking[j].IQB {
			return ranking[i].IQB > ranking[j].IQB
		}
		return ranking[i].Code < ranking[j].Code
	})
	blob, err := json.Marshal(struct {
		Scores  map[string]iqb.Score
		Ranking []ranked
	}{scores, ranking})
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestKillAndRestartRecoversBitIdentical is the PR's acceptance test:
// a server started with -data-dir, killed (without clean shutdown, with
// a torn frame on the WAL tail), and restarted must serve bit-identical
// ScoreAll/ranking output — recovered from snapshot + WAL, not by
// re-running the pipeline.
func TestKillAndRestartRecoversBitIdentical(t *testing.T) {
	dir := t.TempDir()
	opts := bootOptions{dataDir: dir}
	spec := testSpec()

	// First boot: simulates the world through the WAL and cuts the
	// initial snapshot.
	w1, err := openWorld(testLogger(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if w1.recovered || w1.mgr == nil {
		t.Fatalf("first boot: recovered=%v mgr=%v, want fresh durable boot", w1.recovered, w1.mgr)
	}
	// Live ingestion after the snapshot: these records exist only in
	// the WAL, so recovery must stitch snapshot + WAL together.
	extra := make([]dataset.Record, 8)
	for i := range extra {
		r := dataset.NewRecord("live-"+string(rune('a'+i)), "ndt", "XA-01-001",
			time.Date(2025, 6, 3, 12, 0, 0, 0, time.UTC))
		r.DownloadMbps = float64(50 + i)
		r.UploadMbps = float64(10 + i)
		r.LatencyMS = 20
		r.LossFrac = 0.001
		extra[i] = r
	}
	if err := w1.store.AddBatch(extra); err != nil {
		t.Fatal(err)
	}
	want := scoreFingerprint(t, w1)
	wantLen := w1.store.Len()

	// Kill: no clean shutdown; a crash mid-append leaves a truncated
	// frame on the WAL tail.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments (err=%v)", err)
	}
	active, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := active.Write([]byte{0x13, 0x37, 0x00}); err != nil {
		t.Fatal(err)
	}
	active.Close()

	// Restart with a different -seed flag: the recorded seed must win,
	// or the rebuilt geography would not match the stored records.
	spec2 := testSpec()
	spec2.Seed = spec.Seed + 999
	w2, err := openWorld(testLogger(), spec2, opts)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer w2.mgr.Close()
	if !w2.recovered {
		t.Fatal("restart did not recover from disk")
	}
	rec := w2.mgr.Recovery()
	if !rec.FromSnapshot {
		t.Fatalf("recovery skipped the snapshot: %+v", rec)
	}
	if !rec.TornTail {
		t.Fatalf("torn WAL tail not detected: %+v", rec)
	}
	if rec.WALRecords != len(extra) {
		t.Fatalf("recovery replayed %d WAL records, want %d", rec.WALRecords, len(extra))
	}
	if got := w2.store.Len(); got != wantLen {
		t.Fatalf("recovered store holds %d records, want %d", got, wantLen)
	}
	if got := scoreFingerprint(t, w2); got != want {
		t.Fatal("recovered world scores differ from pre-kill world")
	}

	// The recovered server keeps ingesting durably: one more record,
	// one more restart, still bit-identical.
	again := dataset.NewRecord("live-final", "ndt", "XA-01-001",
		time.Date(2025, 6, 3, 13, 0, 0, 0, time.UTC))
	again.DownloadMbps = 77
	if err := w2.store.Add(again); err != nil {
		t.Fatal(err)
	}
	want2 := scoreFingerprint(t, w2)
	if err := w2.mgr.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := openWorld(testLogger(), testSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.mgr.Close()
	if !w3.recovered {
		t.Fatal("third boot did not recover from disk")
	}
	if got := scoreFingerprint(t, w3); got != want2 {
		t.Fatal("third boot scores differ")
	}
}

// TestSnapshotFiresOnWALGrowthAlone pins the -snapshot-wal-bytes
// trigger: with the wall-clock interval disabled entirely, ingesting
// past the growth threshold must make the background loop cut a
// snapshot — growth is a first-class trigger, not a refinement of the
// timer.
func TestSnapshotFiresOnWALGrowthAlone(t *testing.T) {
	dir := t.TempDir()
	const growBytes = 4096
	w, err := openWorld(testLogger(), testSpec(), bootOptions{
		dataDir:          dir,
		snapshotWALBytes: growBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.mgr.Close()
	base := w.mgr.Status().SnapshotOffset
	if base == 0 {
		t.Fatal("first boot cut no initial snapshot")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go snapshotLoop(ctx, testLogger(), w.mgr, 0) // no wall-clock ticker

	// Ingest until the uncovered WAL crosses the threshold; the growth
	// stats must be visible on the way (they feed /v1/health).
	for i := 0; w.mgr.Status().WALSinceSnapshotBytes < growBytes; i++ {
		rs := make([]dataset.Record, 8)
		for j := range rs {
			r := dataset.NewRecord(fmt.Sprintf("grow-%d-%d", i, j), "ndt", "XA-01-001",
				time.Date(2025, 6, 3, 12, 0, 0, 0, time.UTC))
			r.DownloadMbps = float64(30 + j)
			rs[j] = r
		}
		if err := w.store.AddBatch(rs); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := w.mgr.Status()
		if st.SnapshotOffset > base {
			// The growth snapshot covered the backlog: the counters
			// restart below the threshold.
			if st.WALSinceSnapshotBytes >= growBytes {
				t.Fatalf("since-snapshot bytes = %d after a growth snapshot, want < %d",
					st.WALSinceSnapshotBytes, growBytes)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no snapshot fired from WAL growth alone; status %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMemoryOnlyBootUnchanged guards the default path: no -data-dir
// means no persistence manager and a pipeline-built world.
func TestMemoryOnlyBootUnchanged(t *testing.T) {
	w, err := openWorld(testLogger(), testSpec(), bootOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w.mgr != nil || w.recovered {
		t.Fatalf("memory-only boot produced mgr=%v recovered=%v", w.mgr, w.recovered)
	}
	if w.store.Len() == 0 {
		t.Fatal("empty store")
	}
}
