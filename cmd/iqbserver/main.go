// Command iqbserver simulates a world (or recovers one from a data
// directory) and serves IQB scores over the JSON HTTP API.
//
// Usage:
//
//	iqbserver [-addr 127.0.0.1:8600] [-seed 42] [-tests 120]
//	          [-data-dir DIR] [-snapshot-interval 5m] [-snapshot-wal-bytes N]
//	          [-wal-segment-bytes N] [-wal-group-window D]
//	          [-ingest-queue-records N] [-ingest-queue-bytes N]
//	          [-ingest-drain-records N] [-ingest-body-cap N]
//	          [-score-cache=true] [-cache-stats 0] [-metrics=true]
//
// Endpoints: /v1/health /v1/config /v1/regions /v1/score?region=R
// (optional from/to RFC 3339 window bounds) /v1/ranking /v1/datasets,
// plus POST /v1/ingest (streaming NDJSON), plus POST /v1/snapshot with
// -data-dir, plus GET /metrics unless -metrics=false.
//
// POST /v1/ingest accepts measurement records as NDJSON and commits
// them through an admission-controlled queue: a single drainer
// goroutine folds queued batches into store commits of at most
// -ingest-drain-records records, writers block until their records are
// durable (when -data-dir is set, that means fsynced through the WAL),
// and once -ingest-queue-records or -ingest-queue-bytes of admitted
// work is in flight the server sheds further batches with 429 and
// Retry-After instead of buffering without bound. The response reports
// how many records were accepted and rejected; /v1/health exposes
// queue depth and shed counts in its ingest block, and /metrics adds
// drain-size and enqueue-to-commit latency distributions.
//
// With -metrics (the default), the server exposes its own telemetry at
// GET /metrics in Prometheus text format: per-endpoint request counts,
// in-flight gauges, and latency quantiles served from the repo's own
// DDSketch; WAL append/fsync/rollback counters with fsync-latency and
// group-fold-size distributions; snapshot trigger counts and replay
// debt; and score-cache hit/miss/eviction counters. Every collector
// reads lock-free counters, so a scrape never stalls behind an
// in-flight WAL fsync. -metrics=false serves no /metrics route and
// registers no instruments.
//
// Memory-only (no -data-dir) boots re-simulate the world every start.
// With -data-dir, the first boot runs the pipeline into a WAL-backed
// store — every batch is fsynced to a segmented write-ahead log before
// it becomes queryable — and then cuts an initial snapshot. Later boots
// recover the store from snapshot + WAL without re-running the
// pipeline, tolerating the torn WAL tail a crash mid-append leaves
// behind; only the synthetic geography is rebuilt, from the seed
// recorded in the data dir (which overrides -seed). A background
// snapshotter cuts a fresh snapshot every -snapshot-interval (0
// disables it) and compacts WAL segments the snapshot covers.
//
// Concurrent WAL appends group-commit: frames queued during the
// in-flight fsync coalesce into one shared write+sync, so parallel
// ingestion pays far fewer fsyncs than batches. -wal-group-window D
// holds each commit open for D longer to collect more writers (0, the
// default, coalesces only natural pileups; a negative value disables
// group commit entirely and restores the serial fsync-per-batch path).
//
// Snapshots also trigger on WAL growth: with -snapshot-wal-bytes N > 0,
// the background snapshotter cuts a snapshot as soon as the WAL holds
// N bytes not covered by the latest one — bounding how much replay a
// recovery can owe under heavy ingest, independent of the wall clock.
// /v1/health's persistence block reports the bytes and records
// accumulated since the last snapshot so the trigger is observable.
//
// By default the server answers /v1/score and /v1/ranking from a
// scored-region cache invalidated precisely by ingest: the cache joins
// the store's hook chain next to the WAL tee, evicts only the (region,
// window) entries a committed batch touched, and maintains the county
// ranking as an incrementally repaired sorted view. -score-cache=false
// reverts to scoring every request from the store. /v1/health reports
// hit/miss/eviction counters in its cache block; -cache-stats D also
// logs them every D (0 disables the log line).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/geo"
	"iqb/internal/httpapi"
	"iqb/internal/ingest"
	"iqb/internal/iqb"
	"iqb/internal/persist"
	"iqb/internal/pipeline"
	"iqb/internal/scorecache"
	"iqb/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iqbserver:", err)
		os.Exit(1)
	}
}

// bootOptions configures openWorld.
type bootOptions struct {
	dataDir      string
	segmentBytes int64
	// groupWindow widens WAL group commits; negative disables group
	// commit (serial fsync per batch).
	groupWindow time.Duration
	// snapshotWALBytes arms the WAL-growth snapshot trigger (0 off).
	snapshotWALBytes int64
	// metrics instruments the WAL and snapshot manager; nil runs them
	// uninstrumented.
	metrics *telemetry.Registry
}

// persistOptions translates boot flags into the durable store's
// options.
func (o bootOptions) persistOptions() persist.Options {
	po := persist.Options{
		SegmentBytes:     o.segmentBytes,
		SnapshotWALBytes: o.snapshotWALBytes,
		Metrics:          o.metrics,
	}
	if o.groupWindow < 0 {
		po.NoGroupCommit = true
	} else {
		po.GroupWindow = o.groupWindow
	}
	return po
}

// world is everything a boot produces: the queryable store, the
// geography to score it against, and (with a data dir) the persistence
// manager behind the store.
type world struct {
	store *dataset.Store
	db    *geo.DB
	mgr   *persist.Manager // nil when memory-only
	// recovered is true when the store was restored from disk rather
	// than produced by running the pipeline.
	recovered bool
}

// openWorld builds the serving state. Memory-only: run the pipeline.
// With a data dir: recover the store from snapshot + WAL when the dir
// holds data (rebuilding only the geography, never re-running the
// pipeline), or run the pipeline through the WAL on first boot and cut
// the initial snapshot.
func openWorld(logger *slog.Logger, spec pipeline.Spec, opts bootOptions) (*world, error) {
	if opts.dataDir == "" {
		logger.Info("simulating world (memory-only)", "seed", spec.Seed, "tests_per_county", spec.TestsPerCounty)
		res, err := pipeline.Run(context.Background(), spec)
		if err != nil {
			return nil, err
		}
		logger.Info("world ready", "records", res.Store.Len(), "elapsed", res.Elapsed)
		return &world{store: res.Store, db: res.World.DB}, nil
	}

	mgr, err := persist.Open(opts.dataDir, opts.persistOptions())
	if err != nil {
		return nil, err
	}
	rec := mgr.Recovery()
	if rec.HasData() {
		meta, err := mgr.Meta()
		if err != nil {
			return nil, errors.Join(err, mgr.Close())
		}
		if s, ok := meta["seed"]; ok {
			seed, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				return nil, errors.Join(fmt.Errorf("data dir meta has malformed seed %q: %w", s, err), mgr.Close())
			}
			if seed != spec.Seed {
				logger.Warn("data dir was built with a different seed; using the recorded one",
					"flag_seed", spec.Seed, "recorded_seed", seed)
			}
			spec.Seed = seed
		}
		// The records are already durable; only the synthetic
		// geography (regions, ISP catalog) must be rebuilt, and that
		// is a pure function of the seed — no measurement replay.
		w, err := pipeline.BuildWorld(spec)
		if err != nil {
			return nil, errors.Join(fmt.Errorf("rebuilding geography: %w", err), mgr.Close())
		}
		logger.Info("world recovered from data dir",
			"dir", opts.dataDir,
			"records", mgr.Store().Len(),
			"from_snapshot", rec.FromSnapshot,
			"snapshot_records", rec.SnapshotRecords,
			"wal_batches", rec.WALBatches,
			"wal_records", rec.WALRecords,
			"torn_tail", rec.TornTail,
			"elapsed", rec.Elapsed)
		return &world{store: mgr.Store(), db: w.DB, mgr: mgr, recovered: true}, nil
	}

	// First boot of this data dir: simulate through the WAL, so the
	// store is durable from the very first batch, then snapshot. The
	// seed is recorded before the run — a crash mid-simulation leaves
	// WAL records that only that seed's geography can interpret, and a
	// restart must not rebuild the world from a different -seed flag.
	logger.Info("simulating world into data dir", "dir", opts.dataDir, "seed", spec.Seed, "tests_per_county", spec.TestsPerCounty)
	if err := mgr.SetMeta(map[string]string{
		"seed":             strconv.FormatUint(spec.Seed, 10),
		"tests_per_county": strconv.Itoa(spec.TestsPerCounty),
	}); err != nil {
		return nil, errors.Join(err, mgr.Close())
	}
	spec.Store = mgr.Store()
	res, err := pipeline.Run(context.Background(), spec)
	if err != nil {
		return nil, errors.Join(err, mgr.Close())
	}
	info, err := mgr.Snapshot()
	if err != nil {
		return nil, errors.Join(fmt.Errorf("initial snapshot: %w", err), mgr.Close())
	}
	logger.Info("world ready and durable", "records", res.Store.Len(), "elapsed", res.Elapsed,
		"snapshot", info.Path, "snapshot_bytes", info.Bytes)
	return &world{store: res.Store, db: res.World.DB, mgr: mgr}, nil
}

// cacheStatsLoop logs score-cache effectiveness until ctx is done.
func cacheStatsLoop(ctx context.Context, logger *slog.Logger, cache *scorecache.Cache, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			st := cache.Stats()
			logger.Info("score cache",
				"entries", st.Entries,
				"hits", st.Hits,
				"misses", st.Misses,
				"uncacheable", st.Uncacheable,
				"shared_flights", st.SharedFlights,
				"invalidations", st.Invalidations,
				"evictions", st.Evictions,
				"ranking_repairs", st.RankingRepairs)
		}
	}
}

// snapshotLoop cuts background snapshots until ctx is done, on two
// independent triggers: the wall-clock ticker (when every > 0) and the
// manager's WAL-growth signal (-snapshot-wal-bytes; never fires when
// disabled). The growth path re-checks the threshold via
// SnapshotIfGrown, so a signal raced by a wall-clock snapshot that
// already covered the growth becomes a no-op instead of a redundant
// full-store snapshot.
func snapshotLoop(ctx context.Context, logger *slog.Logger, mgr *persist.Manager, every time.Duration) {
	var tick <-chan time.Time
	if every > 0 {
		t := time.NewTicker(every)
		defer t.Stop()
		tick = t.C
	}
	// Receiving from GrowthC consumes the (coalesced) signal, so a
	// growth snapshot that fails transiently must be retried by the
	// loop itself — idle ingest would otherwise never re-signal and the
	// replay debt would stay over the threshold indefinitely. The retry
	// re-checks through SnapshotIfGrown, so it dies out as soon as any
	// snapshot (ours or a wall-clock one) covers the growth.
	var retry <-chan time.Time
	onGrowth := func() {
		info, cut, err := mgr.SnapshotIfGrown()
		if err != nil {
			logger.Error("background snapshot failed", "trigger", "wal-growth", "err", err)
			retry = time.After(5 * time.Second)
			return
		}
		retry = nil
		if !cut {
			return
		}
		logger.Info("background snapshot", "trigger", "wal-growth", "path", info.Path,
			"records", info.Records, "wal_offset", info.WALOffset, "bytes", info.Bytes)
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
			info, err := mgr.Snapshot()
			if err != nil {
				logger.Error("background snapshot failed", "trigger", "interval", "err", err)
				continue
			}
			logger.Info("background snapshot", "trigger", "interval", "path", info.Path,
				"records", info.Records, "wal_offset", info.WALOffset, "bytes", info.Bytes)
		case <-mgr.GrowthC():
			onGrowth()
		case <-retry:
			onGrowth()
		}
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iqbserver", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8600", "listen address")
	seed := fs.Uint64("seed", 42, "random seed for the simulated world")
	tests := fs.Int("tests", 120, "tests per county per dataset")
	dataDir := fs.String("data-dir", "", "durable store directory; empty serves memory-only")
	snapEvery := fs.Duration("snapshot-interval", 5*time.Minute, "background snapshot period (0 disables)")
	snapWALBytes := fs.Int64("snapshot-wal-bytes", 0, "also snapshot once this many WAL bytes accumulate past the last snapshot (0 disables the growth trigger)")
	segBytes := fs.Int64("wal-segment-bytes", persist.DefaultSegmentBytes, "WAL segment rotation threshold")
	groupWindow := fs.Duration("wal-group-window", 0, "extra time a WAL group commit waits for more writers before its shared fsync (0 coalesces only natural pileups; negative disables group commit)")
	queueRecords := fs.Int("ingest-queue-records", ingest.DefaultQueueRecords, "live-ingest admission cap in queued records; past it POST /v1/ingest sheds with 429")
	queueBytes := fs.Int64("ingest-queue-bytes", ingest.DefaultQueueBytes, "live-ingest admission cap in queued wire bytes")
	drainRecords := fs.Int("ingest-drain-records", ingest.DefaultDrainRecords, "most records the ingest drainer commits per store batch")
	bodyCap := fs.Int64("ingest-body-cap", httpapi.DefaultIngestBodyCap, "largest POST /v1/ingest request body in bytes")
	useCache := fs.Bool("score-cache", true, "serve /v1/score and /v1/ranking from the ingest-invalidated score cache")
	cacheStats := fs.Duration("cache-stats", 0, "score-cache stats logging period (0 disables)")
	metricsOn := fs.Bool("metrics", true, "serve self-telemetry at GET /metrics (Prometheus text format)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	// The registry is created before the world so the WAL and snapshot
	// manager register their collectors at open time — recovery fsyncs
	// and the initial snapshot are counted too.
	var reg *telemetry.Registry
	if *metricsOn {
		reg = telemetry.NewRegistry()
	}

	spec := pipeline.DefaultSpec()
	spec.Seed = *seed
	spec.TestsPerCounty = *tests
	w, err := openWorld(logger, spec, bootOptions{
		dataDir:          *dataDir,
		segmentBytes:     *segBytes,
		groupWindow:      *groupWindow,
		snapshotWALBytes: *snapWALBytes,
		metrics:          reg,
	})
	if err != nil {
		return err
	}

	cfg := iqb.DefaultConfig()
	api, err := httpapi.New(cfg, w.store, w.db, logger)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if w.mgr != nil {
		api.SetPersistence(w.mgr)
		defer func() {
			// Shutdown path: the WAL's final fsync happens in Close, so a
			// failure here is a durability event worth surfacing.
			if cerr := w.mgr.Close(); cerr != nil {
				logger.Error("closing persistence", "err", cerr)
			}
		}()
		if *snapEvery > 0 || *snapWALBytes > 0 {
			go snapshotLoop(ctx, logger, w.mgr, *snapEvery)
		}
	}
	if *useCache {
		// Registered after any WAL tee: both live on the store's hook
		// chain, batches tee durably first and invalidate the cache once
		// committed.
		cache, err := scorecache.New(w.store, cfg, logger)
		if err != nil {
			return err
		}
		defer cache.Close()
		cache.RegisterMetrics(reg)
		api.SetScoreCache(cache)
		logger.Info("score cache enabled", "config_hash", cache.ConfigHash())
		if *cacheStats > 0 {
			go cacheStatsLoop(ctx, logger, cache, *cacheStats)
		}
	}
	// The ingester is created after persistence and closed before it
	// (defers run LIFO): draining admitted batches needs the WAL still
	// open, so every acknowledged record is durable before the final
	// WAL fsync.
	ing, err := ingest.New(w.store, ingest.Options{
		QueueRecords: *queueRecords,
		QueueBytes:   *queueBytes,
		DrainRecords: *drainRecords,
		Metrics:      reg,
	})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := ing.Close(); cerr != nil {
			logger.Error("closing ingest pipeline", "err", cerr)
		}
	}()
	api.SetIngest(ing, *bodyCap)
	logger.Info("live ingest enabled", "endpoint", "POST /v1/ingest",
		"queue_records", *queueRecords, "queue_bytes", *queueBytes)
	if reg != nil {
		api.SetMetrics(reg)
		logger.Info("telemetry enabled", "endpoint", "GET /metrics")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "durable", w.mgr != nil)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}
