// Command iqbserver simulates a world (or loads dataset files) and
// serves IQB scores over the JSON HTTP API.
//
// Usage:
//
//	iqbserver [-addr 127.0.0.1:8600] [-seed 42] [-tests 120]
//
// Endpoints: /v1/health /v1/config /v1/regions /v1/score?region=R
// /v1/ranking /v1/datasets
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iqb/internal/httpapi"
	"iqb/internal/iqb"
	"iqb/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iqbserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iqbserver", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8600", "listen address")
	seed := fs.Uint64("seed", 42, "random seed for the simulated world")
	tests := fs.Int("tests", 120, "tests per county per dataset")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	spec := pipeline.DefaultSpec()
	spec.Seed = *seed
	spec.TestsPerCounty = *tests
	logger.Info("simulating world", "seed", *seed, "tests_per_county", *tests)
	res, err := pipeline.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	logger.Info("world ready", "records", res.Store.Len(), "elapsed", res.Elapsed)

	api, err := httpapi.New(iqb.DefaultConfig(), res.Store, res.World.DB, logger)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}
