// Command iqb computes Internet Quality Barometer scores from
// measurement dataset files and renders the framework's published
// artifacts.
//
// Usage:
//
//	iqb score  -data tests.ndjson[,more.csv] [-region XA-01] [-config cfg.json] [-quality high|minimum] [-json]
//	iqb table1                 # render the paper's Table 1
//	iqb fig1                   # render the framework diagram
//	iqb fig2                   # render the threshold chart
//	iqb config                 # print the default configuration JSON
//	iqb validate -config cfg.json
//	iqb export -data tests.ndjson -format csv            # all regions as CSV
//	iqb export -data tests.ndjson -format markdown -region XA-01
//	iqb timeseries -data tests.ndjson -region XA-01 -window 24h
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/iqb"
	"iqb/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "iqb:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: iqb <score|export|timeseries|table1|fig1|fig2|config|validate> [flags]")
	}
	switch args[0] {
	case "score":
		return cmdScore(args[1:], out)
	case "table1":
		return report.RenderTable1(out, iqb.Table1Weights())
	case "fig1":
		return report.RenderFig1(out, iqb.DefaultConfig())
	case "fig2":
		return report.RenderFig2(out, iqb.DefaultThresholds())
	case "config":
		return iqb.DefaultConfig().WriteJSON(out)
	case "validate":
		return cmdValidate(args[1:], out)
	case "export":
		return cmdExport(args[1:], out)
	case "timeseries":
		return cmdTimeSeries(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// loadConfig reads a config file or returns the default.
func loadConfig(path string) (iqb.Config, error) {
	if path == "" {
		return iqb.DefaultConfig(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return iqb.Config{}, fmt.Errorf("opening config: %w", err)
	}
	defer f.Close()
	return iqb.ReadConfigJSON(f)
}

// loadData reads comma-separated NDJSON/CSV files into a store.
func loadData(paths string) (*dataset.Store, error) {
	if paths == "" {
		return nil, fmt.Errorf("-data is required (comma-separated .ndjson/.csv files)")
	}
	store := dataset.NewStore()
	for _, path := range strings.Split(paths, ",") {
		path = strings.TrimSpace(path)
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("opening %s: %w", path, err)
		}
		var records []dataset.Record
		switch {
		case strings.HasSuffix(path, ".csv"):
			records, err = dataset.ReadCSV(f)
		default:
			records, err = dataset.ReadNDJSON(f)
		}
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
		if err := store.AddAll(records); err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
	}
	return store, nil
}

func cmdScore(args []string, out *os.File) error {
	fs := flag.NewFlagSet("score", flag.ContinueOnError)
	data := fs.String("data", "", "comma-separated dataset files (.ndjson or .csv)")
	region := fs.String("region", "", "region code to score (default: each region present)")
	configPath := fs.String("config", "", "framework configuration JSON (default: built-in)")
	quality := fs.String("quality", "", "override quality bar: high or minimum")
	asJSON := fs.Bool("json", false, "emit the score breakdown as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := loadConfig(*configPath)
	if err != nil {
		return err
	}
	switch *quality {
	case "":
	case "high":
		cfg.Quality = iqb.HighQuality
	case "minimum":
		cfg.Quality = iqb.MinimumQuality
	default:
		return fmt.Errorf("unknown quality %q", *quality)
	}
	store, err := loadData(*data)
	if err != nil {
		return err
	}

	regions := []string{*region}
	if *region == "" {
		regions = store.Regions()
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	for _, reg := range regions {
		score, err := cfg.ScoreRegion(store, reg, time.Time{}, time.Time{})
		if err != nil {
			return fmt.Errorf("scoring %s: %w", reg, err)
		}
		if *asJSON {
			if err := enc.Encode(struct {
				Region string    `json:"region"`
				Score  iqb.Score `json:"score"`
			}{reg, score}); err != nil {
				return err
			}
			continue
		}
		if err := report.RenderScoreCard(out, reg, score); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

func cmdValidate(args []string, out *os.File) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	configPath := fs.String("config", "", "framework configuration JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("-config is required")
	}
	if _, err := loadConfig(*configPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: configuration is valid\n", *configPath)
	return nil
}
