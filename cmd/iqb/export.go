package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/iqb"
	"iqb/internal/report"
)

// cmdExport scores every region in the loaded data and writes CSV (all
// regions) or markdown (one region's full breakdown).
func cmdExport(args []string, out *os.File) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	data := fs.String("data", "", "comma-separated dataset files (.ndjson or .csv)")
	configPath := fs.String("config", "", "framework configuration JSON (default: built-in)")
	format := fs.String("format", "csv", "output format: csv or markdown")
	region := fs.String("region", "", "region for markdown export (required for markdown)")
	preset := fs.String("preset", "", "named preset: paper, baseline, realtime, remote-work")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := loadConfig(*configPath)
	if err != nil {
		return err
	}
	if *preset != "" {
		if *configPath != "" {
			return fmt.Errorf("-preset and -config are mutually exclusive")
		}
		cfg, err = iqb.Preset(iqb.PresetName(*preset))
		if err != nil {
			return err
		}
	}
	store, err := loadData(*data)
	if err != nil {
		return err
	}
	switch *format {
	case "csv":
		scores := map[string]iqb.Score{}
		regions := store.Regions()
		if *region != "" {
			regions = []string{*region}
		}
		for _, reg := range regions {
			s, err := cfg.ScoreRegion(store, reg, time.Time{}, time.Time{})
			if err != nil {
				return fmt.Errorf("scoring %s: %w", reg, err)
			}
			scores[reg] = s
		}
		return report.WriteScoresCSV(out, scores)
	case "markdown":
		if *region == "" {
			return fmt.Errorf("-region is required for markdown export")
		}
		s, err := cfg.ScoreRegion(store, *region, time.Time{}, time.Time{})
		if err != nil {
			return fmt.Errorf("scoring %s: %w", *region, err)
		}
		return report.WriteScoreMarkdown(out, *region, s)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// cmdTimeSeries scores a region over consecutive windows and writes the
// series as CSV.
func cmdTimeSeries(args []string, out *os.File) error {
	fs := flag.NewFlagSet("timeseries", flag.ContinueOnError)
	data := fs.String("data", "", "comma-separated dataset files (.ndjson or .csv)")
	configPath := fs.String("config", "", "framework configuration JSON (default: built-in)")
	region := fs.String("region", "", "region code to score")
	window := fs.Duration("window", 24*time.Hour, "window width")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *region == "" {
		return fmt.Errorf("-region is required")
	}
	cfg, err := loadConfig(*configPath)
	if err != nil {
		return err
	}
	store, err := loadData(*data)
	if err != nil {
		return err
	}
	from, to, ok := store.TimeBounds(dataset.Filter{RegionPrefix: *region})
	if !ok {
		return fmt.Errorf("no records for region %q", *region)
	}
	points, err := cfg.ScoreWindows(store, *region, from, to.Add(time.Nanosecond), *window)
	if err != nil {
		return err
	}
	return report.WriteTimeSeriesCSV(out, points)
}
