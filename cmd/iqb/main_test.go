package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/iqb"
)

// capture runs run() with stdout redirected to a temp file and returns
// the output.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

// writeTestData writes a small NDJSON dataset file.
func writeTestData(t *testing.T) string {
	t.Helper()
	ts := time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC)
	var records []dataset.Record
	for i := 0; i < 15; i++ {
		for _, ds := range []string{"ndt", "cloudflare", "ookla"} {
			r := dataset.NewRecord(string(rune('a'+i)), ds, "XA-01-001", ts)
			r.SetValue(dataset.Download, 200)
			r.SetValue(dataset.Upload, 50)
			r.SetValue(dataset.Latency, 18)
			if ds != "ookla" {
				r.SetValue(dataset.Loss, 0.001)
			}
			records = append(records, r)
		}
	}
	path := filepath.Join(t.TempDir(), "tests.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteNDJSON(f, records); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNoArgs(t *testing.T) {
	if _, err := capture(t); err == nil {
		t.Error("no arguments should error with usage")
	}
	if _, err := capture(t, "fly"); err == nil {
		t.Error("unknown subcommand should error")
	}
}

func TestTable1Subcommand(t *testing.T) {
	out, err := capture(t, "table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Video Conferencing") {
		t.Errorf("table1 output:\n%s", out)
	}
}

func TestFigSubcommands(t *testing.T) {
	out, err := capture(t, "fig1")
	if err != nil || !strings.Contains(out, "TIER 1") {
		t.Errorf("fig1: %v\n%s", err, out)
	}
	out, err = capture(t, "fig2")
	if err != nil || !strings.Contains(out, "Gaming") {
		t.Errorf("fig2: %v\n%s", err, out)
	}
}

func TestConfigSubcommand(t *testing.T) {
	out, err := capture(t, "config")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "requirement_weights") {
		t.Errorf("config output:\n%s", out[:200])
	}
}

func TestValidateSubcommand(t *testing.T) {
	// Round trip: dump default config, validate it.
	cfgPath := filepath.Join(t.TempDir(), "cfg.json")
	f, err := os.Create(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := iqb.DefaultConfig().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out, err := capture(t, "validate", "-config", cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "valid") {
		t.Errorf("validate output: %q", out)
	}
	// Missing flag and missing file both error.
	if _, err := capture(t, "validate"); err == nil {
		t.Error("missing -config should error")
	}
	if _, err := capture(t, "validate", "-config", "/nonexistent.json"); err == nil {
		t.Error("missing file should error")
	}
	// Corrupt file.
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := capture(t, "validate", "-config", bad); err == nil {
		t.Error("corrupt config should error")
	}
}

func TestScoreSubcommand(t *testing.T) {
	data := writeTestData(t)
	out, err := capture(t, "score", "-data", data, "-region", "XA-01-001")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IQB score for XA-01-001") {
		t.Errorf("score output:\n%s", out)
	}
	// All bars pass: grade A.
	if !strings.Contains(out, "grade A") {
		t.Errorf("expected grade A:\n%s", out)
	}
}

func TestScoreSubcommandJSON(t *testing.T) {
	data := writeTestData(t)
	out, err := capture(t, "score", "-data", data, "-json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"iqb"`) || !strings.Contains(out, `"use_cases"`) {
		t.Errorf("JSON output:\n%s", out[:min(300, len(out))])
	}
}

func TestScoreSubcommandQuality(t *testing.T) {
	data := writeTestData(t)
	if _, err := capture(t, "score", "-data", data, "-quality", "minimum"); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, "score", "-data", data, "-quality", "luxurious"); err == nil {
		t.Error("unknown quality should error")
	}
}

func TestScoreSubcommandErrors(t *testing.T) {
	if _, err := capture(t, "score"); err == nil {
		t.Error("missing -data should error")
	}
	if _, err := capture(t, "score", "-data", "/nonexistent.ndjson"); err == nil {
		t.Error("missing data file should error")
	}
	// Corrupt data file.
	bad := filepath.Join(t.TempDir(), "bad.ndjson")
	os.WriteFile(bad, []byte("{oops\n"), 0o644)
	if _, err := capture(t, "score", "-data", bad); err == nil {
		t.Error("corrupt data should error")
	}
}

func TestScoreCSVInput(t *testing.T) {
	ts := time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC)
	var records []dataset.Record
	for i := 0; i < 12; i++ {
		r := dataset.NewRecord(string(rune('a'+i)), "ndt", "XB-01", ts)
		r.SetValue(dataset.Download, 100)
		r.SetValue(dataset.Upload, 20)
		r.SetValue(dataset.Latency, 25)
		r.SetValue(dataset.Loss, 0.002)
		records = append(records, r)
	}
	path := filepath.Join(t.TempDir(), "tests.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, records); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out, err := capture(t, "score", "-data", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "XB-01") {
		t.Errorf("CSV-driven score output:\n%s", out)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestExportCSV(t *testing.T) {
	data := writeTestData(t)
	out, err := capture(t, "export", "-data", data, "-format", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "region,iqb,grade") || !strings.Contains(out, "XA-01-001") {
		t.Errorf("export csv:\n%s", out)
	}
}

func TestExportMarkdown(t *testing.T) {
	data := writeTestData(t)
	out, err := capture(t, "export", "-data", data, "-format", "markdown", "-region", "XA-01-001")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# IQB score: XA-01-001") {
		t.Errorf("export markdown:\n%s", out[:min(200, len(out))])
	}
	if _, err := capture(t, "export", "-data", data, "-format", "markdown"); err == nil {
		t.Error("markdown without region should error")
	}
}

func TestExportPreset(t *testing.T) {
	data := writeTestData(t)
	if _, err := capture(t, "export", "-data", data, "-preset", "baseline"); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, "export", "-data", data, "-preset", "vibes"); err == nil {
		t.Error("unknown preset should error")
	}
}

func TestExportErrors(t *testing.T) {
	data := writeTestData(t)
	if _, err := capture(t, "export", "-data", data, "-format", "pdf"); err == nil {
		t.Error("unknown format should error")
	}
	if _, err := capture(t, "export"); err == nil {
		t.Error("missing data should error")
	}
}

func TestTimeSeriesSubcommand(t *testing.T) {
	data := writeTestData(t)
	out, err := capture(t, "timeseries", "-data", data, "-region", "XA-01-001")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "from,to,iqb,grade,no_data") {
		t.Errorf("timeseries csv:\n%s", out)
	}
	if _, err := capture(t, "timeseries", "-data", data); err == nil {
		t.Error("missing region should error")
	}
	if _, err := capture(t, "timeseries", "-data", data, "-region", "XB-99"); err == nil {
		t.Error("region without records should error")
	}
}
