// Command iqbvet is the repo's project-specific vet suite: it runs the
// internal/analyzers rules (maprange, lockio, syncerr, walltime) over
// the given packages and exits non-zero on any finding, so CI blocks a
// change that violates a determinism, durability, or locking contract.
//
// Usage:
//
//	go run ./cmd/iqbvet ./...
//	go run ./cmd/iqbvet -list
//	go run ./cmd/iqbvet -only maprange,walltime ./internal/...
//
// Findings print as file:line:col: [analyzer] message. Intentional
// exceptions are documented in the source with
// //iqbvet:ignore <analyzer> <reason> (see internal/analyzers).
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iqb/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut *os.File) int {
	fs := flag.NewFlagSet("iqbvet", flag.ContinueOnError)
	fs.SetOutput(errOut)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(errOut, "usage: iqbvet [-list] [-only name,...] packages...\n\n"+
			"iqbvet is this repo's contract checker; packages are Go package\n"+
			"patterns relative to the module root (e.g. ./... or ./internal/persist).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(out, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	suite := analyzers.All()
	if *only != "" {
		byName := map[string]*analyzers.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(errOut, "iqbvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(errOut, "iqbvet: %v\n", err)
		return 2
	}
	diags, err := analyzers.Vet(cwd, patterns, suite)
	if err != nil {
		fmt.Fprintf(errOut, "iqbvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "iqbvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
