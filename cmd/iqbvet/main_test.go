package main

import (
	"os"
	"testing"
)

func devnull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestListExitsZero(t *testing.T) {
	if got := run([]string{"-list"}, devnull(t), devnull(t)); got != 0 {
		t.Fatalf("run(-list) = %d, want 0", got)
	}
}

func TestNoPatternsIsUsageError(t *testing.T) {
	if got := run(nil, devnull(t), devnull(t)); got != 2 {
		t.Fatalf("run() = %d, want 2", got)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	if got := run([]string{"-only", "bogus", "./..."}, devnull(t), devnull(t)); got != 2 {
		t.Fatalf("run(-only bogus) = %d, want 2", got)
	}
}

// TestScopeFilteredRunIsClean vets this package with an analyzer whose
// scope excludes cmd/iqbvet: the driver should skip loading entirely
// and exit clean, without type-checking anything.
func TestScopeFilteredRunIsClean(t *testing.T) {
	if got := run([]string{"-only", "maprange", "./cmd/iqbvet"}, devnull(t), devnull(t)); got != 0 {
		t.Fatalf("run(-only maprange ./cmd/iqbvet) = %d, want 0", got)
	}
}
