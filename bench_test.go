// Package repro's root benchmark suite regenerates every paper artifact
// (Fig. 1, Fig. 2, Table 1) and every DESIGN.md extension experiment
// (E4-E8) as a testing.B benchmark, plus micro-benchmarks for the hot
// paths of the scoring algebra and the measurement substrate.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/experiments"
	"iqb/internal/iqb"
	"iqb/internal/ndt"
	"iqb/internal/netem"
	"iqb/internal/pipeline"
	"iqb/internal/rng"
)

// BenchmarkFig1FrameworkGraph regenerates Fig. 1 (experiment E1).
func BenchmarkFig1FrameworkGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Thresholds regenerates Fig. 2 (experiment E2).
func BenchmarkFig2Thresholds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Weights regenerates Table 1 (experiment E3).
func BenchmarkTable1Weights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegionalScoring runs the full E4 pipeline: synthetic country,
// three measurement systems, per-county scores.
func BenchmarkRegionalScoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Regional(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorroboration runs E5: leave-one-out dataset analysis.
func BenchmarkCorroboration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Corroboration(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregationAblation runs E6: percentile rule comparison.
func BenchmarkAggregationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Aggregation(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightSensitivity runs E7: ±1 perturbation of every Table 1
// cell.
func BenchmarkWeightSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Sensitivity(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThresholdSweep runs E8: the gaming latency threshold sweep
// across access technologies.
func BenchmarkThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Sweep(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks: the hot paths under the experiments ---

// BenchmarkScoreAggregates measures one full equations-1-5 evaluation.
func BenchmarkScoreAggregates(b *testing.B) {
	cfg := iqb.DefaultConfig()
	agg := iqb.NewAggregates()
	for _, d := range cfg.Datasets {
		for _, r := range d.Capabilities {
			agg.Set(d.Name, r, 42, 100)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.ScoreAggregates(agg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregateStore measures percentile aggregation over a
// 10k-record region.
func BenchmarkAggregateStore(b *testing.B) {
	cfg := iqb.DefaultConfig()
	store := dataset.NewStore()
	src := rng.New(1)
	ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10000; i++ {
		rec := dataset.NewRecord(itoa(i), "ndt", "XA-01-001", ts)
		rec.SetValue(dataset.Download, src.LogNormalFromMoments(100, 0.8))
		rec.SetValue(dataset.Upload, src.LogNormalFromMoments(10, 0.8))
		rec.SetValue(dataset.Latency, src.LogNormalFromMoments(40, 0.5))
		rec.SetValue(dataset.Loss, src.Float64()*0.05)
		if err := store.Add(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AggregateStore(store, "XA-01-001", time.Time{}, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRecords synthesizes n records spread over regions and ASNs for
// store benchmarks.
func benchRecords(n int) []dataset.Record {
	src := rng.New(7)
	ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]dataset.Record, n)
	for i := range recs {
		region := "XA-0" + itoa(i%4+1) + "-00" + itoa(i%8+1)
		rec := dataset.NewRecord("b"+itoa(i), "ndt", region, ts)
		rec.ASN = uint32(i%5 + 64500)
		rec.SetValue(dataset.Download, src.LogNormalFromMoments(100, 0.8))
		rec.SetValue(dataset.Latency, src.LogNormalFromMoments(40, 0.5))
		recs[i] = rec
	}
	return recs
}

// BenchmarkStoreAddBatch measures batched ingestion into the sharded
// store — the pipeline's write path (workers flush in batches of 256).
func BenchmarkStoreAddBatch(b *testing.B) {
	recs := benchRecords(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Fresh store each round; IDs are unique per store, not per round.
		store := dataset.NewStore()
		b.StartTimer()
		for lo := 0; lo < len(recs); lo += 256 {
			hi := lo + 256
			if hi > len(recs) {
				hi = len(recs)
			}
			if err := store.AddBatch(recs[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStoreAddParallel measures contended single-record ingestion
// across shards, the worst case for the old global-lock store.
func BenchmarkStoreAddParallel(b *testing.B) {
	recs := benchRecords(1 << 18)
	store := dataset.NewStore()
	var next int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if err := store.Add(recs[i%len(recs)]); err != nil && !strings.Contains(err.Error(), "duplicate") {
				// b.Fatal must not run on a RunParallel worker goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkStoreAggregateSketch measures a quantile served from the
// streaming sketch index (cells promoted past the cutover), versus
// BenchmarkStoreAggregateExact, the same query forced down the exact
// materialize-and-sort fallback. The gap is the streaming speedup.
func BenchmarkStoreAggregateSketch(b *testing.B) {
	store := dataset.NewStoreWith(dataset.Options{SketchCutover: 64})
	if err := store.AddBatch(benchRecords(100000)); err != nil {
		b.Fatal(err)
	}
	f := dataset.Filter{Dataset: "ndt", RegionPrefix: "XA"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Aggregate(f, dataset.Download, 95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreAggregateExact forces the exact path for the same
// workload by filtering on a dimension the sketch cells cannot express.
func BenchmarkStoreAggregateExact(b *testing.B) {
	store := dataset.NewStoreWith(dataset.Options{SketchCutover: 64})
	recs := benchRecords(100000)
	for i := range recs {
		recs[i].ASN = 64500 // single ASN so the exact query covers everything
	}
	if err := store.AddBatch(recs); err != nil {
		b.Fatal(err)
	}
	f := dataset.Filter{Dataset: "ndt", RegionPrefix: "XA", ASN: 64500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Aggregate(f, dataset.Download, 95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSketcherIngestParallel measures contended streaming ingestion
// into the lock-striped sketcher — the RunStreaming hot path. Records
// spread over regions land in different stripes, so writers should
// scale with cores instead of serializing on one sketch lock.
func BenchmarkSketcherIngestParallel(b *testing.B) {
	recs := benchRecords(1 << 16)
	sk := dataset.NewSketcher(0)
	var next int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if err := sk.Ingest(recs[i%len(recs)]); err != nil {
				// b.Fatal must not run on a RunParallel worker goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkGroupAggregateCells measures a ByRegion group-by served from
// the store's cell index (cells promoted past the cutover): cost scales
// with the number of cells, not records. BenchmarkGroupAggregateScan is
// the same grouping forced down the exact record scan for contrast.
func BenchmarkGroupAggregateCells(b *testing.B) {
	store := dataset.NewStoreWith(dataset.Options{SketchCutover: 64})
	if err := store.AddBatch(benchRecords(100000)); err != nil {
		b.Fatal(err)
	}
	f := dataset.Filter{Dataset: "ndt"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.GroupAggregate(f, dataset.ByRegion, dataset.Download, 95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupAggregateScan forces the exact per-bucket materializing
// path for the same workload by filtering on a dimension the cells
// cannot express.
func BenchmarkGroupAggregateScan(b *testing.B) {
	store := dataset.NewStoreWith(dataset.Options{SketchCutover: 64})
	recs := benchRecords(100000)
	for i := range recs {
		recs[i].ASN = 64500 // single ASN so the exact query covers everything
	}
	if err := store.AddBatch(recs); err != nil {
		b.Fatal(err)
	}
	f := dataset.Filter{Dataset: "ndt", ASN: 64500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.GroupAggregate(f, dataset.ByRegion, dataset.Download, 95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNDTSimulate measures one simulated NDT test (the pipeline's
// dominant cost).
func BenchmarkNDTSimulate(b *testing.B) {
	path := netem.DrawPath(netem.DefaultProfiles()[netem.Cable], 1, rng.New(1))
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ndt.Simulate(path, 0.5, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineSmall measures a small end-to-end world build.
func BenchmarkPipelineSmall(b *testing.B) {
	spec := pipeline.DefaultSpec()
	spec.Geo.States = 1
	spec.Geo.CountiesPer = 2
	spec.TestsPerCounty = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Run(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf []byte
	for i > 0 {
		buf = append([]byte{byte('0' + i%10)}, buf...)
		i /= 10
	}
	return string(buf)
}

// BenchmarkDatasetAgreement runs E9: cross-dataset rank correlation and
// KS distances.
func BenchmarkDatasetAgreement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Agreement(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiurnalProfile runs E10: hour-of-day score bands.
func BenchmarkDiurnalProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Diurnal(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingEquivalence runs E11: exact vs sketch scoring.
func BenchmarkStreamingEquivalence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Streaming(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStackAblation runs E12: Reno-era vs BBR-era NDT measurement.
func BenchmarkStackAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Stack(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkISPRecovery runs E13: ISP league table and quality recovery.
func BenchmarkISPRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.ISPs(context.Background(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
