module iqb

go 1.22
