package dataset

import (
	"fmt"
	"sync"

	"iqb/internal/stats"
)

// Sketcher is the memory-bounded ingestion path: instead of retaining
// raw records it folds each metric into a t-digest per
// (dataset, region, metric) cell. Region hierarchy queries merge the
// digests of matching regions, so percentile aggregates remain available
// at any level without raw data — the mode a production IQB deployment
// ingesting millions of tests per day would run in.
type Sketcher struct {
	compression float64

	mu    sync.RWMutex
	cells map[sketchKey]*stats.TDigest
}

type sketchKey struct {
	dataset string
	region  string
	metric  Metric
}

// NewSketcher returns a sketcher with the given t-digest compression
// (<= 0 uses the library default).
func NewSketcher(compression float64) *Sketcher {
	return &Sketcher{
		compression: compression,
		cells:       make(map[sketchKey]*stats.TDigest),
	}
}

// Ingest folds one record into the sketch. The record is validated.
func (s *Sketcher) Ingest(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range AllMetrics() {
		v, ok := r.Value(m)
		if !ok {
			continue
		}
		k := sketchKey{r.Dataset, r.Region, m}
		td, ok := s.cells[k]
		if !ok {
			td = stats.NewTDigest(s.compression)
			s.cells[k] = td
		}
		td.Add(v)
	}
	return nil
}

// IngestAll folds a batch, stopping at the first error.
func (s *Sketcher) IngestAll(rs []Record) error {
	for i, r := range rs {
		if err := s.Ingest(r); err != nil {
			return fmt.Errorf("dataset: sketching record %d of %d: %w", i+1, len(rs), err)
		}
	}
	return nil
}

// Cells reports the number of (dataset, region, metric) sketch cells.
func (s *Sketcher) Cells() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.cells)
}

// Quantile returns the q-quantile (q in [0,1]) of metric m for dataset
// ds across the region prefix, along with the total sample weight it was
// computed from. Digests of all regions under the prefix are merged.
func (s *Sketcher) Quantile(ds, regionPrefix string, m Metric, q float64) (float64, int, error) {
	s.mu.RLock()
	merged := stats.NewTDigest(s.compression)
	for k, td := range s.cells {
		if k.dataset != ds || k.metric != m {
			continue
		}
		if regionPrefix != "" && !regionMatch(regionPrefix, k.region) {
			continue
		}
		merged.Merge(td)
	}
	s.mu.RUnlock()
	if merged.Count() == 0 {
		return 0, 0, stats.ErrNoData
	}
	v, err := merged.Quantile(q)
	if err != nil {
		return 0, 0, err
	}
	return v, int(merged.Count()), nil
}
