package dataset

import (
	"fmt"
	"math"
	"sync"

	"iqb/internal/stats"
)

// sketcherStripes is the number of lock stripes a Sketcher spreads its
// cells over — the same geometry argument as the store's shard count:
// enough stripes that concurrent writers for different (dataset, region)
// pairs essentially never contend.
const sketcherStripes = 32

// Sketcher is the memory-bounded ingestion path: instead of retaining
// raw records it folds each metric into a per-(dataset, region, metric)
// cell, the same cell design the store's streaming aggregation index
// uses — exact up to a cutover, then promoted to an order-independent
// stats.DDSketch. Region hierarchy queries merge the cells of matching
// regions, so percentile aggregates remain available at any level
// without raw data — the mode a production IQB deployment ingesting
// millions of tests per day would run in.
//
// # Determinism
//
// Every answer a Sketcher gives is a pure function of the ingested value
// multiset, never of arrival order: exact cells sort before computing
// percentiles, and promoted cells are DDSketches, whose bucket-count
// state is order-independent by construction. Quantile is stable across
// repeated calls, and two sketchers built from the same records — in any
// order, across any number of workers, joined by Merge in any order —
// answer bit-identically. RunStreaming's fixed-seed determinism contract
// leans on this.
//
// Cells are lock-striped by hash(dataset, region), so concurrent
// ingestion for different regions never contends; a shared-nothing
// pipeline can instead run one Sketcher per worker and Merge at the
// join, touching no locks at all on the hot path.
type Sketcher struct {
	cutover int
	alpha   float64
	stripes [sketcherStripes]sketchStripe
}

// sketchStripe is one lock stripe of a Sketcher's cell map.
type sketchStripe struct {
	mu    sync.RWMutex
	cells map[cellKey]*metricCell
}

// NewSketcher returns a sketcher with the given DDSketch relative
// accuracy (values outside (0, 1) select stats.DefaultDDSketchAlpha) and
// the store's default exact-cell cutover.
func NewSketcher(alpha float64) *Sketcher {
	return NewSketcherWith(Options{SketchAlpha: alpha})
}

// NewSketcherWith returns a sketcher with explicit cell options. Only
// SketchCutover and SketchAlpha are consulted; the zero value selects
// all defaults.
func NewSketcherWith(o Options) *Sketcher {
	if o.SketchCutover <= 0 {
		o.SketchCutover = DefaultSketchCutover
	}
	if o.SketchAlpha <= 0 || o.SketchAlpha >= 1 || math.IsNaN(o.SketchAlpha) {
		o.SketchAlpha = stats.DefaultDDSketchAlpha
	}
	s := &Sketcher{cutover: o.SketchCutover, alpha: o.SketchAlpha}
	for i := range s.stripes {
		s.stripes[i].cells = make(map[cellKey]*metricCell)
	}
	return s
}

// Alpha returns the DDSketch relative accuracy the sketcher's cells
// promote to.
func (s *Sketcher) Alpha() float64 { return s.alpha }

func (s *Sketcher) stripeFor(ds, region string) *sketchStripe {
	return &s.stripes[fnv64a(ds, region)%sketcherStripes]
}

// Ingest folds one record into the sketch. The record is validated. All
// of a record's metrics land in the same stripe, so ingestion takes one
// lock per record.
func (s *Sketcher) Ingest(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	st := s.stripeFor(r.Dataset, r.Region)
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, m := range AllMetrics() {
		v, ok := r.Value(m)
		if !ok {
			continue
		}
		k := cellKey{dataset: r.Dataset, region: r.Region, metric: m}
		c := st.cells[k]
		if c == nil {
			c = &metricCell{}
			st.cells[k] = c
		}
		c.add(v, s.cutover, s.alpha)
	}
	return nil
}

// IngestAll folds a batch, stopping at the first error.
func (s *Sketcher) IngestAll(rs []Record) error {
	for i, r := range rs {
		if err := s.Ingest(r); err != nil {
			return fmt.Errorf("dataset: sketching record %d of %d: %w", i+1, len(rs), err)
		}
	}
	return nil
}

// Cells reports the number of (dataset, region, metric) sketch cells.
func (s *Sketcher) Cells() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		n += len(st.cells)
		st.mu.RUnlock()
	}
	return n
}

// Merge folds every cell of other into s; other is unchanged. Both
// sketchers must share the same cell geometry (cutover and alpha), so
// merged cells are bit-identical to cells built by a single sketcher
// ingesting the union of the records. Merge may run concurrently with
// Ingest and Quantile on either sketcher, but two sketchers must not be
// merged into each other concurrently.
func (s *Sketcher) Merge(other *Sketcher) error {
	if other == nil || other == s {
		return nil
	}
	if other.alpha != s.alpha || other.cutover != s.cutover {
		return fmt.Errorf("dataset: merging sketchers with different cell geometry (alpha %v/%v, cutover %d/%d)",
			s.alpha, other.alpha, s.cutover, other.cutover)
	}
	// Both sketchers stripe by the same hash over the same stripe count,
	// so every cell of other.stripes[i] lands in s.stripes[i]: one lock
	// pair per stripe instead of per cell.
	for i := range other.stripes {
		ost, st := &other.stripes[i], &s.stripes[i]
		ost.mu.RLock()
		st.mu.Lock()
		for k, oc := range ost.cells {
			c := st.cells[k]
			if c == nil {
				c = &metricCell{}
				st.cells[k] = c
			}
			if err := c.merge(oc, s.cutover, s.alpha); err != nil {
				st.mu.Unlock()
				ost.mu.RUnlock()
				return err
			}
		}
		st.mu.Unlock()
		ost.mu.RUnlock()
	}
	return nil
}

// Quantile returns the q-quantile (q in [0,1]) of metric m for dataset
// ds across the region prefix, along with the total sample count it was
// computed from. Cells of all regions under the prefix are merged; while
// every contributing cell is still exact the answer is bit-identical to
// a full scan, and once cells have promoted it is within the DDSketch
// relative-error bound. Repeated calls over the same ingested data
// return identical values.
func (s *Sketcher) Quantile(ds, regionPrefix string, m Metric, q float64) (float64, int, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, 0, fmt.Errorf("dataset: quantile %v out of [0,1]", q)
	}
	var acc cellAccum
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for k, c := range st.cells {
			if k.dataset != ds || k.metric != m {
				continue
			}
			if regionPrefix != "" && !regionMatch(regionPrefix, k.region) {
				continue
			}
			//iqbvet:ignore maprange cellAccum is order-independent: exact values are sorted at quantile time, sketch merges are commutative
			if err := acc.add(c, s.alpha); err != nil {
				st.mu.RUnlock()
				return 0, 0, err
			}
		}
		st.mu.RUnlock()
	}
	if acc.count == 0 {
		return 0, 0, stats.ErrNoData
	}
	v, err := acc.quantile(q, q*100)
	if err != nil {
		return 0, 0, err
	}
	return v, acc.count, nil
}
