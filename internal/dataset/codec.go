package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// jsonRecord is the wire form of a Record: metric fields are pointers so
// missing values round-trip as absent keys rather than NaN (which JSON
// cannot represent).
type jsonRecord struct {
	ID       string    `json:"id"`
	Time     time.Time `json:"time"`
	Dataset  string    `json:"dataset"`
	Region   string    `json:"region"`
	ASN      uint32    `json:"asn,omitempty"`
	Tech     string    `json:"tech,omitempty"`
	Download *float64  `json:"download_mbps,omitempty"`
	Upload   *float64  `json:"upload_mbps,omitempty"`
	Latency  *float64  `json:"latency_ms,omitempty"`
	Loss     *float64  `json:"loss_frac,omitempty"`
}

func toWire(r Record) jsonRecord {
	w := jsonRecord{ID: r.ID, Time: r.Time, Dataset: r.Dataset, Region: r.Region, ASN: r.ASN, Tech: r.Tech}
	if v, ok := r.Value(Download); ok {
		w.Download = &v
	}
	if v, ok := r.Value(Upload); ok {
		w.Upload = &v
	}
	if v, ok := r.Value(Latency); ok {
		w.Latency = &v
	}
	if v, ok := r.Value(Loss); ok {
		w.Loss = &v
	}
	return w
}

func fromWire(w jsonRecord) Record {
	r := NewRecord(w.ID, w.Dataset, w.Region, w.Time)
	r.ASN = w.ASN
	r.Tech = w.Tech
	if w.Download != nil {
		r.DownloadMbps = *w.Download
	}
	if w.Upload != nil {
		r.UploadMbps = *w.Upload
	}
	if w.Latency != nil {
		r.LatencyMS = *w.Latency
	}
	if w.Loss != nil {
		r.LossFrac = *w.Loss
	}
	return r
}

// WriteNDJSON streams records to w as newline-delimited JSON.
func WriteNDJSON(w io.Writer, rs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range rs {
		if err := enc.Encode(toWire(r)); err != nil {
			return fmt.Errorf("dataset: encoding record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// LineError locates a malformed NDJSON record by its 1-based line
// number in the input stream — the number is global across an entire
// decode, not relative to the chunk that surfaced it, so streaming
// ingest clients can be pointed at the exact offending line of what
// they sent. Unwrap exposes the underlying parse or validation error.
type LineError struct {
	Line int
	Err  error
}

func (e *LineError) Error() string { return fmt.Sprintf("dataset: line %d: %v", e.Line, e.Err) }

func (e *LineError) Unwrap() error { return e.Err }

// NDJSONDecoder incrementally decodes newline-delimited JSON records,
// validating each. Unlike ReadNDJSON it never holds more than one
// chunk of records in memory, so arbitrarily long request bodies can
// be fed through a bounded ingest queue chunk by chunk. Lines may be
// arbitrarily long: each is accumulated in full rather than capped the
// way bufio.Scanner caps tokens, because the WAL reader funnels
// crash-recovery payloads through this path and must never reject a
// record the writer accepted.
type NDJSONDecoder struct {
	br   *bufio.Reader
	line int
	done bool
}

// NewNDJSONDecoder returns a decoder reading from r.
func NewNDJSONDecoder(r io.Reader) *NDJSONDecoder {
	return &NDJSONDecoder{br: bufio.NewReaderSize(r, 64<<10)}
}

// Next decodes up to max records (max <= 0 means unbounded) and
// reports the raw input bytes consumed for them, delimiters included.
// Once the stream is exhausted it returns io.EOF with no records; a
// malformed or invalid record aborts the chunk with a *LineError
// carrying the global 1-based line number. Blank lines are skipped but
// still counted, matching line numbers in the sender's file.
func (d *NDJSONDecoder) Next(max int) ([]Record, int64, error) {
	if d.done {
		return nil, 0, io.EOF
	}
	var out []Record
	var consumed int64
	for max <= 0 || len(out) < max {
		raw, err := d.br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return nil, 0, fmt.Errorf("dataset: reading NDJSON: %w", err)
		}
		d.line++
		consumed += int64(len(raw))
		// Trim the delimiter (and a CR from CRLF input, matching the
		// old Scanner behavior).
		for len(raw) > 0 && (raw[len(raw)-1] == '\n' || raw[len(raw)-1] == '\r') {
			raw = raw[:len(raw)-1]
		}
		if len(raw) > 0 {
			var w jsonRecord
			if uerr := json.Unmarshal(raw, &w); uerr != nil {
				return nil, 0, &LineError{Line: d.line, Err: uerr}
			}
			rec := fromWire(w)
			if verr := rec.Validate(); verr != nil {
				return nil, 0, &LineError{Line: d.line, Err: verr}
			}
			out = append(out, rec)
		}
		if err == io.EOF {
			d.done = true
			break
		}
	}
	if len(out) == 0 && d.done {
		return nil, consumed, io.EOF
	}
	return out, consumed, nil
}

// Line reports how many input lines the decoder has consumed — after a
// successful Next, the line number of the last record returned.
func (d *NDJSONDecoder) Line() int { return d.line }

// ReadNDJSON parses newline-delimited JSON records from r in one call,
// validating each. It reports the 1-based line number of the first
// malformed record via *LineError. This is the whole-input convenience
// over NDJSONDecoder; streaming callers should chunk with the decoder
// instead.
func ReadNDJSON(r io.Reader) ([]Record, error) {
	dec := NewNDJSONDecoder(r)
	var out []Record
	for {
		rs, _, err := dec.Next(0)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rs...)
	}
}

// csvHeader is the fixed CSV column order.
var csvHeader = []string{"id", "time", "dataset", "region", "asn", "tech", "download_mbps", "upload_mbps", "latency_ms", "loss_frac"}

// WriteCSV writes records with a header row. Missing metrics are empty
// cells.
func WriteCSV(w io.Writer, rs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	fmtMetric := func(v float64) string {
		if math.IsNaN(v) {
			return ""
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	for i, r := range rs {
		row := []string{
			r.ID,
			r.Time.UTC().Format(time.RFC3339Nano),
			r.Dataset,
			r.Region,
			strconv.FormatUint(uint64(r.ASN), 10),
			r.Tech,
			fmtMetric(r.DownloadMbps),
			fmtMetric(r.UploadMbps),
			fmtMetric(r.LatencyMS),
			fmtMetric(r.LossFrac),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing CSV record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses records written by WriteCSV, validating each.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("dataset: CSV column %d is %q, want %q", i, header[i], want)
		}
	}
	var out []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
		t, err := time.Parse(time.RFC3339Nano, row[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d time: %w", line, err)
		}
		asn, err := strconv.ParseUint(row[4], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d asn: %w", line, err)
		}
		rec := NewRecord(row[0], row[2], row[3], t)
		rec.ASN = uint32(asn)
		rec.Tech = row[5]
		for i, m := range []Metric{Download, Upload, Latency, Loss} {
			cell := row[6+i]
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d %s: %w", line, m, err)
			}
			rec.SetValue(m, v)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	return out, nil
}
