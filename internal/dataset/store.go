package dataset

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iqb/internal/stats"
)

// ErrDuplicate marks (dataset, ID) uniqueness violations. Callers that
// replay a write-ahead log match it with errors.Is to recognize a batch
// that was already applied.
var ErrDuplicate = errors.New("duplicate record")

// Default store geometry. 32 shards keeps writer contention negligible
// up to several dozen cores while the fan-out cost of merge-on-read
// queries stays trivial.
const (
	DefaultShards = 32
	// DefaultSketchCutover is how many values a (dataset, region,
	// metric) cell holds exactly before promoting to a sketch. Every
	// laptop-scale experiment in this repo stays below it, so their
	// aggregates are bit-identical to a full scan; production-scale
	// cells promote and become O(buckets).
	DefaultSketchCutover = 1024

	idStripeCount = 64
)

// Options configures store geometry and the streaming aggregation path.
// The zero value selects all defaults.
type Options struct {
	// Shards is the number of lock stripes; <= 0 means DefaultShards.
	Shards int
	// SketchCutover is the per-cell exact-value budget before sketch
	// promotion; <= 0 means DefaultSketchCutover.
	SketchCutover int
	// SketchAlpha is the DDSketch relative accuracy; <= 0 means
	// stats.DefaultDDSketchAlpha.
	SketchAlpha float64
}

// Store is an in-memory measurement store, sharded for concurrent
// ingestion and indexed for region/ISP/time queries.
//
// # Architecture
//
// Records are striped over Options.Shards shards by hash(dataset,
// region); each shard has its own mutex, records slice, and region/ASN
// indexes, so writers for different regions never contend and readers
// fan out across shards and merge (sorting by a global insertion
// sequence wherever insertion order is part of the contract). A second,
// independent stripe set enforces (dataset, ID) uniqueness across the
// whole store.
//
// On top of the record shards sits a streaming aggregation index: every
// insert folds its metric values into a per-(dataset, region, metric)
// cell. Cells are exact up to Options.SketchCutover values and then
// promote to an order-independent stats.DDSketch, so Aggregate answers
// quantile queries without materializing values. Filters the cells
// cannot express (ASN, time bounds, foreign HasMetric) fall back to an
// exact scan.
//
// # Determinism
//
// Every aggregate the store serves is a pure function of the record
// multiset, never of arrival order: exact paths sort before computing
// percentiles, and the sketch path uses DDSketch, whose bucket-count
// state is order-independent by construction. Concurrent writers —
// any number of them, interleaved any way — therefore produce a store
// whose Aggregate/Summary/GroupAggregate answers are bit-identical.
// The pipeline's fixed-seed determinism guarantee leans on this.
//
// The store is safe for concurrent use; reads never block other reads.
type Store struct {
	shards  []*shard
	stripes [idStripeCount]idStripe
	seq     atomic.Uint64
	cutover int
	alpha   float64

	// ingestMu fences writers against Quiesce: every mutation holds it
	// shared for the full validate→hooks→insert→commit sequence, so an
	// exclusive holder observes the store with no ingestion in flight —
	// in particular, never between a hook's durable tee and the matching
	// shard mutation, and never before a committed batch's commit
	// notifications have fired.
	ingestMu   sync.RWMutex
	hooks      []hookEntry
	nextHookID uint64
}

// IngestHook observes every batch that is about to enter the store —
// validated and dedup-cleared, before any shard is mutated. A non-nil
// error vetoes the batch: the store is left unchanged (including its
// dedup set) and the error is returned to the writer. The persistence
// layer uses this to tee batches durably (WAL append + fsync) ahead of
// the in-memory mutation, so an acknowledged write is always
// recoverable. Hooks must not call back into the store.
type IngestHook func(rs []Record) error

// BatchNotify observes a batch without the power to veto it. Commit
// notifications fire after every record of the batch is visible in the
// shards; abort notifications fire when a later hook in the chain
// vetoed a batch this observer had already been told about. Notify
// functions must not call back into the store.
type BatchNotify func(rs []Record)

// Hooks is one observer's set of batch callbacks. Any field may be nil.
//
// For each batch that clears validation and dedup, the store runs every
// registered observer's Ingest in registration order; the first error
// vetoes the batch, the store unwinds (Abort, in reverse order, on the
// observers that came before the vetoing one) and stays unchanged. If
// the whole chain accepts, the batch is applied to the shards and then
// every observer's Commit runs, again in registration order. The entire
// sequence happens inside the write fence, so Quiesce never observes a
// batch between its durable tee and its commit notifications.
//
// A write-ahead log registers {Ingest: tee}; a derived-result cache
// registers {Ingest: markPending, Commit: invalidate, Abort: unmark} —
// the two coexist on one store, which the old single-slot SetIngestHook
// could not express.
type Hooks struct {
	Ingest IngestHook
	Commit BatchNotify
	Abort  BatchNotify
}

// hookEntry is one registered observer, tagged for removal.
type hookEntry struct {
	id uint64
	h  Hooks
}

// NewStore returns an empty store with default options.
func NewStore() *Store { return NewStoreWith(Options{}) }

// NewStoreWith returns an empty store with explicit options.
func NewStoreWith(o Options) *Store {
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	if o.SketchCutover <= 0 {
		o.SketchCutover = DefaultSketchCutover
	}
	if o.SketchAlpha <= 0 {
		o.SketchAlpha = stats.DefaultDDSketchAlpha
	}
	s := &Store{
		shards:  make([]*shard, o.Shards),
		cutover: o.SketchCutover,
		alpha:   o.SketchAlpha,
	}
	for i := range s.shards {
		s.shards[i] = newShard()
	}
	for i := range s.stripes {
		s.stripes[i].ids = make(map[string]struct{})
	}
	return s
}

// NumShards reports the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// AddHooks appends an observer to the hook chain and returns a function
// that removes it again. Both registration and removal wait for
// in-flight writes to drain, so after AddHooks returns every subsequent
// successful Add/AddBatch passes through the observer, and after the
// remove function returns none do. Recovery installs its WAL tee only
// after replaying, so replayed batches are not re-teed to the log they
// came from. The remove function is idempotent.
func (s *Store) AddHooks(h Hooks) (remove func()) {
	s.ingestMu.Lock()
	id := s.nextHookID
	s.nextHookID++
	s.hooks = append(s.hooks, hookEntry{id: id, h: h})
	s.ingestMu.Unlock()
	return func() {
		s.ingestMu.Lock()
		for i, e := range s.hooks {
			if e.id == id {
				s.hooks = append(s.hooks[:i], s.hooks[i+1:]...)
				break
			}
		}
		s.ingestMu.Unlock()
	}
}

// AddIngestHook registers a veto-capable pre-commit hook with no
// commit/abort notifications — the write-ahead-log shape of AddHooks.
func (s *Store) AddIngestHook(h IngestHook) (remove func()) {
	return s.AddHooks(Hooks{Ingest: h})
}

// runIngestHooks walks the chain's Ingest phase in registration order.
// On a veto it aborts, in reverse order, the observers that already
// ran, and returns the vetoing error. Callers hold ingestMu shared.
func (s *Store) runIngestHooks(rs []Record) error {
	for i, e := range s.hooks {
		if e.h.Ingest == nil {
			continue
		}
		if err := e.h.Ingest(rs); err != nil {
			// Unwind only the observers that were actually told about the
			// batch: an Ingest-less observer has no in-flight state to
			// release, and a spurious Abort could corrupt accounting it
			// keeps for other batches.
			for j := i - 1; j >= 0; j-- {
				if s.hooks[j].h.Ingest != nil && s.hooks[j].h.Abort != nil {
					s.hooks[j].h.Abort(rs)
				}
			}
			return err
		}
	}
	return nil
}

// runCommitHooks fires the chain's Commit phase in registration order,
// after every record of the batch is visible in the shards. Callers
// hold ingestMu shared, so Quiesce sees all notifications delivered.
func (s *Store) runCommitHooks(rs []Record) {
	for _, e := range s.hooks {
		if e.h.Commit != nil {
			e.h.Commit(rs)
		}
	}
}

// Quiesce runs fn while no ingestion is in flight: writers that have
// cleared the ingest hook chain have also finished mutating shards and
// delivering their commit notifications, and new writers block until
// fn returns. The persistence layer snapshots under
// Quiesce so the captured record set and the captured WAL offset name
// the same point in time. fn must not write to the store.
func (s *Store) Quiesce(fn func()) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	fn()
}

// unclaim releases (dataset, ID) reservations after a vetoed ingest.
func (s *Store) unclaim(keys []string) {
	for _, k := range keys {
		st := s.stripeFor(k)
		st.mu.Lock()
		delete(st.ids, k)
		st.mu.Unlock()
	}
}

func (s *Store) shardFor(ds, region string) *shard {
	return s.shards[fnv64a(ds, region)%uint64(len(s.shards))]
}

func (s *Store) stripeFor(key string) *idStripe {
	return &s.stripes[fnv64a(key)%idStripeCount]
}

// Add validates and inserts a record. Duplicate (dataset, ID) pairs are
// rejected.
func (s *Store) Add(r Record) error {
	s.ingestMu.RLock()
	defer s.ingestMu.RUnlock()
	if err := r.Validate(); err != nil {
		return err
	}
	key := r.Dataset + "/" + r.ID
	st := s.stripeFor(key)
	st.mu.Lock()
	if _, dup := st.ids[key]; dup {
		st.mu.Unlock()
		return fmt.Errorf("dataset: %w %s", ErrDuplicate, key)
	}
	st.ids[key] = struct{}{}
	st.mu.Unlock()

	rs := []Record{r}
	if err := s.runIngestHooks(rs); err != nil {
		s.unclaim([]string{key})
		return fmt.Errorf("dataset: ingest hook: %w", err)
	}

	sh := s.shardFor(r.Dataset, r.Region)
	sh.mu.Lock()
	sh.insertLocked(s.seq.Add(1), r, s.cutover, s.alpha)
	sh.mu.Unlock()
	s.runCommitHooks(rs)
	return nil
}

// AddBatch validates and inserts a batch atomically with respect to
// errors: the whole batch is validated and checked for duplicates
// (against the store and within itself) before any record is stored, so
// a mid-batch failure leaves the store unchanged. If an ingest hook is
// installed it runs after the checks and before any shard mutation; a
// hook error likewise leaves the store unchanged. Records land with
// consecutive insertion sequence numbers, and each destination shard is
// locked once for the whole batch rather than per record.
func (s *Store) AddBatch(rs []Record) error {
	if len(rs) == 0 {
		return nil
	}
	s.ingestMu.RLock()
	defer s.ingestMu.RUnlock()
	keys := make([]string, len(rs))
	seen := make(map[string]int, len(rs))
	for i, r := range rs {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("dataset: record %d of %d: %w", i+1, len(rs), err)
		}
		k := r.Dataset + "/" + r.ID
		if first, dup := seen[k]; dup {
			return fmt.Errorf("dataset: record %d of %d: %w %s within batch (first at record %d)", i+1, len(rs), ErrDuplicate, k, first+1)
		}
		seen[k] = i
		keys[i] = k
	}

	// Claim every ID atomically: lock all involved stripes in sorted
	// order (deadlock-free against other batches, and against Add, which
	// holds at most one stripe), check every key, then insert every key.
	// Holding the locks for the whole check+insert means a failing batch
	// is invisible to concurrent writers — no transient reservations to
	// roll back or collide with.
	byStripe := make(map[uint64][]int)
	for i, k := range keys {
		si := fnv64a(k) % idStripeCount
		byStripe[si] = append(byStripe[si], i)
	}
	order := make([]uint64, 0, len(byStripe))
	for si := range byStripe {
		order = append(order, si)
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })

	for _, si := range order {
		s.stripes[si].mu.Lock()
	}
	unlock := func() {
		for _, si := range order {
			s.stripes[si].mu.Unlock()
		}
	}
	for i, k := range keys {
		if _, dup := s.stripes[fnv64a(k)%idStripeCount].ids[k]; dup {
			unlock()
			return fmt.Errorf("dataset: record %d of %d: %w %s", i+1, len(rs), ErrDuplicate, k)
		}
	}
	for _, k := range keys {
		s.stripes[fnv64a(k)%idStripeCount].ids[k] = struct{}{}
	}
	unlock()

	// The batch is now validated and its IDs claimed, so the hook chain
	// sees exactly what the shards are about to absorb; a veto releases
	// the claims and leaves the store untouched.
	if err := s.runIngestHooks(rs); err != nil {
		s.unclaim(keys)
		return fmt.Errorf("dataset: ingest hook: %w", err)
	}

	// Sequence numbers are claimed as one contiguous block so the batch
	// keeps its internal order under Select regardless of which shard
	// each record lands in.
	base := s.seq.Add(uint64(len(rs))) - uint64(len(rs))
	byShard := make(map[*shard][]int)
	for i, r := range rs {
		sh := s.shardFor(r.Dataset, r.Region)
		byShard[sh] = append(byShard[sh], i)
	}
	for sh, idxs := range byShard {
		sh.mu.Lock()
		for _, i := range idxs {
			sh.insertLocked(base+uint64(i)+1, rs[i], s.cutover, s.alpha)
		}
		sh.mu.Unlock()
	}
	s.runCommitHooks(rs)
	return nil
}

// AddAll inserts a batch with AddBatch semantics: the whole batch is
// validated up front and a failure leaves the store unchanged.
func (s *Store) AddAll(rs []Record) error { return s.AddBatch(rs) }

// Len returns the number of stored records.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.records)
		sh.mu.RUnlock()
	}
	return n
}

// Datasets returns the distinct dataset names present, sorted.
func (s *Store) Datasets() []string {
	counts := s.DatasetCounts()
	out := make([]string, 0, len(counts))
	for d := range counts {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// DatasetCounts returns the number of records per dataset name in
// O(shards) without scanning records.
func (s *Store) DatasetCounts() map[string]int {
	counts := map[string]int{}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for d, n := range sh.byDataset {
			counts[d] += n
		}
		sh.mu.RUnlock()
	}
	return counts
}

// Regions returns the distinct region codes present, sorted.
func (s *Store) Regions() []string {
	set := map[string]bool{}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for r := range sh.byRegion {
			set[r] = true
		}
		sh.mu.RUnlock()
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Filter selects records. Zero values mean "any". RegionPrefix matches a
// region code or any of its descendants (hierarchical codes share
// prefixes, "XA-01" matches "XA-01" and "XA-01-002" but not "XA-010").
type Filter struct {
	Dataset      string
	RegionPrefix string
	ASN          uint32
	From, To     time.Time // [From, To); zero means unbounded
	HasMetric    []Metric  // all listed metrics must be present
}

func (f Filter) matches(r Record) bool {
	if f.Dataset != "" && r.Dataset != f.Dataset {
		return false
	}
	if f.RegionPrefix != "" && !regionMatch(f.RegionPrefix, r.Region) {
		return false
	}
	if f.ASN != 0 && r.ASN != f.ASN {
		return false
	}
	if !f.From.IsZero() && r.Time.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && !r.Time.Before(f.To) {
		return false
	}
	for _, m := range f.HasMetric {
		if !r.Has(m) {
			return false
		}
	}
	return true
}

// regionMatch reports whether code is prefix itself or a hierarchical
// descendant of it.
func regionMatch(prefix, code string) bool {
	if code == prefix {
		return true
	}
	return strings.HasPrefix(code, prefix) && len(code) > len(prefix) && code[len(prefix)] == '-'
}

// sketchServable reports whether the filter can be answered from the
// (dataset, region, metric) sketch cells for metric m: cells carry no
// ASN, time, or cross-metric presence information.
func sketchServable(f Filter, m Metric) bool {
	if f.ASN != 0 || !f.From.IsZero() || !f.To.IsZero() {
		return false
	}
	switch len(f.HasMetric) {
	case 0:
		return true
	case 1:
		return f.HasMetric[0] == m
	default:
		return false
	}
}

// Select returns a copy of all records matching f, in insertion order.
func (s *Store) Select(f Filter) []Record {
	var hits []seqRecord
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, idx := range sh.candidatesLocked(f) {
			if sr := sh.records[idx]; f.matches(sr.rec) {
				hits = append(hits, sr)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].seq < hits[j].seq })
	out := make([]Record, len(hits))
	for i, sr := range hits {
		out[i] = sr.rec
	}
	return out
}

// Count returns the number of records matching f without copying them.
func (s *Store) Count(f Filter) int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, idx := range sh.candidatesLocked(f) {
			if f.matches(sh.records[idx].rec) {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// Values extracts the metric values of all records matching f, in
// insertion order.
func (s *Store) Values(f Filter, m Metric) []float64 {
	type seqVal struct {
		seq uint64
		v   float64
	}
	var hits []seqVal
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, idx := range sh.candidatesLocked(f) {
			sr := sh.records[idx]
			if !f.matches(sr.rec) {
				continue
			}
			if v, ok := sr.rec.Value(m); ok {
				hits = append(hits, seqVal{sr.seq, v})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].seq < hits[j].seq })
	out := make([]float64, len(hits))
	for i, h := range hits {
		out[i] = h.v
	}
	return out
}

// Aggregate computes the q-th percentile (q in [0, 100]) of metric m
// over records matching f. It returns stats.ErrNoData when nothing
// matches. Filters the streaming index can express are answered from
// the per-(dataset, region, metric) cells — exactly while every cell is
// below the sketch cutover, within the sketch's relative-error bound
// once promoted — without materializing values; other filters fall back
// to an exact scan.
func (s *Store) Aggregate(f Filter, m Metric, q float64) (float64, error) {
	v, _, err := s.AggregateCount(f, m, q)
	return v, err
}

// AggregateCount is Aggregate plus the number of metric values the
// answer was computed over.
func (s *Store) AggregateCount(f Filter, m Metric, q float64) (float64, int, error) {
	if q < 0 || q > 100 || math.IsNaN(q) {
		return 0, 0, fmt.Errorf("dataset: percentile %v out of [0,100]", q)
	}
	if !sketchServable(f, m) {
		vals := s.Values(f, m)
		v, err := stats.Percentile(vals, q)
		return v, len(vals), err
	}
	var acc cellAccum
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, c := range sh.cells {
			if k.metric != m {
				continue
			}
			if f.Dataset != "" && k.dataset != f.Dataset {
				continue
			}
			if f.RegionPrefix != "" && !regionMatch(f.RegionPrefix, k.region) {
				continue
			}
			//iqbvet:ignore maprange cellAccum is order-independent: exact values are sorted at quantile time, sketch merges are commutative
			if err := acc.add(c, s.alpha); err != nil {
				sh.mu.RUnlock()
				return 0, 0, err
			}
		}
		sh.mu.RUnlock()
	}
	if acc.count == 0 {
		return 0, 0, stats.ErrNoData
	}
	v, err := acc.quantile(q/100, q)
	return v, acc.count, err
}

// Summary computes descriptive statistics of metric m over records
// matching f. It always scans exactly.
func (s *Store) Summary(f Filter, m Metric) (stats.Summary, error) {
	return stats.Summarize(s.Values(f, m))
}

// GroupKey selects how GroupAggregate buckets records.
type GroupKey int

// Grouping dimensions.
const (
	ByRegion GroupKey = iota
	ByDataset
	ByASN
)

// Group is one bucket of a grouped aggregation.
type Group struct {
	Key   string
	Count int
	Value float64
}

// GroupAggregate buckets records matching f by key and computes the q-th
// percentile of m within each bucket. Buckets with no metric values are
// omitted. Results are sorted by key. The scan fans out across shards
// without a global lock.
//
// ByRegion and ByDataset group-bys with sketch-servable filters are
// answered from the per-(dataset, region, metric) cell index without
// materializing per-bucket value slices: the cost scales with the number
// of cells, not records. ByASN and filters the cells cannot express
// (ASN, time bounds, foreign HasMetric) fall back to the exact scan,
// mirroring Aggregate.
func (s *Store) GroupAggregate(f Filter, key GroupKey, m Metric, q float64) ([]Group, error) {
	switch key {
	case ByRegion, ByDataset, ByASN:
	default:
		return nil, fmt.Errorf("dataset: unknown group key %d", key)
	}
	if q < 0 || q > 100 || math.IsNaN(q) {
		return nil, fmt.Errorf("dataset: percentile %v out of [0,100]", q)
	}
	if (key == ByRegion || key == ByDataset) && sketchServable(f, m) {
		return s.groupAggregateCells(f, key, m, q)
	}
	buckets := map[string][]float64{}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, idx := range sh.candidatesLocked(f) {
			r := sh.records[idx].rec
			if !f.matches(r) {
				continue
			}
			v, ok := r.Value(m)
			if !ok {
				continue
			}
			var k string
			switch key {
			case ByRegion:
				k = r.Region
			case ByDataset:
				k = r.Dataset
			case ByASN:
				k = fmt.Sprintf("AS%d", r.ASN)
			}
			buckets[k] = append(buckets[k], v)
		}
		sh.mu.RUnlock()
	}
	out := make([]Group, 0, len(buckets))
	for k, vals := range buckets {
		p, err := stats.Percentile(vals, q)
		if err != nil {
			return nil, err
		}
		out = append(out, Group{Key: k, Count: len(vals), Value: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// groupAggregateCells answers a ByRegion/ByDataset group-by straight
// from the cell index: cells matching the filter are merged per bucket —
// exact values while every contributing cell is below the cutover
// (answering bit-identically to the record scan), DDSketch merges once
// cells have promoted.
func (s *Store) groupAggregateCells(f Filter, key GroupKey, m Metric, q float64) ([]Group, error) {
	buckets := map[string]*cellAccum{}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, c := range sh.cells {
			if k.metric != m {
				continue
			}
			if f.Dataset != "" && k.dataset != f.Dataset {
				continue
			}
			if f.RegionPrefix != "" && !regionMatch(f.RegionPrefix, k.region) {
				continue
			}
			gk := k.region
			if key == ByDataset {
				gk = k.dataset
			}
			b := buckets[gk]
			if b == nil {
				b = &cellAccum{}
				buckets[gk] = b
			}
			if err := b.add(c, s.alpha); err != nil {
				sh.mu.RUnlock()
				return nil, err
			}
		}
		sh.mu.RUnlock()
	}
	out := make([]Group, 0, len(buckets))
	for gk, b := range buckets {
		v, err := b.quantile(q/100, q)
		if err != nil {
			return nil, err
		}
		out = append(out, Group{Key: gk, Count: b.count, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// TimeBounds returns the earliest and latest record timestamps matching
// f. ok is false when nothing matches.
func (s *Store) TimeBounds(f Filter) (min, max time.Time, ok bool) {
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, idx := range sh.candidatesLocked(f) {
			r := sh.records[idx].rec
			if !f.matches(r) {
				continue
			}
			if !ok || r.Time.Before(min) {
				min = r.Time
			}
			if !ok || r.Time.After(max) {
				max = r.Time
			}
			ok = true
		}
		sh.mu.RUnlock()
	}
	return min, max, ok
}
