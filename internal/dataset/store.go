package dataset

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"iqb/internal/stats"
)

// Store is an in-memory measurement store with secondary indexes on
// region and ASN. It is safe for concurrent use; reads never block other
// reads.
type Store struct {
	mu       sync.RWMutex
	records  []Record
	byRegion map[string][]int
	byASN    map[uint32][]int
	ids      map[string]struct{} // dataset/id uniqueness
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		byRegion: make(map[string][]int),
		byASN:    make(map[uint32][]int),
		ids:      make(map[string]struct{}),
	}
}

// Add validates and inserts a record. Duplicate (dataset, ID) pairs are
// rejected.
func (s *Store) Add(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	key := r.Dataset + "/" + r.ID
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.ids[key]; dup {
		return fmt.Errorf("dataset: duplicate record %s", key)
	}
	s.ids[key] = struct{}{}
	idx := len(s.records)
	s.records = append(s.records, r)
	s.byRegion[r.Region] = append(s.byRegion[r.Region], idx)
	if r.ASN != 0 {
		s.byASN[r.ASN] = append(s.byASN[r.ASN], idx)
	}
	return nil
}

// AddAll inserts a batch, stopping at the first error.
func (s *Store) AddAll(rs []Record) error {
	for i, r := range rs {
		if err := s.Add(r); err != nil {
			return fmt.Errorf("dataset: record %d of %d: %w", i+1, len(rs), err)
		}
	}
	return nil
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Datasets returns the distinct dataset names present, sorted.
func (s *Store) Datasets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := map[string]bool{}
	for _, r := range s.records {
		set[r.Dataset] = true
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Regions returns the distinct region codes present, sorted.
func (s *Store) Regions() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byRegion))
	for r := range s.byRegion {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Filter selects records. Zero values mean "any". RegionPrefix matches a
// region code or any of its descendants (hierarchical codes share
// prefixes, "XA-01" matches "XA-01" and "XA-01-002" but not "XA-010").
type Filter struct {
	Dataset      string
	RegionPrefix string
	ASN          uint32
	From, To     time.Time // [From, To); zero means unbounded
	HasMetric    []Metric  // all listed metrics must be present
}

func (f Filter) matches(r Record) bool {
	if f.Dataset != "" && r.Dataset != f.Dataset {
		return false
	}
	if f.RegionPrefix != "" && !regionMatch(f.RegionPrefix, r.Region) {
		return false
	}
	if f.ASN != 0 && r.ASN != f.ASN {
		return false
	}
	if !f.From.IsZero() && r.Time.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && !r.Time.Before(f.To) {
		return false
	}
	for _, m := range f.HasMetric {
		if !r.Has(m) {
			return false
		}
	}
	return true
}

// regionMatch reports whether code is prefix itself or a hierarchical
// descendant of it.
func regionMatch(prefix, code string) bool {
	if code == prefix {
		return true
	}
	return strings.HasPrefix(code, prefix) && len(code) > len(prefix) && code[len(prefix)] == '-'
}

// Select returns a copy of all records matching f, in insertion order.
func (s *Store) Select(f Filter) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, idx := range s.candidates(f) {
		if r := s.records[idx]; f.matches(r) {
			out = append(out, r)
		}
	}
	return out
}

// Count returns the number of records matching f without copying them.
func (s *Store) Count(f Filter) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, idx := range s.candidates(f) {
		if f.matches(s.records[idx]) {
			n++
		}
	}
	return n
}

// candidates narrows the scan using indexes where the filter allows.
// Must be called with the read lock held.
func (s *Store) candidates(f Filter) []int {
	if f.ASN != 0 {
		return s.byASN[f.ASN]
	}
	if f.RegionPrefix != "" {
		if exact, ok := s.byRegion[f.RegionPrefix]; ok && !s.hasDescendants(f.RegionPrefix) {
			return exact
		}
		// Prefix scan across region buckets.
		var out []int
		for region, idxs := range s.byRegion {
			if regionMatch(f.RegionPrefix, region) {
				out = append(out, idxs...)
			}
		}
		sort.Ints(out)
		return out
	}
	all := make([]int, len(s.records))
	for i := range all {
		all[i] = i
	}
	return all
}

func (s *Store) hasDescendants(prefix string) bool {
	for region := range s.byRegion {
		if region != prefix && regionMatch(prefix, region) {
			return true
		}
	}
	return false
}

// Values extracts the metric values of all records matching f.
func (s *Store) Values(f Filter, m Metric) []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []float64
	for _, idx := range s.candidates(f) {
		r := s.records[idx]
		if !f.matches(r) {
			continue
		}
		if v, ok := r.Value(m); ok {
			out = append(out, v)
		}
	}
	return out
}

// Aggregate computes the q-th percentile of metric m over records
// matching f. It returns stats.ErrNoData when nothing matches.
func (s *Store) Aggregate(f Filter, m Metric, q float64) (float64, error) {
	vals := s.Values(f, m)
	return stats.Percentile(vals, q)
}

// Summary computes descriptive statistics of metric m over records
// matching f.
func (s *Store) Summary(f Filter, m Metric) (stats.Summary, error) {
	return stats.Summarize(s.Values(f, m))
}

// GroupKey selects how GroupAggregate buckets records.
type GroupKey int

// Grouping dimensions.
const (
	ByRegion GroupKey = iota
	ByDataset
	ByASN
)

// Group is one bucket of a grouped aggregation.
type Group struct {
	Key   string
	Count int
	Value float64
}

// GroupAggregate buckets records matching f by key and computes the q-th
// percentile of m within each bucket. Buckets with no metric values are
// omitted. Results are sorted by key.
func (s *Store) GroupAggregate(f Filter, key GroupKey, m Metric, q float64) ([]Group, error) {
	s.mu.RLock()
	buckets := map[string][]float64{}
	for _, idx := range s.candidates(f) {
		r := s.records[idx]
		if !f.matches(r) {
			continue
		}
		v, ok := r.Value(m)
		if !ok {
			continue
		}
		var k string
		switch key {
		case ByRegion:
			k = r.Region
		case ByDataset:
			k = r.Dataset
		case ByASN:
			k = fmt.Sprintf("AS%d", r.ASN)
		default:
			s.mu.RUnlock()
			return nil, fmt.Errorf("dataset: unknown group key %d", key)
		}
		buckets[k] = append(buckets[k], v)
	}
	s.mu.RUnlock()

	out := make([]Group, 0, len(buckets))
	for k, vals := range buckets {
		p, err := stats.Percentile(vals, q)
		if err != nil {
			return nil, err
		}
		out = append(out, Group{Key: k, Count: len(vals), Value: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// TimeBounds returns the earliest and latest record timestamps matching
// f. ok is false when nothing matches.
func (s *Store) TimeBounds(f Filter) (min, max time.Time, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, idx := range s.candidates(f) {
		r := s.records[idx]
		if !f.matches(r) {
			continue
		}
		if !ok || r.Time.Before(min) {
			min = r.Time
		}
		if !ok || r.Time.After(max) {
			max = r.Time
		}
		ok = true
	}
	return min, max, ok
}
