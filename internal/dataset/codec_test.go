package dataset

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestReadNDJSONLongLine pins the bufio.Reader rewrite: the old
// bufio.Scanner implementation capped lines at 4 MiB and died with
// "token too long" on anything the writer was happy to produce. The WAL
// reader funnels recovery payloads through ReadNDJSON, so a reader cap
// below the writer's limit would turn a large acknowledged batch into
// unrecoverable data.
func TestReadNDJSONLongLine(t *testing.T) {
	r := NewRecord("big", "ndt", "XA-01", time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC))
	r.DownloadMbps = 100
	r.Tech = strings.Repeat("x", 5<<20) // one line well past the old 4 MiB cap

	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, []Record{r}); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	got, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatalf("ReadNDJSON: %v", err)
	}
	if len(got) != 1 || got[0].Tech != r.Tech {
		t.Fatalf("long record did not round-trip: got %d records", len(got))
	}
}

func TestReadNDJSONLineNumbers(t *testing.T) {
	good := `{"id":"a","time":"2025-06-02T00:00:00Z","dataset":"ndt","region":"XA-01","download_mbps":10}`
	in := good + "\n\nnot json\n"
	_, err := ReadNDJSON(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want error naming line 3, got %v", err)
	}
	// A final line without a trailing newline still parses.
	got, err := ReadNDJSON(strings.NewReader(good + "\n" + good2()))
	if err != nil {
		t.Fatalf("ReadNDJSON without trailing newline: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
}

func good2() string {
	return `{"id":"b","time":"2025-06-02T00:00:00Z","dataset":"ndt","region":"XA-01","download_mbps":20}`
}

// TestNDJSONDecoderChunks pins the streaming decoder contract: records
// arrive in caller-sized chunks, byte accounting covers delimiters, and
// the stream ends with a bare io.EOF.
func TestNDJSONDecoderChunks(t *testing.T) {
	var buf bytes.Buffer
	const n = 7
	for i := 0; i < n; i++ {
		r := NewRecord("r"+strconv.Itoa(i), "ndt", "XA-01", time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC))
		r.DownloadMbps = float64(10 + i)
		if err := WriteNDJSON(&buf, []Record{r}); err != nil {
			t.Fatalf("WriteNDJSON: %v", err)
		}
	}
	total := int64(buf.Len())
	dec := NewNDJSONDecoder(&buf)
	var got []Record
	var consumed int64
	for {
		rs, nb, err := dec.Next(3)
		consumed += nb
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if len(rs) > 3 {
			t.Fatalf("chunk of %d records exceeds max 3", len(rs))
		}
		got = append(got, rs...)
	}
	if len(got) != n {
		t.Fatalf("decoded %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if want := "r" + strconv.Itoa(i); r.ID != want {
			t.Fatalf("record %d is %q, want %q (order must be preserved)", i, r.ID, want)
		}
	}
	if consumed != total {
		t.Fatalf("consumed %d bytes, input was %d", consumed, total)
	}
}

// TestNDJSONDecoderGlobalLineNumbers: an error in a later chunk names
// the line's global position in the stream, not its offset within the
// chunk — that number is what an ingest client greps its file for.
func TestNDJSONDecoderGlobalLineNumbers(t *testing.T) {
	good := `{"id":"a","time":"2025-06-02T00:00:00Z","dataset":"ndt","region":"XA-01","download_mbps":10}`
	var in strings.Builder
	for i := 0; i < 5; i++ {
		in.WriteString(strings.Replace(good, `"a"`, `"a`+strconv.Itoa(i)+`"`, 1))
		in.WriteByte('\n')
	}
	in.WriteString("not json\n")
	dec := NewNDJSONDecoder(strings.NewReader(in.String()))
	if _, _, err := dec.Next(2); err != nil {
		t.Fatalf("chunk 1: %v", err)
	}
	if _, _, err := dec.Next(2); err != nil {
		t.Fatalf("chunk 2: %v", err)
	}
	_, _, err := dec.Next(2)
	var le *LineError
	if !errors.As(err, &le) {
		t.Fatalf("chunk 3 error is %T (%v), want *LineError", err, err)
	}
	if le.Line != 6 {
		t.Fatalf("LineError.Line = %d, want global line 6", le.Line)
	}
	if !strings.Contains(le.Error(), "line 6") {
		t.Fatalf("error text %q does not name line 6", le.Error())
	}
}

// TestNDJSONDecoderValidationError: a well-formed JSON line holding an
// invalid record is also located by line.
func TestNDJSONDecoderValidationError(t *testing.T) {
	bad := `{"id":"","time":"2025-06-02T00:00:00Z","dataset":"ndt","region":"XA-01","download_mbps":10}`
	dec := NewNDJSONDecoder(strings.NewReader(good2() + "\n" + bad + "\n"))
	_, _, err := dec.Next(0)
	var le *LineError
	if !errors.As(err, &le) || le.Line != 2 {
		t.Fatalf("want *LineError at line 2, got %v", err)
	}
}

// TestValidateRejectsNonFinite pins the satellite fix: ±Inf used to
// pass Validate (only negative ranges were checked) and then blow up
// WriteNDJSON mid-stream, because JSON cannot encode infinities.
func TestValidateRejectsNonFinite(t *testing.T) {
	base := func() Record {
		r := NewRecord("r1", "ndt", "XA-01", time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC))
		r.DownloadMbps = 50
		return r
	}
	cases := []struct {
		name string
		mut  func(*Record)
	}{
		{"download +Inf", func(r *Record) { r.DownloadMbps = math.Inf(1) }},
		{"upload +Inf", func(r *Record) { r.UploadMbps = math.Inf(1) }},
		{"latency +Inf", func(r *Record) { r.LatencyMS = math.Inf(1) }},
		{"loss -Inf", func(r *Record) { r.LossFrac = math.Inf(-1) }},
	}
	for _, tc := range cases {
		r := base()
		tc.mut(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a non-finite metric", tc.name)
		}
	}
	ok := base()
	if err := ok.Validate(); err != nil {
		t.Fatalf("finite record rejected: %v", err)
	}
	// NaN stays the "missing" sentinel: setting it removes the metric
	// rather than producing an invalid value.
	nan := base()
	nan.UploadMbps = math.NaN()
	if err := nan.Validate(); err != nil {
		t.Fatalf("NaN (missing) metric rejected: %v", err)
	}
}

// randomRecord draws a record exercising the codec's edge cases:
// missing metrics, zero ASN, empty tech, sub-second timestamps, and
// values spanning many orders of magnitude.
func randomRecord(rng *rand.Rand, id int) Record {
	regions := []string{"XA", "XA-01", "XA-01-002", "XB-07", "XB-07-013"}
	datasets := []string{"ndt", "cloudflare", "ookla"}
	ts := time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC).
		Add(time.Duration(rng.Int63n(int64(7 * 24 * time.Hour))))
	if rng.Intn(2) == 0 {
		ts = ts.Add(time.Duration(rng.Int63n(int64(time.Second)))) // sub-second
	}
	// IDs unique per draw; occasionally with non-ASCII characters.
	prefix := "id-"
	if rng.Intn(4) == 0 {
		prefix = "±πid-"
	}
	r := NewRecord(
		prefix+strconv.Itoa(id),
		datasets[rng.Intn(len(datasets))],
		regions[rng.Intn(len(regions))],
		ts,
	)
	if rng.Intn(3) > 0 {
		r.ASN = uint32(rng.Intn(5)) * 64512 // zero ASN included
	}
	if rng.Intn(2) == 0 {
		r.Tech = []string{"fiber", "cable", "dsl", "fixed wireless"}[rng.Intn(4)]
	}
	magnitudes := []float64{1e-9, 1e-3, 1, 42.5, 1e3, 1e9}
	val := func() float64 { return magnitudes[rng.Intn(len(magnitudes))] * rng.Float64() }
	present := 0
	for _, m := range AllMetrics() {
		if rng.Intn(2) == 0 {
			continue // missing metric
		}
		v := val()
		if m == Loss {
			v = rng.Float64()
		}
		r.SetValue(m, v)
		present++
	}
	if present == 0 {
		r.SetValue(Download, val()) // Validate requires at least one metric
	}
	return r
}

func recordsEquivalent(a, b Record) bool {
	if a.ID != b.ID || a.Dataset != b.Dataset || a.Region != b.Region ||
		a.ASN != b.ASN || a.Tech != b.Tech || !a.Time.Equal(b.Time) {
		return false
	}
	for _, m := range AllMetrics() {
		av, aok := a.Value(m)
		bv, bok := b.Value(m)
		if aok != bok || (aok && av != bv) {
			return false
		}
	}
	return true
}

// TestCodecRoundTripProperty drives randomized records through both
// codecs: anything Validate accepts must survive NDJSON and CSV
// encode/decode bit-identically (missing metrics stay missing, values
// and sub-second timestamps are preserved exactly).
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20250728))
	const n = 500
	rs := make([]Record, n)
	for i := range rs {
		rs[i] = randomRecord(rng, i)
		if err := rs[i].Validate(); err != nil {
			t.Fatalf("generator produced an invalid record: %v", err)
		}
	}

	var nd bytes.Buffer
	if err := WriteNDJSON(&nd, rs); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	back, err := ReadNDJSON(&nd)
	if err != nil {
		t.Fatalf("ReadNDJSON: %v", err)
	}
	if len(back) != n {
		t.Fatalf("NDJSON round-trip: %d records, want %d", len(back), n)
	}
	for i := range rs {
		if !recordsEquivalent(rs[i], back[i]) {
			t.Fatalf("NDJSON round-trip changed record %d:\n in: %+v\nout: %+v", i, rs[i], back[i])
		}
	}

	var cs bytes.Buffer
	if err := WriteCSV(&cs, rs); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err = ReadCSV(&cs)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(back) != n {
		t.Fatalf("CSV round-trip: %d records, want %d", len(back), n)
	}
	for i := range rs {
		if !recordsEquivalent(rs[i], back[i]) {
			t.Fatalf("CSV round-trip changed record %d:\n in: %+v\nout: %+v", i, rs[i], back[i])
		}
	}
}
