package dataset

import (
	"sort"
	"sync"

	"iqb/internal/stats"
)

// The store is lock-striped two ways: records live in shards keyed by
// hash(dataset, region) so concurrent writers for different regions
// never contend, and (dataset, ID) uniqueness is enforced by a separate
// set of ID stripes keyed by hash(dataset, ID) — a record's dedup key
// and its shard key disagree on purpose, because duplicates must be
// caught across regions while records should cluster by region for
// query locality.

// fnv64a is the 64-bit FNV-1a hash of the given strings separated by a
// NUL byte, inlined to keep the per-record hashing allocation-free.
func fnv64a(parts ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for pi, p := range parts {
		if pi > 0 {
			// Mix a separator byte so ("ab","c") and ("a","bc") differ.
			h ^= 1
			h *= prime64
		}
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
	}
	return h
}

// seqRecord is a stored record tagged with its global insertion sequence
// number, so merge-on-read iteration can reconstruct insertion order
// across shards.
type seqRecord struct {
	seq uint64
	rec Record
}

// shard is one lock stripe of the store: a records slice with
// shard-local region/ASN indexes and the sketch cells of every
// (dataset, region) pair that hashes here.
type shard struct {
	mu        sync.RWMutex
	records   []seqRecord
	byRegion  map[string][]int
	byASN     map[uint32][]int
	byDataset map[string]int
	cells     map[cellKey]*metricCell
}

func newShard() *shard {
	return &shard{
		byRegion:  make(map[string][]int),
		byASN:     make(map[uint32][]int),
		byDataset: make(map[string]int),
		cells:     make(map[cellKey]*metricCell),
	}
}

// insertLocked appends a validated, dedup-cleared record. The caller
// holds sh.mu.
func (sh *shard) insertLocked(seq uint64, r Record, cutover int, alpha float64) {
	idx := len(sh.records)
	sh.records = append(sh.records, seqRecord{seq: seq, rec: r})
	sh.byRegion[r.Region] = append(sh.byRegion[r.Region], idx)
	if r.ASN != 0 {
		sh.byASN[r.ASN] = append(sh.byASN[r.ASN], idx)
	}
	sh.byDataset[r.Dataset]++
	for _, m := range AllMetrics() {
		v, ok := r.Value(m)
		if !ok {
			continue
		}
		k := cellKey{dataset: r.Dataset, region: r.Region, metric: m}
		c := sh.cells[k]
		if c == nil {
			c = &metricCell{}
			sh.cells[k] = c
		}
		c.add(v, cutover, alpha)
	}
}

// candidatesLocked narrows the shard-local scan using indexes where the
// filter allows. The caller holds at least a read lock.
func (sh *shard) candidatesLocked(f Filter) []int {
	if f.ASN != 0 {
		return sh.byASN[f.ASN]
	}
	if f.RegionPrefix != "" {
		if exact, ok := sh.byRegion[f.RegionPrefix]; ok && !sh.hasDescendantsLocked(f.RegionPrefix) {
			return exact
		}
		var out []int
		for region, idxs := range sh.byRegion {
			if regionMatch(f.RegionPrefix, region) {
				out = append(out, idxs...)
			}
		}
		sort.Ints(out)
		return out
	}
	all := make([]int, len(sh.records))
	for i := range all {
		all[i] = i
	}
	return all
}

func (sh *shard) hasDescendantsLocked(prefix string) bool {
	for region := range sh.byRegion {
		if region != prefix && regionMatch(prefix, region) {
			return true
		}
	}
	return false
}

// cellKey addresses one streaming-aggregation cell. Because the shard
// key is hash(dataset, region), every cell lives in exactly one shard.
type cellKey struct {
	dataset string
	region  string
	metric  Metric
}

// metricCell is the streaming aggregation state of one
// (dataset, region, metric) triple. It is exact until it has seen more
// than the store's cutover, then promotes to a DDSketch: small cells
// (the common case for county-level scoring) answer quantiles
// bit-identically to a full scan, while cells at production scale stay
// O(buckets) instead of O(records). Promotion folds the exact values
// into the sketch, which is order-independent, so the promoted state is
// a pure function of the value multiset.
type metricCell struct {
	count  int
	exact  []float64
	sketch *stats.DDSketch
}

func (c *metricCell) add(v float64, cutover int, alpha float64) {
	c.count++
	if c.sketch != nil {
		c.sketch.Add(v)
		return
	}
	c.exact = append(c.exact, v)
	if len(c.exact) > cutover {
		c.promote(alpha)
	}
}

// promote folds the exact values into a fresh sketch and drops them.
func (c *metricCell) promote(alpha float64) {
	c.sketch = stats.NewDDSketch(alpha)
	for _, x := range c.exact {
		c.sketch.Add(x)
	}
	c.exact = nil
}

// merge folds other into c; other is unchanged. The result is the cell a
// single writer would have built from the union of both value multisets:
// still exact if the combined count fits under the cutover, otherwise a
// sketch over every value — in either case a pure function of the
// multiset, so merging per-worker cells in any order reproduces
// single-writer state exactly.
func (c *metricCell) merge(other *metricCell, cutover int, alpha float64) error {
	if other == nil || other.count == 0 {
		return nil
	}
	c.count += other.count
	if c.sketch == nil && other.sketch == nil {
		c.exact = append(c.exact, other.exact...)
		if len(c.exact) > cutover {
			c.promote(alpha)
		}
		return nil
	}
	if c.sketch == nil {
		c.promote(alpha)
	}
	if other.sketch != nil {
		return c.sketch.Merge(other.sketch)
	}
	for _, x := range other.exact {
		c.sketch.Add(x)
	}
	return nil
}

// cellAccum accumulates matching metric cells for one quantile answer:
// exact values while every contributing cell is below the cutover, a
// merged DDSketch as soon as any has promoted. It is the shared read
// side of the cell design, used by Store.AggregateCount,
// Store.groupAggregateCells, and Sketcher.Quantile.
type cellAccum struct {
	count  int
	exact  []float64
	merged *stats.DDSketch
}

// add folds one cell in; the caller holds the cell's stripe lock.
func (a *cellAccum) add(c *metricCell, alpha float64) error {
	a.count += c.count
	if c.sketch != nil {
		if a.merged == nil {
			a.merged = stats.NewDDSketch(alpha)
		}
		return a.merged.Merge(c.sketch)
	}
	a.exact = append(a.exact, c.exact...)
	return nil
}

// quantile answers after accumulation; the caller must have checked
// count > 0. The quantile arrives in both conventions — q01 in [0,1]
// and pct in [0,100] — so each path uses the caller's native form and
// no float division can drift the exact answer away from a full scan's.
func (a *cellAccum) quantile(q01, pct float64) (float64, error) {
	if a.merged == nil {
		// Every contributing cell is still exact: answer bit-identically
		// to a full scan.
		return stats.Percentile(a.exact, pct)
	}
	for _, x := range a.exact {
		a.merged.Add(x)
	}
	return a.merged.Quantile(q01)
}

// idStripe is one stripe of the global (dataset, ID) uniqueness set.
type idStripe struct {
	mu  sync.Mutex
	ids map[string]struct{}
}
