package dataset

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"iqb/internal/stats"
)

var t0 = time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC)

func rec(id, ds, region string, asn uint32, down, up, lat, loss float64) Record {
	r := NewRecord(id, ds, region, t0)
	r.ASN = asn
	if !math.IsNaN(down) {
		r.SetValue(Download, down)
	}
	if !math.IsNaN(up) {
		r.SetValue(Upload, up)
	}
	if !math.IsNaN(lat) {
		r.SetValue(Latency, lat)
	}
	if !math.IsNaN(loss) {
		r.SetValue(Loss, loss)
	}
	return r
}

var nan = math.NaN()

func TestMetricStrings(t *testing.T) {
	for _, m := range AllMetrics() {
		back, err := ParseMetric(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v failed: %v %v", m, back, err)
		}
	}
	if _, err := ParseMetric("vibes"); err == nil {
		t.Error("unknown metric should error")
	}
	if Metric(42).String() == "" {
		t.Error("unknown metric should still format")
	}
}

func TestRecordValueSetValue(t *testing.T) {
	r := NewRecord("a", "ndt", "XA", t0)
	for _, m := range AllMetrics() {
		if r.Has(m) {
			t.Errorf("fresh record should not have %v", m)
		}
	}
	r.SetValue(Download, 100)
	r.SetValue(Loss, 0.01)
	if v, ok := r.Value(Download); !ok || v != 100 {
		t.Errorf("download = %v, %v", v, ok)
	}
	if !r.Has(Loss) || r.Has(Upload) {
		t.Error("presence flags wrong")
	}
	if _, ok := r.Value(Metric(99)); ok {
		t.Error("unknown metric should be absent")
	}
}

func TestRecordValidate(t *testing.T) {
	good := rec("a", "ndt", "XA-01", 64500, 100, 10, 20, 0.01)
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	cases := []struct {
		name string
		mut  func(*Record)
	}{
		{"no id", func(r *Record) { r.ID = "" }},
		{"no dataset", func(r *Record) { r.Dataset = "" }},
		{"no region", func(r *Record) { r.Region = "" }},
		{"no time", func(r *Record) { r.Time = time.Time{} }},
		{"neg down", func(r *Record) { r.DownloadMbps = -1 }},
		{"neg up", func(r *Record) { r.UploadMbps = -2 }},
		{"neg latency", func(r *Record) { r.LatencyMS = -3 }},
		{"loss > 1", func(r *Record) { r.LossFrac = 1.5 }},
	}
	for _, tc := range cases {
		r := good
		tc.mut(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: should be invalid", tc.name)
		}
	}
	empty := NewRecord("a", "ndt", "XA", t0)
	if err := empty.Validate(); err == nil {
		t.Error("record with no metrics should be invalid")
	}
}

func fill(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	records := []Record{
		rec("n1", "ndt", "XA-01-001", 64500, 100, 10, 20, 0.001),
		rec("n2", "ndt", "XA-01-001", 64501, 50, 5, 40, 0.01),
		rec("n3", "ndt", "XA-01-002", 64500, 10, 1, 80, 0.02),
		rec("c1", "cloudflare", "XA-01-001", 64500, 90, 9, 25, 0.002),
		rec("o1", "ookla", "XA-02-001", 64501, 200, 20, 15, nan), // no loss
	}
	if err := s.AddAll(records); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreAdd(t *testing.T) {
	s := fill(t)
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
	// Duplicate (dataset, id).
	if err := s.Add(rec("n1", "ndt", "XA-01-001", 0, 1, nan, nan, nan)); err == nil {
		t.Error("duplicate should error")
	}
	// Same id, different dataset is fine.
	if err := s.Add(rec("n1", "cloudflare", "XA-01-001", 0, 1, nan, nan, nan)); err != nil {
		t.Error(err)
	}
	// Invalid record rejected.
	if err := s.Add(Record{}); err == nil {
		t.Error("invalid record should error")
	}
	// AddAll surfaces position.
	err := s.AddAll([]Record{rec("x1", "ndt", "XA", 0, 1, nan, nan, nan), {}})
	if err == nil || !strings.Contains(err.Error(), "record 2 of 2") {
		t.Errorf("AddAll error = %v", err)
	}
}

func TestStoreEnumerations(t *testing.T) {
	s := fill(t)
	ds := s.Datasets()
	if len(ds) != 3 || ds[0] != "cloudflare" || ds[2] != "ookla" {
		t.Errorf("Datasets = %v", ds)
	}
	regions := s.Regions()
	if len(regions) != 3 {
		t.Errorf("Regions = %v", regions)
	}
}

func TestFilterBasics(t *testing.T) {
	s := fill(t)
	if n := s.Count(Filter{}); n != 5 {
		t.Errorf("unfiltered count = %d", n)
	}
	if n := s.Count(Filter{Dataset: "ndt"}); n != 3 {
		t.Errorf("ndt count = %d", n)
	}
	if n := s.Count(Filter{ASN: 64501}); n != 2 {
		t.Errorf("ASN count = %d", n)
	}
	if n := s.Count(Filter{HasMetric: []Metric{Loss}}); n != 4 {
		t.Errorf("has-loss count = %d", n)
	}
	got := s.Select(Filter{Dataset: "ookla"})
	if len(got) != 1 || got[0].ID != "o1" {
		t.Errorf("Select = %+v", got)
	}
}

func TestFilterRegionHierarchy(t *testing.T) {
	s := fill(t)
	// County exact.
	if n := s.Count(Filter{RegionPrefix: "XA-01-001"}); n != 3 {
		t.Errorf("county count = %d", n)
	}
	// State subtree.
	if n := s.Count(Filter{RegionPrefix: "XA-01"}); n != 4 {
		t.Errorf("state count = %d", n)
	}
	// Country subtree.
	if n := s.Count(Filter{RegionPrefix: "XA"}); n != 5 {
		t.Errorf("country count = %d", n)
	}
	// Prefix must respect code boundaries: "XA-01-00" is not a region
	// prefix of "XA-01-001" in the hierarchical sense.
	if n := s.Count(Filter{RegionPrefix: "XA-01-00"}); n != 0 {
		t.Errorf("non-boundary prefix matched %d records", n)
	}
}

func TestFilterTimeRange(t *testing.T) {
	s := NewStore()
	early := rec("a", "ndt", "XA", 0, 1, nan, nan, nan)
	early.Time = t0.Add(-time.Hour)
	late := rec("b", "ndt", "XA", 0, 2, nan, nan, nan)
	late.Time = t0.Add(time.Hour)
	if err := s.AddAll([]Record{early, late}); err != nil {
		t.Fatal(err)
	}
	if n := s.Count(Filter{From: t0}); n != 1 {
		t.Errorf("From filter count = %d", n)
	}
	if n := s.Count(Filter{To: t0}); n != 1 {
		t.Errorf("To filter count = %d", n)
	}
	if n := s.Count(Filter{From: t0.Add(-2 * time.Hour), To: t0.Add(2 * time.Hour)}); n != 2 {
		t.Errorf("range count = %d", n)
	}
}

func TestValuesAndAggregate(t *testing.T) {
	s := fill(t)
	vals := s.Values(Filter{Dataset: "ndt"}, Download)
	if len(vals) != 3 {
		t.Fatalf("values = %v", vals)
	}
	med, err := s.Aggregate(Filter{Dataset: "ndt"}, Download, 50)
	if err != nil || med != 50 {
		t.Errorf("median = %v, %v", med, err)
	}
	// Ookla has no loss records: aggregating loss over ookla is ErrNoData.
	if _, err := s.Aggregate(Filter{Dataset: "ookla"}, Loss, 95); !errors.Is(err, stats.ErrNoData) {
		t.Errorf("want ErrNoData, got %v", err)
	}
	sum, err := s.Summary(Filter{}, Download)
	if err != nil || sum.Count != 5 {
		t.Errorf("summary = %+v, %v", sum, err)
	}
}

func TestGroupAggregate(t *testing.T) {
	s := fill(t)
	groups, err := s.GroupAggregate(Filter{}, ByDataset, Download, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 || groups[0].Key != "cloudflare" {
		t.Fatalf("groups = %+v", groups)
	}
	for _, g := range groups {
		if g.Count == 0 {
			t.Errorf("group %s has zero count", g.Key)
		}
	}
	byRegion, err := s.GroupAggregate(Filter{Dataset: "ndt"}, ByRegion, Download, 95)
	if err != nil || len(byRegion) != 2 {
		t.Errorf("by region = %+v, %v", byRegion, err)
	}
	byASN, err := s.GroupAggregate(Filter{}, ByASN, Download, 50)
	if err != nil || len(byASN) != 2 || !strings.HasPrefix(byASN[0].Key, "AS") {
		t.Errorf("by ASN = %+v, %v", byASN, err)
	}
	// Loss grouping drops the ookla bucket (no loss values).
	lossGroups, err := s.GroupAggregate(Filter{}, ByDataset, Loss, 95)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range lossGroups {
		if g.Key == "ookla" {
			t.Error("ookla bucket should be absent for loss")
		}
	}
	if _, err := s.GroupAggregate(Filter{}, GroupKey(9), Download, 50); err == nil {
		t.Error("unknown group key should error")
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	records := []Record{
		rec("n1", "ndt", "XA-01-001", 64500, 100, 10, 20, 0.001),
		rec("o1", "ookla", "XA-02-001", 0, 200, 20, 15, nan),
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, records); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "loss_frac") && strings.Contains(strings.Split(buf.String(), "\n")[1], "loss_frac") {
		t.Error("missing loss should be omitted from wire form")
	}
	back, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip count = %d", len(back))
	}
	if back[0].DownloadMbps != 100 || back[0].ASN != 64500 {
		t.Errorf("record 0 = %+v", back[0])
	}
	if back[1].Has(Loss) {
		t.Error("ookla record should still lack loss")
	}
	if !back[1].Has(Download) {
		t.Error("ookla record should keep download")
	}
}

func TestReadNDJSONErrors(t *testing.T) {
	if _, err := ReadNDJSON(strings.NewReader("{oops\n")); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("malformed JSON error = %v", err)
	}
	// Valid JSON, invalid record.
	bad := `{"id":"","time":"2025-06-01T00:00:00Z","dataset":"ndt","region":"XA","download_mbps":1}`
	if _, err := ReadNDJSON(strings.NewReader(bad)); err == nil {
		t.Error("invalid record should error")
	}
	// Blank lines are skipped.
	ok := `{"id":"a","time":"2025-06-01T00:00:00Z","dataset":"ndt","region":"XA","download_mbps":1}`
	got, err := ReadNDJSON(strings.NewReader("\n" + ok + "\n\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("blank-line handling: %v, %v", got, err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	records := []Record{
		rec("n1", "ndt", "XA-01-001", 64500, 100.5, 10.25, 20, 0.001),
		rec("o1", "ookla", "XA-02-001", 0, 200, 20, 15, nan),
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip count = %d", len(back))
	}
	if back[0].DownloadMbps != 100.5 || back[0].UploadMbps != 10.25 {
		t.Errorf("record 0 = %+v", back[0])
	}
	if back[1].Has(Loss) {
		t.Error("empty cell should stay missing")
	}
	if !back[0].Time.Equal(t0) {
		t.Errorf("time = %v, want %v", back[0].Time, t0)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("short header should error")
	}
	wrong := strings.Join([]string{"id", "time", "dataset", "region", "asn", "tech", "down", "upload_mbps", "latency_ms", "loss_frac"}, ",")
	if _, err := ReadCSV(strings.NewReader(wrong + "\n")); err == nil {
		t.Error("misnamed column should error")
	}
	head := strings.Join(csvHeader, ",") + "\n"
	if _, err := ReadCSV(strings.NewReader(head + "a,notatime,ndt,XA,0,,1,,,\n")); err == nil {
		t.Error("bad time should error")
	}
	if _, err := ReadCSV(strings.NewReader(head + "a,2025-06-01T00:00:00Z,ndt,XA,notanasn,,1,,,\n")); err == nil {
		t.Error("bad asn should error")
	}
	if _, err := ReadCSV(strings.NewReader(head + "a,2025-06-01T00:00:00Z,ndt,XA,0,,notanumber,,,\n")); err == nil {
		t.Error("bad metric should error")
	}
	if _, err := ReadCSV(strings.NewReader(head + "a,2025-06-01T00:00:00Z,ndt,XA,0,,,,,\n")); err == nil {
		t.Error("metric-free row should error")
	}
}

func TestStoreConcurrency(t *testing.T) {
	s := NewStore()
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				r := rec(strings.Repeat("x", g+1)+"-"+uniq(i), "ndt", "XA-01-001", 64500, float64(i), nan, nan, nan)
				if err := s.Add(r); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				s.Count(Filter{Dataset: "ndt"})
				s.Values(Filter{}, Download)
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 800 {
		t.Errorf("Len = %d, want 800", s.Len())
	}
}

func uniq(i int) string {
	return string(rune('a'+i/26)) + string(rune('a'+i%26)) + string(rune('0'+i%10)) + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func BenchmarkStoreAggregate(b *testing.B) {
	s := NewStore()
	for i := 0; i < 10000; i++ {
		r := rec("r"+itoa(i), "ndt", "XA-01-001", 64500, float64(i%500), nan, nan, nan)
		if err := s.Add(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Aggregate(Filter{Dataset: "ndt"}, Download, 95); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTimeBounds(t *testing.T) {
	s := NewStore()
	if _, _, ok := s.TimeBounds(Filter{}); ok {
		t.Error("empty store should have no bounds")
	}
	early := rec("a", "ndt", "XA", 0, 1, nan, nan, nan)
	early.Time = t0.Add(-time.Hour)
	late := rec("b", "ndt", "XA", 0, 2, nan, nan, nan)
	late.Time = t0.Add(time.Hour)
	if err := s.AddAll([]Record{early, late}); err != nil {
		t.Fatal(err)
	}
	min, max, ok := s.TimeBounds(Filter{})
	if !ok || !min.Equal(early.Time) || !max.Equal(late.Time) {
		t.Errorf("bounds = %v %v %v", min, max, ok)
	}
	// Filtered bounds.
	min, max, ok = s.TimeBounds(Filter{From: t0})
	if !ok || !min.Equal(late.Time) || !max.Equal(late.Time) {
		t.Errorf("filtered bounds = %v %v %v", min, max, ok)
	}
}
