// Package dataset defines the unified measurement record the IQB
// framework aggregates, a sharded in-memory store with region/ISP/time
// indexes, streaming group-by percentile aggregation, and NDJSON/CSV
// codecs for moving records in and out of the system.
//
// Records from different measurement systems carry different subsets of
// metrics (Ookla aggregates, for example, publish no packet loss), so
// every metric is optional; missing values are NaN internally and omitted
// on the wire.
//
// # Store architecture
//
// The Store stripes records over lock-sharded partitions keyed by
// hash(dataset, region); queries fan out and merge on read, sorting by a
// global insertion sequence where insertion order is part of the
// contract (Select, Values). A separate stripe set enforces
// (dataset, ID) uniqueness across shards, and AddBatch validates and
// dedup-checks an entire batch before mutating anything, so a mid-batch
// failure never leaves the store partially updated.
//
// Quantile aggregation is streaming: every insert folds metric values
// into a per-(dataset, region, metric) cell that is exact up to a
// cutover and then promotes to a DDSketch, so Aggregate answers
// region-scoped percentile queries without materializing values. Filters
// the cells cannot express (ASN, time windows, cross-metric presence)
// fall back to an exact indexed scan.
//
// # Determinism contract
//
// Every aggregate the store serves is a pure function of the record
// multiset, independent of insertion interleaving: exact paths sort
// before computing percentiles and the sketch path uses DDSketch, whose
// bucket-count state is order-independent. A store built by N concurrent
// writers answers bit-identically to one built serially from the same
// records — the property the pipeline's fixed-seed reproducibility
// guarantee is built on.
package dataset

import (
	"fmt"
	"math"
	"time"
)

// Metric identifies one of the four network metrics IQB consumes.
type Metric int

// The metrics, matching the paper's network-requirements tier.
const (
	Download Metric = iota
	Upload
	Latency
	Loss
	numMetrics
)

// AllMetrics returns every metric in declaration order.
func AllMetrics() []Metric {
	out := make([]Metric, numMetrics)
	for i := range out {
		out[i] = Metric(i)
	}
	return out
}

// String names the metric.
func (m Metric) String() string {
	switch m {
	case Download:
		return "download"
	case Upload:
		return "upload"
	case Latency:
		return "latency"
	case Loss:
		return "loss"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// ParseMetric resolves a metric by its String name.
func ParseMetric(s string) (Metric, error) {
	for _, m := range AllMetrics() {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("dataset: unknown metric %q", s)
}

// Record is one measurement: a single test by one subscriber (for NDT and
// Cloudflare style datasets) or one published aggregate row (Ookla
// style). Metric fields are NaN when the source does not report them.
type Record struct {
	// ID uniquely identifies the record within its dataset.
	ID string
	// Time is when the measurement completed.
	Time time.Time
	// Dataset names the source pipeline ("ndt", "cloudflare", "ookla").
	Dataset string
	// Region is the hierarchical region code the subscriber is in.
	Region string
	// ASN identifies the subscriber's ISP; zero if unknown.
	ASN uint32
	// Tech optionally records the access technology, when known.
	Tech string

	// DownloadMbps and UploadMbps are goodput in Mbit/s.
	DownloadMbps float64
	// UploadMbps is upstream goodput in Mbit/s.
	UploadMbps float64
	// LatencyMS is the idle round-trip time in milliseconds.
	LatencyMS float64
	// LossFrac is the packet loss fraction in [0, 1].
	LossFrac float64
}

// NewRecord returns a record with all metrics missing.
func NewRecord(id, ds, region string, t time.Time) Record {
	nan := math.NaN()
	return Record{
		ID: id, Dataset: ds, Region: region, Time: t,
		DownloadMbps: nan, UploadMbps: nan, LatencyMS: nan, LossFrac: nan,
	}
}

// Value returns the metric value and whether it is present.
func (r Record) Value(m Metric) (float64, bool) {
	var v float64
	switch m {
	case Download:
		v = r.DownloadMbps
	case Upload:
		v = r.UploadMbps
	case Latency:
		v = r.LatencyMS
	case Loss:
		v = r.LossFrac
	default:
		return 0, false
	}
	if math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// SetValue sets the metric value.
func (r *Record) SetValue(m Metric, v float64) {
	switch m {
	case Download:
		r.DownloadMbps = v
	case Upload:
		r.UploadMbps = v
	case Latency:
		r.LatencyMS = v
	case Loss:
		r.LossFrac = v
	}
}

// Has reports whether the metric is present.
func (r Record) Has(m Metric) bool {
	_, ok := r.Value(m)
	return ok
}

// Validate checks the record is structurally sound: identified, located,
// and with finite, in-range metric values where present. Infinities are
// rejected here because JSON cannot carry them: a record that validated
// but held +Inf would make WriteNDJSON fail mid-stream. (NaN is the
// internal "missing" sentinel, so it is never observable as a value.)
func (r Record) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("dataset: record missing ID")
	}
	if r.Dataset == "" {
		return fmt.Errorf("dataset: record %s missing dataset", r.ID)
	}
	if r.Region == "" {
		return fmt.Errorf("dataset: record %s missing region", r.ID)
	}
	if r.Time.IsZero() {
		return fmt.Errorf("dataset: record %s missing time", r.ID)
	}
	for _, m := range AllMetrics() {
		if v, ok := r.Value(m); ok && math.IsInf(v, 0) {
			return fmt.Errorf("dataset: record %s non-finite %s %v", r.ID, m, v)
		}
	}
	if v, ok := r.Value(Download); ok && v < 0 {
		return fmt.Errorf("dataset: record %s negative download %v", r.ID, v)
	}
	if v, ok := r.Value(Upload); ok && v < 0 {
		return fmt.Errorf("dataset: record %s negative upload %v", r.ID, v)
	}
	if v, ok := r.Value(Latency); ok && v < 0 {
		return fmt.Errorf("dataset: record %s negative latency %v", r.ID, v)
	}
	if v, ok := r.Value(Loss); ok && (v < 0 || v > 1) {
		return fmt.Errorf("dataset: record %s loss %v out of [0,1]", r.ID, v)
	}
	hasAny := false
	for _, m := range AllMetrics() {
		if r.Has(m) {
			hasAny = true
			break
		}
	}
	if !hasAny {
		return fmt.Errorf("dataset: record %s carries no metrics", r.ID)
	}
	return nil
}
