package dataset

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"iqb/internal/rng"
	"iqb/internal/stats"
)

func TestSketcherQuantileMatchesExact(t *testing.T) {
	sk := NewSketcher(0)
	store := NewStore()
	src := rng.New(5)
	ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20000; i++ {
		r := NewRecord(uniq(i), "ndt", "XA-01-001", ts)
		r.SetValue(Download, src.LogNormalFromMoments(100, 0.9))
		r.SetValue(Latency, src.LogNormalFromMoments(40, 0.6))
		if err := sk.Ingest(r); err != nil {
			t.Fatal(err)
		}
		if err := store.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []Metric{Download, Latency} {
		for _, q := range []float64{0.05, 0.5, 0.95} {
			approx, n, err := sk.Quantile("ndt", "XA-01-001", m, q)
			if err != nil {
				t.Fatal(err)
			}
			if n != 20000 {
				t.Errorf("sample count = %d", n)
			}
			exact, err := store.Aggregate(Filter{Dataset: "ndt"}, m, q*100)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(approx-exact) / exact; rel > 0.05 {
				t.Errorf("%v q=%v: sketch %v vs exact %v (rel %v)", m, q, approx, exact, rel)
			}
		}
	}
}

func TestSketcherRegionHierarchyMerge(t *testing.T) {
	sk := NewSketcher(0)
	ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	add := func(id, region string, v float64) {
		t.Helper()
		r := NewRecord(id, "ndt", region, ts)
		r.SetValue(Download, v)
		if err := sk.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	add("a", "XA-01-001", 10)
	add("b", "XA-01-002", 20)
	add("c", "XA-02-001", 30)

	// County-level: single digest.
	v, n, err := sk.Quantile("ndt", "XA-01-001", Download, 0.5)
	if err != nil || n != 1 || v != 10 {
		t.Errorf("county quantile = %v, %d, %v", v, n, err)
	}
	// State-level: merges two counties.
	_, n, err = sk.Quantile("ndt", "XA-01", Download, 0.5)
	if err != nil || n != 2 {
		t.Errorf("state merge n = %d, %v", n, err)
	}
	// Country-level: all three.
	_, n, err = sk.Quantile("ndt", "XA", Download, 0.5)
	if err != nil || n != 3 {
		t.Errorf("country merge n = %d, %v", n, err)
	}
	// Empty prefix matches everything.
	_, n, err = sk.Quantile("ndt", "", Download, 0.5)
	if err != nil || n != 3 {
		t.Errorf("unscoped n = %d, %v", n, err)
	}
}

func TestSketcherErrors(t *testing.T) {
	sk := NewSketcher(0)
	if err := sk.Ingest(Record{}); err == nil {
		t.Error("invalid record should error")
	}
	if _, _, err := sk.Quantile("ndt", "XA", Download, 0.5); !errors.Is(err, stats.ErrNoData) {
		t.Errorf("empty sketch should be ErrNoData, got %v", err)
	}
	err := sk.IngestAll([]Record{{}})
	if err == nil {
		t.Error("IngestAll with invalid record should error")
	}
}

func TestSketcherCells(t *testing.T) {
	sk := NewSketcher(0)
	ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	r := NewRecord("a", "ndt", "XA", ts)
	r.SetValue(Download, 1)
	r.SetValue(Latency, 2)
	if err := sk.IngestAll([]Record{r}); err != nil {
		t.Fatal(err)
	}
	if sk.Cells() != 2 {
		t.Errorf("cells = %d, want 2 (one per present metric)", sk.Cells())
	}
}

// sketchRecords synthesizes n records spread over datasets and regions,
// some of whose cells will cross a small cutover and promote.
func sketchRecords(n int) []Record {
	src := rng.New(11)
	ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]Record, n)
	for i := range recs {
		ds := []string{"ndt", "cloudflare"}[i%2]
		// Decorrelated from the dataset parity so both datasets cover
		// both states.
		region := "XA-0" + string(rune('1'+(i/2)%2)) + "-00" + string(rune('1'+i%3))
		r := NewRecord(uniq(i), ds, region, ts)
		r.SetValue(Download, src.LogNormalFromMoments(100, 0.8))
		r.SetValue(Latency, src.LogNormalFromMoments(40, 0.5))
		recs[i] = r
	}
	return recs
}

// TestSketcherMergeMatchesSingleIngestion pins the merge contract: a
// sketcher assembled by merging per-worker sketchers — overlapping cells
// (all workers see all regions) or disjoint cells (workers own distinct
// regions) — must answer every quantile bit-identically to one sketcher
// that ingested everything, including cells promoted past the cutover.
func TestSketcherMergeMatchesSingleIngestion(t *testing.T) {
	const cutover = 64
	opts := Options{SketchCutover: cutover, SketchAlpha: 0.01}
	recs := sketchRecords(2000)

	single := NewSketcherWith(opts)
	if err := single.IngestAll(recs); err != nil {
		t.Fatal(err)
	}

	splits := map[string]func(i int, r Record) int{
		// Round-robin: every part sees every (dataset, region) cell.
		"overlapping": func(i int, r Record) int { return i % 3 },
		// By region: parts own disjoint cell sets.
		"disjoint": func(i int, r Record) int { return int(r.Region[4] - '1') },
	}
	for name, pick := range splits {
		parts := []*Sketcher{NewSketcherWith(opts), NewSketcherWith(opts), NewSketcherWith(opts)}
		for i, r := range recs {
			if err := parts[pick(i, r)].Ingest(r); err != nil {
				t.Fatal(err)
			}
		}
		merged := NewSketcherWith(opts)
		for _, p := range parts {
			if err := merged.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Cells() != single.Cells() {
			t.Errorf("%s: merged cells = %d, single = %d", name, merged.Cells(), single.Cells())
		}
		for _, ds := range []string{"ndt", "cloudflare"} {
			for _, prefix := range []string{"", "XA-01", "XA-02-001"} {
				for _, q := range []float64{0.05, 0.5, 0.95} {
					mv, mn, merr := merged.Quantile(ds, prefix, Download, q)
					sv, sn, serr := single.Quantile(ds, prefix, Download, q)
					if (merr == nil) != (serr == nil) || mv != sv || mn != sn {
						t.Errorf("%s: %s %q q=%v: merged (%v, %d, %v) vs single (%v, %d, %v)",
							name, ds, prefix, q, mv, mn, merr, sv, sn, serr)
					}
				}
			}
		}
	}
}

func TestSketcherMergeGeometryMismatch(t *testing.T) {
	a := NewSketcherWith(Options{SketchAlpha: 0.01})
	b := NewSketcherWith(Options{SketchAlpha: 0.02})
	if err := a.Merge(b); err == nil {
		t.Error("different alpha should refuse to merge")
	}
	c := NewSketcherWith(Options{SketchAlpha: 0.01, SketchCutover: 16})
	if err := a.Merge(c); err == nil {
		t.Error("different cutover should refuse to merge")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge should be a no-op, got %v", err)
	}
	if err := a.Merge(a); err != nil {
		t.Errorf("self merge should be a no-op, got %v", err)
	}
}

// TestSketcherQuantileStable pins half the determinism contract: the
// same sketcher must answer the same quantile query identically on
// repeated calls, for exact and promoted cells alike.
func TestSketcherQuantileStable(t *testing.T) {
	sk := NewSketcherWith(Options{SketchCutover: 64})
	if err := sk.IngestAll(sketchRecords(2000)); err != nil {
		t.Fatal(err)
	}
	for _, prefix := range []string{"", "XA-01", "XA-02-001"} {
		for _, q := range []float64{0.05, 0.5, 0.95} {
			first, n0, err := sk.Quantile("ndt", prefix, Download, q)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				v, n, err := sk.Quantile("ndt", prefix, Download, q)
				if err != nil || v != first || n != n0 {
					t.Fatalf("prefix %q q=%v call %d: (%v, %d, %v) != first (%v, %d)",
						prefix, q, i, v, n, err, first, n0)
				}
			}
		}
	}
}

// TestSketcherIngestOrderIndependent pins the other half: sketchers fed
// the same records in opposite orders answer bit-identically.
func TestSketcherIngestOrderIndependent(t *testing.T) {
	recs := sketchRecords(2000)
	opts := Options{SketchCutover: 64}
	fwd, bwd := NewSketcherWith(opts), NewSketcherWith(opts)
	for i := range recs {
		if err := fwd.Ingest(recs[i]); err != nil {
			t.Fatal(err)
		}
		if err := bwd.Ingest(recs[len(recs)-1-i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		fv, fn, ferr := fwd.Quantile("ndt", "XA", Download, q)
		bv, bn, berr := bwd.Quantile("ndt", "XA", Download, q)
		if ferr != nil || berr != nil || fv != bv || fn != bn {
			t.Errorf("q=%v: forward (%v, %d, %v) vs backward (%v, %d, %v)", q, fv, fn, ferr, bv, bn, berr)
		}
	}
}

// TestSketcherConcurrentIngestQuantile is the race-detector workout for
// the striped cells: parallel Ingest against Quantile/Cells readers and
// a concurrent Merge from a worker sketcher.
func TestSketcherConcurrentIngestQuantile(t *testing.T) {
	sk := NewSketcherWith(Options{SketchCutover: 32})
	recs := sketchRecords(4000)
	const writers = 4
	var wg sync.WaitGroup
	errCh := make(chan error, writers+1)
	per := len(recs) / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(chunk []Record) {
			defer wg.Done()
			errCh <- sk.IngestAll(chunk)
		}(recs[w*per : (w+1)*per])
	}
	// A worker sketcher merged in mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		worker := NewSketcherWith(Options{SketchCutover: 32})
		ts := time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC)
		for i := 0; i < 500; i++ {
			r := NewRecord("m"+uniq(i), "ookla", "XB-01-001", ts)
			r.SetValue(Download, float64(i+1))
			if err := worker.Ingest(r); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- sk.Merge(worker)
	}()
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sk.Quantile("ndt", "XA", Download, 0.95)
				sk.Quantile("cloudflare", "", Latency, 0.5)
				sk.Cells()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	for i := 0; i < writers+1; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if _, n, err := sk.Quantile("ookla", "XB", Download, 0.5); err != nil || n != 500 {
		t.Errorf("merged worker cells: n = %d, err = %v", n, err)
	}
}

func BenchmarkSketcherIngest(b *testing.B) {
	sk := NewSketcher(0)
	src := rng.New(1)
	ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	r := NewRecord("x", "ndt", "XA-01-001", ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.SetValue(Download, src.Float64()*100)
		r.SetValue(Latency, src.Float64()*100)
		if err := sk.Ingest(r); err != nil {
			b.Fatal(err)
		}
	}
}
