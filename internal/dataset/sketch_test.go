package dataset

import (
	"errors"
	"math"
	"testing"
	"time"

	"iqb/internal/rng"
	"iqb/internal/stats"
)

func TestSketcherQuantileMatchesExact(t *testing.T) {
	sk := NewSketcher(200)
	store := NewStore()
	src := rng.New(5)
	ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20000; i++ {
		r := NewRecord(uniq(i), "ndt", "XA-01-001", ts)
		r.SetValue(Download, src.LogNormalFromMoments(100, 0.9))
		r.SetValue(Latency, src.LogNormalFromMoments(40, 0.6))
		if err := sk.Ingest(r); err != nil {
			t.Fatal(err)
		}
		if err := store.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []Metric{Download, Latency} {
		for _, q := range []float64{0.05, 0.5, 0.95} {
			approx, n, err := sk.Quantile("ndt", "XA-01-001", m, q)
			if err != nil {
				t.Fatal(err)
			}
			if n != 20000 {
				t.Errorf("sample count = %d", n)
			}
			exact, err := store.Aggregate(Filter{Dataset: "ndt"}, m, q*100)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(approx-exact) / exact; rel > 0.05 {
				t.Errorf("%v q=%v: sketch %v vs exact %v (rel %v)", m, q, approx, exact, rel)
			}
		}
	}
}

func TestSketcherRegionHierarchyMerge(t *testing.T) {
	sk := NewSketcher(0)
	ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	add := func(id, region string, v float64) {
		t.Helper()
		r := NewRecord(id, "ndt", region, ts)
		r.SetValue(Download, v)
		if err := sk.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	add("a", "XA-01-001", 10)
	add("b", "XA-01-002", 20)
	add("c", "XA-02-001", 30)

	// County-level: single digest.
	v, n, err := sk.Quantile("ndt", "XA-01-001", Download, 0.5)
	if err != nil || n != 1 || v != 10 {
		t.Errorf("county quantile = %v, %d, %v", v, n, err)
	}
	// State-level: merges two counties.
	_, n, err = sk.Quantile("ndt", "XA-01", Download, 0.5)
	if err != nil || n != 2 {
		t.Errorf("state merge n = %d, %v", n, err)
	}
	// Country-level: all three.
	_, n, err = sk.Quantile("ndt", "XA", Download, 0.5)
	if err != nil || n != 3 {
		t.Errorf("country merge n = %d, %v", n, err)
	}
	// Empty prefix matches everything.
	_, n, err = sk.Quantile("ndt", "", Download, 0.5)
	if err != nil || n != 3 {
		t.Errorf("unscoped n = %d, %v", n, err)
	}
}

func TestSketcherErrors(t *testing.T) {
	sk := NewSketcher(0)
	if err := sk.Ingest(Record{}); err == nil {
		t.Error("invalid record should error")
	}
	if _, _, err := sk.Quantile("ndt", "XA", Download, 0.5); !errors.Is(err, stats.ErrNoData) {
		t.Errorf("empty sketch should be ErrNoData, got %v", err)
	}
	err := sk.IngestAll([]Record{{}})
	if err == nil {
		t.Error("IngestAll with invalid record should error")
	}
}

func TestSketcherCells(t *testing.T) {
	sk := NewSketcher(0)
	ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	r := NewRecord("a", "ndt", "XA", ts)
	r.SetValue(Download, 1)
	r.SetValue(Latency, 2)
	if err := sk.IngestAll([]Record{r}); err != nil {
		t.Fatal(err)
	}
	if sk.Cells() != 2 {
		t.Errorf("cells = %d, want 2 (one per present metric)", sk.Cells())
	}
}

func BenchmarkSketcherIngest(b *testing.B) {
	sk := NewSketcher(200)
	src := rng.New(1)
	ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	r := NewRecord("x", "ndt", "XA-01-001", ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.SetValue(Download, src.Float64()*100)
		r.SetValue(Latency, src.Float64()*100)
		if err := sk.Ingest(r); err != nil {
			b.Fatal(err)
		}
	}
}
