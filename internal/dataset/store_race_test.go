package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"iqb/internal/stats"
)

// mkRec builds a minimal valid record for store tests.
func mkRec(id, ds, region string, asn uint32, down float64) Record {
	r := NewRecord(id, ds, region, t0)
	r.ASN = asn
	r.SetValue(Download, down)
	return r
}

func TestAddBatchAtomicOnMidBatchDuplicate(t *testing.T) {
	s := NewStore()
	if err := s.Add(mkRec("dup", "ndt", "XA-01-001", 1, 10)); err != nil {
		t.Fatal(err)
	}
	batch := []Record{
		mkRec("a", "ndt", "XA-01-001", 1, 1),
		mkRec("b", "ndt", "XA-01-002", 1, 2),
		mkRec("dup", "ndt", "XA-02-001", 1, 3), // duplicate against the store
		mkRec("c", "ndt", "XA-02-002", 1, 4),
	}
	err := s.AddBatch(batch)
	if err == nil {
		t.Fatal("mid-batch duplicate should error")
	}
	if s.Len() != 1 {
		t.Fatalf("store partially updated: Len = %d, want 1", s.Len())
	}
	// The failed batch must not leave ID reservations behind: the
	// non-duplicate members are still insertable.
	if err := s.AddBatch([]Record{batch[0], batch[1], batch[3]}); err != nil {
		t.Fatalf("retry without the duplicate failed: %v", err)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
}

func TestAddBatchRejectsIntraBatchDuplicate(t *testing.T) {
	s := NewStore()
	err := s.AddBatch([]Record{
		mkRec("a", "ndt", "XA-01-001", 1, 1),
		mkRec("a", "ndt", "XA-99-001", 1, 2), // same (dataset, ID), other region
	})
	if err == nil {
		t.Fatal("intra-batch duplicate should error")
	}
	if s.Len() != 0 {
		t.Fatalf("store partially updated: Len = %d", s.Len())
	}
}

func TestAddBatchValidatesBeforeMutating(t *testing.T) {
	s := NewStore()
	err := s.AddBatch([]Record{mkRec("a", "ndt", "XA", 0, 1), {}})
	if err == nil {
		t.Fatal("invalid record should error")
	}
	if s.Len() != 0 {
		t.Fatalf("store mutated before validation finished: Len = %d", s.Len())
	}
}

func TestDuplicateAcrossRegionsRejected(t *testing.T) {
	// The dedup key is (dataset, ID) regardless of region, so the same ID
	// in another region — which lands in a different shard — must still
	// be caught.
	s := NewStore()
	if err := s.Add(mkRec("id1", "ndt", "XA-01-001", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(mkRec("id1", "ndt", "XB-07-003", 1, 2)); err == nil {
		t.Fatal("cross-region duplicate should error")
	}
}

// TestConcurrentBatchesAndQueries is the race-detector workout: parallel
// AddBatch and Add writers against Select/Count/Aggregate/GroupAggregate/
// Summary/TimeBounds readers.
func TestConcurrentBatchesAndQueries(t *testing.T) {
	s := NewStoreWith(Options{Shards: 8, SketchCutover: 64})
	const (
		writers = 4
		batches = 20
		perB    = 25
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]Record, perB)
				for i := range batch {
					region := fmt.Sprintf("XA-%02d-%03d", w+1, b%5+1)
					id := fmt.Sprintf("w%d-b%d-i%d", w, b, i)
					batch[i] = mkRec(id, "ndt", region, uint32(w+1), float64(b*perB+i))
				}
				if err := s.AddBatch(batch); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(w)
	}
	readers := 4
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Select(Filter{RegionPrefix: "XA-01"})
				s.Count(Filter{Dataset: "ndt"})
				s.Aggregate(Filter{Dataset: "ndt", RegionPrefix: "XA"}, Download, 95)
				s.GroupAggregate(Filter{}, ByRegion, Download, 50)
				s.Summary(Filter{ASN: 1}, Download)
				s.TimeBounds(Filter{})
				s.DatasetCounts()
				s.Regions()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	for w := 0; w < writers; w++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if want := writers * batches * perB; s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
}

// TestConcurrentBuildDeterministicAggregates asserts the store-level half
// of the pipeline's determinism contract: however concurrent insertion
// interleaves, every aggregate answer is a pure function of the record
// multiset — including cells promoted to sketches.
func TestConcurrentBuildDeterministicAggregates(t *testing.T) {
	const n = 4000
	records := make([]Record, n)
	src := rand.New(rand.NewSource(3))
	for i := range records {
		region := fmt.Sprintf("XA-%02d-%03d", i%3+1, i%7+1)
		records[i] = mkRec(fmt.Sprintf("r%d", i), "ndt", region, uint32(i%4+1), math.Exp(src.NormFloat64()+4))
	}
	build := func(workers int) *Store {
		s := NewStoreWith(Options{Shards: 8, SketchCutover: 50})
		var wg sync.WaitGroup
		per := n / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(chunk []Record) {
				defer wg.Done()
				for len(chunk) > 0 {
					k := 17 // deliberately odd batch size
					if k > len(chunk) {
						k = len(chunk)
					}
					if err := s.AddBatch(chunk[:k]); err != nil {
						panic(err)
					}
					chunk = chunk[k:]
				}
			}(records[w*per : (w+1)*per])
		}
		wg.Wait()
		return s
	}
	a, b := build(1), build(4)
	for _, q := range []float64{5, 50, 95} {
		for _, prefix := range []string{"", "XA", "XA-01", "XA-02-003"} {
			f := Filter{Dataset: "ndt", RegionPrefix: prefix}
			va, na, ea := a.AggregateCount(f, Download, q)
			vb, nb, eb := b.AggregateCount(f, Download, q)
			if (ea == nil) != (eb == nil) || va != vb || na != nb {
				t.Errorf("q=%v prefix=%q: 1-worker (%v, %d, %v) vs 4-worker (%v, %d, %v)",
					q, prefix, va, na, ea, vb, nb, eb)
			}
		}
	}
	ga, err := a.GroupAggregate(Filter{}, ByRegion, Download, 95)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := b.GroupAggregate(Filter{}, ByRegion, Download, 95)
	if err != nil {
		t.Fatal(err)
	}
	if len(ga) != len(gb) {
		t.Fatalf("group counts differ: %d vs %d", len(ga), len(gb))
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Errorf("group %d differs: %+v vs %+v", i, ga[i], gb[i])
		}
	}
}

func TestSketchPromotionAccuracyAndCount(t *testing.T) {
	const cutover = 32
	s := NewStoreWith(Options{SketchCutover: cutover, SketchAlpha: 0.01})
	src := rand.New(rand.NewSource(5))
	vals := make([]float64, 3000)
	for i := range vals {
		vals[i] = math.Exp(src.NormFloat64() * 1.2)
		if err := s.Add(mkRec(fmt.Sprintf("r%d", i), "ndt", "XA-01-001", 1, vals[i])); err != nil {
			t.Fatal(err)
		}
	}
	f := Filter{Dataset: "ndt", RegionPrefix: "XA-01-001"}
	for _, q := range []float64{5, 50, 95} {
		got, n, err := s.AggregateCount(f, Download, q)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(vals) {
			t.Errorf("count = %d, want %d", n, len(vals))
		}
		exact, err := stats.Percentile(vals, q)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-exact) / exact; rel > 0.02 {
			t.Errorf("q=%v: sketch-served %v vs exact %v (rel err %v)", q, got, exact, rel)
		}
	}
	// Filters the sketch cells cannot express still answer exactly.
	gotASN, err := s.Aggregate(Filter{Dataset: "ndt", ASN: 1}, Download, 50)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := stats.Percentile(vals, 50)
	if gotASN != exact {
		t.Errorf("ASN-filtered aggregate = %v, want exact %v", gotASN, exact)
	}
}

// TestGroupAggregateCellsMatchExactScan pins the cell-served group-by
// against the record scan. All records share one ASN, so the same
// grouping can be forced down the exact path by filtering on it; the
// cell path must agree — bit-identically while cells are exact, within
// the sketch's relative error once promoted.
func TestGroupAggregateCellsMatchExactScan(t *testing.T) {
	build := func(cutover int) *Store {
		s := NewStoreWith(Options{SketchCutover: cutover, SketchAlpha: 0.01})
		src := rand.New(rand.NewSource(9))
		for i := 0; i < 3000; i++ {
			region := fmt.Sprintf("XA-%02d-%03d", i%2+1, i%5+1)
			ds := []string{"ndt", "cloudflare"}[i%2]
			if err := s.Add(mkRec(fmt.Sprintf("g%d", i), ds, region, 7, math.Exp(src.NormFloat64()+4))); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	for _, tc := range []struct {
		name    string
		cutover int
		exact   bool
	}{
		{"exact cells", 10000, true},
		{"promoted cells", 32, false},
	} {
		s := build(tc.cutover)
		for _, key := range []GroupKey{ByRegion, ByDataset} {
			for _, f := range []Filter{{}, {Dataset: "ndt"}, {RegionPrefix: "XA-01"}} {
				cells, err := s.GroupAggregate(f, key, Download, 95)
				if err != nil {
					t.Fatal(err)
				}
				ef := f
				ef.ASN = 7 // same records, but unservable from cells
				scan, err := s.GroupAggregate(ef, key, Download, 95)
				if err != nil {
					t.Fatal(err)
				}
				if len(cells) != len(scan) {
					t.Fatalf("%s key=%v f=%+v: %d cell groups vs %d scan groups", tc.name, key, f, len(cells), len(scan))
				}
				for i := range cells {
					if cells[i].Key != scan[i].Key || cells[i].Count != scan[i].Count {
						t.Errorf("%s key=%v f=%+v group %d: cell %+v vs scan %+v", tc.name, key, f, i, cells[i], scan[i])
						continue
					}
					if tc.exact {
						if cells[i].Value != scan[i].Value {
							t.Errorf("%s key=%v f=%+v group %s: cell value %v != exact %v",
								tc.name, key, f, cells[i].Key, cells[i].Value, scan[i].Value)
						}
					} else if rel := math.Abs(cells[i].Value-scan[i].Value) / scan[i].Value; rel > 0.02 {
						t.Errorf("%s key=%v f=%+v group %s: cell value %v vs exact %v (rel %v)",
							tc.name, key, f, cells[i].Key, cells[i].Value, scan[i].Value, rel)
					}
				}
			}
		}
	}
	// Out-of-range percentile is rejected up front on both paths.
	s := build(10000)
	if _, err := s.GroupAggregate(Filter{}, ByRegion, Download, 101); err == nil {
		t.Error("percentile > 100 should error")
	}
}

func TestAggregateExactBelowCutover(t *testing.T) {
	// Below the cutover the sketch path must be bit-identical to a scan.
	s := NewStore()
	vals := []float64{100, 50, 10, 75, 33}
	for i, v := range vals {
		if err := s.Add(mkRec(fmt.Sprintf("r%d", i), "ndt", "XA-01-001", 1, v)); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []float64{0, 17, 50, 95, 100} {
		got, err := s.Aggregate(Filter{Dataset: "ndt", RegionPrefix: "XA"}, Download, q)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := stats.Percentile(vals, q)
		if got != want {
			t.Errorf("q=%v: %v != exact %v", q, got, want)
		}
	}
}

func TestSelectPreservesInsertionOrder(t *testing.T) {
	s := NewStore()
	var want []string
	for i := 0; i < 200; i++ {
		// Spread across regions (hence shards) on purpose.
		region := fmt.Sprintf("XA-%02d-%03d", i%5+1, i%11+1)
		id := fmt.Sprintf("r%d", i)
		if err := s.Add(mkRec(id, "ndt", region, 1, float64(i))); err != nil {
			t.Fatal(err)
		}
		want = append(want, id)
	}
	got := s.Select(Filter{})
	if len(got) != len(want) {
		t.Fatalf("Select returned %d records", len(got))
	}
	for i, r := range got {
		if r.ID != want[i] {
			t.Fatalf("record %d = %s, want %s (insertion order broken)", i, r.ID, want[i])
		}
	}
	// Values follows the same contract.
	vals := s.Values(Filter{}, Download)
	for i, v := range vals {
		if v != float64(i) {
			t.Fatalf("value %d = %v (insertion order broken)", i, v)
		}
	}
}

func TestAddBatchEmpty(t *testing.T) {
	s := NewStore()
	if err := s.AddBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AddBatch([]Record{}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("empty batch mutated store")
	}
}

func TestAggregateCountNoData(t *testing.T) {
	s := NewStore()
	if _, _, err := s.AggregateCount(Filter{Dataset: "ndt"}, Download, 50); !errors.Is(err, stats.ErrNoData) {
		t.Errorf("want ErrNoData, got %v", err)
	}
	if _, _, err := s.AggregateCount(Filter{ASN: 7}, Download, 50); !errors.Is(err, stats.ErrNoData) {
		t.Errorf("exact fallback: want ErrNoData, got %v", err)
	}
}

func TestStoreOptionsDefaults(t *testing.T) {
	s := NewStoreWith(Options{})
	if s.NumShards() != DefaultShards {
		t.Errorf("NumShards = %d, want %d", s.NumShards(), DefaultShards)
	}
	if s2 := NewStoreWith(Options{Shards: 3}); s2.NumShards() != 3 {
		t.Errorf("NumShards = %d, want 3", s2.NumShards())
	}
}
