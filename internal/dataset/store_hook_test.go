package dataset

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func hookTestRecord(id string) Record {
	r := NewRecord(id, "ndt", "XA-01", time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC))
	r.DownloadMbps = 100
	return r
}

// TestIngestHookVetoLeavesStoreUnchanged is the contract the
// persistence layer leans on: a batch whose durable tee fails must not
// reach the shards, and its (dataset, ID) claims must be released so
// the same records can be retried once the WAL recovers.
func TestIngestHookVetoLeavesStoreUnchanged(t *testing.T) {
	s := NewStore()
	if err := s.Add(hookTestRecord("pre")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	s.SetIngestHook(func(rs []Record) error { return boom })

	batch := []Record{hookTestRecord("a"), hookTestRecord("b")}
	if err := s.AddBatch(batch); !errors.Is(err, boom) {
		t.Fatalf("AddBatch error = %v, want wrapped %v", err, boom)
	}
	if err := s.Add(hookTestRecord("c")); !errors.Is(err, boom) {
		t.Fatalf("Add error = %v, want wrapped %v", err, boom)
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("store has %d records after vetoed writes, want 1", got)
	}

	// The veto must have released the ID claims: the same records
	// succeed once the hook stops failing.
	s.SetIngestHook(nil)
	if err := s.AddBatch(batch); err != nil {
		t.Fatalf("retry after veto: %v", err)
	}
	if err := s.Add(hookTestRecord("c")); err != nil {
		t.Fatalf("retry after veto: %v", err)
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("store has %d records, want 4", got)
	}
}

// TestIngestHookSeesEveryRecord checks completeness: every record that
// lands in the store passed through the hook first (the veto test above
// proves "first" — a vetoed batch never reaches the shards).
func TestIngestHookSeesEveryRecord(t *testing.T) {
	s := NewStore()
	var teed []string
	s.SetIngestHook(func(rs []Record) error {
		for _, r := range rs {
			teed = append(teed, r.ID)
		}
		return nil
	})
	if err := s.AddBatch([]Record{hookTestRecord("a"), hookTestRecord("b")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(hookTestRecord("c")); err != nil {
		t.Fatal(err)
	}
	if len(teed) != 3 {
		t.Fatalf("hook saw %d records, want 3", len(teed))
	}
	if s.Len() != 3 {
		t.Fatalf("store has %d records, want 3", s.Len())
	}
}

// TestQuiesceSeesNoInFlightWrites pins the snapshot-consistency
// invariant: under Quiesce, the number of records the hook has
// acknowledged equals the number of records visible in the store — a
// writer is never caught between its durable tee and its shard
// mutation. Without that guarantee a snapshot could claim a WAL offset
// whose records it does not contain, and compaction would lose them.
func TestQuiesceSeesNoInFlightWrites(t *testing.T) {
	s := NewStore()
	var mu sync.Mutex
	acked := 0
	s.SetIngestHook(func(rs []Record) error {
		mu.Lock()
		acked += len(rs)
		mu.Unlock()
		return nil
	})

	const writers, batches, per = 4, 20, 5
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]Record, per)
				for i := range batch {
					batch[i] = hookTestRecord(fmt.Sprintf("w%d-b%d-%d", w, b, i))
				}
				if err := s.AddBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	checker := make(chan struct{})
	go func() {
		defer close(checker)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Quiesce(func() {
				mu.Lock()
				a := acked
				mu.Unlock()
				if l := s.Len(); a != l {
					t.Errorf("quiesce saw %d acked but %d stored", a, l)
				}
			})
		}
	}()
	wg.Wait()
	close(stop)
	<-checker
	if want := writers * batches * per; s.Len() != want {
		t.Fatalf("store has %d records, want %d", s.Len(), want)
	}
}
