package dataset

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func hookTestRecord(id string) Record {
	r := NewRecord(id, "ndt", "XA-01", time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC))
	r.DownloadMbps = 100
	return r
}

// TestIngestHookVetoLeavesStoreUnchanged is the contract the
// persistence layer leans on: a batch whose durable tee fails must not
// reach the shards, and its (dataset, ID) claims must be released so
// the same records can be retried once the WAL recovers.
func TestIngestHookVetoLeavesStoreUnchanged(t *testing.T) {
	s := NewStore()
	if err := s.Add(hookTestRecord("pre")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	remove := s.AddIngestHook(func(rs []Record) error { return boom })

	batch := []Record{hookTestRecord("a"), hookTestRecord("b")}
	if err := s.AddBatch(batch); !errors.Is(err, boom) {
		t.Fatalf("AddBatch error = %v, want wrapped %v", err, boom)
	}
	if err := s.Add(hookTestRecord("c")); !errors.Is(err, boom) {
		t.Fatalf("Add error = %v, want wrapped %v", err, boom)
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("store has %d records after vetoed writes, want 1", got)
	}

	// The veto must have released the ID claims: the same records
	// succeed once the hook is removed.
	remove()
	if err := s.AddBatch(batch); err != nil {
		t.Fatalf("retry after veto: %v", err)
	}
	if err := s.Add(hookTestRecord("c")); err != nil {
		t.Fatalf("retry after veto: %v", err)
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("store has %d records, want 4", got)
	}
}

// TestIngestHookSeesEveryRecord checks completeness: every record that
// lands in the store passed through the hook first (the veto test above
// proves "first" — a vetoed batch never reaches the shards).
func TestIngestHookSeesEveryRecord(t *testing.T) {
	s := NewStore()
	var teed []string
	s.AddIngestHook(func(rs []Record) error {
		for _, r := range rs {
			teed = append(teed, r.ID)
		}
		return nil
	})
	if err := s.AddBatch([]Record{hookTestRecord("a"), hookTestRecord("b")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(hookTestRecord("c")); err != nil {
		t.Fatal(err)
	}
	if len(teed) != 3 {
		t.Fatalf("hook saw %d records, want 3", len(teed))
	}
	if s.Len() != 3 {
		t.Fatalf("store has %d records, want 3", s.Len())
	}
}

// TestQuiesceSeesNoInFlightWrites pins the snapshot-consistency
// invariant: under Quiesce, the number of records the hook has
// acknowledged equals the number of records visible in the store — a
// writer is never caught between its durable tee and its shard
// mutation. Without that guarantee a snapshot could claim a WAL offset
// whose records it does not contain, and compaction would lose them.
func TestQuiesceSeesNoInFlightWrites(t *testing.T) {
	s := NewStore()
	var mu sync.Mutex
	acked := 0
	s.AddIngestHook(func(rs []Record) error {
		mu.Lock()
		acked += len(rs)
		mu.Unlock()
		return nil
	})

	const writers, batches, per = 4, 20, 5
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]Record, per)
				for i := range batch {
					batch[i] = hookTestRecord(fmt.Sprintf("w%d-b%d-%d", w, b, i))
				}
				if err := s.AddBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	checker := make(chan struct{})
	go func() {
		defer close(checker)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Quiesce(func() {
				mu.Lock()
				a := acked
				mu.Unlock()
				if l := s.Len(); a != l {
					t.Errorf("quiesce saw %d acked but %d stored", a, l)
				}
			})
		}
	}()
	wg.Wait()
	close(stop)
	<-checker
	if want := writers * batches * per; s.Len() != want {
		t.Fatalf("store has %d records, want %d", s.Len(), want)
	}
}

// TestHookChainOrderAndCoexistence pins the multi-observer contract: a
// WAL-shaped tee and a cache-shaped observer registered on one store
// both see every batch, Ingest phases run in registration order, and
// Commit notifications fire only after the batch is fully visible in
// the shards.
func TestHookChainOrderAndCoexistence(t *testing.T) {
	s := NewStore()
	var trace []string
	s.AddIngestHook(func(rs []Record) error {
		trace = append(trace, fmt.Sprintf("wal:%d", len(rs)))
		return nil
	})
	s.AddHooks(Hooks{
		Ingest: func(rs []Record) error {
			trace = append(trace, fmt.Sprintf("cache-pending:%d", len(rs)))
			return nil
		},
		Commit: func(rs []Record) {
			// The batch must already be queryable when Commit fires.
			// (Reading shard state from a hook is safe — shard locks are
			// released before notifications run — it is writes that are
			// forbidden.)
			trace = append(trace, fmt.Sprintf("cache-commit:%d@len=%d", len(rs), s.Len()))
		},
	})

	if err := s.AddBatch([]Record{hookTestRecord("a"), hookTestRecord("b")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(hookTestRecord("c")); err != nil {
		t.Fatal(err)
	}
	want := []string{"wal:2", "cache-pending:2", "cache-commit:2@len=2", "wal:1", "cache-pending:1", "cache-commit:1@len=3"}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Fatalf("hook trace = %v, want %v", trace, want)
	}
}

// TestHookChainAbortOnVeto: when a later hook vetoes, observers earlier
// in the chain that already ran get an Abort so they can unwind
// whatever their Ingest phase set up, and their Commit never fires.
func TestHookChainAbortOnVeto(t *testing.T) {
	s := NewStore()
	var trace []string
	s.AddHooks(Hooks{
		Ingest: func(rs []Record) error { trace = append(trace, "first-ingest"); return nil },
		Commit: func(rs []Record) { trace = append(trace, "first-commit") },
		Abort:  func(rs []Record) { trace = append(trace, "first-abort") },
	})
	boom := errors.New("tee failed")
	remove := s.AddIngestHook(func(rs []Record) error { return boom })

	if err := s.AddBatch([]Record{hookTestRecord("a")}); !errors.Is(err, boom) {
		t.Fatalf("AddBatch error = %v, want wrapped %v", err, boom)
	}
	if got := fmt.Sprint(trace); got != fmt.Sprint([]string{"first-ingest", "first-abort"}) {
		t.Fatalf("hook trace = %v", trace)
	}
	if s.Len() != 0 {
		t.Fatalf("vetoed batch reached the shards: len=%d", s.Len())
	}

	// After removing the vetoing hook the batch lands and the surviving
	// observer commits.
	remove()
	trace = nil
	if err := s.AddBatch([]Record{hookTestRecord("a")}); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(trace); got != fmt.Sprint([]string{"first-ingest", "first-commit"}) {
		t.Fatalf("hook trace after remove = %v", trace)
	}
}

// TestAbortSkipsIngestlessObservers: an observer with no Ingest phase
// was never told about the batch, so a veto must not send it a
// spurious Abort (which could corrupt accounting it keeps for other,
// genuinely in-flight batches).
func TestAbortSkipsIngestlessObservers(t *testing.T) {
	s := NewStore()
	aborts := 0
	s.AddHooks(Hooks{
		Commit: func(rs []Record) {},
		Abort:  func(rs []Record) { aborts++ },
	})
	boom := errors.New("tee failed")
	s.AddIngestHook(func(rs []Record) error { return boom })
	if err := s.AddBatch([]Record{hookTestRecord("a")}); !errors.Is(err, boom) {
		t.Fatalf("expected veto, got %v", err)
	}
	if aborts != 0 {
		t.Fatalf("Ingest-less observer got %d aborts, want 0", aborts)
	}
}

// TestHookRemoveIsIdempotent: removing twice is harmless and removal
// only detaches the targeted observer.
func TestHookRemoveIsIdempotent(t *testing.T) {
	s := NewStore()
	calls := map[string]int{}
	removeA := s.AddIngestHook(func(rs []Record) error { calls["a"]++; return nil })
	s.AddIngestHook(func(rs []Record) error { calls["b"]++; return nil })
	removeA()
	removeA()
	if err := s.Add(hookTestRecord("x")); err != nil {
		t.Fatal(err)
	}
	if calls["a"] != 0 || calls["b"] != 1 {
		t.Fatalf("calls = %v, want only b once", calls)
	}
}
