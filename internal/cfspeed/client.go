package cfspeed

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"iqb/internal/netem"
	"iqb/internal/stats"
	"iqb/internal/units"
)

// Client runs the Cloudflare-style test against a Handler's base URL.
type Client struct {
	// BaseURL is e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// UploadRate paces uploads, playing the subscriber's upstream link.
	UploadRate units.Throughput
	// LatencyProbes overrides LatencySamples (for tests).
	LatencyProbes int
	// Probes overrides LossProbes (for tests).
	Probes int
	// DownLadder / UpLadder override the transfer ladders (for tests).
	DownLadder []int64
	UpLadder   []int64
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Run executes the full test: latency samples, the download ladder, the
// upload ladder, and loss probes.
func (c *Client) Run(ctx context.Context) (TestResult, error) {
	var res TestResult

	latencies, err := c.measureLatency(ctx)
	if err != nil {
		return TestResult{}, fmt.Errorf("cfspeed: latency: %w", err)
	}
	med, err := stats.Median(latencies)
	if err != nil {
		return TestResult{}, fmt.Errorf("cfspeed: latency aggregation: %w", err)
	}
	res.LatencyMS = med

	down := c.DownLadder
	if down == nil {
		down = DownloadLadder
	}
	for _, size := range down {
		mbps, err := c.download(ctx, size)
		if err != nil {
			return TestResult{}, fmt.Errorf("cfspeed: download %d bytes: %w", size, err)
		}
		res.DownloadSamples = append(res.DownloadSamples, mbps)
	}
	if res.DownloadMbps, err = aggregateSpeed(res.DownloadSamples); err != nil {
		return TestResult{}, err
	}

	up := c.UpLadder
	if up == nil {
		up = UploadLadder
	}
	for _, size := range up {
		mbps, err := c.upload(ctx, size)
		if err != nil {
			return TestResult{}, fmt.Errorf("cfspeed: upload %d bytes: %w", size, err)
		}
		res.UploadSamples = append(res.UploadSamples, mbps)
	}
	if res.UploadMbps, err = aggregateSpeed(res.UploadSamples); err != nil {
		return TestResult{}, err
	}

	loss, err := c.measureLoss(ctx)
	if err != nil {
		return TestResult{}, fmt.Errorf("cfspeed: loss probes: %w", err)
	}
	res.LossRate = loss

	if err := res.validate(); err != nil {
		return TestResult{}, err
	}
	return res, nil
}

func (c *Client) measureLatency(ctx context.Context) ([]float64, error) {
	n := c.LatencyProbes
	if n <= 0 {
		n = LatencySamples
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := c.get(ctx, "/__down?bytes=0"); err != nil {
			return nil, err
		}
		out = append(out, float64(time.Since(start))/float64(time.Millisecond))
	}
	return out, nil
}

func (c *Client) get(ctx context.Context, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func (c *Client) download(ctx context.Context, size int64) (float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/__down?bytes=%d", c.BaseURL, size), nil)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		return 0, err
	}
	if n != size {
		return 0, fmt.Errorf("got %d of %d bytes", n, size)
	}
	return units.ThroughputFromTransfer(n, time.Since(start)).Mbps(), nil
}

// pacedReader rations bytes through a shaper to emulate the subscriber's
// upstream rate.
type pacedReader struct {
	remaining int64
	shaper    *netem.Shaper
	chunk     []byte
}

func (p *pacedReader) Read(b []byte) (int, error) {
	if p.remaining <= 0 {
		return 0, io.EOF
	}
	n := len(b)
	if int64(n) > p.remaining {
		n = int(p.remaining)
	}
	if n > 32<<10 {
		n = 32 << 10
	}
	if p.shaper != nil {
		p.shaper.Pace(n)
	}
	for i := 0; i < n; i++ {
		b[i] = 0
	}
	p.remaining -= int64(n)
	return n, nil
}

func (c *Client) upload(ctx context.Context, size int64) (float64, error) {
	var body io.Reader
	if c.UploadRate > 0 {
		shaper, err := netem.NewShaper(c.UploadRate)
		if err != nil {
			return 0, err
		}
		body = &pacedReader{remaining: size, shaper: shaper}
	} else {
		body = bytes.NewReader(make([]byte, size))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/__up", body)
	if err != nil {
		return 0, err
	}
	req.ContentLength = size
	start := time.Now()
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	return units.ThroughputFromTransfer(size, time.Since(start)).Mbps(), nil
}

func (c *Client) measureLoss(ctx context.Context) (float64, error) {
	n := c.Probes
	if n <= 0 {
		n = LossProbes
	}
	lost := 0
	for i := 0; i < n; i++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/__probe", nil)
		if err != nil {
			return 0, err
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusNoContent:
		case http.StatusNotFound:
			lost++
		default:
			return 0, fmt.Errorf("probe status %d", resp.StatusCode)
		}
	}
	return float64(lost) / float64(n), nil
}
