package cfspeed

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iqb/internal/netem"
	"iqb/internal/rng"
	"iqb/internal/units"
)

func testPath() netem.Path {
	return netem.Path{
		Tech:     netem.Fiber,
		DownMbps: 100,
		UpMbps:   50,
		BaseRTT:  units.LatencyFromMillis(10),
		JitterMS: 2,
		Loss:     0.01, // high so loss probes register quickly
		BloatMS:  20,
		Shared:   0.2,
	}
}

func newTestServer(t *testing.T, path netem.Path, rho float64) *httptest.Server {
	t.Helper()
	h, err := NewHandler(path, rho, 42)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func TestNewHandlerValidates(t *testing.T) {
	if _, err := NewHandler(netem.Path{}, 0.3, 1); err == nil {
		t.Error("invalid path should error")
	}
}

func TestLiveFullTest(t *testing.T) {
	srv := newTestServer(t, testPath(), 0.2)
	client := &Client{
		BaseURL:       srv.URL,
		UploadRate:    50 * units.Mbps,
		LatencyProbes: 5,
		Probes:        60,
		DownLadder:    []int64{100 << 10, 1 << 20},
		UpLadder:      []int64{1 << 20},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := client.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadMbps <= 0 || res.DownloadMbps > 105 {
		t.Errorf("download = %v Mbps", res.DownloadMbps)
	}
	// The token-bucket burst lets short transfers overshoot the shaped
	// rate slightly, so allow headroom above the nominal 50 Mbps.
	if res.UploadMbps <= 0 || res.UploadMbps > 65 {
		t.Errorf("upload = %v Mbps", res.UploadMbps)
	}
	// Base RTT 10ms with a 0.8x floor: the emulated server sleep must
	// dominate the loopback RTT.
	if res.LatencyMS < 8 {
		t.Errorf("latency = %v ms, below emulated floor", res.LatencyMS)
	}
	if res.LossRate < 0 || res.LossRate > 0.2 {
		t.Errorf("loss = %v", res.LossRate)
	}
	if len(res.DownloadSamples) != 2 || len(res.UploadSamples) != 1 {
		t.Errorf("sample counts = %d/%d", len(res.DownloadSamples), len(res.UploadSamples))
	}
}

func TestHandlerDownEndpoint(t *testing.T) {
	srv := newTestServer(t, testPath(), 0.1)
	resp, err := http.Get(srv.URL + "/__down?bytes=1000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if len(body) != 1000 {
		t.Errorf("got %d bytes, want 1000", len(body))
	}

	for _, bad := range []string{"/__down", "/__down?bytes=-1", "/__down?bytes=abc", "/__down?bytes=999999999999"} {
		resp, err := http.Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestHandlerUpRequiresPost(t *testing.T) {
	srv := newTestServer(t, testPath(), 0.1)
	resp, err := http.Get(srv.URL + "/__up")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /__up status = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/__up", "application/octet-stream", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("POST /__up status = %d, want 204", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Received-Bytes"); got != "5" {
		t.Errorf("received bytes header = %q", got)
	}
}

func TestHandlerUnknownPath(t *testing.T) {
	srv := newTestServer(t, testPath(), 0.1)
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestHandlerProbeLoss(t *testing.T) {
	lossy := testPath()
	lossy.Loss = 0.5
	srv := newTestServer(t, lossy, 0.1)
	lost, total := 0, 200
	for i := 0; i < total; i++ {
		resp, err := http.Get(srv.URL + "/__probe")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			lost++
		}
	}
	rate := float64(lost) / float64(total)
	// Loss floor draws in [0.5p, 2p] clamped at 1, so the mean is well
	// above a third.
	if rate < 0.2 || rate > 0.95 {
		t.Errorf("probe loss rate = %v for p=0.5 path", rate)
	}
}

func TestDownloadIsShaped(t *testing.T) {
	slow := testPath()
	slow.DownMbps = 8 // 1 MB/s
	srv := newTestServer(t, slow, 0.1)
	client := &Client{BaseURL: srv.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	start := time.Now()
	mbps, err := client.download(ctx, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if mbps > 9 {
		t.Errorf("download = %v Mbps through an 8 Mbps path", mbps)
	}
	if time.Since(start) < 500*time.Millisecond {
		t.Error("1 MB at 8 Mbps should take about a second")
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	client := &Client{BaseURL: "http://127.0.0.1:1", LatencyProbes: 1, Probes: 1,
		DownLadder: []int64{1024}, UpLadder: []int64{1024}}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := client.Run(ctx); err == nil {
		t.Error("dead server should error")
	}
}

func TestSimulate(t *testing.T) {
	res, err := Simulate(testPath(), 0.2, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadMbps <= 0 || res.DownloadMbps > 100 {
		t.Errorf("download = %v", res.DownloadMbps)
	}
	if res.UploadMbps <= 0 || res.UploadMbps > 50 {
		t.Errorf("upload = %v", res.UploadMbps)
	}
	if res.LatencyMS < 8 {
		t.Errorf("latency = %v", res.LatencyMS)
	}
	if len(res.DownloadSamples) != len(DownloadLadder) {
		t.Errorf("download samples = %d", len(res.DownloadSamples))
	}
	if res.LossRate < 0 || res.LossRate > 0.2 {
		t.Errorf("loss = %v", res.LossRate)
	}
}

func TestSimulateSlowStartPenalty(t *testing.T) {
	// On a high-BDP path, the small-object ladder must understate the
	// long-stream rate — the methodological difference the poster
	// highlights between Cloudflare and NDT.
	sat := netem.Path{
		Tech:     netem.SatGEO,
		DownMbps: 80,
		UpMbps:   5,
		BaseRTT:  units.LatencyFromMillis(600),
		JitterMS: 20,
		Loss:     0.002,
		BloatMS:  100,
		Shared:   0.5,
	}
	res, err := Simulate(sat, 0.2, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadMbps > 40 {
		t.Errorf("satellite ladder download = %v Mbps, should be slow-start limited well under 80", res.DownloadMbps)
	}
	// And the small object must be slower than the big one.
	if res.DownloadSamples[0] >= res.DownloadSamples[len(res.DownloadSamples)-1] {
		t.Errorf("samples should grow with object size: %v", res.DownloadSamples)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(testPath(), 0.3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(testPath(), 0.3, rng.New(7))
	if a.DownloadMbps != b.DownloadMbps || a.LossRate != b.LossRate {
		t.Error("same seed should reproduce")
	}
}

func TestToRecord(t *testing.T) {
	res := TestResult{DownloadMbps: 80, UploadMbps: 40, LatencyMS: 12, LossRate: 0.01}
	now := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	rec, err := res.ToRecord("c1", "XA-01-001", 64501, "fiber", now)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Dataset != "cloudflare" || rec.LatencyMS != 12 {
		t.Errorf("record = %+v", rec)
	}
	bad := TestResult{LossRate: 2}
	if _, err := bad.ToRecord("c2", "XA", 0, "", now); err == nil {
		t.Error("invalid result should fail record validation")
	}
}

func TestAggregateSpeed(t *testing.T) {
	v, err := aggregateSpeed([]float64{10, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if v < 50 || v > 100 {
		t.Errorf("90th pct aggregate = %v", v)
	}
	if _, err := aggregateSpeed(nil); err == nil {
		t.Error("empty samples should error")
	}
}
