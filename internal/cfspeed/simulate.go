package cfspeed

import (
	"fmt"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/netem"
	"iqb/internal/rng"
	"iqb/internal/stats"
	"iqb/internal/tcpmodel"
)

// Simulate produces the result a Cloudflare-style test would report for a
// subscriber on the given path, without sockets. Each ladder object is an
// independent short TCP transfer, so slow-start dominates the small
// objects exactly as it does in the real methodology — on high-BDP paths
// this underestimates relative to NDT's 10-second stream, which is the
// inter-dataset disagreement IQB's corroboration logic exists to absorb.
func Simulate(path netem.Path, rho float64, src *rng.Source) (TestResult, error) {
	if src == nil {
		src = rng.New(0)
	}
	var res TestResult

	for _, size := range DownloadLadder {
		run, err := tcpmodel.Run(path, tcpmodel.Config{
			Direction: tcpmodel.Download,
			Bytes:     size,
			Rho:       rho,
		}, src)
		if err != nil {
			return TestResult{}, fmt.Errorf("cfspeed: simulating %d byte download: %w", size, err)
		}
		res.DownloadSamples = append(res.DownloadSamples, run.Goodput.Mbps())
	}
	var err error
	if res.DownloadMbps, err = aggregateSpeed(res.DownloadSamples); err != nil {
		return TestResult{}, err
	}

	for _, size := range UploadLadder {
		run, err := tcpmodel.Run(path, tcpmodel.Config{
			Direction: tcpmodel.Upload,
			Bytes:     size,
			Rho:       rho,
		}, src)
		if err != nil {
			return TestResult{}, fmt.Errorf("cfspeed: simulating %d byte upload: %w", size, err)
		}
		res.UploadSamples = append(res.UploadSamples, run.Goodput.Mbps())
	}
	if res.UploadMbps, err = aggregateSpeed(res.UploadSamples); err != nil {
		return TestResult{}, err
	}

	pings := tcpmodel.Ping(path, LatencySamples, rho, src)
	ms := make([]float64, len(pings))
	for i, p := range pings {
		ms[i] = p.Milliseconds()
	}
	if res.LatencyMS, err = stats.Median(ms); err != nil {
		return TestResult{}, err
	}

	// Loss probes: Binomial(LossProbes, p) via per-probe draws.
	lost := 0
	for i := 0; i < LossProbes; i++ {
		st := path.Observe(rho, src)
		if src.Bool(float64(st.Loss)) {
			lost++
		}
	}
	res.LossRate = float64(lost) / float64(LossProbes)

	if err := res.validate(); err != nil {
		return TestResult{}, err
	}
	return res, nil
}

// ToRecord converts a test result into the unified dataset schema.
func (r TestResult) ToRecord(id, region string, asn uint32, tech string, t time.Time) (dataset.Record, error) {
	rec := dataset.NewRecord(id, "cloudflare", region, t)
	rec.ASN = asn
	rec.Tech = tech
	rec.SetValue(dataset.Download, r.DownloadMbps)
	rec.SetValue(dataset.Upload, r.UploadMbps)
	rec.SetValue(dataset.Latency, r.LatencyMS)
	rec.SetValue(dataset.Loss, r.LossRate)
	if err := rec.Validate(); err != nil {
		return dataset.Record{}, err
	}
	return rec, nil
}
