// Package cfspeed implements a Cloudflare-style speed test: instead of a
// single saturating stream (NDT's methodology), the client times a ladder
// of fixed-size HTTP transfers, samples latency with tiny requests, and
// estimates packet loss with a burst of probe requests. This is the
// "fundamentally different way" of measuring throughput the IQB poster
// leans on for cross-dataset corroboration.
//
// The server side is a net/http handler whose transfers are paced by a
// netem path, so a real HTTP client on localhost measures the emulated
// access network. Simulate produces equivalent results without sockets.
package cfspeed

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"iqb/internal/netem"
	"iqb/internal/rng"
	"iqb/internal/stats"
)

// DownloadLadder is the fixed download object ladder (bytes).
var DownloadLadder = []int64{100 << 10, 1 << 20, 10 << 20}

// UploadLadder is the fixed upload object ladder (bytes).
var UploadLadder = []int64{100 << 10, 1 << 20}

// LatencySamples is how many tiny requests time the idle RTT.
const LatencySamples = 20

// LossProbes is how many probe requests estimate packet loss.
const LossProbes = 500

// Handler serves the speed test endpoints:
//
//	GET  /__down?bytes=N   — N bytes, paced at the path's download rate
//	POST /__up             — discard body (client paces at its up rate)
//	GET  /__probe          — 204, or 404 when the emulated probe "drops"
//
// Latency is measured by timing /__down?bytes=0. The handler injects the
// path's emulated RTT as a server-side delay on every request.
type Handler struct {
	path netem.Path
	rho  float64

	mu  sync.Mutex
	src *rng.Source
}

// NewHandler builds a handler emulating path at utilization rho.
func NewHandler(path netem.Path, rho float64, seed uint64) (*Handler, error) {
	if err := path.Validate(); err != nil {
		return nil, err
	}
	return &Handler{path: path, rho: rho, src: rng.New(seed)}, nil
}

// observe draws a path state under the handler's lock.
func (h *Handler) observe() netem.State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.path.Observe(h.rho, h.src)
}

// lossDraw draws one probe-drop decision.
func (h *Handler) lossDraw(p float64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.src.Bool(p)
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	st := h.observe()
	// One emulated round trip before any response byte.
	time.Sleep(st.RTT.Duration())
	switch r.URL.Path {
	case "/__down":
		h.serveDown(w, r, st)
	case "/__up":
		h.serveUp(w, r)
	case "/__probe":
		if h.lossDraw(float64(st.Loss)) {
			http.Error(w, "probe dropped", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.NotFound(w, r)
	}
}

func (h *Handler) serveDown(w http.ResponseWriter, r *http.Request, st netem.State) {
	q := r.URL.Query().Get("bytes")
	n, err := strconv.ParseInt(q, 10, 64)
	if err != nil || n < 0 || n > 256<<20 {
		http.Error(w, "bad bytes parameter", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	w.WriteHeader(http.StatusOK)
	if n == 0 {
		return
	}
	shaper, err := netem.NewShaper(st.AvailDown)
	if err != nil {
		return
	}
	chunk := make([]byte, 64<<10)
	for n > 0 {
		c := int64(len(chunk))
		if c > n {
			c = n
		}
		shaper.Pace(int(c))
		if _, err := w.Write(chunk[:c]); err != nil {
			return // client went away
		}
		n -= c
	}
}

func (h *Handler) serveUp(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	n, err := io.Copy(io.Discard, r.Body)
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	w.Header().Set("X-Received-Bytes", strconv.FormatInt(n, 10))
	w.WriteHeader(http.StatusNoContent)
}

// TestResult is the aggregated outcome of a full Cloudflare-style test.
type TestResult struct {
	DownloadMbps float64
	UploadMbps   float64
	LatencyMS    float64 // median of latency samples
	LossRate     float64 // dropped probes / probes
	// Samples preserves the raw per-object speed measurements.
	DownloadSamples []float64
	UploadSamples   []float64
}

// aggregateSpeed applies the Cloudflare-style aggregation: the 90th
// percentile of the per-object speed samples, rewarding the sustained
// rate reached on the larger transfers without letting one outlier
// dominate.
func aggregateSpeed(samples []float64) (float64, error) {
	return stats.Percentile(samples, 90)
}

func (r TestResult) validate() error {
	if r.DownloadMbps < 0 || r.UploadMbps < 0 || r.LatencyMS < 0 {
		return fmt.Errorf("cfspeed: negative metric in result")
	}
	if r.LossRate < 0 || r.LossRate > 1 {
		return fmt.Errorf("cfspeed: loss %v out of [0,1]", r.LossRate)
	}
	return nil
}
