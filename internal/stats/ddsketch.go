package stats

import (
	"fmt"
	"math"
	"sort"
)

// DDSketch is a mergeable streaming quantile sketch with a relative-error
// guarantee (Masson, Lee & Rim, VLDB 2019): every returned quantile is
// within a factor (1±alpha) of an exact order statistic. Values map to
// geometrically sized buckets indexed by ceil(log_gamma(x)) with
// gamma = (1+alpha)/(1-alpha), and the sketch stores only bucket counts.
//
// Unlike TDigest, whose centroids depend on the order values arrive in,
// a DDSketch is a pure counting structure: the state built from a
// multiset of values is identical no matter how insertions or merges were
// interleaved. That order-independence is why the dataset store uses it
// as its sketch-index backend — quantiles served from sketches stay
// bit-identical across pipeline worker counts, preserving the documented
// determinism contract.
//
// Only non-negative values are accepted (all IQB metrics are
// non-negative); values indistinguishable from zero are counted in a
// dedicated zero bucket.
type DDSketch struct {
	alpha    float64
	gamma    float64
	lnGamma  float64
	bins     map[int]uint64
	zeros    uint64
	n        uint64
	min, max float64
}

// ddMinIndexable is the smallest value with its own log bucket; anything
// below it is treated as zero. Loss fractions at measurement resolution
// sit far above this.
const ddMinIndexable = 1e-9

// DefaultDDSketchAlpha is the relative accuracy used when none is given:
// 0.5% error, a few hundred buckets over the dynamic range of network
// metrics.
const DefaultDDSketchAlpha = 0.005

// NewDDSketch returns a sketch with relative accuracy alpha in (0, 1).
// Values outside that range fall back to DefaultDDSketchAlpha.
func NewDDSketch(alpha float64) *DDSketch {
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		alpha = DefaultDDSketchAlpha
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &DDSketch{
		alpha:   alpha,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		bins:    make(map[int]uint64),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Alpha returns the relative-accuracy parameter.
func (d *DDSketch) Alpha() float64 { return d.alpha }

// Add observes x. NaN and negative values are ignored.
func (d *DDSketch) Add(x float64) {
	if math.IsNaN(x) || x < 0 {
		return
	}
	d.n++
	if x < d.min {
		d.min = x
	}
	if x > d.max {
		d.max = x
	}
	if x < ddMinIndexable {
		d.zeros++
		return
	}
	d.bins[d.index(x)]++
}

func (d *DDSketch) index(x float64) int {
	return int(math.Ceil(math.Log(x) / d.lnGamma))
}

// value is the representative of bucket i: the point at most a factor
// (1+alpha) away from every member of the bucket.
func (d *DDSketch) value(i int) float64 {
	return 2 * math.Pow(d.gamma, float64(i)) / (d.gamma + 1)
}

// Count returns the number of observed values.
func (d *DDSketch) Count() float64 { return float64(d.n) }

// BinCount reports the number of occupied buckets (for tests and memory
// accounting).
func (d *DDSketch) BinCount() int { return len(d.bins) }

// Merge folds other into d; other is unchanged. Both sketches must share
// the same alpha, so their bucket boundaries line up exactly and the
// merge is a plain count addition.
func (d *DDSketch) Merge(other *DDSketch) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other.alpha != d.alpha {
		return fmt.Errorf("stats: merging ddsketches with different alpha (%v vs %v)", d.alpha, other.alpha)
	}
	for i, c := range other.bins {
		d.bins[i] += c
	}
	d.zeros += other.zeros
	d.n += other.n
	if other.min < d.min {
		d.min = other.min
	}
	if other.max > d.max {
		d.max = other.max
	}
	return nil
}

// Quantile returns the estimated q-quantile (q in [0, 1]). The rank
// convention matches Percentile's Hyndman-Fan type 7 at the extremes:
// q=0 returns the exact minimum and q=1 the exact maximum.
func (d *DDSketch) Quantile(q float64) (float64, error) {
	if d.n == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	if q == 0 {
		return d.min, nil
	}
	if q == 1 {
		return d.max, nil
	}
	rank := q * float64(d.n-1)
	cum := float64(d.zeros)
	if rank < cum {
		return 0, nil
	}
	keys := make([]int, 0, len(d.bins))
	for i := range d.bins {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	for _, i := range keys {
		cum += float64(d.bins[i])
		if rank < cum {
			v := d.value(i)
			if v < d.min {
				v = d.min
			}
			if v > d.max {
				v = d.max
			}
			return v, nil
		}
	}
	return d.max, nil
}
