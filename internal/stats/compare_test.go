package stats

import (
	"math"
	"testing"

	"iqb/internal/rng"
)

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	// Perfect positive linear relation.
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("Pearson = %v, %v, want 1", r, err)
	}
	// Perfect negative.
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", r)
	}
	// Independence: near zero on large noise samples.
	src := rng.New(1)
	a := make([]float64, 20000)
	b := make([]float64, 20000)
	for i := range a {
		a[i] = src.Normal(0, 1)
		b[i] = src.Normal(0, 1)
	}
	r, _ = Pearson(a, b)
	if math.Abs(r) > 0.03 {
		t.Errorf("independent Pearson = %v, want ~0", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single pair should error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("constant sample should error")
	}
}

func TestSpearman(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	// Monotone but nonlinear: Spearman 1, Pearson < 1.
	ys := []float64{1, 8, 27, 64, 125}
	rho, err := Spearman(xs, ys)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Errorf("Spearman = %v, %v, want 1", rho, err)
	}
	pr, _ := Pearson(xs, ys)
	if pr >= 1 {
		t.Errorf("Pearson on cubic = %v, should be < 1", pr)
	}
	// Reversed order.
	rev := []float64{5, 4, 3, 2, 1}
	rho, _ = Spearman(xs, rev)
	if math.Abs(rho+1) > 1e-12 {
		t.Errorf("Spearman = %v, want -1", rho)
	}
	if _, err := Spearman([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestRanksTies(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ranks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKSStatisticIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	d, err := KSStatistic(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Errorf("KS of identical samples = %v, want 0", d)
	}
}

func TestKSStatisticDisjoint(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{10, 11, 12}
	d, err := KSStatistic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSStatisticShifted(t *testing.T) {
	src := rng.New(7)
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	c := make([]float64, 5000)
	for i := range a {
		a[i] = src.Normal(0, 1)
		b[i] = src.Normal(0, 1)
		c[i] = src.Normal(1, 1) // shifted by one sigma
	}
	same, _ := KSStatistic(a, b)
	diff, _ := KSStatistic(a, c)
	if same > 0.05 {
		t.Errorf("same-distribution KS = %v, expected small", same)
	}
	// KS of two normals one sigma apart is ~0.38.
	if diff < 0.3 {
		t.Errorf("shifted KS = %v, expected ~0.38", diff)
	}
	// A clearly tiny statistic is never significant at these sizes (the
	// empirical `same` value sits near the 5% critical line by design,
	// so it is not a stable assertion target).
	if KSSignificant(0.005, len(a), len(b)) {
		t.Error("tiny KS statistic should not be significant")
	}
	if !KSSignificant(diff, len(a), len(c)) {
		t.Error("shifted distribution should be significant")
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KSStatistic(nil, []float64{1}); err != ErrNoData {
		t.Error("empty first sample should be ErrNoData")
	}
	if _, err := KSStatistic([]float64{1}, nil); err != ErrNoData {
		t.Error("empty second sample should be ErrNoData")
	}
	if KSSignificant(1, 0, 5) {
		t.Error("zero-size sample can never be significant")
	}
}
