package stats

import (
	"fmt"

	"iqb/internal/rng"
)

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point float64
	Lo    float64
	Hi    float64
	Level float64 // e.g. 0.95
}

// String renders the interval compactly.
func (c CI) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g] @%.0f%%", c.Point, c.Lo, c.Hi, c.Level*100)
}

// BootstrapPercentile estimates a confidence interval for the q-th
// percentile of xs using the nonparametric bootstrap with the given
// number of resamples (e.g. 1000) at the given level (e.g. 0.95). The
// source makes the procedure deterministic.
func BootstrapPercentile(xs []float64, q float64, resamples int, level float64, src *rng.Source) (CI, error) {
	return bootstrap(xs, resamples, level, src, func(sample []float64) (float64, error) {
		return Percentile(sample, q)
	})
}

// BootstrapMean estimates a confidence interval for the mean of xs.
func BootstrapMean(xs []float64, resamples int, level float64, src *rng.Source) (CI, error) {
	return bootstrap(xs, resamples, level, src, Mean)
}

func bootstrap(xs []float64, resamples int, level float64, src *rng.Source, stat func([]float64) (float64, error)) (CI, error) {
	if len(xs) == 0 {
		return CI{}, ErrNoData
	}
	if resamples <= 0 {
		return CI{}, fmt.Errorf("stats: bootstrap needs >=1 resample, got %d", resamples)
	}
	if level <= 0 || level >= 1 {
		return CI{}, fmt.Errorf("stats: confidence level %v out of (0,1)", level)
	}
	if src == nil {
		src = rng.New(0)
	}
	point, err := stat(xs)
	if err != nil {
		return CI{}, err
	}
	estimates := make([]float64, resamples)
	sample := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range sample {
			sample[i] = xs[src.Intn(len(xs))]
		}
		est, err := stat(sample)
		if err != nil {
			return CI{}, err
		}
		estimates[r] = est
	}
	alpha := (1 - level) / 2
	bounds, err := Percentiles(estimates, alpha*100, (1-alpha)*100)
	if err != nil {
		return CI{}, err
	}
	return CI{Point: point, Lo: bounds[0], Hi: bounds[1], Level: level}, nil
}
