package stats

// QuantileSketch is the common surface of the package's streaming
// quantile estimators: fold values in one at a time, then ask for any
// quantile. Both mergeable sketches implement it; they differ in the
// trade-off they make:
//
//   - TDigest: tighter error near the tails for a given size, but its
//     centroid state depends on insertion and merge order, so two
//     digests over the same multiset can answer slightly differently.
//   - DDSketch: a uniform relative-error guarantee and fully
//     order-independent state — the choice wherever deterministic
//     answers are part of the contract (the dataset store's sketch
//     index).
//
// PSquare tracks a single pre-declared quantile in O(1) space and is
// deliberately outside this interface (it cannot answer arbitrary
// quantiles, nor merge).
type QuantileSketch interface {
	// Add observes one value.
	Add(x float64)
	// Quantile returns the estimated q-quantile, q in [0, 1].
	Quantile(q float64) (float64, error)
	// Count returns the total observed weight.
	Count() float64
}

var (
	_ QuantileSketch = (*TDigest)(nil)
	_ QuantileSketch = (*DDSketch)(nil)
)
