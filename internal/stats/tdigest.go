package stats

import (
	"math"
	"sort"
)

// TDigest is a mergeable streaming quantile sketch (Dunning's t-digest,
// merging variant). Unlike PSquare it answers arbitrary quantiles after
// ingestion and two digests can be merged, which suits per-region
// aggregation fan-in.
type TDigest struct {
	compression float64
	processed   []centroid
	unprocessed []centroid
	count       float64
	min, max    float64
}

type centroid struct {
	mean   float64
	weight float64
}

// NewTDigest returns a digest with the given compression (typically
// 100-1000; larger is more accurate and bigger). Values <= 0 default
// to 200.
func NewTDigest(compression float64) *TDigest {
	if compression <= 0 {
		compression = 200
	}
	return &TDigest{
		compression: compression,
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Add observes x with weight 1.
func (t *TDigest) Add(x float64) { t.AddWeighted(x, 1) }

// AddWeighted observes x with the given positive weight.
func (t *TDigest) AddWeighted(x, w float64) {
	if w <= 0 || math.IsNaN(x) {
		return
	}
	t.unprocessed = append(t.unprocessed, centroid{mean: x, weight: w})
	t.count += w
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	if len(t.unprocessed) > 8*int(t.compression) {
		t.process()
	}
}

// Merge folds other into t. other is unchanged.
func (t *TDigest) Merge(other *TDigest) {
	if other == nil {
		return
	}
	other.process()
	for _, c := range other.processed {
		t.unprocessed = append(t.unprocessed, c)
		t.count += c.weight
	}
	if other.min < t.min {
		t.min = other.min
	}
	if other.max > t.max {
		t.max = other.max
	}
	t.process()
}

// process merges unprocessed centroids into the compressed processed set.
func (t *TDigest) process() {
	if len(t.unprocessed) == 0 {
		return
	}
	all := append(t.processed, t.unprocessed...)
	t.unprocessed = t.unprocessed[:0]
	sort.Slice(all, func(i, j int) bool { return all[i].mean < all[j].mean })

	var out []centroid
	var soFar float64
	for _, c := range all {
		if len(out) == 0 {
			out = append(out, c)
			continue
		}
		last := &out[len(out)-1]
		proposed := last.weight + c.weight
		q := (soFar + proposed/2) / t.count
		limit := 4 * t.count * q * (1 - q) / t.compression
		if proposed <= limit {
			last.mean += (c.mean - last.mean) * c.weight / proposed
			last.weight = proposed
		} else {
			soFar += last.weight
			out = append(out, c)
		}
	}
	t.processed = out
}

// Count returns the total observed weight.
func (t *TDigest) Count() float64 { return t.count }

// Quantile returns the estimated q-quantile (q in [0,1]).
func (t *TDigest) Quantile(q float64) (float64, error) {
	if t.count == 0 {
		return 0, ErrNoData
	}
	t.process()
	if q <= 0 {
		return t.min, nil
	}
	if q >= 1 {
		return t.max, nil
	}
	cs := t.processed
	if len(cs) == 1 {
		return cs[0].mean, nil
	}
	target := q * t.count
	var cum float64
	for i, c := range cs {
		mid := cum + c.weight/2
		if target < mid {
			if i == 0 {
				// Interpolate from the minimum.
				frac := target / mid
				return t.min + frac*(c.mean-t.min), nil
			}
			prev := cs[i-1]
			prevMid := cum - prev.weight/2
			frac := (target - prevMid) / (mid - prevMid)
			return prev.mean + frac*(c.mean-prev.mean), nil
		}
		cum += c.weight
	}
	// Interpolate toward the maximum.
	last := cs[len(cs)-1]
	lastMid := t.count - last.weight/2
	if target <= lastMid || t.count == lastMid {
		return last.mean, nil
	}
	frac := (target - lastMid) / (t.count - lastMid)
	return last.mean + frac*(t.max-last.mean), nil
}

// CentroidCount reports the current compressed size (for tests).
func (t *TDigest) CentroidCount() int {
	t.process()
	return len(t.processed)
}
