package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"iqb/internal/rng"
)

func TestPercentileBasic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{100, 10},
		{50, 5.5},
		{25, 3.25},
		{95, 9.55},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.q)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.q, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestPercentileUnsortedInputUnmodified(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	got, err := Percentile(xs, 50)
	if err != nil || got != 3 {
		t.Errorf("median of shuffled 1..5 = %v (err %v), want 3", got, err)
	}
	if xs[0] != 5 || xs[4] != 3 {
		t.Error("input slice was modified")
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrNoData {
		t.Errorf("empty input: err = %v, want ErrNoData", err)
	}
	for _, q := range []float64{-1, 101, math.NaN()} {
		if _, err := Percentile([]float64{1}, q); err == nil {
			t.Errorf("q=%v should error", q)
		}
	}
}

func TestPercentileSingle(t *testing.T) {
	for _, q := range []float64{0, 50, 95, 100} {
		got, err := Percentile([]float64{7}, q)
		if err != nil || got != 7 {
			t.Errorf("single-element percentile(%v) = %v, %v", q, got, err)
		}
	}
}

func TestInterpolationRules(t *testing.T) {
	xs := []float64{10, 20} // pos for q=25 is 0.25
	tests := []struct {
		ip   Interpolation
		want float64
	}{
		{Linear, 12.5},
		{Lower, 10},
		{Higher, 20},
		{Nearest, 10},
		{Midpoint, 15},
	}
	for _, tt := range tests {
		got, err := PercentileWith(xs, 25, tt.ip)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("%v: got %v, want %v", tt.ip, got, tt.want)
		}
	}
}

func TestInterpolationStrings(t *testing.T) {
	names := map[Interpolation]string{
		Linear: "linear", Lower: "lower", Higher: "higher",
		Nearest: "nearest", Midpoint: "midpoint",
	}
	for ip, want := range names {
		if got := ip.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if Interpolation(42).String() == "" {
		t.Error("unknown interpolation should still format")
	}
}

// Property: percentile is bounded by min and max and monotone in q.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, q1, q2 uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Restrict to magnitudes a network metric could plausibly take;
			// interpolation across ±1e308 overflows by design.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := float64(q1) / 255 * 100
		qb := float64(q2) / 255 * 100
		if qa > qb {
			qa, qb = qb, qa
		}
		pa, err1 := Percentile(xs, qa)
		pb, err2 := Percentile(xs, qb)
		if err1 != nil || err2 != nil {
			return false
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return pa >= lo && pb <= hi && pa <= pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{3, 1, 2}
	got, err := Percentiles(xs, 0, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := Percentiles(nil, 50); err != ErrNoData {
		t.Error("empty input should be ErrNoData")
	}
	if _, err := Percentiles(xs, -5); err == nil {
		t.Error("bad q should error")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 8 || s.Min != 2 || s.Max != 9 {
		t.Errorf("count/min/max = %d/%v/%v", s.Count, s.Min, s.Max)
	}
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.Stddev-2) > 1e-9 {
		t.Errorf("stddev = %v, want 2", s.Stddev)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v, want 4.5", s.Median)
	}
	if s.P95 < s.P90 || s.P90 < s.Median {
		t.Error("percentiles not monotone")
	}
	if _, err := Summarize(nil); err != ErrNoData {
		t.Error("empty summarize should be ErrNoData")
	}
}

func TestMeanStddev(t *testing.T) {
	if _, err := Mean(nil); err != ErrNoData {
		t.Error("Mean(nil) should be ErrNoData")
	}
	if _, err := Stddev(nil); err != ErrNoData {
		t.Error("Stddev(nil) should be ErrNoData")
	}
	m, _ := Mean([]float64{1, 2, 3})
	if m != 2 {
		t.Errorf("mean = %v", m)
	}
	sd, _ := Stddev([]float64{2, 2, 2})
	if sd != 0 {
		t.Errorf("stddev of constant = %v", sd)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if q := e.Quantile(0.5); math.Abs(q-2.5) > 1e-9 {
		t.Errorf("Quantile(0.5) = %v, want 2.5", q)
	}
	if q := e.Quantile(-1); q != 1 {
		t.Errorf("clamped low quantile = %v, want 1", q)
	}
	if q := e.Quantile(2); q != 4 {
		t.Errorf("clamped high quantile = %v, want 4", q)
	}
	if _, err := NewECDF(nil); err != ErrNoData {
		t.Error("empty ECDF should be ErrNoData")
	}
}

func TestPSquareAgainstExact(t *testing.T) {
	src := rng.New(21)
	for _, q := range []float64{0.5, 0.9, 0.95} {
		ps, err := NewPSquare(q)
		if err != nil {
			t.Fatal(err)
		}
		var xs []float64
		for i := 0; i < 20000; i++ {
			v := src.LogNormalFromMoments(100, 0.8)
			ps.Add(v)
			xs = append(xs, v)
		}
		exact, _ := Percentile(xs, q*100)
		got, err := ps.Value()
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-exact) / exact; rel > 0.05 {
			t.Errorf("q=%v: p-square %v vs exact %v (rel %v)", q, got, exact, rel)
		}
	}
}

func TestPSquareSmallSamples(t *testing.T) {
	ps, _ := NewPSquare(0.5)
	if _, err := ps.Value(); err != ErrNoData {
		t.Error("empty p-square should be ErrNoData")
	}
	ps.Add(3)
	ps.Add(1)
	ps.Add(2)
	v, err := ps.Value()
	if err != nil || v != 2 {
		t.Errorf("small-sample median = %v (err %v), want 2", v, err)
	}
	if ps.Count() != 3 {
		t.Errorf("Count = %d", ps.Count())
	}
}

func TestPSquareBadQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, math.NaN()} {
		if _, err := NewPSquare(q); err == nil {
			t.Errorf("NewPSquare(%v) should error", q)
		}
	}
}

func TestTDigestAgainstExact(t *testing.T) {
	src := rng.New(33)
	td := NewTDigest(200)
	var xs []float64
	for i := 0; i < 50000; i++ {
		v := src.LogNormalFromMoments(50, 1.2)
		td.Add(v)
		xs = append(xs, v)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.05, 0.5, 0.9, 0.95, 0.99} {
		got, err := td.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		exact := PercentileSorted(xs, q*100, Linear)
		if rel := math.Abs(got-exact) / exact; rel > 0.05 {
			t.Errorf("q=%v: t-digest %v vs exact %v (rel %v)", q, got, exact, rel)
		}
	}
}

func TestTDigestEdges(t *testing.T) {
	td := NewTDigest(0) // defaults compression
	if _, err := td.Quantile(0.5); err != ErrNoData {
		t.Error("empty digest should be ErrNoData")
	}
	td.Add(5)
	if v, _ := td.Quantile(0.5); v != 5 {
		t.Errorf("single value median = %v", v)
	}
	td.Add(10)
	if v, _ := td.Quantile(0); v != 5 {
		t.Errorf("q=0 should be min, got %v", v)
	}
	if v, _ := td.Quantile(1); v != 10 {
		t.Errorf("q=1 should be max, got %v", v)
	}
	td.AddWeighted(7, -1) // ignored
	td.AddWeighted(math.NaN(), 1)
	if td.Count() != 2 {
		t.Errorf("invalid adds should be ignored; count = %v", td.Count())
	}
}

func TestTDigestMerge(t *testing.T) {
	src := rng.New(55)
	a, b, whole := NewTDigest(200), NewTDigest(200), NewTDigest(200)
	for i := 0; i < 20000; i++ {
		v := src.Normal(100, 15)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		whole.Add(v)
	}
	a.Merge(b)
	a.Merge(nil) // no-op
	if a.Count() != whole.Count() {
		t.Errorf("merged count = %v, want %v", a.Count(), whole.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.95} {
		ma, _ := a.Quantile(q)
		mw, _ := whole.Quantile(q)
		if math.Abs(ma-mw) > 1.5 {
			t.Errorf("q=%v merged %v vs whole %v", q, ma, mw)
		}
	}
}

func TestTDigestCompressionBounds(t *testing.T) {
	td := NewTDigest(100)
	src := rng.New(77)
	for i := 0; i < 100000; i++ {
		td.Add(src.Float64())
	}
	// The q(1-q) size bound admits many small centroids at the tails, so
	// the practical bound is a small multiple of the compression, far
	// below the 100k samples ingested.
	if n := td.CentroidCount(); n > 1000 {
		t.Errorf("centroid count %d exceeds 10x compression", n)
	}
}

// Property: t-digest quantiles are monotone in q.
func TestTDigestMonotone(t *testing.T) {
	src := rng.New(88)
	td := NewTDigest(100)
	for i := 0; i < 5000; i++ {
		td.Add(src.Pareto(1, 1.2))
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v, err := td.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-9 {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramLinear(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // underflow
	h.Add(11) // overflow
	if h.Total() != 12 || h.Underflow() != 1 || h.Overflow() != 1 {
		t.Errorf("total/under/over = %d/%d/%d", h.Total(), h.Underflow(), h.Overflow())
	}
	for i, c := range h.Counts() {
		if c != 1 {
			t.Errorf("bin %d count = %d, want 1", i, c)
		}
	}
	edges := h.Edges()
	if len(edges) != 11 || edges[0] != 0 || edges[10] != 10 {
		t.Errorf("edges = %v", edges)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, _ := NewHistogram(0, 100, 100)
	src := rng.New(99)
	var xs []float64
	for i := 0; i < 50000; i++ {
		v := src.Range(0, 100)
		h.Add(v)
		xs = append(xs, v)
	}
	for _, q := range []float64{0.25, 0.5, 0.95} {
		got, err := h.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		exact, _ := Percentile(xs, q*100)
		if math.Abs(got-exact) > 1.5 {
			t.Errorf("q=%v: histogram %v vs exact %v", q, got, exact)
		}
	}
}

func TestHistogramLog(t *testing.T) {
	h, err := NewLogHistogram(1, 1000, 30)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(5)
	h.Add(50)
	h.Add(500)
	if h.Total() != 3 {
		t.Errorf("total = %d", h.Total())
	}
	m, _ := h.Mean()
	if math.Abs(m-185) > 1e-6 {
		t.Errorf("mean = %v", m)
	}
	if _, err := NewLogHistogram(0, 10, 5); err == nil {
		t.Error("log histogram with lo=0 should error")
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range should error")
	}
	h, _ := NewHistogram(0, 1, 2)
	if _, err := h.Mean(); err != ErrNoData {
		t.Error("empty mean should be ErrNoData")
	}
	if _, err := h.Quantile(0.5); err != ErrNoData {
		t.Error("empty quantile should be ErrNoData")
	}
}

func TestBootstrapPercentile(t *testing.T) {
	src := rng.New(123)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = src.Normal(100, 10)
	}
	ci, err := BootstrapPercentile(xs, 95, 500, 0.95, src)
	if err != nil {
		t.Fatal(err)
	}
	// True 95th percentile of N(100,10) is ~116.4.
	if ci.Point < 114 || ci.Point > 119 {
		t.Errorf("point = %v, want ~116.4", ci.Point)
	}
	if ci.Lo > ci.Point || ci.Hi < ci.Point {
		t.Errorf("interval %v does not contain point", ci)
	}
	if ci.Hi-ci.Lo <= 0 || ci.Hi-ci.Lo > 10 {
		t.Errorf("interval width suspicious: %v", ci)
	}
	if ci.String() == "" {
		t.Error("CI.String should be non-empty")
	}
}

func TestBootstrapMeanDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a, err := BootstrapMean(xs, 200, 0.9, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := BootstrapMean(xs, 200, 0.9, rng.New(5))
	if a != b {
		t.Errorf("same seed should reproduce: %v vs %v", a, b)
	}
	// nil source uses a fixed default and must not crash.
	if _, err := BootstrapMean(xs, 50, 0.9, nil); err != nil {
		t.Errorf("nil source: %v", err)
	}
}

func TestBootstrapErrors(t *testing.T) {
	if _, err := BootstrapMean(nil, 100, 0.95, nil); err != ErrNoData {
		t.Error("empty input should be ErrNoData")
	}
	if _, err := BootstrapMean([]float64{1}, 0, 0.95, nil); err == nil {
		t.Error("zero resamples should error")
	}
	if _, err := BootstrapMean([]float64{1}, 10, 1.5, nil); err == nil {
		t.Error("bad level should error")
	}
}

func BenchmarkPercentileExact10k(b *testing.B) {
	src := rng.New(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = src.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Percentile(xs, 95)
	}
}

func BenchmarkPSquareAdd(b *testing.B) {
	ps, _ := NewPSquare(0.95)
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.Add(src.Float64())
	}
}

func BenchmarkTDigestAdd(b *testing.B) {
	td := NewTDigest(200)
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		td.Add(src.Float64())
	}
}
