package stats

import (
	"fmt"
	"math"
)

// PSquare is a streaming quantile estimator implementing the P-square
// algorithm (Jain & Chlamtac 1985). It tracks a single quantile with five
// markers and O(1) memory, which lets ingestion pipelines estimate the
// 95th percentile without retaining raw measurements.
type PSquare struct {
	q       float64 // target quantile in (0, 1)
	n       int     // observations seen
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based)
	desired [5]float64
	incr    [5]float64
}

// NewPSquare returns an estimator for quantile q in (0, 1).
func NewPSquare(q float64) (*PSquare, error) {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		return nil, fmt.Errorf("stats: p-square quantile %v out of (0,1)", q)
	}
	p := &PSquare{q: q}
	p.pos = [5]float64{1, 2, 3, 4, 5}
	p.desired = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p, nil
}

// Add observes one value.
func (p *PSquare) Add(x float64) {
	if p.n < 5 {
		p.heights[p.n] = x
		p.n++
		if p.n == 5 {
			// Insertion-sort the initial heights.
			for i := 1; i < 5; i++ {
				for j := i; j > 0 && p.heights[j-1] > p.heights[j]; j-- {
					p.heights[j-1], p.heights[j] = p.heights[j], p.heights[j-1]
				}
			}
		}
		return
	}
	p.n++

	// Find the cell k containing x and clamp extremes.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.desired {
		p.desired[i] += p.incr[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.desired[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *PSquare) parabolic(i int, d float64) float64 {
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *PSquare) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.heights[i] + d*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// Count returns the number of observations so far.
func (p *PSquare) Count() int { return p.n }

// Value returns the current quantile estimate. Before five observations it
// falls back to an exact small-sample percentile.
func (p *PSquare) Value() (float64, error) {
	if p.n == 0 {
		return 0, ErrNoData
	}
	if p.n < 5 {
		xs := make([]float64, p.n)
		copy(xs, p.heights[:p.n])
		return Percentile(xs, p.q*100)
	}
	return p.heights[2], nil
}
