// Package stats implements the statistical machinery the IQB framework
// aggregates measurements with: exact percentiles under several
// interpolation rules (the framework mandates the 95th percentile),
// streaming quantile estimators (P-square and t-digest) for pipelines that
// cannot hold raw samples, histograms, empirical CDFs, bootstrap
// confidence intervals, and descriptive summaries.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData is returned by aggregations over empty sample sets.
var ErrNoData = errors.New("stats: no data")

// Interpolation selects how a percentile between two order statistics is
// computed. The names follow the Hyndman & Fan taxonomy where applicable.
type Interpolation int

const (
	// Linear interpolates between the adjacent order statistics
	// (Hyndman-Fan type 7, the default of most statistics packages).
	Linear Interpolation = iota
	// Lower takes the largest order statistic below the position.
	Lower
	// Higher takes the smallest order statistic above the position.
	Higher
	// Nearest takes the closest order statistic.
	Nearest
	// Midpoint averages the two adjacent order statistics.
	Midpoint
)

// String names the interpolation rule.
func (ip Interpolation) String() string {
	switch ip {
	case Linear:
		return "linear"
	case Lower:
		return "lower"
	case Higher:
		return "higher"
	case Nearest:
		return "nearest"
	case Midpoint:
		return "midpoint"
	default:
		return fmt.Sprintf("Interpolation(%d)", int(ip))
	}
}

// Percentile returns the q-th percentile (q in [0, 100]) of xs using
// linear interpolation. xs need not be sorted; it is not modified.
func Percentile(xs []float64, q float64) (float64, error) {
	return PercentileWith(xs, q, Linear)
}

// PercentileWith is Percentile with an explicit interpolation rule.
func PercentileWith(xs []float64, q float64, ip Interpolation) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 100 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: percentile %v out of [0,100]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, q, ip), nil
}

// PercentileSorted computes the q-th percentile of an already sorted
// slice without copying. It panics if xs is empty; callers that cannot
// guarantee data should use Percentile.
func PercentileSorted(xs []float64, q float64, ip Interpolation) float64 {
	if len(xs) == 0 {
		panic("stats: PercentileSorted on empty slice")
	}
	return percentileSorted(xs, q, ip)
}

func percentileSorted(sorted []float64, q float64, ip Interpolation) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q / 100 * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	frac := pos - float64(lo)
	switch ip {
	case Lower:
		return sorted[lo]
	case Higher:
		return sorted[hi]
	case Nearest:
		if frac < 0.5 {
			return sorted[lo]
		}
		return sorted[hi]
	case Midpoint:
		return (sorted[lo] + sorted[hi]) / 2
	default: // Linear
		return sorted[lo] + frac*(sorted[hi]-sorted[lo])
	}
}

// Percentiles computes several percentiles in one sort. The result is in
// the same order as qs.
func Percentiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 100 || math.IsNaN(q) {
			return nil, fmt.Errorf("stats: percentile %v out of [0,100]", q)
		}
		out[i] = percentileSorted(sorted, q, Linear)
	}
	return out, nil
}

// Median is Percentile(xs, 50).
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Summary holds descriptive statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P5     float64
	P25    float64
	Median float64
	P75    float64
	P90    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrNoData
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	sum, sum2 := 0.0, 0.0
	for _, x := range sorted {
		sum += x
		sum2 += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sum2/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(sorted),
		Mean:   mean,
		Stddev: math.Sqrt(variance),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P5:     percentileSorted(sorted, 5, Linear),
		P25:    percentileSorted(sorted, 25, Linear),
		Median: percentileSorted(sorted, 50, Linear),
		P75:    percentileSorted(sorted, 75, Linear),
		P90:    percentileSorted(sorted, 90, Linear),
		P95:    percentileSorted(sorted, 95, Linear),
		P99:    percentileSorted(sorted, 99, Linear),
	}, nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	mean, _ := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs))), nil
}

// ECDF is an empirical cumulative distribution function over a fixed
// sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (copied and sorted).
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// At returns the fraction of samples <= x.
func (e *ECDF) At(x float64) float64 {
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (q in [0, 1]) via linear interpolation.
func (e *ECDF) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return percentileSorted(e.sorted, q*100, Linear)
}

// Len returns the number of samples.
func (e *ECDF) Len() int { return len(e.sorted) }
