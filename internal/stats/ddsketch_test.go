package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestDDSketchEmpty(t *testing.T) {
	d := NewDDSketch(0.01)
	if _, err := d.Quantile(0.5); !errors.Is(err, ErrNoData) {
		t.Errorf("empty sketch should return ErrNoData, got %v", err)
	}
	if d.Count() != 0 {
		t.Errorf("Count = %v", d.Count())
	}
}

func TestDDSketchDefaultAlpha(t *testing.T) {
	for _, bad := range []float64{0, -1, 1, 2, math.NaN()} {
		if a := NewDDSketch(bad).Alpha(); a != DefaultDDSketchAlpha {
			t.Errorf("alpha(%v) = %v, want default", bad, a)
		}
	}
}

func TestDDSketchQuantileErrors(t *testing.T) {
	d := NewDDSketch(0.01)
	d.Add(1)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := d.Quantile(q); err == nil {
			t.Errorf("quantile %v should error", q)
		}
	}
}

func TestDDSketchIgnoresInvalid(t *testing.T) {
	d := NewDDSketch(0.01)
	d.Add(math.NaN())
	d.Add(-5)
	if d.Count() != 0 {
		t.Errorf("invalid values counted: %v", d.Count())
	}
}

func TestDDSketchRelativeAccuracy(t *testing.T) {
	const alpha = 0.01
	src := rand.New(rand.NewSource(7))
	d := NewDDSketch(alpha)
	xs := make([]float64, 20000)
	for i := range xs {
		// Log-normal spanning several decades, like throughput values.
		xs[i] = math.Exp(src.NormFloat64()*1.5 + 3)
		d.Add(xs[i])
	}
	for _, q := range []float64{0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99} {
		exact, err := Percentile(xs, q*100)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-exact) / exact; rel > 2*alpha {
			t.Errorf("q=%v: sketch %v vs exact %v, rel err %v > %v", q, got, exact, rel, 2*alpha)
		}
	}
	// Extremes are exact.
	if v, _ := d.Quantile(0); v != minOf(xs) {
		t.Errorf("q=0 = %v, want exact min %v", v, minOf(xs))
	}
	if v, _ := d.Quantile(1); v != maxOf(xs) {
		t.Errorf("q=1 = %v, want exact max %v", v, maxOf(xs))
	}
}

// TestDDSketchOrderIndependence is the property the dataset store's
// determinism contract rests on: any insertion interleaving and any
// merge topology over the same value multiset yields bit-identical
// quantiles.
func TestDDSketchOrderIndependence(t *testing.T) {
	src := rand.New(rand.NewSource(11))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = math.Exp(src.NormFloat64() * 2)
	}
	forward := NewDDSketch(0.005)
	for _, x := range xs {
		forward.Add(x)
	}
	backward := NewDDSketch(0.005)
	for i := len(xs) - 1; i >= 0; i-- {
		backward.Add(xs[i])
	}
	// Striped across 7 sketches then merged, like shards merging on read.
	parts := make([]*DDSketch, 7)
	for i := range parts {
		parts[i] = NewDDSketch(0.005)
	}
	for i, x := range xs {
		parts[i%7].Add(x)
	}
	merged := NewDDSketch(0.005)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0.0; q <= 1.0; q += 0.05 {
		a, err := forward.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := backward.Quantile(q)
		c, _ := merged.Quantile(q)
		if a != b || a != c {
			t.Errorf("q=%v: forward %v backward %v merged %v not identical", q, a, b, c)
		}
	}
}

func TestDDSketchMergeAlphaMismatch(t *testing.T) {
	a := NewDDSketch(0.01)
	b := NewDDSketch(0.02)
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Error("merging different alphas should error")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merging nil should be a no-op, got %v", err)
	}
	if err := a.Merge(NewDDSketch(0.02)); err != nil {
		t.Errorf("merging an empty sketch should be a no-op, got %v", err)
	}
}

func TestDDSketchZeros(t *testing.T) {
	d := NewDDSketch(0.01)
	for i := 0; i < 90; i++ {
		d.Add(0)
	}
	for i := 0; i < 10; i++ {
		d.Add(100)
	}
	if v, err := d.Quantile(0.5); err != nil || v != 0 {
		t.Errorf("median of mostly-zeros = %v, %v", v, err)
	}
	if v, err := d.Quantile(0.95); err != nil || math.Abs(v-100)/100 > 0.02 {
		t.Errorf("p95 = %v, %v, want ~100", v, err)
	}
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
