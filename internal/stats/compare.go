package stats

import (
	"fmt"
	"math"
	"sort"
)

// Pearson returns the Pearson linear correlation coefficient of the
// paired samples xs and ys.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: paired samples differ in length: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: correlation needs >= 2 pairs, got %d", len(xs))
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: correlation undefined for a constant sample")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ranks assigns average ranks (1-based) with tie handling.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Spearman returns the Spearman rank correlation of the paired samples,
// which is what cross-dataset agreement checks should use: the datasets
// measure throughput differently, so only the orderings are comparable.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: paired samples differ in length: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: correlation needs >= 2 pairs, got %d", len(xs))
	}
	return Pearson(ranks(xs), ranks(ys))
}

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic: the
// maximum distance between the empirical CDFs of xs and ys. It is the
// distribution-level disagreement measure between two datasets'
// measurements of the same population.
func KSStatistic(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, ErrNoData
	}
	a := make([]float64, len(xs))
	copy(a, xs)
	sort.Float64s(a)
	b := make([]float64, len(ys))
	copy(b, ys)
	sort.Float64s(b)

	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Evaluate both empirical CDFs just past the next distinct value,
		// consuming ties from both samples together.
		x := math.Min(a[i], b[j])
		for i < len(a) && a[i] == x {
			i++
		}
		for j < len(b) && b[j] == x {
			j++
		}
		fa := float64(i) / float64(len(a))
		fb := float64(j) / float64(len(b))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// KSSignificant reports whether the KS statistic rejects "same
// distribution" at alpha = 0.05 using the asymptotic two-sample critical
// value c(alpha)·sqrt((n+m)/(n·m)) with c(0.05) = 1.358.
func KSSignificant(d float64, n, m int) bool {
	if n == 0 || m == 0 {
		return false
	}
	critical := 1.358 * math.Sqrt(float64(n+m)/float64(n*m))
	return d > critical
}
