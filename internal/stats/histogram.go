package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bin histogram over [Lo, Hi) with overflow and
// underflow counters. It supports linear and logarithmic bin spacing;
// logarithmic spacing suits throughput distributions that span three
// orders of magnitude.
type Histogram struct {
	lo, hi    float64
	log       bool
	counts    []uint64
	under     uint64
	over      uint64
	total     uint64
	sum       float64
	edgeCache []float64
}

// NewHistogram builds a linear histogram with bins equal-width bins over
// [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs >=1 bin, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%v,%v) is empty", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]uint64, bins)}, nil
}

// NewLogHistogram builds a histogram whose bins are equal-width in
// log-space over [lo, hi); lo must be positive.
func NewLogHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if lo <= 0 {
		return nil, fmt.Errorf("stats: log histogram needs lo > 0, got %v", lo)
	}
	h, err := NewHistogram(lo, hi, bins)
	if err != nil {
		return nil, err
	}
	h.log = true
	return h, nil
}

// Add observes x.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		h.counts[h.binOf(x)]++
	}
}

func (h *Histogram) binOf(x float64) int {
	var frac float64
	if h.log {
		frac = (math.Log(x) - math.Log(h.lo)) / (math.Log(h.hi) - math.Log(h.lo))
	} else {
		frac = (x - h.lo) / (h.hi - h.lo)
	}
	i := int(frac * float64(len(h.counts)))
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// Edges returns the bins+1 bin boundaries.
func (h *Histogram) Edges() []float64 {
	if h.edgeCache != nil {
		return h.edgeCache
	}
	edges := make([]float64, len(h.counts)+1)
	for i := range edges {
		frac := float64(i) / float64(len(h.counts))
		if h.log {
			edges[i] = math.Exp(math.Log(h.lo) + frac*(math.Log(h.hi)-math.Log(h.lo)))
		} else {
			edges[i] = h.lo + frac*(h.hi-h.lo)
		}
	}
	h.edgeCache = edges
	return edges
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Total returns the number of observations including under/overflow.
func (h *Histogram) Total() uint64 { return h.total }

// Underflow and Overflow report out-of-range observations.
func (h *Histogram) Underflow() uint64 { return h.under }

// Overflow reports observations at or above the upper bound.
func (h *Histogram) Overflow() uint64 { return h.over }

// Mean returns the mean of all observed values (exact, not binned).
func (h *Histogram) Mean() (float64, error) {
	if h.total == 0 {
		return 0, ErrNoData
	}
	return h.sum / float64(h.total), nil
}

// Quantile estimates the q-quantile (q in [0,1]) assuming a uniform
// distribution within bins. Underflow mass is attributed to lo and
// overflow mass to hi.
func (h *Histogram) Quantile(q float64) (float64, error) {
	if h.total == 0 {
		return 0, ErrNoData
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if target <= cum {
		return h.lo, nil
	}
	edges := h.Edges()
	for i, c := range h.counts {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return edges[i] + frac*(edges[i+1]-edges[i]), nil
		}
		cum = next
	}
	return h.hi, nil
}
