package netem

import (
	"fmt"
	"math"

	"iqb/internal/rng"
	"iqb/internal/units"
)

// Path is one subscriber's concrete last-mile path, drawn from a Profile.
// It is immutable; per-observation variation comes from Observe.
type Path struct {
	Tech     Tech
	DownMbps float64 // subscribed/peak downstream rate
	UpMbps   float64
	BaseRTT  units.Latency
	JitterMS float64
	Loss     units.LossRate // random loss floor
	BloatMS  float64
	Shared   float64
}

// DrawPath instantiates a subscriber path from a profile. Quality is a
// multiplier (default 1) that models ISP-level investment differences;
// it scales rates up and bufferbloat down.
func DrawPath(p Profile, quality float64, src *rng.Source) Path {
	if quality <= 0 {
		quality = 1
	}
	down := src.LogNormalFromMoments(p.DownMbps*quality, p.RateCV)
	up := src.LogNormalFromMoments(p.UpMbps*quality, p.RateCV)
	// Upstream can never exceed downstream for asymmetric techs; allow
	// near-symmetry for fiber.
	if up > down {
		up = down * src.Range(0.8, 1.0)
	}
	baseRTT := p.BaseRTTms * src.Range(0.8, 1.3)
	return Path{
		Tech:     p.Tech,
		DownMbps: math.Max(down, 0.5),
		UpMbps:   math.Max(up, 0.25),
		BaseRTT:  units.LatencyFromMillis(baseRTT),
		JitterMS: p.JitterMS,
		Loss:     p.RandomLoss,
		BloatMS:  p.BloatMS / quality,
		Shared:   p.Shared,
	}
}

// State is the instantaneous condition of a path under a given load.
type State struct {
	AvailDown units.Throughput
	AvailUp   units.Throughput
	RTT       units.Latency
	Loss      units.LossRate
}

// Observe samples the path state at neighborhood utilization rho in
// [0, 1): available capacity shrinks on shared media, queueing delay
// grows like rho/(1-rho) scaled by the bloat constant, and congestion
// loss kicks in above 80% utilization.
func (p Path) Observe(rho float64, src *rng.Source) State {
	if rho < 0 {
		rho = 0
	}
	if rho > 0.99 {
		rho = 0.99
	}
	capFactor := 1 - p.Shared*rho*0.6 // shared media erode under load
	availDown := p.DownMbps * capFactor * src.Range(0.92, 1.0)
	availUp := p.UpMbps * capFactor * src.Range(0.92, 1.0)

	queueMS := p.BloatMS * rho / (1 - rho) * src.Range(0.5, 1.5)
	if queueMS > 2000 {
		queueMS = 2000
	}
	jitter := math.Abs(src.Normal(0, p.JitterMS))
	rttMS := p.BaseRTT.Milliseconds() + queueMS + jitter

	congLoss := 0.0
	if rho > 0.8 {
		over := (rho - 0.8) / 0.2
		congLoss = 0.02 * over * over
	}
	loss := float64(p.Loss)*src.Range(0.5, 2.0) + congLoss
	if loss > 1 {
		loss = 1
	}
	return State{
		AvailDown: units.Throughput(availDown),
		AvailUp:   units.Throughput(availUp),
		RTT:       units.LatencyFromMillis(rttMS),
		Loss:      units.LossRate(loss),
	}
}

// Validate checks path invariants.
func (p Path) Validate() error {
	if p.DownMbps <= 0 || p.UpMbps <= 0 {
		return fmt.Errorf("netem: non-positive capacity %v/%v", p.DownMbps, p.UpMbps)
	}
	if p.BaseRTT <= 0 {
		return fmt.Errorf("netem: non-positive base RTT %v", p.BaseRTT)
	}
	if !p.Loss.Valid() {
		return fmt.Errorf("netem: invalid loss %v", p.Loss)
	}
	if p.Shared < 0 || p.Shared > 1 {
		return fmt.Errorf("netem: shared factor %v out of [0,1]", p.Shared)
	}
	return nil
}

// Diurnal returns the neighborhood utilization for an hour of day
// [0, 24): a morning shoulder, an afternoon plateau, and the evening
// "Netflix peak" around 21:00, bottoming out near 04:00.
func Diurnal(hour float64) float64 {
	hour = math.Mod(hour, 24)
	if hour < 0 {
		hour += 24
	}
	// Sum of two Gaussians over the night-time floor.
	evening := 0.42 * math.Exp(-sq(hour-21)/(2*sq(2.5)))
	// The evening peak wraps past midnight.
	eveningWrap := 0.42 * math.Exp(-sq(hour+24-21)/(2*sq(2.5)))
	midday := 0.20 * math.Exp(-sq(hour-14)/(2*sq(4)))
	u := 0.12 + evening + eveningWrap + midday
	if u > 0.85 {
		u = 0.85
	}
	return u
}

func sq(x float64) float64 { return x * x }
