// Package netem emulates last-mile network paths so that the three
// measurement systems (NDT-style, Cloudflare-style, Ookla-style) have a
// shared ground truth to measure.
//
// A Tech describes an access technology class (fiber, cable, DSL, LTE,
// 5G fixed wireless, GEO satellite, WISP). A Profile holds that class's
// statistical parameters; DrawPath instantiates a concrete subscriber
// Path from a profile, and Path.Observe produces the instantaneous
// conditions (available capacity, RTT, loss) at a given utilization,
// including load-dependent queueing delay (bufferbloat) and congestion
// loss. The Diurnal curve maps time of day to neighborhood utilization.
package netem

import (
	"fmt"
	"math"

	"iqb/internal/geo"
	"iqb/internal/rng"
	"iqb/internal/units"
)

// Tech identifies an access technology class.
type Tech int

// Access technologies, roughly ordered from best to worst typical quality.
const (
	Fiber Tech = iota
	Cable
	FWA5G
	DSL
	LTE
	WISP
	SatGEO
	numTech
)

// String names the technology.
func (t Tech) String() string {
	switch t {
	case Fiber:
		return "fiber"
	case Cable:
		return "cable"
	case FWA5G:
		return "5g-fwa"
	case DSL:
		return "dsl"
	case LTE:
		return "lte"
	case WISP:
		return "wisp"
	case SatGEO:
		return "sat-geo"
	default:
		return fmt.Sprintf("Tech(%d)", int(t))
	}
}

// AllTechs returns every technology in declaration order.
func AllTechs() []Tech {
	out := make([]Tech, numTech)
	for i := range out {
		out[i] = Tech(i)
	}
	return out
}

// ParseTech resolves a technology by its String name.
func ParseTech(s string) (Tech, error) {
	for _, t := range AllTechs() {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("netem: unknown technology %q", s)
}

// Profile holds the statistical parameters of a technology class. Rates
// are plan/peak rates; Observe applies load on top.
type Profile struct {
	Tech Tech
	// DownMbps/UpMbps are the mean subscribed rates; CV is the
	// log-normal coefficient of variation across subscribers.
	DownMbps float64
	UpMbps   float64
	RateCV   float64
	// BaseRTT is the idle round-trip to a nearby server; JitterMS is the
	// standard deviation of per-observation RTT noise.
	BaseRTTms float64
	JitterMS  float64
	// RandomLoss is the load-independent loss floor.
	RandomLoss units.LossRate
	// BloatMS scales the utilization-dependent queueing delay: an
	// M/M/1-style rho/(1-rho) term multiplied by this constant.
	BloatMS float64
	// Shared reflects how much neighborhood load erodes capacity
	// (1 = fully shared medium like cable/LTE, 0 = dedicated like fiber).
	Shared float64
}

// DefaultProfiles returns the built-in technology parameter table. The
// values follow published access-network characterizations: fiber
// symmetric and low-latency; cable fast down, slow up, bufferbloat-prone;
// DSL slow and distance-limited; LTE/5G variable and shared; GEO
// satellite capacity-decent but ~600 ms RTT.
func DefaultProfiles() map[Tech]Profile {
	return map[Tech]Profile{
		Fiber:  {Tech: Fiber, DownMbps: 600, UpMbps: 500, RateCV: 0.45, BaseRTTms: 8, JitterMS: 2, RandomLoss: 0.00002, BloatMS: 8, Shared: 0.1},
		Cable:  {Tech: Cable, DownMbps: 300, UpMbps: 25, RateCV: 0.55, BaseRTTms: 15, JitterMS: 5, RandomLoss: 0.0001, BloatMS: 60, Shared: 0.6},
		FWA5G:  {Tech: FWA5G, DownMbps: 200, UpMbps: 30, RateCV: 0.7, BaseRTTms: 25, JitterMS: 10, RandomLoss: 0.0005, BloatMS: 50, Shared: 0.8},
		DSL:    {Tech: DSL, DownMbps: 20, UpMbps: 3, RateCV: 0.6, BaseRTTms: 30, JitterMS: 8, RandomLoss: 0.001, BloatMS: 80, Shared: 0.3},
		LTE:    {Tech: LTE, DownMbps: 60, UpMbps: 15, RateCV: 0.8, BaseRTTms: 45, JitterMS: 18, RandomLoss: 0.002, BloatMS: 60, Shared: 0.9},
		WISP:   {Tech: WISP, DownMbps: 40, UpMbps: 8, RateCV: 0.7, BaseRTTms: 35, JitterMS: 12, RandomLoss: 0.003, BloatMS: 60, Shared: 0.7},
		SatGEO: {Tech: SatGEO, DownMbps: 80, UpMbps: 5, RateCV: 0.5, BaseRTTms: 610, JitterMS: 40, RandomLoss: 0.005, BloatMS: 120, Shared: 0.8},
	}
}

// TechMix is a distribution over technologies.
type TechMix map[Tech]float64

// DefaultMixFor returns the access-technology mix for a region character:
// urban areas are fiber/cable heavy, rural areas DSL/satellite heavy.
func DefaultMixFor(c geo.Character) TechMix {
	switch c {
	case geo.Urban:
		return TechMix{Fiber: 0.46, Cable: 0.42, FWA5G: 0.08, DSL: 0.02, LTE: 0.02}
	case geo.Suburban:
		return TechMix{Fiber: 0.30, Cable: 0.45, FWA5G: 0.10, DSL: 0.08, LTE: 0.04, WISP: 0.03}
	default: // Rural
		return TechMix{Fiber: 0.05, Cable: 0.15, DSL: 0.35, LTE: 0.15, WISP: 0.15, SatGEO: 0.15}
	}
}

// Draw picks a technology from the mix.
func (m TechMix) Draw(src *rng.Source) Tech {
	techs := AllTechs()
	weights := make([]float64, len(techs))
	for i, t := range techs {
		weights[i] = m[t]
	}
	return techs[src.Categorical(weights)]
}

// Validate checks the mix sums to ~1 with non-negative entries.
func (m TechMix) Validate() error {
	total := 0.0
	for t, w := range m {
		if w < 0 {
			return fmt.Errorf("netem: negative weight %v for %v", w, t)
		}
		total += w
	}
	if math.Abs(total-1) > 0.01 {
		return fmt.Errorf("netem: mix sums to %v, want 1", total)
	}
	return nil
}
