package netem

import (
	"fmt"
	"sync"
	"time"

	"iqb/internal/units"
)

// Shaper is a token-bucket rate limiter used by the live measurement
// servers to pace transfers at a Path's available rate, so that a real
// TCP client measures the emulated capacity rather than the loopback
// interface. It is safe for concurrent use.
type Shaper struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // bucket depth in bytes
	tokens float64
	last   time.Time
}

// NewShaper builds a shaper for the given rate. The burst defaults to
// 64 KiB or 10 ms of the rate, whichever is larger, which keeps pacing
// smooth without letting the loopback burst distort short measurements.
func NewShaper(rate units.Throughput) (*Shaper, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("netem: shaper rate must be positive, got %v", rate)
	}
	bps := rate.BytesPerSecond()
	burst := bps / 100
	if burst < 64<<10 {
		burst = 64 << 10
	}
	return &Shaper{rate: bps, burst: burst, tokens: burst}, nil
}

// SetRate updates the shaping rate; the bucket keeps its tokens.
func (s *Shaper) SetRate(rate units.Throughput) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rate > 0 {
		s.rate = rate.BytesPerSecond()
	}
}

// Rate returns the current shaping rate.
func (s *Shaper) Rate() units.Throughput {
	s.mu.Lock()
	defer s.mu.Unlock()
	return units.Throughput(s.rate * 8 / 1e6)
}

// Reserve consumes n bytes of budget at time now and returns how long the
// caller should wait before sending them. A zero return means "send
// immediately".
func (s *Shaper) Reserve(n int, now time.Time) time.Duration {
	if n <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last.IsZero() {
		s.last = now
	}
	elapsed := now.Sub(s.last).Seconds()
	if elapsed > 0 {
		s.tokens += elapsed * s.rate
		if s.tokens > s.burst {
			s.tokens = s.burst
		}
		s.last = now
	}
	s.tokens -= float64(n)
	if s.tokens >= 0 {
		return 0
	}
	deficit := -s.tokens
	return time.Duration(deficit / s.rate * float64(time.Second))
}

// Pace sleeps as required to send n bytes, using the real clock. It is a
// convenience for the live servers.
func (s *Shaper) Pace(n int) {
	//iqbvet:ignore walltime Pace is the real-clock entry point for live servers; simulations call Reserve with a simulated now
	if d := s.Reserve(n, time.Now()); d > 0 {
		//iqbvet:ignore walltime the sleep is the pacing; nothing deterministic runs through Pace
		time.Sleep(d)
	}
}
