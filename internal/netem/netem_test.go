package netem

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"iqb/internal/geo"
	"iqb/internal/rng"
	"iqb/internal/units"
)

func TestTechStrings(t *testing.T) {
	for _, tech := range AllTechs() {
		if tech.String() == "" {
			t.Errorf("tech %d has empty name", int(tech))
		}
		back, err := ParseTech(tech.String())
		if err != nil || back != tech {
			t.Errorf("ParseTech(%q) = %v, %v", tech.String(), back, err)
		}
	}
	if _, err := ParseTech("carrier-pigeon"); err == nil {
		t.Error("unknown tech should error")
	}
	if Tech(99).String() == "" {
		t.Error("unknown tech should still format")
	}
}

func TestDefaultProfilesComplete(t *testing.T) {
	profiles := DefaultProfiles()
	for _, tech := range AllTechs() {
		p, ok := profiles[tech]
		if !ok {
			t.Errorf("no profile for %v", tech)
			continue
		}
		if p.Tech != tech {
			t.Errorf("profile %v mislabeled as %v", tech, p.Tech)
		}
		if p.DownMbps <= 0 || p.UpMbps <= 0 || p.BaseRTTms <= 0 {
			t.Errorf("profile %v has non-positive parameters: %+v", tech, p)
		}
		if !p.RandomLoss.Valid() {
			t.Errorf("profile %v has invalid loss", tech)
		}
	}
	// Sanity ordering: fiber beats satellite on latency, satellite has
	// the highest base RTT of all.
	if profiles[Fiber].BaseRTTms >= profiles[SatGEO].BaseRTTms {
		t.Error("fiber should have lower base RTT than satellite")
	}
	for _, tech := range AllTechs() {
		if tech != SatGEO && profiles[tech].BaseRTTms >= profiles[SatGEO].BaseRTTms {
			t.Errorf("%v base RTT >= satellite", tech)
		}
	}
}

func TestDefaultMixes(t *testing.T) {
	for _, c := range []geo.Character{geo.Urban, geo.Suburban, geo.Rural} {
		mix := DefaultMixFor(c)
		if err := mix.Validate(); err != nil {
			t.Errorf("%v mix invalid: %v", c, err)
		}
	}
	urban, rural := DefaultMixFor(geo.Urban), DefaultMixFor(geo.Rural)
	if urban[Fiber] <= rural[Fiber] {
		t.Error("urban should have more fiber than rural")
	}
	if rural[SatGEO] <= urban[SatGEO] {
		t.Error("rural should have more satellite than urban")
	}
}

func TestTechMixValidate(t *testing.T) {
	if err := (TechMix{Fiber: 0.5}).Validate(); err == nil {
		t.Error("underweight mix should be invalid")
	}
	if err := (TechMix{Fiber: 1.2, Cable: -0.2}).Validate(); err == nil {
		t.Error("negative weight should be invalid")
	}
}

func TestTechMixDraw(t *testing.T) {
	src := rng.New(2)
	mix := TechMix{Fiber: 0.7, DSL: 0.3}
	counts := map[Tech]int{}
	for i := 0; i < 10000; i++ {
		counts[mix.Draw(src)]++
	}
	if counts[Cable] != 0 || counts[SatGEO] != 0 {
		t.Errorf("zero-weight techs drawn: %v", counts)
	}
	if f := float64(counts[Fiber]) / 10000; math.Abs(f-0.7) > 0.02 {
		t.Errorf("fiber rate = %v, want ~0.7", f)
	}
}

func TestDrawPathInvariants(t *testing.T) {
	src := rng.New(3)
	profiles := DefaultProfiles()
	for _, tech := range AllTechs() {
		for i := 0; i < 200; i++ {
			p := DrawPath(profiles[tech], 1, src)
			if err := p.Validate(); err != nil {
				t.Fatalf("%v draw %d invalid: %v", tech, i, err)
			}
			if p.UpMbps > p.DownMbps {
				t.Fatalf("%v path has up %v > down %v", tech, p.UpMbps, p.DownMbps)
			}
		}
	}
}

func TestDrawPathQualityMultiplier(t *testing.T) {
	prof := DefaultProfiles()[Cable]
	const n = 3000
	sumLo, sumHi := 0.0, 0.0
	srcLo, srcHi := rng.New(4), rng.New(4)
	for i := 0; i < n; i++ {
		sumLo += DrawPath(prof, 0.5, srcLo).DownMbps
		sumHi += DrawPath(prof, 1.5, srcHi).DownMbps
	}
	if sumHi <= sumLo*2 {
		t.Errorf("quality 1.5 mean %v not ~3x quality 0.5 mean %v", sumHi/n, sumLo/n)
	}
	// Non-positive quality defaults to 1 and must not panic.
	p := DrawPath(prof, -1, rng.New(5))
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestObserveInvariants(t *testing.T) {
	src := rng.New(6)
	profiles := DefaultProfiles()
	f := func(techIdx uint8, rhoRaw uint8) bool {
		tech := AllTechs()[int(techIdx)%int(numTech)]
		rho := float64(rhoRaw) / 255 // [0,1]
		p := DrawPath(profiles[tech], 1, src)
		st := p.Observe(rho, src)
		if st.RTT < p.BaseRTT {
			return false
		}
		if !st.Loss.Valid() {
			return false
		}
		if st.AvailDown > units.Throughput(p.DownMbps) || st.AvailDown <= 0 {
			return false
		}
		if st.AvailUp > units.Throughput(p.UpMbps) || st.AvailUp <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestObserveLoadDegrades(t *testing.T) {
	src := rng.New(7)
	p := DrawPath(DefaultProfiles()[Cable], 1, src)
	const n = 2000
	var idleRTT, busyRTT, idleLoss, busyLoss, idleDown, busyDown float64
	for i := 0; i < n; i++ {
		a := p.Observe(0.05, src)
		b := p.Observe(0.92, src)
		idleRTT += a.RTT.Milliseconds()
		busyRTT += b.RTT.Milliseconds()
		idleLoss += float64(a.Loss)
		busyLoss += float64(b.Loss)
		idleDown += a.AvailDown.Mbps()
		busyDown += b.AvailDown.Mbps()
	}
	if busyRTT <= idleRTT*1.5 {
		t.Errorf("busy RTT %v not clearly above idle %v", busyRTT/n, idleRTT/n)
	}
	if busyLoss <= idleLoss {
		t.Errorf("busy loss %v not above idle %v", busyLoss/n, idleLoss/n)
	}
	if busyDown >= idleDown {
		t.Errorf("busy capacity %v not below idle %v", busyDown/n, idleDown/n)
	}
}

func TestObserveClampsRho(t *testing.T) {
	src := rng.New(8)
	p := DrawPath(DefaultProfiles()[DSL], 1, src)
	for _, rho := range []float64{-1, 1.5, 10} {
		st := p.Observe(rho, src)
		if !st.Loss.Valid() || st.RTT <= 0 {
			t.Errorf("rho=%v produced invalid state %+v", rho, st)
		}
		if st.RTT.Milliseconds() > 5000 {
			t.Errorf("rho=%v produced runaway RTT %v", rho, st.RTT)
		}
	}
}

func TestPathValidate(t *testing.T) {
	good := Path{DownMbps: 10, UpMbps: 5, BaseRTT: units.LatencyFromMillis(20), Loss: 0.01, Shared: 0.5}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []Path{
		{DownMbps: 0, UpMbps: 5, BaseRTT: 1, Loss: 0, Shared: 0},
		{DownMbps: 10, UpMbps: 5, BaseRTT: 0, Loss: 0, Shared: 0},
		{DownMbps: 10, UpMbps: 5, BaseRTT: 1, Loss: 2, Shared: 0},
		{DownMbps: 10, UpMbps: 5, BaseRTT: 1, Loss: 0, Shared: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad path %d validated", i)
		}
	}
}

func TestDiurnal(t *testing.T) {
	for h := 0.0; h < 24; h += 0.25 {
		u := Diurnal(h)
		if u < 0 || u > 0.95 {
			t.Fatalf("Diurnal(%v) = %v out of [0, 0.95]", h, u)
		}
	}
	if Diurnal(21) <= Diurnal(4) {
		t.Error("evening peak should exceed 4am trough")
	}
	if Diurnal(21) <= Diurnal(10) {
		t.Error("evening peak should exceed mid-morning")
	}
	// Wrap-around: negative hours and >24 are equivalent mod 24.
	if math.Abs(Diurnal(-3)-Diurnal(21)) > 1e-9 {
		t.Error("Diurnal(-3) should equal Diurnal(21)")
	}
	if math.Abs(Diurnal(25)-Diurnal(1)) > 1e-9 {
		t.Error("Diurnal(25) should equal Diurnal(1)")
	}
}

func TestShaperRate(t *testing.T) {
	sh, err := NewShaper(80 * units.Mbps) // 10 MB/s
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	var wait time.Duration
	total := 0
	// Drain the burst, then reserve 10 MB; the cumulative wait should be
	// about one second.
	for total < 10_000_000 {
		d := sh.Reserve(100_000, now.Add(wait))
		wait += d
		total += 100_000
	}
	if wait < 900*time.Millisecond || wait > 1100*time.Millisecond {
		t.Errorf("10MB at 10MB/s took %v, want ~1s", wait)
	}
}

func TestShaperBurst(t *testing.T) {
	sh, _ := NewShaper(8 * units.Mbps) // 1 MB/s, burst >= 64 KiB
	now := time.Unix(100, 0)
	if d := sh.Reserve(64<<10, now); d != 0 {
		t.Errorf("first burst-sized reserve should be free, got %v", d)
	}
	if d := sh.Reserve(1<<20, now); d <= 0 {
		t.Error("over-burst reserve should wait")
	}
}

func TestShaperRefill(t *testing.T) {
	sh, _ := NewShaper(8 * units.Mbps) // 1 MB/s
	now := time.Unix(0, 0)
	sh.Reserve(1<<20, now) // drain deep
	// After 10 seconds the bucket must be full again (but capped at burst).
	if d := sh.Reserve(32<<10, now.Add(10*time.Second)); d != 0 {
		t.Errorf("after refill, small reserve should be free, got %v", d)
	}
}

func TestShaperSetRate(t *testing.T) {
	sh, _ := NewShaper(10 * units.Mbps)
	sh.SetRate(20 * units.Mbps)
	if got := sh.Rate().Mbps(); math.Abs(got-20) > 1e-9 {
		t.Errorf("Rate = %v, want 20", got)
	}
	sh.SetRate(0) // ignored
	if got := sh.Rate().Mbps(); math.Abs(got-20) > 1e-9 {
		t.Errorf("zero SetRate should be ignored, rate = %v", got)
	}
}

func TestShaperErrors(t *testing.T) {
	if _, err := NewShaper(0); err == nil {
		t.Error("zero rate should error")
	}
	sh, _ := NewShaper(10 * units.Mbps)
	if d := sh.Reserve(0, time.Now()); d != 0 {
		t.Error("zero-byte reserve should be free")
	}
	if d := sh.Reserve(-5, time.Now()); d != 0 {
		t.Error("negative reserve should be free")
	}
}

func BenchmarkObserve(b *testing.B) {
	src := rng.New(1)
	p := DrawPath(DefaultProfiles()[Cable], 1, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Observe(0.5, src)
	}
}

func BenchmarkShaperReserve(b *testing.B) {
	sh, _ := NewShaper(100 * units.Mbps)
	now := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Millisecond)
		sh.Reserve(1000, now)
	}
}
