// Package ingest turns the dataset store's synchronous write path into
// an admission-controlled streaming pipeline: writers enqueue record
// batches cheaply and block for a durable acknowledgment, while a
// single drainer goroutine swaps the whole pending queue and feeds it
// to Store.AddBatch in large merged batches — so the WAL tee underneath
// group-commits a flood of small client batches into a few fsyncs, and
// the score cache and snapshot-growth hooks fire exactly as they would
// for a direct AddBatch.
//
// # Admission control
//
// The queue is bounded twice, by records and by bytes. Enqueue admits a
// batch only if both budgets still hold it; otherwise it returns an
// *OverloadError (matching ErrOverload) immediately, without blocking —
// the caller sheds load (HTTP answers 429 + Retry-After) instead of
// queueing unboundedly. Queued work counts against the budgets until
// its commit completes, so a slow disk backpressures admission rather
// than letting memory grow while the drainer fsyncs.
//
// # Acknowledgment contract
//
// Enqueue returns nil only after the batch has cleared the store's full
// ingest path: validated, deduplicated, teed to the WAL (fsynced, when
// the store is WAL-backed), visible in every shard, and commit hooks
// fired. An acknowledged batch therefore survives kill-and-restart
// bit-identically; an errored batch was never applied (AddBatch is
// atomic per batch). Close mirrors the WAL's own semantics: batches
// already admitted are drained and acknowledged durably, not failed.
//
// # Failure isolation
//
// The drainer merges admitted batches into one AddBatch call per drain
// round (capped by Options.DrainRecords). A merged batch that fails —
// one client's duplicate ID, say — is retried batch by batch, so every
// client gets exactly its own verdict and one poisoned request cannot
// reject its neighbors.
package ingest

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"iqb/internal/dataset"
	"iqb/internal/telemetry"
)

// Defaults chosen so a laptop-scale server admits a few seconds of
// heavy ingest before shedding: ~64k records or 64 MiB queued, drained
// in 8k-record merged batches.
const (
	DefaultQueueRecords = 64 << 10
	DefaultQueueBytes   = 64 << 20
	DefaultDrainRecords = 8 << 10
)

// ErrOverload marks an admission rejection: the queue cannot hold the
// batch within its record and byte budgets. Match with errors.Is; the
// concrete *OverloadError carries the queue state at rejection time.
var ErrOverload = errors.New("ingest: queue overloaded")

// ErrClosed is returned by Enqueue after Close has begun.
var ErrClosed = errors.New("ingest: ingester is closed")

// OverloadError is the typed admission rejection.
type OverloadError struct {
	// QueuedRecords and QueuedBytes are the queue occupancy that
	// rejected the batch (admitted work not yet committed).
	QueuedRecords int
	QueuedBytes   int64
	// BatchRecords and BatchBytes size the rejected batch.
	BatchRecords int
	BatchBytes   int64
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("ingest: queue overloaded (%d records / %d bytes queued; batch of %d records / %d bytes rejected)",
		e.QueuedRecords, e.QueuedBytes, e.BatchRecords, e.BatchBytes)
}

// Is makes errors.Is(err, ErrOverload) hold for every *OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverload }

// Options configures an Ingester. The zero value selects all defaults.
type Options struct {
	// QueueRecords caps admitted-but-uncommitted records; <= 0 means
	// DefaultQueueRecords. A single batch larger than the cap is never
	// admissible and is always rejected with an *OverloadError.
	QueueRecords int
	// QueueBytes caps admitted-but-uncommitted wire bytes; <= 0 means
	// DefaultQueueBytes.
	QueueBytes int64
	// DrainRecords caps how many records the drainer merges into one
	// AddBatch call (whole client batches only — a batch is never
	// split); <= 0 means DefaultDrainRecords.
	DrainRecords int
	// Metrics, when non-nil, registers the ingester's queue gauges,
	// admission counters, and drain/commit-latency histograms.
	Metrics *telemetry.Registry
}

// Stats is a point-in-time view of the pipeline, shaped for /v1/health.
type Stats struct {
	// QueuedRecords and QueuedBytes are admitted work not yet
	// committed (including the drain in flight).
	QueuedRecords int   `json:"queued_records"`
	QueuedBytes   int64 `json:"queued_bytes"`
	// AcceptedBatches/Records count enqueues acknowledged durable.
	AcceptedBatches uint64 `json:"accepted_batches"`
	AcceptedRecords uint64 `json:"accepted_records"`
	// RejectedBatches/Records count admission rejections (overload).
	RejectedBatches uint64 `json:"rejected_batches"`
	RejectedRecords uint64 `json:"rejected_records"`
	// FailedBatches counts admitted batches whose commit errored
	// (validation, duplicate, or WAL failure surfaced to the writer).
	FailedBatches uint64 `json:"failed_batches"`
	// Drains counts drainer rounds; MaxDrainRecords is the largest
	// merged batch one round has committed.
	Drains          uint64 `json:"drains"`
	MaxDrainRecords int    `json:"max_drain_records"`
}

// batch is one writer's enqueued work. done is answered exactly once
// with the batch's own commit verdict.
type batch struct {
	rs    []dataset.Record
	bytes int64
	done  chan error
	stop  func() // commit-latency observation, armed at enqueue
}

// Ingester is the admission-controlled write pipeline over one store.
// Safe for concurrent use.
type Ingester struct {
	store        *dataset.Store
	maxRecords   int
	maxBytes     int64
	drainRecords int

	// Queue state. Writers append under mu; the drainer swaps the
	// whole pending slice out (queue-and-swap: admission never waits
	// behind a commit in flight).
	mu            sync.Mutex
	cond          *sync.Cond
	pending       []*batch
	queuedRecords int
	queuedBytes   int64
	closed        bool
	drainerDone   chan struct{}

	// Lock-free counters; collectors only Load.
	acceptedBatches atomic.Uint64
	acceptedRecords atomic.Uint64
	rejectedBatches atomic.Uint64
	rejectedRecords atomic.Uint64
	failedBatches   atomic.Uint64
	drains          atomic.Uint64
	maxDrain        atomic.Int64 // written only by the drainer goroutine

	// Owned telemetry (nil-safe no-ops without a registry).
	drainSize     *telemetry.Histogram // records per merged commit
	commitSeconds *telemetry.Histogram // enqueue -> durable ack latency
}

// New builds an ingester over the store and starts its drainer. The
// store may be WAL-backed or memory-only; the ingester only sees
// AddBatch. Call Close to drain and stop.
func New(store *dataset.Store, o Options) (*Ingester, error) {
	if store == nil {
		return nil, fmt.Errorf("ingest: store is required")
	}
	if o.QueueRecords <= 0 {
		o.QueueRecords = DefaultQueueRecords
	}
	if o.QueueBytes <= 0 {
		o.QueueBytes = DefaultQueueBytes
	}
	if o.DrainRecords <= 0 {
		o.DrainRecords = DefaultDrainRecords
	}
	ing := &Ingester{
		store:        store,
		maxRecords:   o.QueueRecords,
		maxBytes:     o.QueueBytes,
		drainRecords: o.DrainRecords,
		drainerDone:  make(chan struct{}),
	}
	ing.cond = sync.NewCond(&ing.mu)
	ing.registerMetrics(o.Metrics)
	go ing.drainer()
	return ing, nil
}

// registerMetrics exposes the pipeline on r (nil runs uninstrumented).
// Collectors read atomics or take the short queue mutex — a scrape
// never waits behind a commit's fsync.
func (ing *Ingester) registerMetrics(r *telemetry.Registry) {
	if r == nil {
		return
	}
	ing.drainSize = r.Histogram("iqb_ingest_drain_records",
		"Records committed per drainer round (merged client batches).", nil)
	ing.commitSeconds = r.Histogram("iqb_ingest_commit_seconds",
		"Latency from enqueue to durable acknowledgment.", nil)
	r.GaugeFunc("iqb_ingest_queue_records",
		"Admitted records not yet committed.", nil,
		func() float64 {
			ing.mu.Lock()
			defer ing.mu.Unlock()
			return float64(ing.queuedRecords)
		})
	r.GaugeFunc("iqb_ingest_queue_bytes",
		"Admitted wire bytes not yet committed.", nil,
		func() float64 {
			ing.mu.Lock()
			defer ing.mu.Unlock()
			return float64(ing.queuedBytes)
		})
	r.CounterFunc("iqb_ingest_accepted_records_total",
		"Records acknowledged durable through the ingest pipeline.", nil,
		func() float64 { return float64(ing.acceptedRecords.Load()) })
	r.CounterFunc("iqb_ingest_rejected_records_total",
		"Records rejected at admission (queue overload).", nil,
		func() float64 { return float64(ing.rejectedRecords.Load()) })
	r.CounterFunc("iqb_ingest_failed_batches_total",
		"Admitted batches whose commit errored.", nil,
		func() float64 { return float64(ing.failedBatches.Load()) })
	r.CounterFunc("iqb_ingest_drains_total",
		"Drainer rounds (each one swap of the pending queue).", nil,
		func() float64 { return float64(ing.drains.Load()) })
}

// DrainRecords reports the drainer's merged-batch record cap — the
// natural chunk size for callers slicing a stream into enqueues.
func (ing *Ingester) DrainRecords() int { return ing.drainRecords }

// Enqueue admits the batch and blocks until it is durably committed
// (nil) or definitively not applied (non-nil). wireBytes is the batch's
// encoded size for the byte budget; <= 0 means "records only". An
// *OverloadError (errors.Is ErrOverload) reports an admission
// rejection: the batch was not queued and will never appear; retry
// after backoff. ErrClosed reports an ingester already shutting down.
func (ing *Ingester) Enqueue(rs []dataset.Record, wireBytes int64) error {
	if len(rs) == 0 {
		return nil
	}
	if wireBytes < 0 {
		wireBytes = 0
	}
	b := &batch{rs: rs, bytes: wireBytes, done: make(chan error, 1), stop: ing.commitSeconds.Time()}
	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		return ErrClosed
	}
	if ing.queuedRecords+len(rs) > ing.maxRecords || ing.queuedBytes+wireBytes > ing.maxBytes {
		over := &OverloadError{
			QueuedRecords: ing.queuedRecords, QueuedBytes: ing.queuedBytes,
			BatchRecords: len(rs), BatchBytes: wireBytes,
		}
		ing.mu.Unlock()
		ing.rejectedBatches.Add(1)
		ing.rejectedRecords.Add(uint64(len(rs)))
		return over
	}
	ing.queuedRecords += len(rs)
	ing.queuedBytes += wireBytes
	ing.pending = append(ing.pending, b)
	ing.cond.Signal()
	ing.mu.Unlock()
	return <-b.done
}

// drainer is the single consumer: it swaps out everything pending,
// commits it in merged batches, and fans each batch's verdict back to
// its writer. It exits once the ingester is closed and the queue empty,
// so Close never strands an admitted batch.
func (ing *Ingester) drainer() {
	defer close(ing.drainerDone)
	for {
		ing.mu.Lock()
		for len(ing.pending) == 0 && !ing.closed {
			ing.cond.Wait()
		}
		if len(ing.pending) == 0 && ing.closed {
			ing.mu.Unlock()
			return
		}
		work := ing.pending
		ing.pending = nil
		ing.mu.Unlock()

		// Merge whole batches up to the drain cap; a single batch
		// larger than the cap still commits alone (never split, so
		// AddBatch's per-batch atomicity is preserved).
		for start := 0; start < len(work); {
			end := start
			records := 0
			for end < len(work) && (end == start || records+len(work[end].rs) <= ing.drainRecords) {
				records += len(work[end].rs)
				end++
			}
			ing.commitGroup(work[start:end], records)
			start = end
		}
	}
}

// commitGroup commits one merged group and acknowledges each member
// batch. A merged failure falls back to per-batch commits so only the
// offending batch errors.
func (ing *Ingester) commitGroup(group []*batch, records int) {
	var err error
	if len(group) == 1 {
		err = ing.store.AddBatch(group[0].rs)
		ing.ack(group[0], err)
	} else {
		merged := make([]dataset.Record, 0, records)
		for _, b := range group {
			merged = append(merged, b.rs...)
		}
		err = ing.store.AddBatch(merged)
		if err == nil {
			for _, b := range group {
				ing.ack(b, nil)
			}
		} else {
			// Isolation fallback: the merged batch failed as a unit
			// (nothing was applied — AddBatch is atomic), so replay
			// each client batch alone and give every writer exactly
			// its own verdict.
			for _, b := range group {
				ing.ack(b, ing.store.AddBatch(b.rs))
			}
		}
	}
	ing.drains.Add(1)
	ing.drainSize.Observe(float64(records))
	if int64(records) > ing.maxDrain.Load() {
		// Only the drainer writes maxDrain; the load/store pair
		// cannot lose an update.
		ing.maxDrain.Store(int64(records))
	}
}

// ack releases one batch's budget share and answers its writer.
func (ing *Ingester) ack(b *batch, err error) {
	ing.mu.Lock()
	ing.queuedRecords -= len(b.rs)
	ing.queuedBytes -= b.bytes
	ing.mu.Unlock()
	if err == nil {
		ing.acceptedBatches.Add(1)
		ing.acceptedRecords.Add(uint64(len(b.rs)))
		b.stop()
	} else {
		ing.failedBatches.Add(1)
	}
	b.done <- err
}

// Stats reports the pipeline's counters and queue occupancy.
func (ing *Ingester) Stats() Stats {
	ing.mu.Lock()
	qr, qb := ing.queuedRecords, ing.queuedBytes
	ing.mu.Unlock()
	return Stats{
		QueuedRecords:   qr,
		QueuedBytes:     qb,
		AcceptedBatches: ing.acceptedBatches.Load(),
		AcceptedRecords: ing.acceptedRecords.Load(),
		RejectedBatches: ing.rejectedBatches.Load(),
		RejectedRecords: ing.rejectedRecords.Load(),
		FailedBatches:   ing.failedBatches.Load(),
		Drains:          ing.drains.Load(),
		MaxDrainRecords: int(ing.maxDrain.Load()),
	}
}

// Close stops admission and drains: batches already admitted are
// committed and acknowledged (durably, when the store is WAL-backed)
// before Close returns — mirroring the WAL's own Close semantics, so a
// clean shutdown never turns an admitted write into an error. Close is
// idempotent.
func (ing *Ingester) Close() error {
	ing.mu.Lock()
	if !ing.closed {
		ing.closed = true
		ing.cond.Broadcast()
	}
	ing.mu.Unlock()
	<-ing.drainerDone
	return nil
}
