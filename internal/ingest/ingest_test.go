package ingest

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/telemetry"
)

func rec(id, region string) dataset.Record {
	r := dataset.NewRecord(id, "ndt", region, time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC))
	r.DownloadMbps = 100
	r.UploadMbps = 20
	r.LatencyMS = 15
	r.LossFrac = 0.001
	return r
}

func batchOf(prefix string, n int) []dataset.Record {
	rs := make([]dataset.Record, n)
	for i := range rs {
		rs[i] = rec(fmt.Sprintf("%s-%d", prefix, i), "XA-01-001")
	}
	return rs
}

func newIngester(t *testing.T, store *dataset.Store, o Options) *Ingester {
	t.Helper()
	ing, err := New(store, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	return ing
}

// TestEnqueueCommitsThroughStore pins the ack contract: a nil Enqueue
// means the records are visible in the store, commit hooks fired.
func TestEnqueueCommitsThroughStore(t *testing.T) {
	store := dataset.NewStore()
	var committed int
	var mu sync.Mutex
	store.AddHooks(dataset.Hooks{Commit: func(rs []dataset.Record) {
		mu.Lock()
		committed += len(rs)
		mu.Unlock()
	}})
	ing := newIngester(t, store, Options{})
	if err := ing.Enqueue(batchOf("a", 10), 100); err != nil {
		t.Fatal(err)
	}
	if got := store.Len(); got != 10 {
		t.Fatalf("store holds %d records after ack, want 10", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if committed != 10 {
		t.Fatalf("commit hooks saw %d records by ack time, want 10", committed)
	}
	st := ing.Stats()
	if st.AcceptedRecords != 10 || st.AcceptedBatches != 1 {
		t.Fatalf("stats = %+v, want 10 accepted records in 1 batch", st)
	}
	if st.QueuedRecords != 0 || st.QueuedBytes != 0 {
		t.Fatalf("queue not drained after ack: %+v", st)
	}
}

// TestAdmissionRejectsWhenFull pins the overload contract: with the
// drainer wedged behind a gated ingest hook, enqueues past the record
// budget are rejected immediately with a typed *OverloadError, and the
// rejected batch never appears in the store.
func TestAdmissionRejectsWhenFull(t *testing.T) {
	store := dataset.NewStore()
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	store.AddIngestHook(func(rs []dataset.Record) error {
		<-gate
		return nil
	})
	ing := newIngester(t, store, Options{QueueRecords: 16})

	// Fill the queue: the first batch is swapped out by the drainer and
	// blocks in the hook; its budget share is still held.
	errs := make(chan error, 2)
	go func() { errs <- ing.Enqueue(batchOf("held", 8), 0) }()
	waitFor(t, func() bool { return ing.Stats().QueuedRecords == 8 })
	go func() { errs <- ing.Enqueue(batchOf("queued", 8), 0) }()
	waitFor(t, func() bool { return ing.Stats().QueuedRecords == 16 })

	err := ing.Enqueue(batchOf("shed", 4), 0)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("enqueue past the budget = %v, want ErrOverload", err)
	}
	var over *OverloadError
	if !errors.As(err, &over) {
		t.Fatalf("overload error is %T, want *OverloadError", err)
	}
	if over.QueuedRecords != 16 || over.BatchRecords != 4 {
		t.Fatalf("overload detail = %+v", over)
	}

	release()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("admitted batch errored: %v", err)
		}
	}
	if got := store.Len(); got != 16 {
		t.Fatalf("store holds %d records, want the 16 admitted (shed batch must never appear)", got)
	}
	st := ing.Stats()
	if st.RejectedBatches != 1 || st.RejectedRecords != 4 {
		t.Fatalf("rejection counters = %+v", st)
	}
}

// TestByteBudgetRejects pins the second admission dimension.
func TestByteBudgetRejects(t *testing.T) {
	store := dataset.NewStore()
	gate := make(chan struct{})
	defer close(gate)
	store.AddIngestHook(func(rs []dataset.Record) error { <-gate; return nil })
	ing := newIngester(t, store, Options{QueueBytes: 1000})
	go ing.Enqueue(batchOf("a", 1), 900) //nolint — ack consumed after gate opens
	waitFor(t, func() bool { return ing.Stats().QueuedBytes == 900 })
	if err := ing.Enqueue(batchOf("b", 1), 200); !errors.Is(err, ErrOverload) {
		t.Fatalf("enqueue past the byte budget = %v, want ErrOverload", err)
	}
}

// TestOversizedBatchNeverAdmissible: a batch larger than the whole
// queue is rejected even when the queue is empty.
func TestOversizedBatchNeverAdmissible(t *testing.T) {
	ing := newIngester(t, dataset.NewStore(), Options{QueueRecords: 4})
	if err := ing.Enqueue(batchOf("big", 5), 0); !errors.Is(err, ErrOverload) {
		t.Fatalf("oversized batch = %v, want ErrOverload", err)
	}
}

// TestMergedFailureIsolatesOffendingBatch: when two clients' batches
// merge and one poisons the merged AddBatch (duplicate ID), only that
// client errors; the other's records land.
func TestMergedFailureIsolatesOffendingBatch(t *testing.T) {
	store := dataset.NewStore()
	// Pre-claim the ID the poisoned batch will collide with.
	if err := store.Add(rec("poison-0", "XA-01-001")); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var gated sync.Once
	store.AddIngestHook(func(rs []dataset.Record) error {
		// Hold only the first drain round so both client batches are
		// queued together and merge in round two.
		gated.Do(func() { <-gate })
		return nil
	})
	ing := newIngester(t, store, Options{})

	// Wedge the drainer on a sacrificial batch.
	wedge := make(chan error, 1)
	go func() { wedge <- ing.Enqueue(batchOf("wedge", 1), 0) }()
	waitFor(t, func() bool { return ing.Stats().QueuedRecords == 1 })

	good := make(chan error, 1)
	bad := make(chan error, 1)
	go func() { good <- ing.Enqueue(batchOf("good", 4), 0) }()
	go func() { bad <- ing.Enqueue(batchOf("poison", 2), 0) }()
	waitFor(t, func() bool { return ing.Stats().QueuedRecords == 7 })
	close(gate)

	if err := <-wedge; err != nil {
		t.Fatalf("wedge batch: %v", err)
	}
	if err := <-good; err != nil {
		t.Fatalf("good batch rejected alongside its poisoned neighbor: %v", err)
	}
	if err := <-bad; !errors.Is(err, dataset.ErrDuplicate) {
		t.Fatalf("poisoned batch = %v, want ErrDuplicate", err)
	}
	// 1 pre-claimed + 1 wedge + 4 good; the poisoned batch contributed
	// nothing (AddBatch atomicity).
	if got := store.Len(); got != 6 {
		t.Fatalf("store holds %d records, want 6", got)
	}
	if st := ing.Stats(); st.FailedBatches != 1 {
		t.Fatalf("failed batches = %d, want 1", st.FailedBatches)
	}
}

// TestCloseDrainsAdmittedBatches pins the shutdown contract: batches
// admitted before Close are committed and acknowledged, not failed.
func TestCloseDrainsAdmittedBatches(t *testing.T) {
	store := dataset.NewStore()
	gate := make(chan struct{})
	store.AddIngestHook(func(rs []dataset.Record) error {
		<-gate
		return nil
	})
	ing, err := New(store, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acks := make(chan error, 3)
	for i := 0; i < 3; i++ {
		i := i
		go func() { acks <- ing.Enqueue(batchOf(fmt.Sprintf("c%d", i), 4), 0) }()
	}
	waitFor(t, func() bool { return ing.Stats().QueuedRecords == 12 })

	closed := make(chan struct{})
	go func() { ing.Close(); close(closed) }()
	// Close must wait for the drain; release the gate and the admitted
	// batches must all ack nil.
	close(gate)
	<-closed
	for i := 0; i < 3; i++ {
		if err := <-acks; err != nil {
			t.Fatalf("batch admitted before Close errored: %v", err)
		}
	}
	if got := store.Len(); got != 12 {
		t.Fatalf("store holds %d records after drain-on-close, want 12", got)
	}
	if err := ing.Enqueue(batchOf("late", 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after Close = %v, want ErrClosed", err)
	}
}

// TestConcurrentEnqueueDeterministic: many concurrent writers, every
// ack honored, store ends with exactly the acked records — exercised
// under -race.
func TestConcurrentEnqueueDeterministic(t *testing.T) {
	store := dataset.NewStore()
	ing := newIngester(t, store, Options{DrainRecords: 64})
	const writers, batches, per = 8, 20, 5
	var wg sync.WaitGroup
	errCh := make(chan error, writers*batches)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				errCh <- ing.Enqueue(batchOf(fmt.Sprintf("w%d-b%d", w, b), per), int64(per))
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	if got, want := store.Len(), writers*batches*per; got != want {
		t.Fatalf("store holds %d records, want %d", got, want)
	}
	st := ing.Stats()
	if st.AcceptedRecords != uint64(writers*batches*per) {
		t.Fatalf("accepted records = %d, want %d", st.AcceptedRecords, writers*batches*per)
	}
	if st.MaxDrainRecords > 64+per {
		t.Fatalf("max drain %d exceeds cap %d by more than one batch", st.MaxDrainRecords, 64)
	}
}

// TestMetricsRegistered: the registry exposes the queue and admission
// series and they move.
func TestMetricsRegistered(t *testing.T) {
	reg := telemetry.NewRegistry()
	store := dataset.NewStore()
	ing := newIngester(t, store, Options{Metrics: reg, QueueRecords: 4})
	if err := ing.Enqueue(batchOf("m", 2), 10); err != nil {
		t.Fatal(err)
	}
	if err := ing.Enqueue(batchOf("n", 8), 10); !errors.Is(err, ErrOverload) {
		t.Fatalf("want overload, got %v", err)
	}
	text := scrape(t, reg)
	for _, want := range []string{
		"iqb_ingest_queue_records 0",
		"iqb_ingest_accepted_records_total 2",
		"iqb_ingest_rejected_records_total 8",
		"iqb_ingest_drains_total 1",
	} {
		if !contains(text, want) {
			t.Errorf("scrape missing %q\n%s", want, text)
		}
	}
}

func scrape(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func contains(text, want string) bool { return strings.Contains(text, want) }

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
