package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in Prometheus text
// exposition format (version 0.0.4): families sorted by name, each
// preceded by its # HELP and # TYPE lines, series within a family
// sorted by label block. Collector callbacks are sampled during the
// call; they must not block (see the package doc).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	qs := r.quantiles

	var b bytes.Buffer
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind.typeName())
		ordered := append([]*series(nil), f.series...)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].labels < ordered[j].labels })
		for _, s := range ordered {
			writeSeries(&b, s, qs)
		}
	}
	r.mu.Unlock()
	_, err := w.Write(b.Bytes())
	return err
}

// writeSeries renders one series' sample lines into b.
func writeSeries(b *bytes.Buffer, s *series, qs []float64) {
	switch s.kind {
	case kindCounter:
		fmt.Fprintf(b, "%s%s %s\n", s.name, s.labels, strconv.FormatUint(s.counter.Value(), 10))
	case kindGauge:
		fmt.Fprintf(b, "%s%s %s\n", s.name, s.labels, strconv.FormatInt(s.gauge.Value(), 10))
	case kindCounterFunc, kindGaugeFunc:
		fmt.Fprintf(b, "%s%s %s\n", s.name, s.labels, formatFloat(s.fn()))
	case kindHistogram:
		quants, sum, count := s.hist.snapshot(qs)
		for i, q := range qs {
			fmt.Fprintf(b, "%s%s %s\n", s.name, withQuantile(s.labels, q), formatFloat(quants[i]))
		}
		fmt.Fprintf(b, "%s_sum%s %s\n", s.name, s.labels, formatFloat(sum))
		fmt.Fprintf(b, "%s_count%s %s\n", s.name, s.labels, strconv.FormatUint(count, 10))
	}
}

// withQuantile merges the reserved quantile label into a rendered
// label block.
func withQuantile(labels string, q float64) string {
	ql := `quantile="` + formatFloat(q) + `"`
	if labels == "" {
		return "{" + ql + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + ql + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp applies the HELP-line escapes (backslash and newline).
func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// Handler serves the registry as GET /metrics in text exposition
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		// Buffer-first so an encoding problem cannot truncate a 200.
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			http.Error(w, "rendering metrics failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	})
}
