// Package telemetry is the server's self-observability registry: a
// process-wide catalog of counters, gauges, and latency histograms,
// served in Prometheus text exposition format from GET /metrics.
//
// The histogram quantiles are computed from the repo's own
// stats.DDSketch — the same mergeable quantile sketch the paper's
// reproduction serves measurement data from — so the server's p50/p90/
// p99 latencies dogfood the data structure under study instead of
// pulling in a metrics dependency. A Histogram is exposed as a
// Prometheus summary: one series per configured quantile plus _sum and
// _count.
//
// # Shape
//
// Metrics come in two flavors:
//
//   - Owned state: Counter (monotone, atomic), Gauge (atomic), and
//     Histogram (DDSketch + sum/count under a short mutex). These are
//     cheap enough for hot paths: a counter bump is one atomic add, a
//     histogram observation one short critical section with no
//     allocation.
//
//   - Collectors: CounterFunc and GaugeFunc sample a value at scrape
//     time. Subsystems that already keep counters (the WAL's
//     lock-free write stats, the score cache's hit/miss counters)
//     register collectors instead of double-counting — the scrape
//     reads the authoritative number.
//
// Collector callbacks run while the registry lock is held and must not
// block: reading an atomic or taking a short in-memory mutex is fine,
// disk or lock-held-across-fsync paths are not. That contract is why
// persist's metadata readers moved off the committer's mutex — a
// scrape must complete while an fsync is in flight.
//
// All methods are safe for concurrent use. A nil *Counter, *Gauge, or
// *Histogram is a valid no-op, so instrumented subsystems run
// unchanged when no registry is attached.
//
// # Clock
//
// Histogram.Time is the package's only wall-clock read — the telemetry
// boundary the walltime analyzer pins: durations measured here are
// observability output, never simulation or scoring input.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iqb/internal/stats"
)

// Labels attach constant dimensions to a metric series (e.g.
// path="/v1/score"). Label sets are fixed at registration: the series
// space stays bounded by what the program registers, never by request
// contents.
type Labels map[string]string

// DefaultQuantiles are the summary quantiles a Histogram exposes when
// none are given.
var DefaultQuantiles = []float64{0.5, 0.9, 0.99}

// metricKind discriminates what a series is and how it is typed in the
// exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// typeName is the Prometheus TYPE for the kind.
func (k metricKind) typeName() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "summary"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing count. The zero value of a nil
// pointer is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (non-negative; a counter never decreases).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. A nil pointer is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Add adds delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a latency/size distribution backed by a stats.DDSketch,
// exposed as a Prometheus summary with the registry-configured
// quantiles. A nil pointer is a no-op.
type Histogram struct {
	mu     sync.Mutex
	sketch *stats.DDSketch
	sum    float64
	count  uint64
}

// Observe records one value (e.g. seconds of latency). Negative and
// NaN values are ignored, matching the sketch's domain.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || v < 0 {
		return
	}
	h.mu.Lock()
	h.sketch.Add(v)
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Time starts a wall-clock measurement and returns a stop function
// that observes the elapsed seconds. This is the telemetry package's
// clock seam: callers in deterministic packages time through here
// instead of reading time.Now themselves.
func (h *Histogram) Time() func() {
	if h == nil {
		return func() {}
	}
	start := now()
	return func() { h.Observe(now().Sub(start).Seconds()) }
}

// now is the package's single wall-clock read; tests may not override
// it — telemetry output is explicitly outside the determinism contract.
//
//iqbvet:ignore walltime telemetry is the wall-clock boundary: latency observations are observability output, never simulation or scoring input
func now() time.Time { return time.Now() }

// snapshot captures the histogram state for one scrape.
func (h *Histogram) snapshot(qs []float64) (quants []float64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	quants = make([]float64, len(qs))
	for i, q := range qs {
		v, err := h.sketch.Quantile(q)
		if err != nil {
			v = 0 // empty sketch: summaries conventionally expose 0/NaN; 0 keeps parsers simple
		}
		quants[i] = v
	}
	return quants, h.sum, h.count
}

// series is one registered metric: a family name plus a fixed label
// set and the value source.
type series struct {
	name    string
	labels  string // canonical rendered label block, "" or `{k="v",...}`
	kind    metricKind
	help    string
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups every series sharing a metric name; HELP/TYPE are
// emitted once per family.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry is a process-wide metric catalog. Create with NewRegistry;
// all methods are safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	families  map[string]*family
	byID      map[string]*series // name + label block -> series
	quantiles []float64
}

// NewRegistry returns an empty registry using DefaultQuantiles for
// histogram exposition.
func NewRegistry() *Registry {
	return &Registry{
		families:  map[string]*family{},
		byID:      map[string]*series{},
		quantiles: append([]float64(nil), DefaultQuantiles...),
	}
}

// register adds (or idempotently returns) a series. Registering the
// same name+labels twice returns the original if kinds match, and
// panics otherwise: a kind collision is a programming error that would
// silently corrupt the exposition.
func (r *Registry) register(s *series) *series {
	id := s.name + s.labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.byID[id]; ok {
		if have.kind != s.kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", id, s.kind.typeName(), have.kind.typeName()))
		}
		return have
	}
	f := r.families[s.name]
	if f == nil {
		f = &family{name: s.name, help: s.help, kind: s.kind}
		r.families[s.name] = f
	} else if f.kind != s.kind {
		panic(fmt.Sprintf("telemetry: family %s holds %s series, got %s", s.name, f.kind.typeName(), s.kind.typeName()))
	}
	f.series = append(f.series, s)
	r.byID[id] = s
	return s
}

// Counter registers (or returns) a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.register(&series{name: name, labels: renderLabels(labels), kind: kindCounter, help: help, counter: &Counter{}})
	return s.counter
}

// Gauge registers (or returns) a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.register(&series{name: name, labels: renderLabels(labels), kind: kindGauge, help: help, gauge: &Gauge{}})
	return s.gauge
}

// CounterFunc registers a counter sampled at scrape time. fn must be
// fast and non-blocking (read an atomic, take a short in-memory lock)
// and must never decrease between scrapes.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(&series{name: name, labels: renderLabels(labels), kind: kindCounterFunc, help: help, fn: fn})
}

// GaugeFunc registers a gauge sampled at scrape time; the same
// non-blocking contract as CounterFunc applies.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(&series{name: name, labels: renderLabels(labels), kind: kindGaugeFunc, help: help, fn: fn})
}

// Histogram registers (or returns) a DDSketch-backed summary series.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	s := r.register(&series{
		name: name, labels: renderLabels(labels), kind: kindHistogram, help: help,
		hist: &Histogram{sketch: stats.NewDDSketch(stats.DefaultDDSketchAlpha)},
	})
	return s.hist
}

// renderLabels canonicalizes a label set: keys sorted, values escaped,
// rendered once at registration so scrapes only concatenate strings.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes: backslash,
// double quote, and newline.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
