package telemetry

import (
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// parseExposition validates every line of a scrape and returns the
// sample values keyed by "name{labels}". The grammar accepted is the
// subset the registry emits: HELP/TYPE comments and
// name{labels} value samples.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+-]+|NaN)$`)
	metaRe := regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	out := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !metaRe.MatchString(line) {
				t.Fatalf("malformed meta line %q", line)
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		out[m[1]+m[2]] = v
	}
	return out
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("iqb_test_total", "a test counter", Labels{"path": "/v1/x"})
	g := r.Gauge("iqb_test_in_flight", "a test gauge", nil)
	r.CounterFunc("iqb_test_fn_total", "a collector", nil, func() float64 { return 7 })
	c.Add(3)
	c.Inc()
	g.Set(5)
	g.Dec()

	samples := parseExposition(t, scrape(t, r))
	if got := samples[`iqb_test_total{path="/v1/x"}`]; got != 4 {
		t.Errorf("counter = %v, want 4", got)
	}
	if got := samples["iqb_test_in_flight"]; got != 4 {
		t.Errorf("gauge = %v, want 4", got)
	}
	if got := samples["iqb_test_fn_total"]; got != 7 {
		t.Errorf("collector = %v, want 7", got)
	}
}

func TestHistogramSummaryExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("iqb_test_seconds", "a latency summary", Labels{"path": "/v1/x"})
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000) // 1ms .. 1s, uniform
	}
	body := scrape(t, r)
	samples := parseExposition(t, body)

	p50 := samples[`iqb_test_seconds{path="/v1/x",quantile="0.5"}`]
	p90 := samples[`iqb_test_seconds{path="/v1/x",quantile="0.9"}`]
	p99 := samples[`iqb_test_seconds{path="/v1/x",quantile="0.99"}`]
	if !(p50 > 0 && p50 <= p90 && p90 <= p99) {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
	// DDSketch guarantees relative error alpha; allow 5% slack.
	for _, tc := range []struct{ got, want float64 }{{p50, 0.5}, {p90, 0.9}, {p99, 0.99}} {
		if math.Abs(tc.got-tc.want)/tc.want > 0.05 {
			t.Errorf("quantile %v estimated %v", tc.want, tc.got)
		}
	}
	if got := samples[`iqb_test_seconds_count{path="/v1/x"}`]; got != 1000 {
		t.Errorf("count = %v, want 1000", got)
	}
	wantSum := 1000 * 1001 / 2.0 / 1000
	if got := samples[`iqb_test_seconds_sum{path="/v1/x"}`]; math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
	if !strings.Contains(body, "# TYPE iqb_test_seconds summary") {
		t.Error("histogram not typed as summary")
	}
}

func TestHistogramIgnoresBadValues(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("iqb_test_seconds", "h", nil)
	h.Observe(math.NaN())
	h.Observe(-1)
	h.Observe(2)
	samples := parseExposition(t, scrape(t, r))
	if got := samples["iqb_test_seconds_count"]; got != 1 {
		t.Errorf("count = %v, want 1 (NaN and negative ignored)", got)
	}
	if got := samples["iqb_test_seconds_sum"]; got != 2 {
		t.Errorf("sum = %v, want 2", got)
	}
}

func TestEmptyHistogramExposesZero(t *testing.T) {
	r := NewRegistry()
	r.Histogram("iqb_test_seconds", "h", nil)
	samples := parseExposition(t, scrape(t, r))
	if got := samples[`iqb_test_seconds{quantile="0.5"}`]; got != 0 {
		t.Errorf("empty-sketch quantile = %v, want 0", got)
	}
}

func TestRegistrationIdempotentAndKindChecked(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("iqb_test_total", "c", Labels{"k": "v"})
	b := r.Counter("iqb_test_total", "c", Labels{"k": "v"})
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	// Same family, different labels: two series, one TYPE line.
	r.Counter("iqb_test_total", "c", Labels{"k": "w"})
	body := scrape(t, r)
	if got := strings.Count(body, "# TYPE iqb_test_total counter"); got != 1 {
		t.Errorf("TYPE lines = %d, want 1\n%s", got, body)
	}
	defer func() {
		if recover() == nil {
			t.Error("kind collision did not panic")
		}
	}()
	r.Gauge("iqb_test_total", "g", Labels{"k": "v"})
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("iqb_test_total", "c", Labels{"q": "a\"b\\c\nd"})
	body := scrape(t, r)
	want := `iqb_test_total{q="a\"b\\c\nd"} 0`
	if !strings.Contains(body, want) {
		t.Errorf("escaped series %q missing from:\n%s", want, body)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(2)
	g.Inc()
	g.Dec()
	g.Set(9)
	h.Observe(1)
	h.Time()()
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil metrics reported values")
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("iqb_test_total", "c", nil).Inc()
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(srv.Close)
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
}

// TestConcurrentObserveAndScrape is the registry's race test: writers
// hammer every metric kind while scrapes render, under -race.
func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("iqb_test_total", "c", nil)
	g := r.Gauge("iqb_test_gauge", "g", nil)
	h := r.Histogram("iqb_test_seconds", "h", nil)
	r.GaugeFunc("iqb_test_fn", "f", nil, func() float64 { return float64(c.Value()) })

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i))
			}
		}()
	}
	scrapeErrs := make(chan error, 2)
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					scrapeErrs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(scrapeErrs)
	for err := range scrapeErrs {
		t.Error(err)
	}
	if c.Value() != 2000 {
		t.Errorf("counter = %d, want 2000", c.Value())
	}
}
