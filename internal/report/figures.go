package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"iqb/internal/iqb"
	"iqb/internal/units"
)

// RenderTable1 reproduces the paper's Table 1: network requirement
// weights across use cases.
func RenderTable1(w io.Writer, weights iqb.RequirementWeights) error {
	if _, err := fmt.Fprintln(w, "Table 1: Network requirement weights across use cases."); err != nil {
		return err
	}
	t := NewTable("Use Case", "Download", "Upload", "Latency", "Packet loss").AlignRight(1, 2, 3, 4)
	for _, u := range iqb.AllUseCases() {
		row := weights[u]
		t.Row(
			u.Title(),
			fmt.Sprintf("%d", row[iqb.Download]),
			fmt.Sprintf("%d", row[iqb.Upload]),
			fmt.Sprintf("%d", row[iqb.Latency]),
			fmt.Sprintf("%d", row[iqb.Loss]),
		)
	}
	return t.Render(w)
}

// formatThreshold renders a threshold in its natural unit.
func formatThreshold(r iqb.Requirement, v float64) string {
	switch r {
	case iqb.Latency:
		return fmt.Sprintf("%g ms", v)
	case iqb.Loss:
		return fmt.Sprintf("%g%%", v*100)
	default:
		return fmt.Sprintf("%g Mbps", v)
	}
}

// RenderFig2 reproduces Fig. 2: the minimum- and high-quality network
// requirement thresholds per use case, with comparison bars that show
// each requirement's high bar relative to the largest across use cases.
func RenderFig2(w io.Writer, th iqb.Thresholds) error {
	if _, err := fmt.Fprintln(w, "Figure 2: Network requirement thresholds for minimum and high quality."); err != nil {
		return err
	}
	// Scale bars per requirement across use cases.
	maxHigh := map[iqb.Requirement]float64{}
	for _, u := range iqb.AllUseCases() {
		for _, r := range iqb.AllRequirements() {
			if v := th[u][r].High; v > maxHigh[r] {
				maxHigh[r] = v
			}
		}
	}
	for _, u := range iqb.AllUseCases() {
		if _, err := fmt.Fprintf(w, "\n%s\n", u.Title()); err != nil {
			return err
		}
		t := NewTable("  Requirement", "Minimum", "High", "").AlignRight(1, 2)
		for _, r := range iqb.AllRequirements() {
			band := th[u][r]
			frac := 0.0
			if maxHigh[r] > 0 {
				frac = band.High / maxHigh[r]
			}
			if iqb.RequirementDirection(r) == units.LowerBetter && band.Minimum > 0 {
				// For lower-better metrics the bar shows strictness:
				// shorter bar = stricter bar.
				frac = band.High / band.Minimum
			}
			t.Row(
				"  "+strings.Title(r.String()),
				formatThreshold(r, band.Minimum),
				formatThreshold(r, band.High),
				Bar(frac, 20),
			)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// RenderFig1 reproduces Fig. 1: the three-tier framework diagram (use
// cases → network requirements → datasets), annotated with each
// dataset's capability.
func RenderFig1(w io.Writer, cfg iqb.Config) error {
	var b strings.Builder
	b.WriteString("Figure 1: The IQB framework: use cases, network requirements, datasets.\n\n")
	b.WriteString("TIER 1: USE CASES\n")
	for _, u := range iqb.AllUseCases() {
		fmt.Fprintf(&b, "  [%s]\n", u.Title())
	}
	b.WriteString("        |  weighted by w(u,r) (Table 1)\n        v\n")
	b.WriteString("TIER 2: NETWORK REQUIREMENTS\n")
	for _, r := range iqb.AllRequirements() {
		fmt.Fprintf(&b, "  [%s (%s, %s)]\n", strings.Title(r.String()), iqb.RequirementUnit(r), iqb.RequirementDirection(r))
	}
	b.WriteString("        |  weighted by w(u,r,d), aggregated at the 95th percentile\n        v\n")
	b.WriteString("TIER 3: DATASETS\n")
	for _, d := range cfg.Datasets {
		caps := make([]string, 0, len(d.Capabilities))
		for _, r := range d.Capabilities {
			caps = append(caps, r.String())
		}
		sort.Strings(caps)
		fmt.Fprintf(&b, "  [%s: %s]\n", d.Name, strings.Join(caps, ", "))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderScoreCard renders one region's score with its use-case breakdown.
func RenderScoreCard(w io.Writer, region string, s iqb.Score) error {
	if _, err := fmt.Fprintf(w, "IQB score for %s: %.3f  grade %s  (quality bar: %s, coverage %.0f%%)\n",
		region, s.IQB, s.Grade, s.Quality, s.Coverage*100); err != nil {
		return err
	}
	t := NewTable("Use case", "Score", "", "Weakest requirement").AlignRight(1)
	for _, uc := range s.UseCases {
		weakest, weakestVal := "", 2.0
		for _, rs := range uc.Requirements {
			if rs.Missing {
				continue
			}
			if rs.Agreement < weakestVal {
				weakestVal = rs.Agreement
				weakest = rs.Name
			}
		}
		label := ""
		if weakest != "" && weakestVal < 1 {
			label = fmt.Sprintf("%s (%.2f)", weakest, weakestVal)
		}
		t.Row(uc.Name, fmt.Sprintf("%.3f", uc.Score), Bar(uc.Score, 20), label)
	}
	return t.Render(w)
}

// RenderRanking renders a best-first list of region scores.
func RenderRanking(w io.Writer, rows []RankedRegion) error {
	t := NewTable("Rank", "Region", "Character", "IQB", "Grade", "").AlignRight(0, 3)
	for i, row := range rows {
		t.Row(
			fmt.Sprintf("%d", i+1),
			row.Region,
			row.Character,
			fmt.Sprintf("%.3f", row.Score),
			string(row.Grade),
			Bar(row.Score, 20),
		)
	}
	return t.Render(w)
}

// RankedRegion is one row of a ranking table.
type RankedRegion struct {
	Region    string
	Character string
	Score     float64
	Grade     iqb.Grade
}
