package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"iqb/internal/iqb"
)

// WriteScoresCSV exports region scores as CSV: one row per region with
// the composite plus every use-case score, suitable for spreadsheets and
// downstream plotting.
func WriteScoresCSV(w io.Writer, scores map[string]iqb.Score) error {
	cw := csv.NewWriter(w)
	header := []string{"region", "iqb", "grade", "coverage"}
	for _, u := range iqb.AllUseCases() {
		header = append(header, u.String())
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("report: writing CSV header: %w", err)
	}
	regions := make([]string, 0, len(scores))
	for region := range scores {
		regions = append(regions, region)
	}
	sort.Strings(regions)
	for _, region := range regions {
		s := scores[region]
		row := []string{
			region,
			strconv.FormatFloat(s.IQB, 'f', 6, 64),
			string(s.Grade),
			strconv.FormatFloat(s.Coverage, 'f', 4, 64),
		}
		for _, u := range iqb.AllUseCases() {
			uc, ok := s.UseCaseByName(u)
			if !ok {
				row = append(row, "")
				continue
			}
			row = append(row, strconv.FormatFloat(uc.Score, 'f', 6, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: writing CSV row for %s: %w", region, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScoreMarkdown exports one region's score breakdown as a markdown
// document with the use-case table and per-requirement detail.
func WriteScoreMarkdown(w io.Writer, region string, s iqb.Score) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "# IQB score: %s\n\n", region)
	fmt.Fprintf(ew, "**Score %.3f — grade %s** (quality bar: %s, cell coverage %.0f%%)\n\n",
		s.IQB, s.Grade, s.Quality, s.Coverage*100)
	fmt.Fprintln(ew, "| Use case | Score | Weight |")
	fmt.Fprintln(ew, "|---|---:|---:|")
	for _, uc := range s.UseCases {
		fmt.Fprintf(ew, "| %s | %.3f | %d |\n", uc.Name, uc.Score, uc.Weight)
	}
	fmt.Fprintln(ew)
	for _, uc := range s.UseCases {
		fmt.Fprintf(ew, "## %s (%.3f)\n\n", uc.Name, uc.Score)
		fmt.Fprintln(ew, "| Requirement | Agreement | Dataset | Aggregate | Threshold | Verdict |")
		fmt.Fprintln(ew, "|---|---:|---|---:|---:|---|")
		for _, rs := range uc.Requirements {
			for i, cell := range rs.Datasets {
				reqCol, agrCol := "", ""
				if i == 0 {
					reqCol = rs.Name
					agrCol = fmt.Sprintf("%.2f", rs.Agreement)
					if rs.Missing {
						agrCol = "-"
					}
				}
				verdict := "meets"
				if cell.Missing {
					verdict = "no data"
				} else if !cell.Met {
					verdict = "fails"
				}
				agg := "-"
				if !cell.Missing {
					agg = fmt.Sprintf("%.3f", cell.Aggregate)
				}
				fmt.Fprintf(ew, "| %s | %s | %s | %s | %.3f | %s |\n",
					reqCol, agrCol, cell.Dataset, agg, cell.Threshold, verdict)
			}
		}
		fmt.Fprintln(ew)
	}
	return ew.err
}

// errWriter latches the first write error so the markdown writer does
// not silently emit a truncated document.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

// WriteTimeSeriesCSV exports a score time series as CSV.
func WriteTimeSeriesCSV(w io.Writer, points []iqb.TimePoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"from", "to", "iqb", "grade", "no_data"}); err != nil {
		return fmt.Errorf("report: writing CSV header: %w", err)
	}
	for _, p := range points {
		row := []string{
			p.From.UTC().Format("2006-01-02T15:04:05Z"),
			p.To.UTC().Format("2006-01-02T15:04:05Z"),
			strconv.FormatFloat(p.Score.IQB, 'f', 6, 64),
			string(p.Score.Grade),
			strconv.FormatBool(p.NoData),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
