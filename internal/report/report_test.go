package report

import (
	"bytes"
	"strings"
	"testing"

	"iqb/internal/iqb"
)

func TestTableRender(t *testing.T) {
	var buf bytes.Buffer
	err := NewTable("Name", "Value").AlignRight(1).
		Row("alpha", "1").
		Row("beta-long-name", "22").
		Row("gamma"). // short row padded
		Render(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("missing rule: %q", lines[1])
	}
	// Right alignment: the value column ends at the same offset.
	if !strings.HasSuffix(lines[2], " 1") || !strings.HasSuffix(lines[3], "22") {
		t.Errorf("alignment off:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	if Bar(0.5, 10) != "#####....." {
		t.Errorf("Bar(0.5, 10) = %q", Bar(0.5, 10))
	}
	if Bar(0, 4) != "...." || Bar(1, 4) != "####" {
		t.Error("bar extremes")
	}
	if Bar(-1, 4) != "...." || Bar(2, 4) != "####" {
		t.Error("bar clamping")
	}
	if Bar(0.5, 0) != "" {
		t.Error("zero width")
	}
}

func TestRenderTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTable1(&buf, iqb.Table1Weights()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// All six use case display names appear.
	for _, u := range iqb.AllUseCases() {
		if !strings.Contains(out, u.Title()) {
			t.Errorf("missing %q in:\n%s", u.Title(), out)
		}
	}
	// Gaming row carries the 5 for latency.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Gaming") {
			if !strings.Contains(line, "5") {
				t.Errorf("gaming row = %q", line)
			}
		}
	}
	if !strings.Contains(out, "Table 1") {
		t.Error("missing caption")
	}
}

func TestRenderFig2(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderFig2(&buf, iqb.DefaultThresholds()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 2") {
		t.Error("missing caption")
	}
	for _, want := range []string{"Gaming", "30 ms", "100 ms", "Mbps", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in fig 2 output", want)
		}
	}
}

func TestRenderFig1(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderFig1(&buf, iqb.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TIER 1: USE CASES", "TIER 2: NETWORK REQUIREMENTS", "TIER 3: DATASETS", "ndt", "cloudflare", "ookla", "95th percentile"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in fig 1 output", want)
		}
	}
	// Ookla's line must not claim loss.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "ookla") && strings.Contains(line, "loss") {
			t.Errorf("ookla line claims loss: %q", line)
		}
	}
}

func TestRenderScoreCard(t *testing.T) {
	cfg := iqb.DefaultConfig()
	agg := iqb.NewAggregates()
	for _, d := range cfg.Datasets {
		for _, r := range d.Capabilities {
			v := 500.0
			switch r {
			case iqb.Latency:
				v = 15
			case iqb.Loss:
				v = 0.001
			}
			agg.Set(d.Name, r, v, 50)
		}
	}
	// Make gaming latency fail on one dataset so a weakest requirement
	// appears.
	agg.Set(iqb.DatasetNDT, iqb.Latency, 80, 50)
	s, err := cfg.ScoreAggregates(agg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderScoreCard(&buf, "XA-01-001", s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "XA-01-001") || !strings.Contains(out, "grade") {
		t.Errorf("scorecard header missing: %s", out)
	}
	if !strings.Contains(out, "latency") {
		t.Errorf("weakest requirement not surfaced:\n%s", out)
	}
}

func TestRenderRanking(t *testing.T) {
	rows := []RankedRegion{
		{Region: "XA-01-001", Character: "urban", Score: 0.91, Grade: iqb.GradeA},
		{Region: "XA-02-003", Character: "rural", Score: 0.42, Grade: iqb.GradeD},
	}
	var buf bytes.Buffer
	if err := RenderRanking(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "XA-01-001") || !strings.Contains(out, "rural") {
		t.Errorf("ranking output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("want header+rule+2 rows, got %d lines", len(lines))
	}
}

func passScore(t *testing.T) iqb.Score {
	t.Helper()
	cfg := iqb.DefaultConfig()
	agg := iqb.NewAggregates()
	for _, d := range cfg.Datasets {
		for _, r := range d.Capabilities {
			v := 500.0
			switch r {
			case iqb.Latency:
				v = 15
			case iqb.Loss:
				v = 0.001
			}
			agg.Set(d.Name, r, v, 50)
		}
	}
	s, err := cfg.ScoreAggregates(agg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteScoresCSV(t *testing.T) {
	scores := map[string]iqb.Score{
		"XA-01": passScore(t),
		"XA-02": passScore(t),
	}
	var buf bytes.Buffer
	if err := WriteScoresCSV(&buf, scores); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "region,iqb,grade,coverage,web-browsing") {
		t.Errorf("header = %q", lines[0])
	}
	// Sorted by region.
	if !strings.HasPrefix(lines[1], "XA-01,") || !strings.HasPrefix(lines[2], "XA-02,") {
		t.Errorf("rows not sorted:\n%s", buf.String())
	}
	if !strings.Contains(lines[1], ",A,") {
		t.Errorf("grade missing from row: %q", lines[1])
	}
}

func TestWriteScoreMarkdown(t *testing.T) {
	// Build a score where one capable dataset lacks data so a
	// "no data" cell appears in the breakdown.
	cfg := iqb.DefaultConfig()
	agg := iqb.NewAggregates()
	for _, d := range cfg.Datasets {
		for _, r := range d.Capabilities {
			if d.Name == iqb.DatasetNDT && r == iqb.Loss {
				continue // NDT loss missing
			}
			v := 500.0
			switch r {
			case iqb.Latency:
				v = 15
			case iqb.Loss:
				v = 0.001
			}
			agg.Set(d.Name, r, v, 50)
		}
	}
	s, err := cfg.ScoreAggregates(agg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteScoreMarkdown(&buf, "XA-01-001", s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# IQB score: XA-01-001", "| Use case |", "## gaming", "| ndt |", "meets"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// NDT's loss row is a "no data" cell.
	if !strings.Contains(out, "no data") {
		t.Error("missing cells should render as no data")
	}
}

func TestWriteTimeSeriesCSV(t *testing.T) {
	points := []iqb.TimePoint{
		{Score: passScore(t)},
		{NoData: true},
	}
	var buf bytes.Buffer
	if err := WriteTimeSeriesCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d", len(lines))
	}
	if !strings.Contains(lines[2], "true") {
		t.Errorf("NoData flag missing: %q", lines[2])
	}
}
