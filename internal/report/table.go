// Package report renders the IQB framework's tables and figures as text:
// the Table 1 weight matrix, the Fig. 2 threshold chart, the Fig. 1
// three-tier diagram, per-region score cards, and CSV/markdown exports.
// Everything writes to an io.Writer so the CLI, the experiment harness,
// and tests share one implementation.
package report

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table renders rows with aligned columns.
type Table struct {
	header []string
	rows   [][]string
	// RightAlign marks columns to right-align (numeric columns).
	rightAlign map[int]bool
}

// NewTable starts a table with the given header.
func NewTable(header ...string) *Table {
	return &Table{header: header, rightAlign: map[int]bool{}}
}

// AlignRight right-aligns the given column indexes.
func (t *Table) AlignRight(cols ...int) *Table {
	for _, c := range cols {
		t.rightAlign[c] = true
	}
	return t
}

// Row appends a row; short rows are padded with empty cells.
func (t *Table) Row(cells ...string) *Table {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	pad := func(s string, width int, right bool) string {
		gap := width - utf8.RuneCountInString(s)
		if gap <= 0 {
			return s
		}
		if right {
			return strings.Repeat(" ", gap) + s
		}
		return s + strings.Repeat(" ", gap)
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i], t.rightAlign[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	rule := make([]string, len(t.header))
	for i, width := range widths {
		rule[i] = strings.Repeat("-", width)
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Bar renders a horizontal bar of the given fraction (0..1) and width.
func Bar(frac float64, width int) string {
	if width <= 0 {
		return ""
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	filled := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", filled) + strings.Repeat(".", width-filled)
}
