package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"iqb/internal/geo"
	"iqb/internal/iqb"
	"iqb/internal/pipeline"
	"iqb/internal/report"
)

// Streaming (E11) compares the exact (raw-record) scoring path against
// the memory-bounded DDSketch-cell path on the identical workload.
// Because IQB's requirement scores are binary threshold checks, the
// sketch's small quantile error should almost never flip a cell, so
// per-county scores should agree closely — validating that a production
// deployment can score without retaining raw measurements.
func Streaming(ctx context.Context, w io.Writer) error {
	spec := regionalSpec()
	exact, err := pipeline.Run(ctx, spec)
	if err != nil {
		return err
	}
	stream, err := pipeline.RunStreaming(ctx, spec)
	if err != nil {
		return err
	}
	cfg := iqb.DefaultConfig()
	fmt.Fprintln(w, "E11: exact vs streaming-sketch scoring on the identical workload")
	fmt.Fprintf(w, "(sketch holds %d DDSketch-backed cells instead of %d raw records)\n\n",
		stream.Sketch.Cells(), exact.Store.Len())

	t := report.NewTable("County", "Exact IQB", "Sketch IQB", "|delta|", "Grades").AlignRight(1, 2, 3)
	maxDelta := 0.0
	agreeGrades := 0
	counties := exact.World.DB.Regions(geo.County)
	for _, county := range counties {
		es, err := cfg.ScoreRegion(exact.Store, county, time.Time{}, time.Time{})
		if err != nil {
			return err
		}
		ss, err := cfg.ScoreSketcher(stream.Sketch, county)
		if err != nil {
			return err
		}
		d := es.IQB - ss.IQB
		if d < 0 {
			d = -d
		}
		if d > maxDelta {
			maxDelta = d
		}
		grades := fmt.Sprintf("%s/%s", es.Grade, ss.Grade)
		if es.Grade == ss.Grade {
			agreeGrades++
		}
		t.Row(county,
			fmt.Sprintf("%.3f", es.IQB),
			fmt.Sprintf("%.3f", ss.IQB),
			fmt.Sprintf("%.3f", d),
			grades,
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nmax |delta| %.3f; grades agree in %d/%d counties — binary thresholds absorb the sketch's quantile error\n",
		maxDelta, agreeGrades, len(counties))
	return nil
}
