package experiments

import (
	"context"
	"fmt"
	"io"

	"iqb/internal/dataset"
	"iqb/internal/geo"
	"iqb/internal/iqb"
	"iqb/internal/pipeline"
	"iqb/internal/report"
	"iqb/internal/stats"
)

// ISPs (E13) is the ground-truth recovery check: the simulation assigns
// each ISP a hidden quality multiplier (its access-network investment
// level); IQB sees only the measurement records. If the framework works
// as the poster intends — "actionable insights for decision-makers" —
// the score ranking must recover the hidden quality ordering.
func ISPs(ctx context.Context, w io.Writer) error {
	spec := regionalSpec()
	// More ISPs and a wider quality spread make the recovery target
	// unambiguous.
	spec.Geo.ISPs = 5
	spec.ISPQualitySpread = 0.35
	res, err := pipeline.Run(ctx, spec)
	if err != nil {
		return err
	}
	// The minimum bar has headroom across the whole quality range; the
	// high bar saturates at 0 for rural-heavy ISPs.
	cfg := iqb.DefaultConfig()
	cfg.Quality = iqb.MinimumQuality
	ranked, err := res.RankISPs(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "E13: ISP league table — does IQB recover the simulation's hidden ISP quality?")
	fmt.Fprintln(w)
	t := report.NewTable("Rank", "ISP", "ASN", "IQB(min)", "Grade", "True quality", "").AlignRight(0, 3, 5)
	var scores, truths []float64
	for i, isp := range ranked {
		t.Row(
			fmt.Sprintf("%d", i+1),
			isp.Name,
			fmt.Sprintf("AS%d", isp.ASN),
			fmt.Sprintf("%.3f", isp.Score.IQB),
			string(isp.Score.Grade),
			fmt.Sprintf("%.2f", isp.TrueQuality),
			report.Bar(isp.Score.IQB, 20),
		)
		scores = append(scores, isp.Score.IQB)
		truths = append(truths, isp.TrueQuality)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	rho, err := stats.Spearman(scores, truths)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nraw Spearman(IQB score, hidden quality) = %.2f — the raw league table\n", rho)
	fmt.Fprintln(w, "confounds investment with footprint: an ISP serving urban fiber counties outranks")
	fmt.Fprintln(w, "a better-run ISP stuck with rural DSL subscribers.")

	// Footprint-controlled comparison: within each county, every pair of
	// competing ISPs is ordered by score and by hidden quality; the
	// concordance fraction measures recovery with geography held fixed.
	// Per-ISP-per-county cells are small, so the comparison uses the
	// median aggregation rule: tail percentiles are too noisy to rank
	// providers on a few dozen tests.
	medianCfg := cfg
	medianCfg.Percentile = 50
	scoreConc, scoreDisc := 0, 0
	rawConc, rawDisc := 0, 0
	for _, county := range res.World.DB.Regions(geo.County) {
		market := res.World.DB.Market(county)
		type entry struct {
			quality float64
			score   float64
			medDown float64
			ok      bool
		}
		var entries []entry
		for _, m := range market {
			f := dataset.Filter{RegionPrefix: county, ASN: m.ASN}
			s, err := medianCfg.ScoreFiltered(res.Store, f)
			if err != nil {
				entries = append(entries, entry{ok: false})
				continue
			}
			med, err := res.Store.Aggregate(dataset.Filter{Dataset: iqb.DatasetNDT, RegionPrefix: county, ASN: m.ASN}, dataset.Download, 50)
			if err != nil {
				entries = append(entries, entry{ok: false})
				continue
			}
			entries = append(entries, entry{quality: res.World.ISPQuality[m.ASN], score: s.IQB, medDown: med, ok: true})
		}
		for i := 0; i < len(entries); i++ {
			for j := i + 1; j < len(entries); j++ {
				a, b := entries[i], entries[j]
				if !a.ok || !b.ok {
					continue
				}
				// Only pairs whose hidden qualities are meaningfully
				// separated are a fair recovery target; a 2% investment
				// difference is below the measurement noise floor.
				if gap := a.quality - b.quality; gap < 0.15 && gap > -0.15 {
					continue
				}
				if a.score != b.score {
					if (a.quality > b.quality) == (a.score > b.score) {
						scoreConc++
					} else {
						scoreDisc++
					}
				}
				if a.medDown != b.medDown {
					if (a.quality > b.quality) == (a.medDown > b.medDown) {
						rawConc++
					} else {
						rawDisc++
					}
				}
			}
		}
	}
	fmt.Fprintln(w)
	if rawConc+rawDisc > 0 {
		fmt.Fprintf(w, "within-county, distinguishable pairs (quality gap >= 0.15):\n")
		fmt.Fprintf(w, "  continuous median NDT download orders pairs correctly: %d/%d = %.0f%%\n",
			rawConc, rawConc+rawDisc, 100*float64(rawConc)/float64(rawConc+rawDisc))
	}
	if scoreConc+scoreDisc > 0 {
		fmt.Fprintf(w, "  binarized IQB composite orders pairs correctly:        %d/%d = %.0f%%\n",
			scoreConc, scoreConc+scoreDisc, 100*float64(scoreConc)/float64(scoreConc+scoreDisc))
	}
	fmt.Fprintln(w, "\nthe raw measurements carry the quality signal, but threshold binarization")
	fmt.Fprintln(w, "quantizes it away at per-market sample sizes — a measured limitation of")
	fmt.Fprintln(w, "Nutri-Score-style composites for intra-market ISP comparison")
	return nil
}
