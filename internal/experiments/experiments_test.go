package experiments

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"iqb/internal/iqb"
	"iqb/internal/netem"
)

func TestStaticArtifacts(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TIER 3: DATASETS") {
		t.Error("fig1 missing tiers")
	}
	buf.Reset()
	if err := Fig2(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Gaming") {
		t.Error("fig2 missing use cases")
	}
	buf.Reset()
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Video Conferencing") {
		t.Error("table1 missing rows")
	}
}

func TestRunDispatch(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(context.Background(), "table1", &buf); err != nil {
		t.Fatal(err)
	}
	if err := Run(context.Background(), "made-up", &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}

// TestRegionalShape verifies E4's headline: scores in range, urban
// counties at the top of the ranking.
func TestRegionalShape(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline experiment in -short mode")
	}
	var buf bytes.Buffer
	if err := Regional(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "country-level IQB") {
		t.Error("missing country summary")
	}
	// The top-ranked county (rank 1 line) should be urban.
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "1 ") {
			if !strings.Contains(line, "urban") {
				t.Errorf("rank-1 county is not urban: %q", line)
			}
			break
		}
	}
}

// TestAggregationMonotone verifies E6's claim: the score never rises as
// the percentile gets stricter (the harness itself prints a NOTE line if
// it does; the test asserts the note is absent).
func TestAggregationMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline experiment in -short mode")
	}
	var buf bytes.Buffer
	if err := Aggregation(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NOTE: score rose") {
		t.Errorf("aggregation percentile not monotone:\n%s", buf.String())
	}
}

// TestTechAggregates verifies the per-technology harness produces full
// aggregate sets with sane orderings.
func TestTechAggregates(t *testing.T) {
	fiber, err := TechAggregates(netem.Fiber, 12, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	sat, err := TechAggregates(netem.SatGEO, 12, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	fLat, ok := fiber.Get(iqb.DatasetNDT, iqb.Latency)
	if !ok {
		t.Fatal("fiber NDT latency aggregate missing")
	}
	sLat, ok := sat.Get(iqb.DatasetNDT, iqb.Latency)
	if !ok {
		t.Fatal("satellite NDT latency aggregate missing")
	}
	if fLat >= sLat {
		t.Errorf("fiber p95 latency %v should beat satellite %v", fLat, sLat)
	}
	// All three datasets present; ookla has no loss.
	if _, ok := fiber.Get(iqb.DatasetOokla, iqb.Download); !ok {
		t.Error("ookla aggregate missing")
	}
	if _, ok := fiber.Get(iqb.DatasetOokla, iqb.Loss); ok {
		t.Error("ookla loss aggregate should not exist")
	}
}

// TestSweepCrossoverOrdering verifies E8's headline: technologies flip
// to passing in base-latency order (fiber at a stricter threshold than
// satellite).
func TestSweepCrossoverOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment in -short mode")
	}
	cfg := iqb.DefaultConfig()
	crossover := func(tech netem.Tech) float64 {
		t.Helper()
		agg, err := TechAggregates(tech, 15, 0.5, Seed)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Crossover(cfg, agg, iqb.Gaming, iqb.Latency, SweepThresholds)
		if err != nil {
			t.Fatal(err)
		}
		if c == 0 {
			return 1e9 // never crossed in range
		}
		return c
	}
	fiber := crossover(netem.Fiber)
	sat := crossover(netem.SatGEO)
	if fiber >= sat {
		t.Errorf("fiber crossover %v should be stricter (smaller) than satellite %v", fiber, sat)
	}
}

func TestCorroborationOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline experiment in -short mode")
	}
	var buf bytes.Buffer
	if err := Corroboration(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"w/o ndt", "w/o cloudflare", "w/o ookla", "median max-|delta|"} {
		if !strings.Contains(out, want) {
			t.Errorf("corroboration output missing %q", want)
		}
	}
}

func TestSensitivityOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline experiment in -short mode")
	}
	var buf bytes.Buffer
	if err := Sensitivity(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Score(w-1)") {
		t.Error("sensitivity table missing")
	}
}

// TestAgreementShape verifies E9: the datasets rank counties consistently
// (positive rank correlation) while their raw distributions differ.
func TestAgreementShape(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline experiment in -short mode")
	}
	var buf bytes.Buffer
	if err := Agreement(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Spearman", "KS(ndt, cloudflare)", "ndt vs cloudflare"} {
		if !strings.Contains(out, want) {
			t.Errorf("agreement output missing %q", want)
		}
	}
}

// TestDiurnalShape verifies E10: the evening bands score at or below the
// overnight trough band.
func TestDiurnalShape(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline experiment in -short mode")
	}
	var buf bytes.Buffer
	if err := Diurnal(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "00-03") || !strings.Contains(out, "21-24") {
		t.Fatalf("diurnal bands missing:\n%s", out)
	}
	// Parse the 03-06 (trough) and 18-21 (peak) scores.
	var trough, peak float64
	var troughOK, peakOK bool
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		switch fields[0] {
		case "03-06":
			if v, err := parseFloat(fields[2]); err == nil {
				trough, troughOK = v, true
			}
		case "18-21":
			if v, err := parseFloat(fields[2]); err == nil {
				peak, peakOK = v, true
			}
		}
	}
	if !troughOK || !peakOK {
		t.Skip("bands lacked data in this seed")
	}
	if peak > trough {
		t.Errorf("evening band %v should not outscore the overnight trough %v", peak, trough)
	}
}

func parseFloat(s string) (float64, error) {
	var v float64
	_, err := fmt.Sscanf(s, "%f", &v)
	return v, err
}

// TestStreamingEquivalence verifies E11: exact and sketch paths agree on
// grades.
func TestStreamingEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline experiment in -short mode")
	}
	var buf bytes.Buffer
	if err := Streaming(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "grades agree in 12/12") {
		t.Errorf("grade agreement line missing or degraded:\n%s", out)
	}
}

// TestStackAblation verifies E12: Reno under-reports relative to BBR on
// every technology, worst on satellite.
func TestStackAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("stack experiment in -short mode")
	}
	var buf bytes.Buffer
	if err := Stack(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Parse the reno/bbr ratio column per tech.
	ratios := map[string]float64{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		switch fields[0] {
		case "fiber", "cable", "dsl", "lte", "sat-geo":
			var v float64
			if _, err := fmt.Sscanf(fields[3], "%f", &v); err == nil {
				ratios[fields[0]] = v
			}
		}
	}
	if len(ratios) != 5 {
		t.Fatalf("parsed %d ratios from:\n%s", len(ratios), out)
	}
	for tech, r := range ratios {
		if r >= 1 {
			t.Errorf("%s: reno/bbr ratio %v should be below 1", tech, r)
		}
	}
	if ratios["sat-geo"] >= ratios["fiber"] {
		t.Errorf("satellite ratio %v should be worse than fiber %v", ratios["sat-geo"], ratios["fiber"])
	}
}

// TestISPRecovery verifies E13's headline: continuous metrics recover
// the hidden ISP quality ordering far better than the binarized
// composite at per-market sample sizes.
func TestISPRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline experiment in -short mode")
	}
	var buf bytes.Buffer
	if err := ISPs(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var rawPct, binPct float64
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "continuous median NDT download") {
			fmt.Sscanf(line[strings.LastIndex(line, "= ")+2:], "%f%%", &rawPct)
		}
		if strings.Contains(line, "binarized IQB composite") {
			fmt.Sscanf(line[strings.LastIndex(line, "= ")+2:], "%f%%", &binPct)
		}
	}
	if rawPct == 0 {
		t.Fatalf("concordance lines missing:\n%s", out)
	}
	if rawPct < 80 {
		t.Errorf("continuous concordance %v%% should be high", rawPct)
	}
	if binPct >= rawPct {
		t.Errorf("binarized concordance %v%% should trail continuous %v%%", binPct, rawPct)
	}
}
