// Package experiments regenerates every table and figure of the IQB
// poster plus the extension experiments from DESIGN.md (E1-E8). Each
// experiment writes its artifact to an io.Writer; cmd/experiments wraps
// them as a CLI and bench_test.go wraps them as benchmarks.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"iqb/internal/cfspeed"
	"iqb/internal/dataset"
	"iqb/internal/geo"
	"iqb/internal/iqb"
	"iqb/internal/ndt"
	"iqb/internal/netem"
	"iqb/internal/ookla"
	"iqb/internal/pipeline"
	"iqb/internal/report"
	"iqb/internal/rng"
)

// Seed is the fixed seed all experiments run under.
const Seed = 42

// Fig1 renders the three-tier framework diagram (E1).
func Fig1(w io.Writer) error {
	return report.RenderFig1(w, iqb.DefaultConfig())
}

// Fig2 renders the threshold chart (E2).
func Fig2(w io.Writer) error {
	return report.RenderFig2(w, iqb.DefaultThresholds())
}

// Table1 renders the published weight matrix (E3).
func Table1(w io.Writer) error {
	return report.RenderTable1(w, iqb.Table1Weights())
}

// regionalSpec is the E4 workload: 4 states x 3 counties, seed 42.
func regionalSpec() pipeline.Spec {
	spec := pipeline.DefaultSpec()
	spec.Seed = Seed
	spec.TestsPerCounty = 80
	return spec
}

// Regional runs the synthetic country and prints the per-county IQB
// ranking with grades (E4).
func Regional(ctx context.Context, w io.Writer) error {
	res, err := pipeline.Run(ctx, regionalSpec())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "E4: IQB scores across a synthetic country (%d records, seed %d)\n\n", res.Store.Len(), Seed)
	cfg := iqb.DefaultConfig()
	minCfg := iqb.DefaultConfig()
	minCfg.Quality = iqb.MinimumQuality
	ranked, err := res.RankCounties(cfg)
	if err != nil {
		return err
	}
	t := report.NewTable("Rank", "Region", "Character", "IQB(high)", "Grade", "IQB(min)", "Grade", "").AlignRight(0, 3, 5)
	for i, rs := range ranked {
		minScore, err := minCfg.ScoreRegion(res.Store, rs.Region, time.Time{}, time.Time{})
		if err != nil {
			return err
		}
		t.Row(
			fmt.Sprintf("%d", i+1),
			rs.Region,
			rs.Character.String(),
			fmt.Sprintf("%.3f", rs.Score.IQB),
			string(rs.Score.Grade),
			fmt.Sprintf("%.3f", minScore.IQB),
			string(minScore.Grade),
			report.Bar(rs.Score.IQB, 20),
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	// Country-level summary under both bars.
	country, err := cfg.ScoreRegion(res.Store, res.World.DB.Root(), time.Time{}, time.Time{})
	if err != nil {
		return err
	}
	countryMin, err := minCfg.ScoreRegion(res.Store, res.World.DB.Root(), time.Time{}, time.Time{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ncountry-level IQB: high-quality bar %.3f (grade %s), minimum bar %.3f (grade %s)\n",
		country.IQB, country.Grade, countryMin.IQB, countryMin.Grade)
	return nil
}

// Corroboration quantifies cross-dataset corroboration (E5): per county,
// the leave-one-out score deltas, and the spread between single-dataset
// and all-dataset scores.
func Corroboration(ctx context.Context, w io.Writer) error {
	res, err := pipeline.Run(ctx, regionalSpec())
	if err != nil {
		return err
	}
	cfg := iqb.DefaultConfig()
	fmt.Fprintln(w, "E5: dataset corroboration — leave-one-out score deltas per county")
	fmt.Fprintln(w)
	t := report.NewTable("County", "Full", "w/o ndt", "w/o cloudflare", "w/o ookla", "Max |delta|").AlignRight(1, 2, 3, 4, 5)
	counties := res.World.DB.Regions(geo.County)
	var maxAbs []float64
	for _, county := range counties {
		agg, err := cfg.AggregateStore(res.Store, county, time.Time{}, time.Time{})
		if err != nil {
			return err
		}
		full, outs, err := cfg.LeaveOneOutAnalysis(agg)
		if err != nil {
			return err
		}
		byDS := map[string]float64{}
		worst := 0.0
		for _, o := range outs {
			byDS[o.Dataset] = o.Score
			if d := abs(o.Delta); d > worst {
				worst = d
			}
		}
		maxAbs = append(maxAbs, worst)
		t.Row(county,
			fmt.Sprintf("%.3f", full.IQB),
			fmt.Sprintf("%.3f", byDS["ndt"]),
			fmt.Sprintf("%.3f", byDS["cloudflare"]),
			fmt.Sprintf("%.3f", byDS["ookla"]),
			fmt.Sprintf("%.3f", worst),
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	sort.Float64s(maxAbs)
	if len(maxAbs) > 0 {
		fmt.Fprintf(w, "\nmedian max-|delta| across counties: %.3f — removing any one dataset moves scores, which is the corroboration the poster argues for\n",
			maxAbs[len(maxAbs)/2])
	}
	return nil
}

// Aggregation compares the paper's 95th-percentile rule against other
// aggregation percentiles (E6).
func Aggregation(ctx context.Context, w io.Writer) error {
	res, err := pipeline.Run(ctx, regionalSpec())
	if err != nil {
		return err
	}
	percentiles := []float64{50, 75, 90, 95, 99}
	fmt.Fprintln(w, "E6: aggregation ablation — country IQB score by aggregation percentile")
	fmt.Fprintln(w, "(mirror-tail convention: throughput uses the mirrored tail)")
	fmt.Fprintln(w)
	t := report.NewTable("Percentile", "Country IQB", "Grade").AlignRight(0, 1)
	root := res.World.DB.Root()
	var prev float64 = 2
	for _, p := range percentiles {
		cfg := iqb.DefaultConfig()
		cfg.Percentile = p
		score, err := cfg.ScoreRegion(res.Store, root, time.Time{}, time.Time{})
		if err != nil {
			return err
		}
		t.Row(fmt.Sprintf("p%g", p), fmt.Sprintf("%.3f", score.IQB), string(score.Grade))
		if score.IQB > prev+1e-9 {
			fmt.Fprintf(w, "NOTE: score rose from p%g — not monotone\n", p)
		}
		prev = score.IQB
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nstricter percentiles are never more generous: the 95th percentile (the paper's rule) scores at or below the median rule")
	return nil
}

// Sensitivity perturbs every Table 1 weight by ±1 on the country
// aggregate and prints the most score-moving cells (E7).
func Sensitivity(ctx context.Context, w io.Writer) error {
	res, err := pipeline.Run(ctx, regionalSpec())
	if err != nil {
		return err
	}
	cfg := iqb.DefaultConfig()
	agg, err := cfg.AggregateStore(res.Store, res.World.DB.Root(), time.Time{}, time.Time{})
	if err != nil {
		return err
	}
	perts, err := cfg.WeightSensitivity(agg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E7: weight sensitivity — country IQB range when one Table 1 cell moves by ±1")
	fmt.Fprintln(w)
	t := report.NewTable("Use case", "Requirement", "w", "Score(w-1)", "Score(w+1)", "Range").AlignRight(2, 3, 4, 5)
	n := len(perts)
	if n > 10 {
		n = 10
	}
	for _, p := range perts[:n] {
		t.Row(p.UseCaseName, p.Requirement,
			fmt.Sprintf("%d", p.Base),
			fmt.Sprintf("%.3f", p.ScoreDown),
			fmt.Sprintf("%.3f", p.ScoreUp),
			fmt.Sprintf("%.3f", p.Range),
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n(top %d of %d cells; integer weights keep single-cell influence bounded)\n", n, len(perts))
	return nil
}

// SweepTechs is the per-technology E8 workload.
var SweepTechs = []netem.Tech{netem.Fiber, netem.Cable, netem.LTE, netem.SatGEO}

// SweepThresholds is the gaming latency high-quality bar sweep range (ms).
var SweepThresholds = []float64{20, 30, 50, 75, 100, 150, 200, 300, 500, 700, 1000}

// Crossover returns the loosest-to-strictest boundary at which the swept
// cell flips to passing: the smallest threshold whose score exceeds the
// score under an impossibly strict bar. It returns 0 when the cell never
// passes within the sweep range.
func Crossover(cfg iqb.Config, agg *iqb.Aggregates, u iqb.UseCase, r iqb.Requirement, thresholds []float64) (float64, error) {
	baselinePts, err := cfg.ThresholdSweep(agg, u, r, []float64{0.0001})
	if err != nil {
		return 0, err
	}
	baseline := baselinePts[0].Score
	points, err := cfg.ThresholdSweep(agg, u, r, thresholds)
	if err != nil {
		return 0, err
	}
	for _, p := range points {
		if p.Score > baseline+1e-9 {
			return p.Threshold, nil
		}
	}
	return 0, nil
}

// TechAggregates simulates nTests of each measurement system for
// subscribers on one access technology at utilization rho and returns
// the framework aggregates.
func TechAggregates(tech netem.Tech, nTests int, rho float64, seed uint64) (*iqb.Aggregates, error) {
	cfg := iqb.DefaultConfig()
	store := dataset.NewStore()
	pub := ookla.NewPublisher()
	profile := netem.DefaultProfiles()[tech]
	base := time.Date(2025, 6, 2, 20, 0, 0, 0, time.UTC)
	root := rng.New(seed).Fork("tech-" + tech.String())
	for i := 0; i < nTests; i++ {
		src := root.Fork(fmt.Sprintf("test-%d", i))
		path := netem.DrawPath(profile, 1, src)
		at := base.Add(time.Duration(i) * time.Minute)

		nres, err := ndt.Simulate(path, rho, src)
		if err != nil {
			return nil, err
		}
		rec, err := nres.ToRecord(fmt.Sprintf("ndt-%d", i), "TT", 64500, tech.String(), at)
		if err != nil {
			return nil, err
		}
		if err := store.Add(rec); err != nil {
			return nil, err
		}

		cres, err := cfspeed.Simulate(path, rho, src)
		if err != nil {
			return nil, err
		}
		crec, err := cres.ToRecord(fmt.Sprintf("cf-%d", i), "TT", 64500, tech.String(), at)
		if err != nil {
			return nil, err
		}
		if err := store.Add(crec); err != nil {
			return nil, err
		}

		ores, err := ookla.Simulate(path, rho, src)
		if err != nil {
			return nil, err
		}
		if err := pub.Add(ookla.RawSample{Region: "TT", ASN: 64500, Time: at, Result: ores}); err != nil {
			return nil, err
		}
	}
	aggs, err := pub.Publish(1)
	if err != nil {
		return nil, err
	}
	if err := store.AddAll(aggs); err != nil {
		return nil, err
	}
	return cfg.AggregateStore(store, "TT", time.Time{}, time.Time{})
}

// Sweep varies the gaming latency high-quality threshold across access
// technologies and prints the score series with crossover points (E8).
func Sweep(ctx context.Context, w io.Writer) error {
	fmt.Fprintln(w, "E8: gaming latency threshold sweep per access technology")
	fmt.Fprintln(w, "(score = full IQB with the gaming latency high bar set to the column value)")
	fmt.Fprintln(w)
	header := []string{"Tech"}
	for _, thr := range SweepThresholds {
		header = append(header, fmt.Sprintf("%gms", thr))
	}
	header = append(header, "crossover")
	t := report.NewTable(header...)
	cfg := iqb.DefaultConfig()
	crossovers := map[netem.Tech]float64{}
	for _, tech := range SweepTechs {
		if err := ctx.Err(); err != nil {
			return err
		}
		agg, err := TechAggregates(tech, 25, 0.5, Seed)
		if err != nil {
			return err
		}
		points, err := cfg.ThresholdSweep(agg, iqb.Gaming, iqb.Latency, SweepThresholds)
		if err != nil {
			return err
		}
		row := []string{tech.String()}
		for _, p := range points {
			row = append(row, fmt.Sprintf("%.2f", p.Score))
		}
		crossover, err := Crossover(cfg, agg, iqb.Gaming, iqb.Latency, SweepThresholds)
		if err != nil {
			return err
		}
		crossovers[tech] = crossover
		label := "-"
		if crossover > 0 {
			label = fmt.Sprintf("<=%gms", crossover)
		}
		row = append(row, label)
		t.Row(row...)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nlower-latency technologies flip to passing at stricter thresholds: fiber first, satellite last")
	return nil
}

// All runs every experiment in order.
func All(ctx context.Context, w io.Writer) error {
	steps := []struct {
		name string
		fn   func(context.Context, io.Writer) error
	}{
		{"fig1", func(_ context.Context, w io.Writer) error { return Fig1(w) }},
		{"fig2", func(_ context.Context, w io.Writer) error { return Fig2(w) }},
		{"table1", func(_ context.Context, w io.Writer) error { return Table1(w) }},
		{"regional", Regional},
		{"corroboration", Corroboration},
		{"aggregation", Aggregation},
		{"sensitivity", Sensitivity},
		{"sweep", Sweep},
		{"agreement", Agreement},
		{"diurnal", Diurnal},
		{"streaming", Streaming},
		{"stack", Stack},
		{"isps", ISPs},
	}
	for i, s := range steps {
		if i > 0 {
			fmt.Fprintln(w, "\n"+divider)
		}
		if err := s.fn(ctx, w); err != nil {
			return fmt.Errorf("experiments: %s: %w", s.name, err)
		}
	}
	return nil
}

const divider = "================================================================"

// Run dispatches one experiment by name, or "all".
func Run(ctx context.Context, name string, w io.Writer) error {
	switch name {
	case "fig1":
		return Fig1(w)
	case "fig2":
		return Fig2(w)
	case "table1":
		return Table1(w)
	case "regional":
		return Regional(ctx, w)
	case "corroboration":
		return Corroboration(ctx, w)
	case "aggregation":
		return Aggregation(ctx, w)
	case "sensitivity":
		return Sensitivity(ctx, w)
	case "sweep":
		return Sweep(ctx, w)
	case "agreement":
		return Agreement(ctx, w)
	case "diurnal":
		return Diurnal(ctx, w)
	case "streaming":
		return Streaming(ctx, w)
	case "stack":
		return Stack(ctx, w)
	case "isps":
		return ISPs(ctx, w)
	case "all", "":
		return All(ctx, w)
	default:
		return fmt.Errorf("experiments: unknown experiment %q", name)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
