package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/geo"
	"iqb/internal/iqb"
	"iqb/internal/pipeline"
	"iqb/internal/report"
	"iqb/internal/stats"
)

// Agreement (E9) quantifies how much the three datasets agree on the
// same ground truth: per county, the Spearman rank correlation of the
// per-dataset county aggregates across counties, and the two-sample
// Kolmogorov-Smirnov distance between NDT's and Cloudflare's raw
// download distributions. The poster's corroboration argument rests on
// the datasets ranking regions the same way while measuring differently;
// this experiment checks both halves.
func Agreement(ctx context.Context, w io.Writer) error {
	res, err := pipeline.Run(ctx, regionalSpec())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E9: cross-dataset agreement")
	fmt.Fprintln(w)

	counties := res.World.DB.Regions(geo.County)
	cfg := iqb.DefaultConfig()

	// Half 1: do the datasets rank counties the same way?
	// Collect each dataset's p95-rule download aggregate per county.
	perDS := map[string][]float64{}
	for _, county := range counties {
		agg, err := cfg.AggregateStore(res.Store, county, time.Time{}, time.Time{})
		if err != nil {
			return err
		}
		for _, ds := range []string{iqb.DatasetNDT, iqb.DatasetCloudflare, iqb.DatasetOokla} {
			v, ok := agg.Get(ds, iqb.Download)
			if !ok {
				v = 0 // suppressed/missing county aggregate ranks last
			}
			perDS[ds] = append(perDS[ds], v)
		}
	}
	t := report.NewTable("Dataset pair", "Spearman rho (county download aggregates)").AlignRight(1)
	pairs := [][2]string{
		{iqb.DatasetNDT, iqb.DatasetCloudflare},
		{iqb.DatasetNDT, iqb.DatasetOokla},
		{iqb.DatasetCloudflare, iqb.DatasetOokla},
	}
	for _, pair := range pairs {
		rho, err := stats.Spearman(perDS[pair[0]], perDS[pair[1]])
		if err != nil {
			return fmt.Errorf("experiments: spearman %v: %w", pair, err)
		}
		t.Row(pair[0]+" vs "+pair[1], fmt.Sprintf("%.3f", rho))
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Half 2: do they measure the same number? Per county, the KS
	// distance between NDT's and Cloudflare's raw download samples.
	fmt.Fprintln(w)
	t2 := report.NewTable("County", "KS(ndt, cloudflare) download", "Distinct at 5%").AlignRight(1)
	for _, county := range counties {
		ndtVals := res.Store.Values(dataset.Filter{Dataset: iqb.DatasetNDT, RegionPrefix: county}, dataset.Download)
		cfVals := res.Store.Values(dataset.Filter{Dataset: iqb.DatasetCloudflare, RegionPrefix: county}, dataset.Download)
		d, err := stats.KSStatistic(ndtVals, cfVals)
		if err != nil {
			return fmt.Errorf("experiments: KS for %s: %w", county, err)
		}
		sig := "no"
		if stats.KSSignificant(d, len(ndtVals), len(cfVals)) {
			sig = "yes"
		}
		t2.Row(county, fmt.Sprintf("%.3f", d), sig)
	}
	if err := t2.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nhigh rank correlation + significant KS distance = the datasets agree on WHERE quality is good")
	fmt.Fprintln(w, "while disagreeing on the raw number — exactly the regime IQB's binary-threshold corroboration is built for")
	return nil
}

// Diurnal (E10) scores the synthetic country by hour-of-day band,
// showing the evening congestion dip in the composite.
func Diurnal(ctx context.Context, w io.Writer) error {
	spec := regionalSpec()
	spec.TestsPerCounty = 150 // more tests so every band has data
	res, err := pipeline.Run(ctx, spec)
	if err != nil {
		return err
	}
	cfg := iqb.DefaultConfig()
	cfg.Quality = iqb.MinimumQuality // minimum bar has headroom to dip
	buckets, err := cfg.ScoreByHourOfDay(res.Store, res.World.DB.Root(), 3)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "E10: diurnal profile — country IQB (minimum-quality bar) by hour-of-day band")
	fmt.Fprintln(w)
	t := report.NewTable("Hours (UTC)", "Records", "IQB", "Grade", "").AlignRight(1, 2)
	for _, b := range buckets {
		if b.NoData {
			t.Row(fmt.Sprintf("%02d-%02d", b.FromHour, b.ToHour), fmt.Sprintf("%d", b.Records), "-", "-", "")
			continue
		}
		t.Row(
			fmt.Sprintf("%02d-%02d", b.FromHour, b.ToHour),
			fmt.Sprintf("%d", b.Records),
			fmt.Sprintf("%.3f", b.Score.IQB),
			string(b.Score.Grade),
			report.Bar(b.Score.IQB, 20),
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nthe 18-24h bands carry the evening congestion; scoring only off-peak hours overstates quality")
	return nil
}
