package experiments

import (
	"context"
	"fmt"
	"io"

	"iqb/internal/iqb"
	"iqb/internal/ndt"
	"iqb/internal/netem"
	"iqb/internal/report"
	"iqb/internal/rng"
	"iqb/internal/stats"
	"iqb/internal/tcpmodel"
)

// Stack (E12) is the measurement-stack ablation: the same subscribers
// measured by a Reno-era NDT (NDT5) versus the BBR-era NDT (NDT7). M-Lab
// switched stacks in 2019 precisely because loss-sensitive AIMD
// under-reports capacity; since IQB consumes NDT data, the composite
// score inherits that methodology dependence. The experiment quantifies
// it per access technology.
func Stack(ctx context.Context, w io.Writer) error {
	fmt.Fprintln(w, "E12: measurement-stack ablation — the same subscribers measured by a")
	fmt.Fprintln(w, "Reno-era NDT (NDT5-style) vs the BBR-era NDT (NDT7-style)")
	fmt.Fprintln(w)
	t := report.NewTable("Tech", "p50 down (bbr)", "p50 down (reno)", "reno/bbr", "download cell flips").AlignRight(1, 2, 3)
	profiles := netem.DefaultProfiles()
	cfg := iqb.DefaultConfig()
	const tests = 30

	for _, tech := range []netem.Tech{netem.Fiber, netem.Cable, netem.DSL, netem.LTE, netem.SatGEO} {
		if err := ctx.Err(); err != nil {
			return err
		}
		root := rng.New(Seed).Fork("stack-" + tech.String())
		var bbrDowns, renoDowns []float64
		flips := 0
		for i := 0; i < tests; i++ {
			src := root.Fork(fmt.Sprintf("test-%d", i))
			path := netem.DrawPath(profiles[tech], 1, src)
			// The two stacks measure the same path under the same
			// conditions: fork per-law streams from the same test seed.
			bbrRes, err := ndt.SimulateWithLaw(path, 0.5, tcpmodel.LawBBR, src.Fork("bbr"))
			if err != nil {
				return err
			}
			renoRes, err := ndt.SimulateWithLaw(path, 0.5, tcpmodel.LawReno, src.Fork("reno"))
			if err != nil {
				return err
			}
			bbrDowns = append(bbrDowns, bbrRes.DownloadMbps)
			renoDowns = append(renoDowns, renoRes.DownloadMbps)

			// Does the gaming download cell (50 Mbps high bar) flip
			// between stacks for this subscriber?
			bar := cfg.Thresholds[iqb.Gaming][iqb.Download].High
			if (bbrRes.DownloadMbps >= bar) != (renoRes.DownloadMbps >= bar) {
				flips++
			}
		}
		bbrMed, err := stats.Median(bbrDowns)
		if err != nil {
			return err
		}
		renoMed, _ := stats.Median(renoDowns)
		ratio := 0.0
		if bbrMed > 0 {
			ratio = renoMed / bbrMed
		}
		t.Row(tech.String(),
			fmt.Sprintf("%.1f", bbrMed),
			fmt.Sprintf("%.1f", renoMed),
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%d/%d subscribers", flips, tests),
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nloss-sensitive AIMD under-reports on lossy/high-BDP technologies; the flipped")
	fmt.Fprintln(w, "threshold cells show the composite score depends on the measurement stack, not")
	fmt.Fprintln(w, "only the network — a caveat any IQB deployment mixing NDT eras must document")
	return nil
}
