package tcpmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"iqb/internal/netem"
	"iqb/internal/rng"
	"iqb/internal/units"
)

func fastPath() netem.Path {
	return netem.Path{
		Tech:     netem.Fiber,
		DownMbps: 500,
		UpMbps:   400,
		BaseRTT:  units.LatencyFromMillis(10),
		JitterMS: 1,
		Loss:     0.0005,
		BloatMS:  15,
		Shared:   0.1,
	}
}

func slowPath() netem.Path {
	return netem.Path{
		Tech:     netem.DSL,
		DownMbps: 15,
		UpMbps:   2,
		BaseRTT:  units.LatencyFromMillis(35),
		JitterMS: 5,
		Loss:     0.004,
		BloatMS:  150,
		Shared:   0.3,
	}
}

func TestDirectionString(t *testing.T) {
	if Download.String() != "download" || Upload.String() != "upload" {
		t.Error("direction strings")
	}
}

func TestRunDurationMode(t *testing.T) {
	res, err := Run(fastPath(), Config{Direction: Download, Duration: 10 * time.Second, Rho: 0.2}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < 10*time.Second {
		t.Errorf("elapsed %v < requested 10s", res.Elapsed)
	}
	if res.Goodput <= 0 {
		t.Error("goodput must be positive")
	}
	// A 500 Mbps fiber path at light load should achieve a large
	// fraction of capacity in 10 s, and never exceed it.
	if res.Goodput.Mbps() < 150 {
		t.Errorf("fiber goodput %v suspiciously low", res.Goodput)
	}
	if res.Goodput.Mbps() > 500 {
		t.Errorf("goodput %v exceeds capacity", res.Goodput)
	}
	if res.MinRTT < fastPath().BaseRTT {
		t.Errorf("min RTT %v below base %v", res.MinRTT, fastPath().BaseRTT)
	}
	if res.AvgRTT < res.MinRTT {
		t.Errorf("avg RTT %v below min %v", res.AvgRTT, res.MinRTT)
	}
}

func TestRunBytesMode(t *testing.T) {
	const want = 5 << 20 // 5 MB
	res, err := Run(fastPath(), Config{Direction: Download, Bytes: want, Rho: 0.1}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesDelivered != want {
		t.Errorf("delivered %d, want exactly %d", res.BytesDelivered, want)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed must be positive")
	}
}

func TestRunUploadSlower(t *testing.T) {
	p := slowPath()
	down, err := Run(p, Config{Direction: Download, Duration: 8 * time.Second, Rho: 0.3}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	up, err := Run(p, Config{Direction: Upload, Duration: 8 * time.Second, Rho: 0.3}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if up.Goodput >= down.Goodput {
		t.Errorf("asymmetric DSL: upload %v should be below download %v", up.Goodput, down.Goodput)
	}
}

func TestRunMultiFlowAggregatesMore(t *testing.T) {
	// Multiple flows ramp faster and recover independently, so aggregate
	// goodput on a lossy path should not be lower than a single flow.
	p := slowPath()
	p.Loss = 0.01
	one, err := Run(p, Config{Direction: Download, Duration: 6 * time.Second, Flows: 1, Rho: 0.4}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(p, Config{Direction: Download, Duration: 6 * time.Second, Flows: 4, Rho: 0.4}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if four.Goodput.Mbps() < one.Goodput.Mbps()*0.9 {
		t.Errorf("4 flows %v clearly below 1 flow %v", four.Goodput, one.Goodput)
	}
}

func TestRunLoadReducesGoodput(t *testing.T) {
	p := netem.DrawPath(netem.DefaultProfiles()[netem.Cable], 1, rng.New(5))
	idle, err := Run(p, Config{Direction: Download, Duration: 6 * time.Second, Rho: 0.05}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	busy, err := Run(p, Config{Direction: Download, Duration: 6 * time.Second, Rho: 0.9}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if busy.Goodput >= idle.Goodput {
		t.Errorf("busy goodput %v not below idle %v", busy.Goodput, idle.Goodput)
	}
}

func TestRunLossCounted(t *testing.T) {
	p := slowPath()
	p.Loss = 0.02
	res, err := Run(p, Config{Direction: Download, Duration: 10 * time.Second, Rho: 0.5}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmits == 0 {
		t.Error("2% loss path should see retransmits")
	}
	lr := res.LossRate()
	if !lr.Valid() || lr == 0 {
		t.Errorf("loss rate = %v", lr)
	}
	if (Result{}).LossRate() != 0 {
		t.Error("empty result loss rate should be 0")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(fastPath(), Config{}, nil); err == nil {
		t.Error("config without duration or bytes should error")
	}
}

func TestRunDefaults(t *testing.T) {
	// nil source, zero flows, zero queue: all default sanely.
	res, err := Run(fastPath(), Config{Direction: Download, Duration: time.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Goodput <= 0 {
		t.Error("defaults should still transfer")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Direction: Download, Duration: 3 * time.Second, Rho: 0.3}
	a, err := Run(slowPath(), cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(slowPath(), cfg, rng.New(11))
	if a.Goodput != b.Goodput || a.Retransmits != b.Retransmits {
		t.Error("same seed should reproduce the same result")
	}
}

// Property: goodput never exceeds the path's subscribed rate and all
// reported quantities are internally consistent.
func TestRunProperties(t *testing.T) {
	profiles := netem.DefaultProfiles()
	src := rng.New(13)
	f := func(techIdx, rhoRaw uint8, flows uint8) bool {
		tech := netem.AllTechs()[int(techIdx)%len(netem.AllTechs())]
		p := netem.DrawPath(profiles[tech], 1, src)
		cfg := Config{
			Direction: Download,
			Duration:  2 * time.Second,
			Flows:     int(flows%4) + 1,
			Rho:       float64(rhoRaw) / 300, // up to ~0.85
		}
		res, err := Run(p, cfg, src)
		if err != nil {
			return false
		}
		if res.Goodput.Mbps() > p.DownMbps+1e-9 {
			return false
		}
		if res.BytesDelivered < 0 || res.Retransmits > res.SegmentsSent {
			return false
		}
		return res.MinRTT >= p.BaseRTT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMathis(t *testing.T) {
	cap100 := 100 * units.Mbps
	rtt := units.LatencyFromMillis(50)
	// Zero loss: capacity-limited.
	if got := Mathis(cap100, rtt, 0); got != cap100 {
		t.Errorf("zero loss should return capacity, got %v", got)
	}
	// Heavy loss: loss-limited, well under capacity.
	heavy := Mathis(cap100, rtt, 0.05)
	if heavy >= cap100 {
		t.Errorf("5%% loss should be loss-limited, got %v", heavy)
	}
	// Mathis at 1% loss, 50 ms: 1460*8/0.05 * 1.22/0.1 = ~2.85 Mbps.
	got := Mathis(cap100, rtt, 0.01)
	if math.Abs(got.Mbps()-2.85) > 0.1 {
		t.Errorf("Mathis(100Mbps, 50ms, 1%%) = %v, want ~2.85", got)
	}
	// Loss monotonicity.
	if Mathis(cap100, rtt, 0.02) >= Mathis(cap100, rtt, 0.005) {
		t.Error("more loss should mean less throughput")
	}
	// RTT monotonicity.
	if Mathis(cap100, units.LatencyFromMillis(200), 0.01) >= Mathis(cap100, units.LatencyFromMillis(20), 0.01) {
		t.Error("more RTT should mean less throughput")
	}
	// Degenerate RTT.
	if Mathis(cap100, 0, 0.01) != cap100 {
		t.Error("zero RTT should return capacity")
	}
}

func TestModelAgreesWithMathisOrder(t *testing.T) {
	// The simulation and the analytic model should agree on ordering:
	// a clean fast path beats a lossy slow one.
	fast, err := Run(fastPath(), Config{Direction: Download, Duration: 8 * time.Second, Rho: 0.1}, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	lossy := slowPath()
	lossy.Loss = 0.02
	slow, err := Run(lossy, Config{Direction: Download, Duration: 8 * time.Second, Rho: 0.6}, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Goodput <= slow.Goodput {
		t.Errorf("fast %v should beat slow %v", fast.Goodput, slow.Goodput)
	}
	mFast := Mathis(units.Throughput(fastPath().DownMbps), fastPath().BaseRTT, fastPath().Loss)
	mSlow := Mathis(units.Throughput(lossy.DownMbps), lossy.BaseRTT, lossy.Loss)
	if mFast <= mSlow {
		t.Errorf("Mathis ordering: %v should beat %v", mFast, mSlow)
	}
}

func TestPing(t *testing.T) {
	p := fastPath()
	samples := Ping(p, 20, 0.2, rng.New(19))
	if len(samples) != 20 {
		t.Fatalf("got %d samples", len(samples))
	}
	for _, s := range samples {
		if s < p.BaseRTT {
			t.Errorf("ping %v below base RTT", s)
		}
	}
	if Ping(p, 0, 0, nil) != nil {
		t.Error("zero pings should be nil")
	}
	if got := Ping(p, 3, 0.1, nil); len(got) != 3 {
		t.Error("nil source should still work")
	}
}

func BenchmarkRun10s(b *testing.B) {
	p := fastPath()
	cfg := Config{Direction: Download, Duration: 10 * time.Second, Rho: 0.3}
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, cfg, src); err != nil {
			b.Fatal(err)
		}
	}
}

func TestControlLawStrings(t *testing.T) {
	if LawBBR.String() != "bbr" || LawReno.String() != "reno" {
		t.Error("control law strings")
	}
	if ControlLaw(9).String() == "" {
		t.Error("unknown law should still format")
	}
}

// TestRenoLossSensitive reproduces the NDT5->NDT7 transition: on a lossy
// path, Reno's AIMD under-reports capacity relative to BBR.
func TestRenoLossSensitive(t *testing.T) {
	p := fastPath()
	p.Loss = 0.005 // 0.5% random loss
	bbr, err := Run(p, Config{Direction: Download, Duration: 8 * time.Second, Rho: 0.2, Law: LawBBR}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	reno, err := Run(p, Config{Direction: Download, Duration: 8 * time.Second, Rho: 0.2, Law: LawReno}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if reno.Goodput.Mbps() >= bbr.Goodput.Mbps()*0.5 {
		t.Errorf("0.5%% loss: reno %v should be well below bbr %v", reno.Goodput, bbr.Goodput)
	}
	// And Reno's goodput should be in the ballpark of the Mathis bound.
	mathis := Mathis(units.Throughput(p.DownMbps), p.BaseRTT, p.Loss)
	ratio := reno.Goodput.Mbps() / mathis.Mbps()
	if ratio < 0.2 || ratio > 3 {
		t.Errorf("reno %v vs Mathis %v diverge by %vx", reno.Goodput, mathis, ratio)
	}
}

// TestRenoCleanPathStillFills: with negligible loss and adequate time,
// Reno reaches a large fraction of a small link.
func TestRenoCleanPathStillFills(t *testing.T) {
	p := slowPath()
	p.Loss = 0.00001
	reno, err := Run(p, Config{Direction: Download, Duration: 10 * time.Second, Rho: 0.1, Law: LawReno}, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	if reno.Goodput.Mbps() < p.DownMbps*0.4 {
		t.Errorf("clean DSL: reno %v below 40%% of %v Mbps", reno.Goodput, p.DownMbps)
	}
}
