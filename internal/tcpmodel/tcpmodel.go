// Package tcpmodel simulates TCP flow dynamics over a netem path at
// round-trip granularity: IW10 slow start, AIMD congestion avoidance with
// fast recovery, queue-induced losses when the window overruns the
// bandwidth-delay product, and fair capacity sharing across parallel
// flows. The three measurement systems drive this model to obtain the
// throughput, RTT, and retransmission numbers a real client would report.
//
// The package also provides the Mathis steady-state model
// (MSS/RTT · C/√p) as an analytic cross-check.
package tcpmodel

import (
	"fmt"
	"math"
	"time"

	"iqb/internal/netem"
	"iqb/internal/rng"
	"iqb/internal/units"
)

// MSS is the segment size assumed by the model.
const MSS = 1460

// Direction selects which side of the path a flow loads.
type Direction int

// Flow directions.
const (
	Download Direction = iota
	Upload
)

// String names the direction.
func (d Direction) String() string {
	if d == Download {
		return "download"
	}
	return "upload"
}

// ControlLaw selects the congestion-control behaviour of the simulated
// sender. The choice matters for measurement: M-Lab's NDT moved from a
// Reno-era stack (NDT5) to BBR (NDT7) precisely because loss-sensitive
// AIMD under-reports capacity on long or lossy paths.
type ControlLaw int

// Control laws.
const (
	// LawBBR (default) rate-tracks the bottleneck: random loss is
	// counted but does not collapse the window.
	LawBBR ControlLaw = iota
	// LawReno is classic AIMD: slow start with ssthresh, multiplicative
	// decrease on every loss event, additive increase otherwise.
	LawReno
)

// String names the control law.
func (l ControlLaw) String() string {
	switch l {
	case LawBBR:
		return "bbr"
	case LawReno:
		return "reno"
	default:
		return fmt.Sprintf("ControlLaw(%d)", int(l))
	}
}

// Config parametrizes a simulated transfer.
type Config struct {
	Direction Direction
	// Law selects the sender's congestion control. Default LawBBR.
	Law ControlLaw
	// Duration ends the transfer after this much simulated time
	// (e.g. 10 s for an NDT-style test). Zero means "until Bytes done".
	Duration time.Duration
	// Bytes ends the transfer after this many bytes (e.g. a Cloudflare
	// 10 MB object). Zero means "until Duration elapses".
	Bytes int64
	// Flows is the number of parallel connections (Ookla uses several).
	Flows int
	// Rho is the neighborhood utilization during the test.
	Rho float64
	// QueuePackets is the bottleneck buffer depth; deeper buffers mean
	// later loss and more bufferbloat. Defaults to 64.
	QueuePackets int
}

// Result summarizes a simulated transfer.
type Result struct {
	// Goodput is delivered application bytes over elapsed time.
	Goodput units.Throughput
	// Elapsed is the simulated wall time of the transfer.
	Elapsed time.Duration
	// BytesDelivered counts application bytes that arrived.
	BytesDelivered int64
	// MinRTT and AvgRTT summarize per-round RTT samples.
	MinRTT units.Latency
	AvgRTT units.Latency
	// RTTSamples holds one RTT observation per simulated round.
	RTTSamples []units.Latency
	// Retransmits counts lost segments (the NDT loss proxy).
	Retransmits int64
	// SegmentsSent counts all transmission attempts.
	SegmentsSent int64
}

// LossRate returns retransmitted over sent segments.
func (r Result) LossRate() units.LossRate {
	if r.SegmentsSent == 0 {
		return 0
	}
	return units.LossRate(float64(r.Retransmits) / float64(r.SegmentsSent))
}

// Run simulates cfg over path and returns the transfer result. The
// source drives all stochastic choices, making runs reproducible.
func Run(path netem.Path, cfg Config, src *rng.Source) (Result, error) {
	if cfg.Duration <= 0 && cfg.Bytes <= 0 {
		return Result{}, fmt.Errorf("tcpmodel: config needs a duration or byte budget")
	}
	if cfg.Flows <= 0 {
		cfg.Flows = 1
	}
	if cfg.QueuePackets <= 0 {
		cfg.QueuePackets = 64
	}
	if src == nil {
		src = rng.New(0)
	}

	// Per-flow congestion state. Under LawBBR (the NDT7-era default) the
	// sender rate-tracks the bottleneck: exponential startup until
	// delivery stops growing, then tracking the estimated share with
	// gentle probing; random loss is counted (it is what the tests
	// report) but does not collapse the window. Under LawReno every loss
	// event halves the window, reproducing the loss-limited behaviour of
	// the NDT5-era stack.
	cwnd := make([]float64, cfg.Flows) // in segments
	ssthresh := make([]float64, cfg.Flows)
	for i := range cwnd {
		cwnd[i] = 10 // IW10
		ssthresh[i] = math.Inf(1)
	}

	var res Result
	res.MinRTT = units.Latency(math.MaxInt64)
	var elapsed time.Duration
	var rttSum float64

	for round := 0; ; round++ {
		if cfg.Duration > 0 && elapsed >= cfg.Duration {
			break
		}
		if cfg.Bytes > 0 && res.BytesDelivered >= cfg.Bytes {
			break
		}
		if round > 200000 {
			return Result{}, fmt.Errorf("tcpmodel: transfer did not converge after %d rounds", round)
		}

		st := path.Observe(cfg.Rho, src)
		capacity := st.AvailDown
		if cfg.Direction == Upload {
			capacity = st.AvailUp
		}
		rtt := st.RTT
		res.RTTSamples = append(res.RTTSamples, rtt)
		rttSum += rtt.Milliseconds()
		if rtt < res.MinRTT {
			res.MinRTT = rtt
		}

		// Bandwidth-delay product in segments for this round, shared
		// fairly across flows. Sustained delivery is BDP-limited; the
		// queue only defers overflow loss, it does not add rate.
		bdp := capacity.BytesPerSecond() * rtt.Duration().Seconds() / MSS
		bdpShare := math.Max(bdp/float64(cfg.Flows), 1)
		queueShare := float64(cfg.QueuePackets) / float64(cfg.Flows)

		roundDelivered := 0.0
		for i := range cwnd {
			attempt := cwnd[i]
			res.SegmentsSent += int64(attempt)
			delivered := math.Min(attempt, bdpShare)

			// Random segment loss: Poisson around attempt * p. Lost
			// segments are retransmitted next round, so they subtract
			// from goodput.
			lost := 0.0
			if st.Loss > 0 {
				lost = float64(src.Poisson(attempt * float64(st.Loss)))
				lost = math.Min(lost, delivered)
				res.Retransmits += int64(lost)
				delivered -= lost
			}
			overflow := attempt - (bdpShare + queueShare)
			if overflow > 0 {
				res.Retransmits += int64(math.Ceil(overflow))
			}

			switch cfg.Law {
			case LawReno:
				if lost > 0 || overflow > 0 {
					// Multiplicative decrease on any loss event.
					ssthresh[i] = math.Max(cwnd[i]/2, 2)
					cwnd[i] = ssthresh[i]
				} else if cwnd[i] < ssthresh[i] {
					cwnd[i] = math.Min(cwnd[i]*2, ssthresh[i]) // slow start
				} else {
					cwnd[i]++ // additive increase
				}
			default: // LawBBR
				// Only queue overflow forces a drain back to the share;
				// random loss does not collapse the window.
				if overflow > 0 {
					cwnd[i] = bdpShare
				} else if attempt < bdpShare {
					cwnd[i] = math.Min(attempt*2, bdpShare+queueShare/2) // startup
				} else {
					// Steady state: track the share with a gentle probe
					// so capacity changes are discovered.
					cwnd[i] = bdpShare * src.Range(1.0, 1.05)
				}
			}
			roundDelivered += delivered
		}

		bytes := int64(roundDelivered * MSS)
		if cfg.Bytes > 0 && res.BytesDelivered+bytes > cfg.Bytes {
			// Partial final round: charge time proportionally.
			need := cfg.Bytes - res.BytesDelivered
			frac := float64(need) / float64(bytes)
			res.BytesDelivered = cfg.Bytes
			elapsed += time.Duration(frac * float64(rtt.Duration()))
			break
		}
		res.BytesDelivered += bytes
		elapsed += rtt.Duration()
	}

	res.Elapsed = elapsed
	if len(res.RTTSamples) > 0 {
		res.AvgRTT = units.LatencyFromMillis(rttSum / float64(len(res.RTTSamples)))
	}
	if res.MinRTT == units.Latency(math.MaxInt64) {
		res.MinRTT = 0
	}
	res.Goodput = units.ThroughputFromTransfer(res.BytesDelivered, elapsed)
	return res, nil
}

// Mathis returns the steady-state TCP throughput predicted by the Mathis
// model: MSS/RTT · C/√p with C ≈ 1.22, capped at the link capacity.
// With zero loss it returns the capacity itself.
func Mathis(capacity units.Throughput, rtt units.Latency, loss units.LossRate) units.Throughput {
	if rtt <= 0 {
		return capacity
	}
	if loss <= 0 {
		return capacity
	}
	bps := MSS * 8 / rtt.Duration().Seconds() * 1.22 / math.Sqrt(float64(loss))
	t := units.Throughput(bps / 1e6)
	if t > capacity {
		return capacity
	}
	return t
}

// Ping simulates n unloaded latency probes over the path and returns the
// RTT samples; measurement clients use it for idle-latency measurement.
func Ping(path netem.Path, n int, rho float64, src *rng.Source) []units.Latency {
	if n <= 0 {
		return nil
	}
	if src == nil {
		src = rng.New(0)
	}
	out := make([]units.Latency, n)
	for i := range out {
		out[i] = path.Observe(rho, src).RTT
	}
	return out
}
