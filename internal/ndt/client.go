package ndt

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"iqb/internal/netem"
	"iqb/internal/units"
)

// TestResult is the client-side outcome of a full NDT measurement
// (download + upload + latency), ready to become a dataset record.
type TestResult struct {
	DownloadMbps float64
	UploadMbps   float64
	MinRTTms     float64
	LossRate     float64
	// Measurements counts the interim server snapshots received.
	Measurements int
}

// Client runs tests against a Server.
type Client struct {
	// Addr is the server address.
	Addr string
	// Duration overrides the standard test duration (for tests).
	Duration time.Duration
	// UploadRate paces the client's upload frames; it plays the role of
	// the subscriber's upstream link. Zero means unshaped.
	UploadRate units.Throughput
	// Dialer allows tests to inject timeouts.
	Dialer net.Dialer
}

// Run executes download then upload and merges the results. The
// download's loss rate and min RTT are preferred, matching how the NDT
// pipeline derives record fields.
func (c *Client) Run(ctx context.Context) (TestResult, error) {
	down, err := c.runOne(ctx, "download")
	if err != nil {
		return TestResult{}, fmt.Errorf("ndt: download: %w", err)
	}
	up, err := c.runOne(ctx, "upload")
	if err != nil {
		return TestResult{}, fmt.Errorf("ndt: upload: %w", err)
	}
	res := TestResult{
		DownloadMbps: down.clientMbps,
		UploadMbps:   up.serverResult.Mbps,
		MinRTTms:     down.serverResult.MinRTTms,
		LossRate:     down.serverResult.LossRate,
		Measurements: down.measurements + up.measurements,
	}
	if up.serverResult.MinRTTms > 0 && (res.MinRTTms == 0 || up.serverResult.MinRTTms < res.MinRTTms) {
		res.MinRTTms = up.serverResult.MinRTTms
	}
	return res, nil
}

// oneResult carries one direction's outcome.
type oneResult struct {
	serverResult Result
	clientMbps   float64
	measurements int
}

func (c *Client) runOne(ctx context.Context, test string) (oneResult, error) {
	conn, err := c.Dialer.DialContext(ctx, "tcp", c.Addr)
	if err != nil {
		return oneResult{}, fmt.Errorf("dialing %s: %w", c.Addr, err)
	}
	defer conn.Close()

	duration := c.Duration
	if duration <= 0 {
		duration = TestDuration
	}
	deadline := time.Now().Add(duration + 15*time.Second)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return oneResult{}, err
	}

	req := Request{Test: test, DurationMS: duration.Milliseconds()}
	if err := writeJSONFrame(conn, frameRequest, req); err != nil {
		return oneResult{}, err
	}
	switch test {
	case "download":
		return c.receiveDownload(conn)
	case "upload":
		return c.sendUpload(conn, duration)
	default:
		return oneResult{}, fmt.Errorf("unknown test %q", test)
	}
}

// receiveDownload consumes frames until the final result, measuring
// client-side goodput.
func (c *Client) receiveDownload(conn net.Conn) (oneResult, error) {
	var out oneResult
	var bytes int64
	start := time.Now()
	var buf []byte
	for {
		typ, payload, err := readFrame(conn, buf)
		if err != nil {
			return oneResult{}, fmt.Errorf("reading download frame: %w", err)
		}
		buf = payload[:0]
		switch typ {
		case frameData:
			bytes += int64(len(payload))
		case frameMeasurement:
			out.measurements++
		case frameResult:
			if err := json.Unmarshal(payload, &out.serverResult); err != nil {
				return oneResult{}, fmt.Errorf("bad result frame: %w", err)
			}
			out.clientMbps = units.ThroughputFromTransfer(bytes, time.Since(start)).Mbps()
			return out, nil
		default:
			return oneResult{}, fmt.Errorf("unexpected frame type %d", typ)
		}
	}
}

// sendUpload pushes paced data frames for the duration, signals
// completion, and reads the server's verdict.
func (c *Client) sendUpload(conn net.Conn, duration time.Duration) (oneResult, error) {
	var shaper *netem.Shaper
	if c.UploadRate > 0 {
		var err error
		shaper, err = netem.NewShaper(c.UploadRate)
		if err != nil {
			return oneResult{}, err
		}
	}
	chunk := make([]byte, 32<<10)
	start := time.Now()
	for time.Since(start) < duration {
		if shaper != nil {
			shaper.Pace(len(chunk))
		}
		if err := writeFrame(conn, frameData, chunk); err != nil {
			return oneResult{}, fmt.Errorf("writing upload frame: %w", err)
		}
	}
	// Signal end of upload with an empty result frame.
	if err := writeFrame(conn, frameResult, nil); err != nil {
		return oneResult{}, fmt.Errorf("finishing upload: %w", err)
	}
	var out oneResult
	var buf []byte
	for {
		typ, payload, err := readFrame(conn, buf)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return oneResult{}, fmt.Errorf("server closed before result")
			}
			return oneResult{}, err
		}
		buf = payload[:0]
		if typ == frameResult {
			if err := json.Unmarshal(payload, &out.serverResult); err != nil {
				return oneResult{}, fmt.Errorf("bad result frame: %w", err)
			}
			return out, nil
		}
		if typ == frameMeasurement {
			out.measurements++
		}
	}
}
