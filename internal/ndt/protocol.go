// Package ndt implements an NDT7-style single-stream measurement system:
// a TCP server and client exchanging length-prefixed frames (bulk data
// interleaved with JSON measurement messages), with transfer pacing
// governed by a netem path so the client measures emulated last-mile
// conditions rather than the loopback interface.
//
// It substitutes for the M-Lab NDT dataset in the IQB framework (see
// DESIGN.md): the record schema and the single-saturating-stream
// methodology match NDT; only the wire underneath is emulated. A fast
// Simulate path produces statistically equivalent results without
// sockets for bulk dataset generation.
package ndt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Frame types on the wire.
const (
	frameData        = 0x00
	frameMeasurement = 0x01
	frameRequest     = 0x02
	frameResult      = 0x03
)

// maxFrame bounds frame payloads to keep a malicious peer from forcing
// huge allocations.
const maxFrame = 1 << 20

// TestDuration is the standard NDT transfer duration.
const TestDuration = 10 * time.Second

// measureInterval is how often the server emits measurement frames.
const measureInterval = 250 * time.Millisecond

// Request opens a test.
type Request struct {
	// Test is "download" or "upload".
	Test string `json:"test"`
	// DurationMS overrides the standard 10s duration (for tests).
	DurationMS int64 `json:"duration_ms,omitempty"`
}

// Measurement is the periodic counter snapshot, mirroring the TCPInfo
// fields NDT7 reports.
type Measurement struct {
	ElapsedMS    int64   `json:"elapsed_ms"`
	Bytes        int64   `json:"bytes"`
	RTTms        float64 `json:"rtt_ms"`
	MinRTTms     float64 `json:"min_rtt_ms"`
	Retransmits  int64   `json:"retransmits"`
	SegmentsSent int64   `json:"segments_sent"`
}

// Result is the server's final verdict for one direction.
type Result struct {
	Test         string  `json:"test"`
	Mbps         float64 `json:"mbps"`
	MinRTTms     float64 `json:"min_rtt_ms"`
	LossRate     float64 `json:"loss_rate"`
	Bytes        int64   `json:"bytes"`
	DurationMS   int64   `json:"duration_ms"`
	Measurements int     `json:"measurements"`
}

// writeFrame writes a typed frame: 1 type byte + 4-byte big-endian
// length + payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("ndt: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("ndt: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("ndt: writing frame payload: %w", err)
	}
	return nil
}

// readFrame reads one frame, reusing buf when it is large enough.
func readFrame(r io.Reader, buf []byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // propagate EOF untranslated for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("ndt: peer announced %d byte frame (limit %d)", n, maxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("ndt: reading frame payload: %w", err)
	}
	return hdr[0], buf, nil
}

// writeJSONFrame marshals v into a frame of the given type.
func writeJSONFrame(w io.Writer, typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("ndt: marshaling frame: %w", err)
	}
	return writeFrame(w, typ, payload)
}
