package ndt

import (
	"fmt"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/netem"
	"iqb/internal/rng"
	"iqb/internal/tcpmodel"
)

// Simulate produces the result an NDT test would report for a subscriber
// on the given path at utilization rho, without sockets: a 10-second
// single-stream download, a 10-second upload, and the download's loss
// and min-RTT counters — the same derivation the live client uses.
// The sender is BBR, matching the NDT7 measurement stack.
func Simulate(path netem.Path, rho float64, src *rng.Source) (TestResult, error) {
	return SimulateWithLaw(path, rho, tcpmodel.LawBBR, src)
}

// SimulateWithLaw is Simulate with an explicit congestion-control law,
// allowing the NDT5-era (Reno) measurement stack to be reproduced for
// methodology ablations.
func SimulateWithLaw(path netem.Path, rho float64, law tcpmodel.ControlLaw, src *rng.Source) (TestResult, error) {
	down, err := tcpmodel.Run(path, tcpmodel.Config{
		Direction: tcpmodel.Download,
		Law:       law,
		Duration:  TestDuration,
		Rho:       rho,
	}, src)
	if err != nil {
		return TestResult{}, fmt.Errorf("ndt: simulating download: %w", err)
	}
	up, err := tcpmodel.Run(path, tcpmodel.Config{
		Direction: tcpmodel.Upload,
		Law:       law,
		Duration:  TestDuration,
		Rho:       rho,
	}, src)
	if err != nil {
		return TestResult{}, fmt.Errorf("ndt: simulating upload: %w", err)
	}
	minRTT := down.MinRTT
	if up.MinRTT > 0 && up.MinRTT < minRTT {
		minRTT = up.MinRTT
	}
	return TestResult{
		DownloadMbps: down.Goodput.Mbps(),
		UploadMbps:   up.Goodput.Mbps(),
		MinRTTms:     minRTT.Milliseconds(),
		LossRate:     float64(down.LossRate()),
		Measurements: len(down.RTTSamples) + len(up.RTTSamples),
	}, nil
}

// ToRecord converts a test result into the unified dataset schema.
func (r TestResult) ToRecord(id, region string, asn uint32, tech string, t time.Time) (dataset.Record, error) {
	rec := dataset.NewRecord(id, "ndt", region, t)
	rec.ASN = asn
	rec.Tech = tech
	rec.SetValue(dataset.Download, r.DownloadMbps)
	rec.SetValue(dataset.Upload, r.UploadMbps)
	rec.SetValue(dataset.Latency, r.MinRTTms)
	rec.SetValue(dataset.Loss, r.LossRate)
	if err := rec.Validate(); err != nil {
		return dataset.Record{}, err
	}
	return rec, nil
}
