package ndt

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"iqb/internal/netem"
	"iqb/internal/rng"
	"iqb/internal/tcpmodel"
	"iqb/internal/units"
)

func testPath() netem.Path {
	return netem.Path{
		Tech:     netem.Cable,
		DownMbps: 80,
		UpMbps:   20,
		BaseRTT:  units.LatencyFromMillis(18),
		JitterMS: 4,
		Loss:     0.001,
		BloatMS:  80,
		Shared:   0.5,
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello measurement world")
	if err := writeFrame(&buf, frameMeasurement, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameMeasurement || string(got) != string(payload) {
		t.Errorf("round trip = %d %q", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameResult, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf, nil)
	if err != nil || typ != frameResult || len(got) != 0 {
		t.Errorf("empty frame = %d %v %v", typ, got, err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameData, make([]byte, maxFrame+1)); err == nil {
		t.Error("oversized write should error")
	}
	// A forged header announcing a huge frame must be rejected.
	buf.Reset()
	buf.Write([]byte{frameData, 0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := readFrame(&buf, nil); err == nil {
		t.Error("forged huge frame should error")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameData, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-3] // cut payload short
	if _, _, err := readFrame(bytes.NewReader(raw), nil); err == nil {
		t.Error("truncated frame should error")
	}
}

func TestWriteJSONFrame(t *testing.T) {
	var buf bytes.Buffer
	m := Measurement{ElapsedMS: 250, Bytes: 12345, RTTms: 20.5}
	if err := writeJSONFrame(&buf, frameMeasurement, m); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(&buf, nil)
	if err != nil || typ != frameMeasurement {
		t.Fatal(err)
	}
	var back Measurement
	if err := json.Unmarshal(payload, &back); err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Errorf("round trip = %+v, want %+v", back, m)
	}
}

func TestNewServerValidatesPath(t *testing.T) {
	if _, err := NewServer(netem.Path{}, 0.3, 1, nil); err == nil {
		t.Error("invalid path should error")
	}
}

// TestLiveDownloadUpload runs a complete client-server measurement over
// localhost with a 1-second test duration.
func TestLiveDownloadUpload(t *testing.T) {
	srv, err := NewServer(testPath(), 0.3, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := &Client{
		Addr:       addr.String(),
		Duration:   time.Second,
		UploadRate: 20 * units.Mbps,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := client.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The path is 80 Mbps down: the measured rate must be within the
	// emulated envelope, far below loopback's multi-Gbps.
	if res.DownloadMbps <= 1 || res.DownloadMbps > 85 {
		t.Errorf("download = %v Mbps, want within emulated envelope (1, 85]", res.DownloadMbps)
	}
	if res.UploadMbps <= 1 || res.UploadMbps > 25 {
		t.Errorf("upload = %v Mbps, want within (1, 25]", res.UploadMbps)
	}
	if res.MinRTTms < 14 { // base RTT is 18ms with 0.8x draw floor ~14.4
		t.Errorf("min RTT = %v ms, below emulated base", res.MinRTTms)
	}
	if res.LossRate < 0 || res.LossRate > 0.05 {
		t.Errorf("loss = %v, out of plausible band", res.LossRate)
	}
	if res.Measurements == 0 {
		t.Error("expected interim measurement frames")
	}
}

func TestLiveDownloadIsShaped(t *testing.T) {
	// A 5 Mbps path must measurably throttle a 1-second download.
	slow := testPath()
	slow.DownMbps = 5
	slow.UpMbps = 2
	srv, err := NewServer(slow, 0.1, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &Client{Addr: addr.String(), Duration: time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := client.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadMbps > 6 {
		t.Errorf("download = %v Mbps through a 5 Mbps path", res.DownloadMbps)
	}
}

func TestServerRejectsBadRequest(t *testing.T) {
	srv, err := NewServer(testPath(), 0.3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Unknown test name: server closes without a result frame.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeJSONFrame(conn, frameRequest, Request{Test: "teleport"}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := readFrame(conn, nil); err == nil {
		t.Error("server should close on unknown test")
	}

	// Wrong first frame type.
	conn2, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := writeFrame(conn2, frameData, []byte("x")); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := readFrame(conn2, nil); err == nil {
		t.Error("server should close on non-request first frame")
	}
}

func TestClientDialFailure(t *testing.T) {
	client := &Client{Addr: "127.0.0.1:1", Duration: 100 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := client.Run(ctx); err == nil {
		t.Error("dialing a dead port should error")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := NewServer(testPath(), 0.3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close should be a no-op, got %v", err)
	}
}

func TestSimulate(t *testing.T) {
	res, err := Simulate(testPath(), 0.3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadMbps <= 0 || res.DownloadMbps > 80 {
		t.Errorf("download = %v", res.DownloadMbps)
	}
	if res.UploadMbps <= 0 || res.UploadMbps > 20 {
		t.Errorf("upload = %v", res.UploadMbps)
	}
	if res.UploadMbps >= res.DownloadMbps {
		t.Errorf("cable upload %v should trail download %v", res.UploadMbps, res.DownloadMbps)
	}
	if res.MinRTTms < 14 {
		t.Errorf("min RTT = %v below base", res.MinRTTms)
	}
	if res.LossRate < 0 || res.LossRate > 0.1 {
		t.Errorf("loss = %v", res.LossRate)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(testPath(), 0.4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(testPath(), 0.4, rng.New(9))
	if a != b {
		t.Error("same seed should reproduce")
	}
}

func TestToRecord(t *testing.T) {
	res := TestResult{DownloadMbps: 50, UploadMbps: 10, MinRTTms: 25, LossRate: 0.002}
	now := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	rec, err := res.ToRecord("t1", "XA-01-001", 64500, "cable", now)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Dataset != "ndt" || rec.DownloadMbps != 50 || rec.LossFrac != 0.002 {
		t.Errorf("record = %+v", rec)
	}
	// Invalid derived record surfaces the validation error.
	bad := TestResult{DownloadMbps: -1}
	if _, err := bad.ToRecord("t2", "XA", 0, "", now); err == nil {
		t.Error("negative download should fail validation")
	}
}

func TestLiveMatchesSimulatedEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("live comparison in -short mode")
	}
	// The live shaped transfer and the pure simulation should land in the
	// same ballpark for the same path (within 3x either way given the
	// short 1s live duration).
	p := testPath()
	srv, err := NewServer(p, 0.3, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &Client{Addr: addr.String(), Duration: time.Second, UploadRate: units.Throughput(p.UpMbps)}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	live, err := client.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(p, 0.3, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	ratio := live.DownloadMbps / sim.DownloadMbps
	if ratio < 0.33 || ratio > 3 {
		t.Errorf("live %v vs simulated %v Mbps diverge by %vx", live.DownloadMbps, sim.DownloadMbps, ratio)
	}
}

func TestRequestJSONShape(t *testing.T) {
	b, err := json.Marshal(Request{Test: "download", DurationMS: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"test":"download"`) {
		t.Errorf("request JSON = %s", b)
	}
}

func TestSimulateWithLawReno(t *testing.T) {
	lossy := testPath()
	lossy.Loss = 0.005
	bbr, err := SimulateWithLaw(lossy, 0.3, tcpmodel.LawBBR, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	reno, err := SimulateWithLaw(lossy, 0.3, tcpmodel.LawReno, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	if reno.DownloadMbps >= bbr.DownloadMbps {
		t.Errorf("lossy path: reno NDT %v should under-report vs bbr %v",
			reno.DownloadMbps, bbr.DownloadMbps)
	}
}
