package ndt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"sync"
	"time"

	"iqb/internal/netem"
	"iqb/internal/rng"
	"iqb/internal/tcpmodel"
	"iqb/internal/units"
)

// Server is an NDT-style measurement server. Each accepted connection
// runs one download or upload test, paced according to the configured
// netem path so the measured numbers reflect the emulated access network.
type Server struct {
	path netem.Path
	rho  float64
	seed uint64
	log  *slog.Logger

	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup
}

// NewServer builds a server emulating the given path at utilization rho.
// The seed makes the emulated counters reproducible; logger may be nil.
func NewServer(path netem.Path, rho float64, seed uint64, logger *slog.Logger) (*Server, error) {
	if err := path.Validate(); err != nil {
		return nil, err
	}
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Server{path: path, rho: rho, seed: seed, log: logger}, nil
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address. Serve loops until Close.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ndt: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for connID := uint64(0); ; connID++ {
		conn, err := ln.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				s.log.Error("ndt accept", "err", err)
			}
			return
		}
		s.wg.Add(1)
		go func(c net.Conn, id uint64) {
			defer s.wg.Done()
			defer c.Close()
			if err := s.handle(c, id); err != nil && !errors.Is(err, io.EOF) {
				s.log.Error("ndt session", "err", err)
			}
		}(conn, connID)
	}
}

// Close stops the listener and waits for in-flight sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// handle runs one test session on an accepted connection.
func (s *Server) handle(conn net.Conn, connID uint64) error {
	if err := conn.SetDeadline(time.Now().Add(2 * TestDuration)); err != nil {
		return fmt.Errorf("ndt: setting deadline: %w", err)
	}
	typ, payload, err := readFrame(conn, nil)
	if err != nil {
		return err
	}
	if typ != frameRequest {
		return fmt.Errorf("ndt: expected request frame, got type %d", typ)
	}
	var req Request
	if err := json.Unmarshal(payload, &req); err != nil {
		return fmt.Errorf("ndt: bad request: %w", err)
	}
	duration := TestDuration
	if req.DurationMS > 0 {
		duration = time.Duration(req.DurationMS) * time.Millisecond
	}
	if err := conn.SetDeadline(time.Now().Add(duration + 10*time.Second)); err != nil {
		return fmt.Errorf("ndt: extending deadline: %w", err)
	}
	src := rng.New(s.seed).Fork(fmt.Sprintf("conn-%d", connID))
	switch req.Test {
	case "download":
		return s.serveDownload(conn, duration, src)
	case "upload":
		return s.serveUpload(conn, duration, src)
	default:
		return fmt.Errorf("ndt: unknown test %q", req.Test)
	}
}

// emulatedCounters tracks the synthetic TCPInfo the server reports: the
// real wire is loopback, so RTT and retransmits come from the path model.
type emulatedCounters struct {
	minRTT  float64
	lastRTT float64
	retrans int64
	sent    int64
}

func (e *emulatedCounters) observe(st netem.State, bytes int, src *rng.Source) {
	rtt := st.RTT.Milliseconds()
	e.lastRTT = rtt
	if e.minRTT == 0 || rtt < e.minRTT {
		e.minRTT = rtt
	}
	segs := int64(bytes / tcpmodel.MSS)
	if segs < 1 {
		segs = 1
	}
	e.sent += segs
	e.retrans += int64(src.Poisson(float64(segs) * float64(st.Loss)))
}

func (e *emulatedCounters) lossRate() float64 {
	if e.sent == 0 {
		return 0
	}
	return float64(e.retrans) / float64(e.sent)
}

// serveDownload pushes paced data frames plus measurement frames and a
// final result.
func (s *Server) serveDownload(conn net.Conn, duration time.Duration, src *rng.Source) error {
	st := s.path.Observe(s.rho, src)
	shaper, err := netem.NewShaper(st.AvailDown)
	if err != nil {
		return err
	}
	chunk := make([]byte, 64<<10)
	var counters emulatedCounters
	var sent, observed int64
	start := time.Now()
	lastMeasure := start
	measurements := 0

	for {
		elapsed := time.Since(start)
		if elapsed >= duration {
			break
		}
		if time.Since(lastMeasure) >= measureInterval {
			st = s.path.Observe(s.rho, src)
			shaper.SetRate(st.AvailDown)
			counters.observe(st, int(sent-observed), src)
			observed = sent
			m := Measurement{
				ElapsedMS:    elapsed.Milliseconds(),
				Bytes:        sent,
				RTTms:        counters.lastRTT,
				MinRTTms:     counters.minRTT,
				Retransmits:  counters.retrans,
				SegmentsSent: counters.sent,
			}
			if err := writeJSONFrame(conn, frameMeasurement, m); err != nil {
				return err
			}
			lastMeasure = time.Now()
			measurements++
		}
		n := len(chunk)
		shaper.Pace(n)
		if err := writeFrame(conn, frameData, chunk[:n]); err != nil {
			return err
		}
		sent += int64(n)
	}
	if counters.minRTT == 0 {
		counters.observe(s.path.Observe(s.rho, src), int(sent-observed), src)
	}
	elapsed := time.Since(start)
	res := Result{
		Test:         "download",
		Mbps:         units.ThroughputFromTransfer(sent, elapsed).Mbps(),
		MinRTTms:     counters.minRTT,
		LossRate:     counters.lossRate(),
		Bytes:        sent,
		DurationMS:   elapsed.Milliseconds(),
		Measurements: measurements,
	}
	return writeJSONFrame(conn, frameResult, res)
}

// serveUpload receives data frames; the client paces. The server tallies
// and reports.
func (s *Server) serveUpload(conn net.Conn, duration time.Duration, src *rng.Source) error {
	var counters emulatedCounters
	var received, observed int64
	start := time.Now()
	lastMeasure := start
	measurements := 0
	buf := make([]byte, 0, 64<<10)

	for {
		typ, payload, err := readFrame(conn, buf)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
		buf = payload[:0]
		switch typ {
		case frameData:
			received += int64(len(payload))
		case frameResult:
			// Client signals it is done sending.
			goto done
		default:
			return fmt.Errorf("ndt: unexpected frame type %d during upload", typ)
		}
		if time.Since(lastMeasure) >= measureInterval {
			st := s.path.Observe(s.rho, src)
			counters.observe(st, int(received-observed), src)
			observed = received
			lastMeasure = time.Now()
			measurements++
		}
		if time.Since(start) > duration+5*time.Second {
			return fmt.Errorf("ndt: upload overran its duration")
		}
	}
done:
	if counters.minRTT == 0 {
		counters.observe(s.path.Observe(s.rho, src), int(math.Max(float64(received-observed), 1)), src)
	}
	elapsed := time.Since(start)
	res := Result{
		Test:         "upload",
		Mbps:         units.ThroughputFromTransfer(received, elapsed).Mbps(),
		MinRTTms:     counters.minRTT,
		LossRate:     counters.lossRate(),
		Bytes:        received,
		DurationMS:   elapsed.Milliseconds(),
		Measurements: measurements,
	}
	return writeJSONFrame(conn, frameResult, res)
}
