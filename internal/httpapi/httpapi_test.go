package httpapi

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/geo"
	"iqb/internal/iqb"
)

// buildWorld assembles a small scored world: two counties, three
// datasets, the urban one healthy and the rural one poor.
func buildWorld(t *testing.T) (*dataset.Store, *geo.DB) {
	t.Helper()
	db := geo.NewDB()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.AddRegion(geo.Region{Code: "XA", Name: "Examplia", Level: geo.Country}))
	must(db.AddRegion(geo.Region{Code: "XA-01", Level: geo.State, Parent: "XA"}))
	must(db.AddRegion(geo.Region{Code: "XA-01-001", Level: geo.County, Parent: "XA-01", Character: geo.Urban, Population: 50000}))
	must(db.AddRegion(geo.Region{Code: "XA-01-002", Level: geo.County, Parent: "XA-01", Character: geo.Rural, Population: 8000}))

	store := dataset.NewStore()
	ts := time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC)
	add := func(id, ds, region string, down, up, lat, loss float64) {
		t.Helper()
		rec := dataset.NewRecord(id, ds, region, ts)
		rec.SetValue(dataset.Download, down)
		rec.SetValue(dataset.Upload, up)
		rec.SetValue(dataset.Latency, lat)
		if ds != "ookla" {
			rec.SetValue(dataset.Loss, loss)
		}
		must(store.Add(rec))
	}
	for i := 0; i < 15; i++ {
		suffix := string(rune('a' + i))
		add("u"+suffix, "ndt", "XA-01-001", 300, 80, 12, 0.001)
		add("u"+suffix, "cloudflare", "XA-01-001", 250, 70, 14, 0.002)
		add("u"+suffix, "ookla", "XA-01-001", 320, 90, 11, 0)
		add("r"+suffix, "ndt", "XA-01-002", 6, 0.8, 90, 0.02)
		add("r"+suffix, "cloudflare", "XA-01-002", 5, 0.7, 95, 0.03)
		add("r"+suffix, "ookla", "XA-01-002", 7, 1, 85, 0)
	}
	return store, db
}

func newAPIServer(t *testing.T) *httptest.Server {
	t.Helper()
	store, db := buildWorld(t)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := New(iqb.DefaultConfig(), store, db, logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestNewValidates(t *testing.T) {
	store, db := buildWorld(t)
	bad := iqb.DefaultConfig()
	bad.Percentile = 0
	if _, err := New(bad, store, db, nil); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := New(iqb.DefaultConfig(), nil, db, nil); err == nil {
		t.Error("nil store should error")
	}
	if _, err := New(iqb.DefaultConfig(), store, nil, nil); err == nil {
		t.Error("nil geography should error")
	}
}

func TestHealth(t *testing.T) {
	ts := newAPIServer(t)
	c := &Client{BaseURL: ts.URL}
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Records != 90 {
		t.Errorf("health = %+v", h)
	}
}

func TestRegions(t *testing.T) {
	ts := newAPIServer(t)
	c := &Client{BaseURL: ts.URL}
	regions, err := c.Regions(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 4 {
		t.Fatalf("regions = %d", len(regions))
	}
	byCode := map[string]RegionInfo{}
	for _, r := range regions {
		byCode[r.Code] = r
	}
	if byCode["XA-01-001"].Character != "urban" || byCode["XA-01-001"].Parent != "XA-01" {
		t.Errorf("region info = %+v", byCode["XA-01-001"])
	}
}

func TestScore(t *testing.T) {
	ts := newAPIServer(t)
	c := &Client{BaseURL: ts.URL}
	urban, err := c.Score(context.Background(), "XA-01-001")
	if err != nil {
		t.Fatal(err)
	}
	rural, err := c.Score(context.Background(), "XA-01-002")
	if err != nil {
		t.Fatal(err)
	}
	if urban.Score.IQB <= rural.Score.IQB {
		t.Errorf("urban %v should outscore rural %v", urban.Score.IQB, rural.Score.IQB)
	}
	if len(urban.Score.UseCases) != 6 {
		t.Errorf("use case breakdown size = %d", len(urban.Score.UseCases))
	}
	// Subtree scoring at the state level works too.
	state, err := c.Score(context.Background(), "XA-01")
	if err != nil {
		t.Fatal(err)
	}
	if state.Score.IQB < 0 || state.Score.IQB > 1 {
		t.Errorf("state score = %v", state.Score.IQB)
	}
}

func TestScoreErrors(t *testing.T) {
	ts := newAPIServer(t)
	c := &Client{BaseURL: ts.URL}
	if _, err := c.Score(context.Background(), "XB-99"); err == nil {
		t.Error("unknown region should error")
	} else if !strings.Contains(err.Error(), "404") && !strings.Contains(err.Error(), "unknown region") {
		t.Errorf("error should carry the API message: %v", err)
	}
	// Missing region parameter.
	resp, err := http.Get(ts.URL + "/v1/score")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing region status = %d", resp.StatusCode)
	}
}

func TestRanking(t *testing.T) {
	ts := newAPIServer(t)
	c := &Client{BaseURL: ts.URL}
	resp, err := c.Ranking(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Omitted != 0 {
		t.Errorf("omitted = %d, want 0", resp.Omitted)
	}
	rows := resp.Rows
	if len(rows) != 2 {
		t.Fatalf("ranking rows = %d", len(rows))
	}
	if rows[0].Region != "XA-01-001" || rows[0].Rank != 1 {
		t.Errorf("first row = %+v", rows[0])
	}
	if rows[1].IQB > rows[0].IQB {
		t.Error("ranking not descending")
	}
	if rows[0].Grade == "" || rows[0].Character != "urban" {
		t.Errorf("row metadata = %+v", rows[0])
	}
}

func TestDatasets(t *testing.T) {
	ts := newAPIServer(t)
	c := &Client{BaseURL: ts.URL}
	ds, err := c.Datasets(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("datasets = %+v", ds)
	}
	for _, d := range ds {
		if d.Records != 30 {
			t.Errorf("%s records = %d, want 30", d.Name, d.Records)
		}
	}
}

// TestEmptyListsEncodeAsArrays pins the JSON shape of the list
// endpoints: with no regions and no records they must encode [] — never
// null, which breaks clients that iterate the response.
func TestEmptyListsEncodeAsArrays(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := New(iqb.DefaultConfig(), dataset.NewStore(), geo.NewDB(), logger)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	want := map[string]string{
		"/v1/regions":  "[]",
		"/v1/datasets": "[]",
		// The ranking envelope's rows must encode [] — never null.
		"/v1/ranking": `{"rows":[],"omitted":0}`,
	}
	for path, wantBody := range want {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if got := strings.TrimSpace(string(body)); got != wantBody {
			t.Errorf("%s body = %q, want %q", path, got, wantBody)
		}
	}
}

func TestConfigEndpoint(t *testing.T) {
	ts := newAPIServer(t)
	resp, err := http.Get(ts.URL + "/v1/config")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "requirement_weights") {
		t.Errorf("config body missing weights: %s", body[:min(200, len(body))])
	}
}

func TestUnknownEndpoint(t *testing.T) {
	ts := newAPIServer(t)
	resp, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestClientDeadServer(t *testing.T) {
	c := &Client{BaseURL: "http://127.0.0.1:1"}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := c.Health(ctx); err == nil {
		t.Error("dead server should error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestTimeSeriesEndpoint(t *testing.T) {
	ts := newAPIServer(t)
	c := &Client{BaseURL: ts.URL}
	resp, err := c.TimeSeries(context.Background(), "XA-01-001", 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Region != "XA-01-001" || len(resp.Points) == 0 {
		t.Fatalf("timeseries = %+v", resp)
	}
	// All records share one timestamp, so the default 24h window yields
	// exactly one point with a real score.
	if len(resp.Points) != 1 || resp.Points[0].NoData {
		t.Errorf("points = %+v", resp.Points)
	}
	if resp.Points[0].Score.IQB <= 0 {
		t.Error("urban county should have a positive score")
	}
	// Custom window string round-trips.
	resp, err = c.TimeSeries(context.Background(), "XA-01-001", 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Window != "6h0m0s" {
		t.Errorf("window = %q", resp.Window)
	}
}

func TestTimeSeriesErrors(t *testing.T) {
	ts := newAPIServer(t)
	c := &Client{BaseURL: ts.URL}
	if _, err := c.TimeSeries(context.Background(), "XB-99", 0); err == nil {
		t.Error("unknown region should error")
	}
	for _, path := range []string{"/v1/timeseries", "/v1/timeseries?region=XA-01-001&window=banana"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestHourlyEndpoint(t *testing.T) {
	ts := newAPIServer(t)
	c := &Client{BaseURL: ts.URL}
	resp, err := c.Hourly(context.Background(), "XA-01-001", 6)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Band != 6 || len(resp.Buckets) != 4 {
		t.Fatalf("hourly = %+v", resp)
	}
	// The test data sits at 12:00 UTC: bucket 2 (12-18) has the data.
	if resp.Buckets[2].NoData || resp.Buckets[2].Records == 0 {
		t.Errorf("noon bucket = %+v", resp.Buckets[2])
	}
	if !resp.Buckets[0].NoData {
		t.Errorf("midnight bucket should be empty: %+v", resp.Buckets[0])
	}
}

func TestHourlyErrors(t *testing.T) {
	ts := newAPIServer(t)
	c := &Client{BaseURL: ts.URL}
	if _, err := c.Hourly(context.Background(), "XB-99", 3); err == nil {
		t.Error("unknown region should error")
	}
	if _, err := c.Hourly(context.Background(), "XA-01-001", 5); err == nil {
		t.Error("band not dividing 24 should error")
	}
	resp, err := http.Get(ts.URL + "/v1/hourly?region=XA-01-001&band=x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad band status = %d", resp.StatusCode)
	}
}
