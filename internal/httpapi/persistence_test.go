package httpapi

import (
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"iqb/internal/dataset"
	"iqb/internal/iqb"
	"iqb/internal/persist"
)

// TestSnapshotEndpointAndHealthStatus exercises the durable-store
// control surface: POST /v1/snapshot cuts a snapshot whose offset then
// shows up in /v1/health, and both degrade cleanly on a memory-only
// server.
func TestSnapshotEndpointAndHealthStatus(t *testing.T) {
	memStore, db := buildWorld(t)
	m, err := persist.Open(t.TempDir(), persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	// Mirror the in-memory world into the WAL-backed store.
	if err := m.Store().AddBatch(memStore.Select(dataset.Filter{})); err != nil {
		t.Fatal(err)
	}

	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := New(iqb.DefaultConfig(), m.Store(), db, logger)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetPersistence(m)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	health, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Persistence == nil {
		t.Fatal("health omits persistence on a persistence-backed server")
	}
	if health.Persistence.SnapshotOffset != 0 {
		t.Fatalf("snapshot offset before any snapshot = %d", health.Persistence.SnapshotOffset)
	}
	if got, want := health.Persistence.WALRecords, uint64(m.Store().Len()); got != want {
		t.Fatalf("health WAL records = %d, want %d", got, want)
	}

	// Before any snapshot, everything in the WAL is "since snapshot" —
	// the growth trigger's view of the world must be observable here.
	if got, want := health.Persistence.WALSinceSnapshotRecords, health.Persistence.WALRecords; got != want {
		t.Fatalf("pre-snapshot since-snapshot records = %d, want all %d WAL records", got, want)
	}
	if health.Persistence.WALSinceSnapshotBytes <= 0 {
		t.Fatal("pre-snapshot since-snapshot bytes not reported")
	}

	snap, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Snapshot.Records != m.Store().Len() {
		t.Fatalf("snapshot covered %d records, store holds %d", snap.Snapshot.Records, m.Store().Len())
	}
	if _, err := os.Stat(snap.Snapshot.Path); err != nil {
		t.Fatalf("snapshot body missing: %v", err)
	}
	health, err = c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := health.Persistence.SnapshotOffset; got != snap.Snapshot.WALOffset {
		t.Fatalf("health snapshot offset = %d, endpoint reported %d", got, snap.Snapshot.WALOffset)
	}
	if got := health.Persistence.WALSinceSnapshotRecords; got != 0 {
		t.Fatalf("since-snapshot records = %d right after a snapshot, want 0", got)
	}

	// New ingest shows up in the since-snapshot counters, so an
	// operator (or the growth trigger) can see replay debt accumulate.
	extra := memStore.Select(dataset.Filter{})[0]
	extra.ID = "since-snapshot-probe"
	if err := m.Store().Add(extra); err != nil {
		t.Fatal(err)
	}
	health, err = c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := health.Persistence.WALSinceSnapshotRecords; got != 1 {
		t.Fatalf("since-snapshot records after one post-snapshot add = %d, want 1", got)
	}
	if health.Persistence.WALSinceSnapshotBytes <= 0 {
		t.Fatal("since-snapshot bytes after post-snapshot add not reported")
	}
}

func TestSnapshotEndpointMemoryOnly(t *testing.T) {
	ts := newAPIServer(t)
	c := &Client{BaseURL: ts.URL}
	if _, err := c.Snapshot(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "persistence not enabled") {
		t.Fatalf("memory-only snapshot err = %v, want 'persistence not enabled'", err)
	}
	health, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if health.Persistence != nil {
		t.Fatalf("memory-only health reports persistence: %+v", health.Persistence)
	}
}
