package httpapi

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/geo"
	"iqb/internal/iqb"
	"iqb/internal/scorecache"
)

// newServer builds a Server (not yet listening) over a fresh world.
func newServer(t *testing.T) (*Server, *dataset.Store, *geo.DB) {
	t.Helper()
	store, db := buildWorld(t)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := New(iqb.DefaultConfig(), store, db, logger)
	if err != nil {
		t.Fatal(err)
	}
	return srv, store, db
}

// attachCache wires a scored-region cache onto a server's store.
func attachCache(t *testing.T, srv *Server, store *dataset.Store) *scorecache.Cache {
	t.Helper()
	cache, err := scorecache.New(store, iqb.DefaultConfig(), slog.New(slog.NewTextHandler(io.Discard, nil)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cache.Close)
	srv.SetScoreCache(cache)
	return cache
}

// TestScoreTimeWindow: the from/to query params — which the old handler
// accepted and silently dropped — now select a real [from, to) window.
func TestScoreTimeWindow(t *testing.T) {
	srv, _, _ := newServer(t)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	// All records sit at 2025-06-01 12:00 UTC.
	full, err := c.Score(ctx, "XA-01-001")
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	windowed, err := c.ScoreWindow(ctx, "XA-01-001", day, day.AddDate(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if windowed.Score.IQB != full.Score.IQB {
		t.Errorf("window covering all data scored %v, unbounded %v", windowed.Score.IQB, full.Score.IQB)
	}
	// A window with no data is a 404, proving the bounds reach the store.
	if _, err := c.ScoreWindow(ctx, "XA-01-001", day.AddDate(0, 0, 7), day.AddDate(0, 0, 8)); err == nil ||
		!strings.Contains(err.Error(), "no usable data") {
		t.Errorf("empty window err = %v, want no-usable-data", err)
	}
}

// TestScoreTimeWindowErrors: unparsable bounds and inverted windows are
// 400s, not silently ignored.
func TestScoreTimeWindowErrors(t *testing.T) {
	srv, _, _ := newServer(t)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	for _, path := range []string{
		"/v1/score?region=XA-01-001&from=yesterday",
		"/v1/score?region=XA-01-001&to=2025-13-99",
		"/v1/score?region=XA-01-001&from=2025-06-02T00:00:00Z&to=2025-06-01T00:00:00Z",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestRankingOmitsFailedRegion: one region failing with a real error is
// logged and counted, not a 500 that discards every other row.
func TestRankingOmitsFailedRegion(t *testing.T) {
	srv, _, _ := newServer(t)
	cfg := iqb.DefaultConfig()
	srv.scoreOverride = func(region string, from, to time.Time) (iqb.Score, error) {
		if region == "XA-01-002" {
			return iqb.Score{}, errors.New("synthetic scoring failure")
		}
		return cfg.ScoreRegion(srv.store, region, from, to)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := &Client{BaseURL: ts.URL}
	resp, err := c.Ranking(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Omitted != 1 || len(resp.Rows) != 1 || resp.Rows[0].Region != "XA-01-001" {
		t.Fatalf("ranking = %+v", resp)
	}
}

// TestCachedResponsesByteIdentical is the determinism acceptance test:
// with identical worlds, a cache-backed server's /v1/score and
// /v1/ranking bodies are byte-identical to an uncached server's — cold,
// warm, and again after an invalidating AddBatch.
func TestCachedResponsesByteIdentical(t *testing.T) {
	plain, plainStore, _ := newServer(t)
	cached, cachedStore, _ := newServer(t)
	attachCache(t, cached, cachedStore)
	tsPlain := httptest.NewServer(plain)
	t.Cleanup(tsPlain.Close)
	tsCached := httptest.NewServer(cached)
	t.Cleanup(tsCached.Close)

	get := func(base, path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	compare := func(stage string) {
		t.Helper()
		for _, path := range []string{
			"/v1/score?region=XA-01-001",
			"/v1/score?region=XA-01",
			"/v1/score?region=XA-01-001&from=2025-06-01T00:00:00Z&to=2025-06-02T00:00:00Z",
			"/v1/ranking",
		} {
			want := get(tsPlain.URL, path)
			// Twice: the first cached response is a cold miss, the second
			// a hit — both must match the uncached body byte for byte.
			if got := get(tsCached.URL, path); got != want {
				t.Errorf("%s cold %s: cached body differs\ncached:   %s\nuncached: %s", stage, path, got, want)
			}
			if got := get(tsCached.URL, path); got != want {
				t.Errorf("%s warm %s: cached body differs", stage, path)
			}
		}
	}
	compare("pre-ingest")

	// An invalidating batch applied to both worlds: the cache must serve
	// the new truth, still byte-identical.
	batch := func() []dataset.Record {
		ts := time.Date(2025, 6, 1, 18, 0, 0, 0, time.UTC)
		var rs []dataset.Record
		for i := 0; i < 12; i++ {
			r := dataset.NewRecord("inv-"+string(rune('a'+i)), "ndt", "XA-01-001", ts)
			r.DownloadMbps = 4
			r.UploadMbps = 0.5
			r.LatencyMS = 250
			r.LossFrac = 0.05
			rs = append(rs, r)
		}
		return rs
	}
	if err := plainStore.AddBatch(batch()); err != nil {
		t.Fatal(err)
	}
	if err := cachedStore.AddBatch(batch()); err != nil {
		t.Fatal(err)
	}
	compare("post-ingest")
}

// TestHealthReportsCache: the health endpoint grows a cache block when
// a score cache is attached and counts real traffic.
func TestHealthReportsCache(t *testing.T) {
	srv, store, _ := newServer(t)
	attachCache(t, srv, store)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	if _, err := c.Score(ctx, "XA-01-001"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Score(ctx, "XA-01-001"); err != nil {
		t.Fatal(err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cache == nil {
		t.Fatal("health omits cache block on a cache-backed server")
	}
	if h.Cache.Hits != 1 || h.Cache.Misses != 1 || h.Cache.Entries != 1 || h.Cache.ConfigHash == "" {
		t.Fatalf("cache stats = %+v", h.Cache)
	}

	// An invalidating batch shows up in the health counters too: the
	// commit is observed and the cached entry it covers is evicted.
	rec := dataset.NewRecord("inv-health", "ndt", "XA-01-001", time.Date(2025, 6, 1, 18, 0, 0, 0, time.UTC))
	rec.DownloadMbps = 4
	rec.UploadMbps = 0.5
	rec.LatencyMS = 250
	rec.LossFrac = 0.05
	if err := store.AddBatch([]dataset.Record{rec}); err != nil {
		t.Fatal(err)
	}
	h, err = c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cache.Invalidations != 1 || h.Cache.Evictions != 1 {
		t.Fatalf("post-ingest cache stats = %+v, want 1 invalidation and 1 eviction", h.Cache)
	}

	// Memory-only-style server without a cache: block absent.
	plain := newAPIServer(t)
	h2, err := (&Client{BaseURL: plain.URL}).Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Cache != nil {
		t.Fatalf("cacheless health reports cache: %+v", h2.Cache)
	}
}

// TestWriteJSONEncodeFailure: a value that cannot encode yields a real
// 500 with the error envelope, never a truncated 200 (the old
// writeJSON streamed straight into the ResponseWriter).
func TestWriteJSONEncodeFailure(t *testing.T) {
	srv, _, _ := newServer(t)
	rec := httptest.NewRecorder()
	srv.writeJSON(rec, map[string]any{"bad": make(chan int)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "encoding response failed") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}
