package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/ingest"
	"iqb/internal/iqb"
	"iqb/internal/persist"
	"iqb/internal/scorecache"
)

// newIngestServer builds a scored world with a live ingest pipeline
// attached. bodyCap <= 0 keeps the default.
func newIngestServer(t *testing.T, store *dataset.Store, o ingest.Options, bodyCap int64) (*httptest.Server, *ingest.Ingester) {
	t.Helper()
	_, db := buildWorld(t)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := New(iqb.DefaultConfig(), store, db, logger)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := ingest.New(store, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	srv.SetIngest(ing, bodyCap)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, ing
}

func ingestRecord(id, ds, region string) dataset.Record {
	r := dataset.NewRecord(id, ds, region, time.Date(2025, 6, 3, 12, 0, 0, 0, time.UTC))
	r.DownloadMbps = 120
	r.UploadMbps = 35
	r.LatencyMS = 18
	r.LossFrac = 0.002
	return r
}

// TestIngestAcceptsAndCommits: a 202's accepted count matches what the
// store now holds, records are immediately query-visible, and the
// health endpoint reports the pipeline.
func TestIngestAcceptsAndCommits(t *testing.T) {
	store, _ := buildWorld(t)
	before := store.Len()
	ts, _ := newIngestServer(t, store, ingest.Options{}, 0)
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	batch := make([]dataset.Record, 20)
	for i := range batch {
		batch[i] = ingestRecord(fmt.Sprintf("live-%d", i), "ndt", "XA-01-001")
	}
	resp, err := c.Ingest(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 20 || resp.Rejected != 0 {
		t.Fatalf("ingest response = %+v, want 20 accepted", resp)
	}
	if got := store.Len(); got != before+20 {
		t.Fatalf("store holds %d records, want %d", got, before+20)
	}
	// Immediately query-visible: the new records shift the dataset count.
	counts, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range counts {
		if dc.Name == "ndt" && dc.Records != 30+20 {
			t.Fatalf("ndt count after ingest = %d, want 50", dc.Records)
		}
	}
	health, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Ingest == nil {
		t.Fatal("health omits ingest block on an ingest-enabled server")
	}
	if health.Ingest.AcceptedRecords != 20 {
		t.Fatalf("health ingest stats = %+v, want 20 accepted", health.Ingest)
	}
}

// TestIngestDisabled503: without SetIngest the endpoint degrades the
// same way /v1/snapshot does without persistence.
func TestIngestDisabled503(t *testing.T) {
	ts := newAPIServer(t)
	c := &Client{BaseURL: ts.URL}
	_, err := c.Ingest(context.Background(), []dataset.Record{ingestRecord("x", "ndt", "XA-01-001")})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("ingest on a non-ingest server = %v, want 503 APIError", err)
	}
}

// TestIngestBadLine400 pins the actionable-400 contract: the body names
// the offending NDJSON line (globally, across chunk boundaries) and how
// many records before it were already durably accepted.
func TestIngestBadLine400(t *testing.T) {
	store, _ := buildWorld(t)
	before := store.Len()
	// DrainRecords 2 forces multi-chunk decoding: the bad line sits in
	// the third chunk but must still be reported by its global position.
	ts, _ := newIngestServer(t, store, ingest.Options{DrainRecords: 2}, 0)

	var body strings.Builder
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&body, `{"id":"ok-%d","time":"2025-06-03T12:00:00Z","dataset":"ndt","region":"XA-01-001","download_mbps":50}`+"\n", i)
	}
	body.WriteString("definitely not json\n")

	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var ir IngestResponse
	if err := jsonDecode(resp.Body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Line != 6 {
		t.Fatalf("400 body names line %d, want global line 6: %+v", ir.Line, ir)
	}
	if !strings.Contains(ir.Error, "line 6") {
		t.Fatalf("400 error text %q does not name line 6", ir.Error)
	}
	// Chunks decoded before the bad line were accepted and are durable.
	if ir.Accepted != 4 {
		t.Fatalf("accepted before the bad line = %d, want 4 (two 2-record chunks)", ir.Accepted)
	}
	if got := store.Len(); got != before+4 {
		t.Fatalf("store grew by %d, want the 4 accepted", got-before)
	}
}

// TestIngestBodyCap413: a body past the configured cap is rejected with
// 413 and the already-accepted count.
func TestIngestBodyCap413(t *testing.T) {
	store, _ := buildWorld(t)
	ts, _ := newIngestServer(t, store, ingest.Options{}, 512)
	var body strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&body, `{"id":"cap-%d","time":"2025-06-03T12:00:00Z","dataset":"ndt","region":"XA-01-001","download_mbps":50}`+"\n", i)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestIngestOverload429 pins end-to-end backpressure: with the drainer
// wedged and the queue full, POST /v1/ingest answers 429 with a
// Retry-After hint, and the shed records never become visible.
func TestIngestOverload429(t *testing.T) {
	store, _ := buildWorld(t)
	before := store.Len()
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	store.AddIngestHook(func(rs []dataset.Record) error {
		<-gate
		return nil
	})
	ts, _ := newIngestServer(t, store, ingest.Options{QueueRecords: 8}, 0)
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	// Saturate: the first batch wedges in the drainer, the second fills
	// the queue. Acks only arrive once the gate opens, so send async.
	inFlight := make(chan error, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			batch := make([]dataset.Record, 4)
			for j := range batch {
				batch[j] = ingestRecord(fmt.Sprintf("fill-%d-%d", i, j), "ndt", "XA-01-001")
			}
			_, err := c.Ingest(ctx, batch)
			inFlight <- err
		}()
	}
	waitForCond(t, func() bool {
		resp, err := http.Get(ts.URL + "/v1/health")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var h HealthResponse
		if jsonDecode(resp.Body, &h) != nil || h.Ingest == nil {
			return false
		}
		return h.Ingest.QueuedRecords == 8
	})

	shed := []dataset.Record{ingestRecord("shed-0", "ndt", "XA-01-001")}
	resp, err := c.Ingest(ctx, shed)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("flood response = %v, want 429 APIError", err)
	}
	if resp.Rejected != 1 || resp.Accepted != 0 {
		t.Fatalf("429 body = %+v, want 1 rejected, 0 accepted", resp)
	}

	// Retry-After must accompany the 429 (checked on the raw response).
	raw, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson",
		strings.NewReader(`{"id":"shed-1","time":"2025-06-03T12:00:00Z","dataset":"ndt","region":"XA-01-001","download_mbps":50}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	if raw.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("raw flood status = %d, want 429", raw.StatusCode)
	}
	if raw.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}

	release()
	for i := 0; i < 2; i++ {
		if err := <-inFlight; err != nil {
			t.Fatalf("admitted request errored: %v", err)
		}
	}
	if got := store.Len(); got != before+8 {
		t.Fatalf("store grew by %d, want the 8 admitted (shed records must never appear)", got-before)
	}
}

// failWriteFS fails every WAL file write after arming — the seam for
// proving a mid-stream WAL failure surfaces as a 500 with nothing
// partially visible.
type failWriteFS struct {
	arm struct {
		sync.Mutex
		on bool
	}
}

func (f *failWriteFS) failing() bool {
	f.arm.Lock()
	defer f.arm.Unlock()
	return f.arm.on
}

func (f *failWriteFS) setFailing(on bool) {
	f.arm.Lock()
	defer f.arm.Unlock()
	f.arm.on = on
}

func (f *failWriteFS) OpenFile(name string, flag int, perm os.FileMode) (persist.WALFile, error) {
	fl, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &failWriteFile{File: fl, fs: f}, nil
}

func (f *failWriteFS) Open(name string) (persist.WALFile, error) {
	fl, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return &failWriteFile{File: fl, fs: f}, nil
}

func (f *failWriteFS) Remove(name string) error { return os.Remove(name) }
func (f *failWriteFS) SyncDir(dir string) error { return nil }

type failWriteFile struct {
	*os.File
	fs *failWriteFS
}

func (f *failWriteFile) Write(p []byte) (int, error) {
	if f.fs.failing() {
		return 0, errors.New("injected write failure")
	}
	return f.File.Write(p)
}

// TestIngestWALFailure500 pins the satellite contract: a WAL append
// failure mid-stream returns 500 and nothing from the failed chunk is
// visible to queries.
func TestIngestWALFailure500(t *testing.T) {
	fs := &failWriteFS{}
	m, err := persist.Open(t.TempDir(), persist.Options{NoSync: true, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	seed, _ := buildWorld(t)
	if err := m.Store().AddBatch(seed.Select(dataset.Filter{})); err != nil {
		t.Fatal(err)
	}
	before := m.Store().Len()
	ts, _ := newIngestServer(t, m.Store(), ingest.Options{}, 0)
	c := &Client{BaseURL: ts.URL}

	fs.setFailing(true)
	batch := make([]dataset.Record, 10)
	for i := range batch {
		batch[i] = ingestRecord(fmt.Sprintf("doomed-%d", i), "ndt", "XA-01-001")
	}
	resp, err := c.Ingest(context.Background(), batch)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusInternalServerError {
		t.Fatalf("WAL-failure response = %v, want 500 APIError", err)
	}
	if resp.Accepted != 0 {
		t.Fatalf("500 body claims %d accepted, want 0", resp.Accepted)
	}
	fs.setFailing(false)
	if got := m.Store().Len(); got != before {
		t.Fatalf("store grew by %d after a failed WAL append; nothing may be partially visible", got-before)
	}
	for _, r := range m.Store().Select(dataset.Filter{}) {
		if strings.HasPrefix(r.ID, "doomed-") {
			t.Fatalf("record %s from the failed chunk is query-visible", r.ID)
		}
	}
}

// TestIngestVsQueryRace floods the live ingest path while score,
// ranking, and health queries run concurrently — with a score cache
// attached so ingest invalidation races the cached read path too. Run
// under -race in CI.
func TestIngestVsQueryRace(t *testing.T) {
	store, db := buildWorld(t)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := New(iqb.DefaultConfig(), store, db, logger)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := scorecache.New(store, iqb.DefaultConfig(), logger)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetScoreCache(cache)
	ing, err := ingest.New(store, ingest.Options{DrainRecords: 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	srv.SetIngest(ing, 0)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	const writers, readers, rounds = 4, 4, 25
	var wg sync.WaitGroup
	errCh := make(chan error, (writers+readers)*rounds)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				batch := make([]dataset.Record, 4)
				for j := range batch {
					batch[j] = ingestRecord(fmt.Sprintf("race-%d-%d-%d", w, i, j), "ndt", "XA-01-001")
				}
				if _, err := c.Ingest(ctx, batch); err != nil {
					errCh <- err
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				var err error
				switch (r + i) % 3 {
				case 0:
					_, err = c.Score(ctx, "XA-01-001")
				case 1:
					_, err = c.Ranking(ctx)
				default:
					_, err = c.Health(ctx)
				}
				if err != nil {
					errCh <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if got, want := store.Len(), 90+writers*rounds*4; got != want {
		t.Fatalf("store holds %d records, want %d", got, want)
	}
	// The cache must have converged on the ingested data: a fresh score
	// equals an uncached recompute.
	sc, err := c.Score(ctx, "XA-01-001")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := iqb.DefaultConfig().ScoreRegion(store, "XA-01-001", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Score.IQB != direct.IQB {
		t.Fatalf("cached score %v != direct score %v after concurrent ingest", sc.Score.IQB, direct.IQB)
	}
}

// TestOverloadShedsButNeverLosesAcked is the ISSUE's acceptance
// property: flood a tiny queue through HTTP so some requests shed with
// 429, then reopen the data directory as a crash recovery would and
// assert the recovered store holds exactly the accepted records —
// every 202 survived, no rejected record ever appears.
func TestOverloadShedsButNeverLosesAcked(t *testing.T) {
	dir := t.TempDir()
	m, err := persist.Open(dir, persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	// Slow the commit path a little so admission actually fills up.
	m.Store().AddIngestHook(func(rs []dataset.Record) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	_, db := buildWorld(t)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := New(iqb.DefaultConfig(), m.Store(), db, logger)
	if err != nil {
		t.Fatal(err)
	}
	// The queue must be smaller than the clients' combined in-flight
	// records (6 clients x 4 records), or admission can never overflow.
	ing, err := ingest.New(m.Store(), ingest.Options{QueueRecords: 12, DrainRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetIngest(ing, 0)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	const clients, batches, per = 6, 30, 4
	var mu sync.Mutex
	accepted := map[string]bool{}
	rejected := map[string]bool{}
	var sheds int
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		cl := cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				batch := make([]dataset.Record, per)
				ids := make([]string, per)
				for j := range batch {
					ids[j] = fmt.Sprintf("prop-%d-%d-%d", cl, b, j)
					batch[j] = ingestRecord(ids[j], "ndt", "XA-01-001")
				}
				resp, err := c.Ingest(ctx, batch)
				mu.Lock()
				switch {
				case err == nil && resp.Accepted == per:
					for _, id := range ids {
						accepted[id] = true
					}
				case err != nil:
					var ae *APIError
					if errors.As(err, &ae) && ae.Status == http.StatusTooManyRequests && resp.Accepted == 0 {
						sheds++
						for _, id := range ids {
							rejected[id] = true
						}
					} else {
						t.Errorf("client %d batch %d: %v", cl, b, err)
					}
				default:
					t.Errorf("client %d batch %d: partial accept %+v without error", cl, b, resp)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if sheds == 0 {
		t.Fatal("flood never shed: the overload path was not exercised (queue too large for the load?)")
	}
	if len(accepted) == 0 {
		t.Fatal("flood accepted nothing: no durability to verify")
	}
	// Drain and stop the pipeline; the manager stays open — reopening
	// the directory in a second manager mirrors the kill-and-restart
	// idiom (the recovered state may not depend on a clean Close).
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := persist.Open(dir, persist.Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopening after flood: %v", err)
	}
	t.Cleanup(func() { re.Close() })
	got := map[string]bool{}
	for _, r := range re.Store().Select(dataset.Filter{}) {
		got[r.ID] = true
	}
	if len(got) != len(accepted) {
		t.Fatalf("recovered %d records, %d were acked", len(got), len(accepted))
	}
	missing := 0
	for id := range accepted {
		if !got[id] {
			missing++
			if missing <= 5 {
				t.Errorf("acked record %s lost across restart", id)
			}
		}
	}
	for id := range rejected {
		if got[id] {
			t.Errorf("rejected record %s appeared after restart", id)
		}
	}
}

// jsonDecode decodes a JSON response body.
func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
