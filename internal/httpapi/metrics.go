package httpapi

import (
	"net/http"
	"strings"

	"iqb/internal/telemetry"
)

// endpointMetrics holds one route's instruments.
type endpointMetrics struct {
	requests *telemetry.Counter
	inFlight *telemetry.Gauge
	latency  *telemetry.Histogram
}

// observeLatency records one request's elapsed seconds; a nil receiver
// (uninstrumented server, or a 404 no route claimed) is a no-op.
func (em *endpointMetrics) observeLatency(seconds float64) {
	if em == nil {
		return
	}
	em.latency.Observe(seconds)
}

// trackedWriter is the per-request carrier between the route middleware
// and ServeHTTP: the middleware stamps which endpoint served the
// request so the outer handler can attribute its single elapsed
// measurement to that endpoint's histogram.
type trackedWriter struct {
	http.ResponseWriter
	endpoint *endpointMetrics
}

// SetMetrics attaches a telemetry registry (nil detaches it). Call
// before serving — the endpoint map is built here and only read
// afterwards. With a registry attached, every route gains a request
// counter, in-flight gauge, and DDSketch-backed latency summary
// (labelled by method and path), and the registry itself is served at
// GET /metrics in Prometheus text exposition format. The /metrics
// route is not self-instrumented: a scrape reports on the server, not
// on itself.
func (s *Server) SetMetrics(r *telemetry.Registry) {
	if r == nil {
		s.endpoints = nil
		return
	}
	eps := make(map[string]*endpointMetrics, len(s.patterns))
	for _, pat := range s.patterns {
		method, path, _ := strings.Cut(pat, " ")
		labels := telemetry.Labels{"method": method, "path": path}
		eps[pat] = &endpointMetrics{
			requests: r.Counter("iqb_http_requests_total",
				"HTTP requests served, by endpoint.", labels),
			inFlight: r.Gauge("iqb_http_in_flight",
				"HTTP requests currently being served, by endpoint.", labels),
			latency: r.Histogram("iqb_http_request_seconds",
				"HTTP request latency by endpoint (same measurement as the request log line).", labels),
		}
	}
	s.endpoints = eps
	s.mux.Handle("GET /metrics", r.Handler())
}
