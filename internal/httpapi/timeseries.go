package httpapi

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/iqb"
)

// registerTimeSeries wires the temporal endpoints; called from New.
func (s *Server) registerTimeSeries() {
	s.handle("GET /v1/timeseries", s.handleTimeSeries)
	s.handle("GET /v1/hourly", s.handleHourly)
}

// TimeSeriesResponse wraps a windowed score series.
type TimeSeriesResponse struct {
	Region string          `json:"region"`
	Window string          `json:"window"`
	Points []iqb.TimePoint `json:"points"`
}

// handleTimeSeries serves /v1/timeseries?region=R[&window=24h]. The
// series spans the store's record time bounds for the region.
func (s *Server) handleTimeSeries(w http.ResponseWriter, r *http.Request) {
	region := r.URL.Query().Get("region")
	if region == "" {
		writeError(w, http.StatusBadRequest, "region parameter required")
		return
	}
	if _, ok := s.db.Region(region); !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown region %q", region))
		return
	}
	window := 24 * time.Hour
	if raw := r.URL.Query().Get("window"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad window %q", raw))
			return
		}
		window = d
	}
	from, to, ok := s.store.TimeBounds(dataset.Filter{RegionPrefix: region})
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no data for region %q", region))
		return
	}
	points, err := s.cfg.ScoreWindows(s.store, region, from, to.Add(time.Nanosecond), window)
	if err != nil {
		s.log.Error("timeseries", "region", region, "err", err)
		writeError(w, http.StatusInternalServerError, "time series failed")
		return
	}
	s.writeJSON(w, TimeSeriesResponse{Region: region, Window: window.String(), Points: points})
}

// HourlyResponse wraps an hour-of-day score profile.
type HourlyResponse struct {
	Region  string           `json:"region"`
	Band    int              `json:"band_hours"`
	Buckets []iqb.HourBucket `json:"buckets"`
}

// handleHourly serves /v1/hourly?region=R[&band=3].
func (s *Server) handleHourly(w http.ResponseWriter, r *http.Request) {
	region := r.URL.Query().Get("region")
	if region == "" {
		writeError(w, http.StatusBadRequest, "region parameter required")
		return
	}
	if _, ok := s.db.Region(region); !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown region %q", region))
		return
	}
	band := 3
	if raw := r.URL.Query().Get("band"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad band %q", raw))
			return
		}
		band = n
	}
	buckets, err := s.cfg.ScoreByHourOfDay(s.store, region, band)
	if err != nil {
		if errors.Is(err, iqb.ErrNoUsableData) {
			writeError(w, http.StatusNotFound, "no usable data")
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.writeJSON(w, HourlyResponse{Region: region, Band: band, Buckets: buckets})
}

// TimeSeries fetches a region's windowed score series.
func (c *Client) TimeSeries(ctx context.Context, region string, window time.Duration) (TimeSeriesResponse, error) {
	var out TimeSeriesResponse
	path := "/v1/timeseries?region=" + url.QueryEscape(region)
	if window > 0 {
		path += "&window=" + window.String()
	}
	err := c.get(ctx, path, &out)
	return out, err
}

// Hourly fetches a region's hour-of-day profile.
func (c *Client) Hourly(ctx context.Context, region string, band int) (HourlyResponse, error) {
	var out HourlyResponse
	path := "/v1/hourly?region=" + url.QueryEscape(region)
	if band > 0 {
		path += "&band=" + strconv.Itoa(band)
	}
	err := c.get(ctx, path, &out)
	return out, err
}
