package httpapi

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/geo"
	"iqb/internal/iqb"
	"iqb/internal/scorecache"
)

// benchWorld builds a wider world than the test fixture: counties
// counties under one state, recordsPer records per county per dataset.
func benchWorld(b *testing.B, counties, recordsPer int) (*dataset.Store, *geo.DB) {
	b.Helper()
	db := geo.NewDB()
	must := func(err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
	}
	must(db.AddRegion(geo.Region{Code: "XA", Name: "Examplia", Level: geo.Country}))
	must(db.AddRegion(geo.Region{Code: "XA-01", Level: geo.State, Parent: "XA"}))
	store := dataset.NewStore()
	ts := time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC)
	var batch []dataset.Record
	for c := 0; c < counties; c++ {
		code := fmt.Sprintf("XA-01-%03d", c+1)
		char := geo.Urban
		if c%2 == 1 {
			char = geo.Rural
		}
		must(db.AddRegion(geo.Region{Code: code, Level: geo.County, Parent: "XA-01", Character: char, Population: 10000 + c}))
		for _, ds := range []string{"ndt", "cloudflare", "ookla"} {
			for i := 0; i < recordsPer; i++ {
				r := dataset.NewRecord(fmt.Sprintf("%s-%s-%d", code, ds, i), ds, code, ts)
				r.DownloadMbps = 50 + float64((c*31+i)%200)
				r.UploadMbps = 10 + float64((c*17+i)%50)
				r.LatencyMS = 10 + float64((c*13+i)%80)
				if ds != "ookla" {
					r.LossFrac = 0.001 * float64((c+i)%20)
				}
				batch = append(batch, r)
			}
		}
	}
	must(store.AddBatch(batch))
	return store, db
}

// BenchmarkRankingColdVsWarm measures /v1/ranking with and without the
// scored-region cache. "cold" re-scores every county per request (the
// pre-cache behavior, and the behavior after a full invalidation);
// "warm" serves the incrementally repaired sorted view. The gap is the
// read-path headroom the cache buys — the acceptance bar is >= 10x.
func BenchmarkRankingColdVsWarm(b *testing.B) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	serve := func(b *testing.B, srv *Server) {
		b.Helper()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		// Prime once so both arms pay setup outside the timer (for the
		// warm arm this fills the cache; for cold it is just a request).
		if resp, err := http.Get(ts.URL + "/v1/ranking"); err != nil {
			b.Fatal(err)
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Get(ts.URL + "/v1/ranking")
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status = %d", resp.StatusCode)
			}
		}
	}

	b.Run("cold", func(b *testing.B) {
		store, db := benchWorld(b, 40, 60)
		srv, err := New(iqb.DefaultConfig(), store, db, logger)
		if err != nil {
			b.Fatal(err)
		}
		serve(b, srv)
	})
	b.Run("warm", func(b *testing.B) {
		store, db := benchWorld(b, 40, 60)
		srv, err := New(iqb.DefaultConfig(), store, db, logger)
		if err != nil {
			b.Fatal(err)
		}
		cache, err := scorecache.New(store, iqb.DefaultConfig(), logger)
		if err != nil {
			b.Fatal(err)
		}
		defer cache.Close()
		srv.SetScoreCache(cache)
		serve(b, srv)
	})
}

// BenchmarkScoreColdVsWarm is the single-region twin: one county's
// /v1/score with and without the cache.
func BenchmarkScoreColdVsWarm(b *testing.B) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	run := func(b *testing.B, withCache bool) {
		b.Helper()
		store, db := benchWorld(b, 40, 60)
		srv, err := New(iqb.DefaultConfig(), store, db, logger)
		if err != nil {
			b.Fatal(err)
		}
		if withCache {
			cache, err := scorecache.New(store, iqb.DefaultConfig(), logger)
			if err != nil {
				b.Fatal(err)
			}
			defer cache.Close()
			srv.SetScoreCache(cache)
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		url := ts.URL + "/v1/score?region=XA-01-001"
		if resp, err := http.Get(url); err != nil {
			b.Fatal(err)
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, false) })
	b.Run("warm", func(b *testing.B) { run(b, true) })
}
