package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"iqb/internal/dataset"
	"iqb/internal/ingest"
)

// DefaultIngestBodyCap bounds one POST /v1/ingest request body when
// SetIngest is given no explicit cap.
const DefaultIngestBodyCap = 64 << 20

// ingestRetryAfterSeconds is the backoff hint sent with a 429: long
// enough for a drain round to free queue budget, short enough that a
// load generator's closed loop recovers promptly.
const ingestRetryAfterSeconds = 1

// SetIngest attaches the live ingest pipeline (nil detaches it); call
// before serving. With an ingester attached, POST /v1/ingest streams
// NDJSON records through it and /v1/health grows an ingest block.
// bodyCap limits one request body in bytes (<= 0 selects
// DefaultIngestBodyCap); past it the request is rejected with 413.
func (s *Server) SetIngest(ing *ingest.Ingester, bodyCap int64) {
	s.ingestq = ing
	if bodyCap <= 0 {
		bodyCap = DefaultIngestBodyCap
	}
	s.ingestBodyCap = bodyCap
}

// IngestResponse reports one POST /v1/ingest request's outcome.
// Accepted records are durably committed (they survive kill-and-
// restart); rejected records were shed at admission and never applied.
// On a 429 both counts can be nonzero: chunks enqueued before the
// queue filled are already durable, and the body says exactly how many.
type IngestResponse struct {
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	// Error and Line locate the failure on non-202 responses; Line is
	// the 1-based NDJSON input line for 400s, 0 otherwise.
	Error string `json:"error,omitempty"`
	Line  int    `json:"line,omitempty"`
}

// handleIngest streams an NDJSON request body into the ingest queue in
// drainer-sized chunks. Each chunk is acknowledged durably before the
// next is decoded, so the accepted count in every response — including
// error responses — names records that survive a crash. Overload sheds
// the remaining stream with a 429 + Retry-After instead of queueing
// unboundedly.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.ingestq == nil {
		writeError(w, http.StatusServiceUnavailable, "live ingest not enabled")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.ingestBodyCap)
	dec := dataset.NewNDJSONDecoder(body)
	chunk := s.ingestq.DrainRecords()
	accepted := 0
	for {
		rs, wireBytes, err := dec.Next(chunk)
		if err == io.EOF {
			break
		}
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				s.writeIngest(w, http.StatusRequestEntityTooLarge, IngestResponse{
					Accepted: accepted,
					Error:    fmt.Sprintf("body exceeds %d-byte cap", s.ingestBodyCap),
				})
				return
			}
			var le *dataset.LineError
			if errors.As(err, &le) {
				s.writeIngest(w, http.StatusBadRequest, IngestResponse{
					Accepted: accepted,
					Error:    le.Error(),
					Line:     le.Line,
				})
				return
			}
			s.writeIngest(w, http.StatusBadRequest, IngestResponse{
				Accepted: accepted, Error: err.Error(),
			})
			return
		}
		if err := s.ingestq.Enqueue(rs, wireBytes); err != nil {
			if errors.Is(err, ingest.ErrOverload) {
				w.Header().Set("Retry-After", strconv.Itoa(ingestRetryAfterSeconds))
				s.writeIngest(w, http.StatusTooManyRequests, IngestResponse{
					Accepted: accepted,
					Rejected: len(rs),
					Error:    "ingest queue overloaded; retry after backoff",
				})
				return
			}
			// Commit failure: this chunk was not applied (AddBatch is
			// atomic), so nothing from it is visible to queries.
			s.log.Error("ingest: commit failed", "records", len(rs), "err", err)
			s.writeIngest(w, http.StatusInternalServerError, IngestResponse{
				Accepted: accepted,
				Error:    "ingest commit failed",
			})
			return
		}
		accepted += len(rs)
	}
	s.writeIngest(w, http.StatusAccepted, IngestResponse{Accepted: accepted})
}

// writeIngest emits an IngestResponse with a status code, buffer-first
// like writeJSON so an encode failure cannot truncate a body whose
// status line already went out.
func (s *Server) writeIngest(w http.ResponseWriter, code int, resp IngestResponse) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		s.log.Error("encoding ingest response", "err", err)
		writeError(w, http.StatusInternalServerError, "encoding response failed")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

// APIError is a non-2xx response surfaced by the typed client, keeping
// the status code inspectable (a load generator must tell a 429 shed
// from a hard failure).
type APIError struct {
	Status int
	Path   string
	Msg    string
}

func (e *APIError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("httpapi: %s: %s (status %d)", e.Path, e.Msg, e.Status)
	}
	return fmt.Sprintf("httpapi: %s: status %d", e.Path, e.Status)
}

// Ingest streams records to POST /v1/ingest as NDJSON. The returned
// response carries the server's accepted/rejected counts even when err
// is non-nil (overload, bad record): accepted records are durable
// regardless of how the request ended. Non-2xx statuses surface as an
// *APIError.
func (c *Client) Ingest(ctx context.Context, rs []dataset.Record) (IngestResponse, error) {
	var out IngestResponse
	var buf bytes.Buffer
	if err := dataset.WriteNDJSON(&buf, rs); err != nil {
		return out, fmt.Errorf("httpapi: encoding ingest body: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/ingest", &buf)
	if err != nil {
		return out, fmt.Errorf("httpapi: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return out, fmt.Errorf("httpapi: /v1/ingest: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return out, fmt.Errorf("httpapi: reading /v1/ingest: %w", err)
	}
	// Decode whatever counts the server sent before judging the status:
	// a 429 still reports how many records got in.
	if jerr := json.Unmarshal(body, &out); jerr != nil && resp.StatusCode == http.StatusAccepted {
		return out, fmt.Errorf("httpapi: decoding /v1/ingest: %w", jerr)
	}
	if resp.StatusCode != http.StatusAccepted {
		msg := out.Error
		if msg == "" {
			var eb errorBody
			if json.Unmarshal(body, &eb) == nil {
				msg = eb.Error
			}
		}
		return out, &APIError{Status: resp.StatusCode, Path: "/v1/ingest", Msg: msg}
	}
	return out, nil
}
