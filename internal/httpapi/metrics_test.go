package httpapi

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/iqb"
	"iqb/internal/persist"
	"iqb/internal/scorecache"
	"iqb/internal/telemetry"
)

// newInstrumentedServer wires the full production shape: a WAL-backed
// store, a score cache, and a telemetry registry attached to all three
// layers plus the HTTP server, seeded with buildWorld's records.
func newInstrumentedServer(t *testing.T, o persist.Options) (*httptest.Server, *telemetry.Registry, *persist.Manager) {
	t.Helper()
	memStore, db := buildWorld(t)
	reg := telemetry.NewRegistry()
	o.Metrics = reg
	m, err := persist.Open(t.TempDir(), o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	if err := m.Store().AddBatch(memStore.Select(dataset.Filter{})); err != nil {
		t.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	srv, err := New(iqb.DefaultConfig(), m.Store(), db, logger)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetPersistence(m)
	cache, err := scorecache.New(m.Store(), iqb.DefaultConfig(), logger)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cache.Close)
	cache.RegisterMetrics(reg)
	srv.SetScoreCache(cache)
	srv.SetMetrics(reg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, reg, m
}

// scrapeMetrics fetches /metrics and returns the body.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	return string(body)
}

// parseScrape validates the exposition grammar line by line and returns
// the samples plus the set of families TYPEd as counters.
func parseScrape(t *testing.T, body string) (samples map[string]float64, counters map[string]bool) {
	t.Helper()
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+-]+|NaN)$`)
	typeRe := regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|untyped)$`)
	helpRe := regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	samples = map[string]float64{}
	counters = map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if m := typeRe.FindStringSubmatch(line); m != nil {
				if m[2] == "counter" {
					counters[m[1]] = true
				}
				continue
			}
			if !helpRe.MatchString(line) {
				t.Fatalf("malformed comment line %q", line)
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		samples[m[1]+m[2]] = v
	}
	return samples, counters
}

// TestMetricsExposition drives real traffic through every instrumented
// layer and checks the scrape: well-formed exposition, per-endpoint
// series present, DDSketch quantiles monotone, WAL and cache counters
// wired to the authoritative numbers, and no counter ever decreasing
// between scrapes.
func TestMetricsExposition(t *testing.T) {
	ts, _, _ := newInstrumentedServer(t, persist.Options{NoSync: true})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	traffic := func() {
		t.Helper()
		if _, err := c.Score(ctx, "XA-01-001"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Ranking(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Health(ctx); err != nil {
			t.Fatal(err)
		}
	}
	traffic()
	first, counters := parseScrape(t, scrapeMetrics(t, ts.URL))

	scoreKey := `iqb_http_requests_total{method="GET",path="/v1/score"}`
	if first[scoreKey] < 1 {
		t.Errorf("%s = %v, want >= 1", scoreKey, first[scoreKey])
	}
	if got := first[`iqb_http_in_flight{method="GET",path="/v1/score"}`]; got != 0 {
		t.Errorf("in-flight after requests completed = %v, want 0", got)
	}
	q := func(quant string) float64 {
		k := fmt.Sprintf(`iqb_http_request_seconds{method="GET",path="/v1/score",quantile="%s"}`, quant)
		v, ok := first[k]
		if !ok {
			t.Fatalf("scrape missing %s", k)
		}
		return v
	}
	p50, p90, p99 := q("0.5"), q("0.9"), q("0.99")
	if !(p50 <= p90 && p90 <= p99) {
		t.Errorf("latency quantiles not monotone: %v %v %v", p50, p90, p99)
	}
	if got := first[`iqb_http_request_seconds_count{method="GET",path="/v1/score"}`]; got < 1 {
		t.Errorf("latency count = %v, want >= 1", got)
	}
	// The WAL collectors read the same counters /v1/health reports.
	if got := first["iqb_wal_appended_frames_total"]; got < 1 {
		t.Errorf("wal appended frames = %v, want >= 1 (seed batch)", got)
	}
	if got := first["iqb_wal_records_total"]; got < 45 {
		t.Errorf("wal records = %v, want the seeded world's 45", got)
	}
	// Two identical scores above: at least one hit and one miss.
	if first["iqb_scorecache_hits_total"]+first["iqb_scorecache_misses_total"] < 1 {
		t.Error("scorecache counters not wired")
	}
	if _, ok := first["iqb_snapshots_total"]; !ok {
		t.Error("scrape missing iqb_snapshots_total")
	}

	// Counters must never decrease across scrapes.
	traffic()
	second, _ := parseScrape(t, scrapeMetrics(t, ts.URL))
	for key, v1 := range first {
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if !counters[name] {
			continue
		}
		if v2, ok := second[key]; !ok || v2 < v1 {
			t.Errorf("counter %s went %v -> %v", key, v1, second[key])
		}
	}
	if second[scoreKey] <= first[scoreKey] {
		t.Errorf("%s did not advance: %v -> %v", scoreKey, first[scoreKey], second[scoreKey])
	}
}

// TestMetricsConcurrentWithIngest is the end-to-end race test: scrapes
// render while batches commit through the WAL tee and scores are served
// — run under -race in CI.
func TestMetricsConcurrentWithIngest(t *testing.T) {
	ts, _, m := newInstrumentedServer(t, persist.Options{NoSync: true})
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC)
		for i := 0; i < 30; i++ {
			r := dataset.NewRecord(fmt.Sprintf("race-%d", i), "ndt", "XA-01-001", base.Add(time.Duration(i)*time.Minute))
			r.DownloadMbps = 50
			r.UploadMbps = 10
			r.LatencyMS = 30
			r.LossFrac = 0.001
			if err := m.Store().AddBatch([]dataset.Record{r}); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := c.Score(ctx, "XA-01-001"); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// A final scrape must still be well-formed.
	parseScrape(t, scrapeMetrics(t, ts.URL))
}

// gateFS is a persist.WALFS over the real filesystem whose file Syncs
// can be parked on a gate — the fault-injection layer for proving that
// observability reads never queue behind the committer's fsync.
type gateFS struct {
	blocking atomic.Bool
	parked   chan struct{} // one send per Sync that parks
	gate     chan struct{} // closed to release parked Syncs
}

func newGateFS() *gateFS {
	return &gateFS{parked: make(chan struct{}, 8), gate: make(chan struct{})}
}

func (g *gateFS) OpenFile(name string, flag int, perm os.FileMode) (persist.WALFile, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, fs: g}, nil
}

func (g *gateFS) Open(name string) (persist.WALFile, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, fs: g}, nil
}

func (g *gateFS) Remove(name string) error { return os.Remove(name) }

// SyncDir is a no-op: directory durability is not what this harness
// tests, and a parked dir sync would wedge segment creation.
func (g *gateFS) SyncDir(dir string) error { return nil }

type gateFile struct {
	*os.File
	fs *gateFS
}

func (f *gateFile) Sync() error {
	if f.fs.blocking.Load() {
		f.fs.parked <- struct{}{}
		<-f.fs.gate
	}
	return f.File.Sync()
}

// TestScrapeSucceedsDuringBlockedFsync is the acceptance test for the
// lock-free WAL metadata: with the committer parked mid-fsync (holding
// l.mu), both /metrics and /v1/health must still answer — neither path
// may acquire the committer's mutex.
func TestScrapeSucceedsDuringBlockedFsync(t *testing.T) {
	fs := newGateFS()
	ts, _, m := newInstrumentedServer(t, persist.Options{FS: fs})

	// Park the committer: this append's fsync blocks on the gate while
	// the committer goroutine holds l.mu.
	fs.blocking.Store(true)
	appendDone := make(chan error, 1)
	go func() {
		r := dataset.NewRecord("blocked-append", "ndt", "XA-01-001", time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC))
		r.DownloadMbps = 50
		r.UploadMbps = 10
		r.LatencyMS = 30
		r.LossFrac = 0.001
		appendDone <- m.Store().AddBatch([]dataset.Record{r})
	}()
	select {
	case <-fs.parked:
	case <-time.After(5 * time.Second):
		t.Fatal("append never reached the gated fsync")
	}

	// With the fsync parked, both observability endpoints must answer
	// well within the client timeout. Before the metadata moved off
	// l.mu, Status() would block here until the gate opened.
	client := &http.Client{Timeout: 2 * time.Second}
	for _, path := range []string{"/metrics", "/v1/health"} {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("%s during blocked fsync: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s during blocked fsync: status %d: %s", path, resp.StatusCode, body)
		}
	}

	// Release the gate; the parked append must complete durably.
	fs.blocking.Store(false)
	close(fs.gate)
	select {
	case err := <-appendDone:
		if err != nil {
			t.Fatalf("gated append failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append never completed after the gate opened")
	}
}
