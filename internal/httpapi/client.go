package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// Client is a typed client for the IQB API.
type Client struct {
	// BaseURL is e.g. "http://127.0.0.1:8600".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do sends a bodyless request and decodes the JSON response into out,
// translating the API's error envelope.
func (c *Client) do(ctx context.Context, method, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, nil)
	if err != nil {
		return fmt.Errorf("httpapi: building request: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("httpapi: %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("httpapi: reading %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("httpapi: %s: %s (status %d)", path, eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("httpapi: %s: status %d", path, resp.StatusCode)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("httpapi: decoding %s: %w", path, err)
	}
	return nil
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.do(ctx, http.MethodGet, path, out)
}

// Snapshot asks a persistence-backed server to cut a durable snapshot.
func (c *Client) Snapshot(ctx context.Context) (SnapshotResponse, error) {
	var out SnapshotResponse
	err := c.do(ctx, http.MethodPost, "/v1/snapshot", &out)
	return out, err
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.get(ctx, "/v1/health", &out)
	return out, err
}

// Regions lists the geography.
func (c *Client) Regions(ctx context.Context) ([]RegionInfo, error) {
	var out []RegionInfo
	err := c.get(ctx, "/v1/regions", &out)
	return out, err
}

// Score fetches one region's score breakdown over all data.
func (c *Client) Score(ctx context.Context, region string) (ScoreResponse, error) {
	return c.ScoreWindow(ctx, region, time.Time{}, time.Time{})
}

// ScoreWindow fetches one region's score breakdown over the [from, to)
// time window; zero bounds are unbounded.
func (c *Client) ScoreWindow(ctx context.Context, region string, from, to time.Time) (ScoreResponse, error) {
	path := "/v1/score?region=" + url.QueryEscape(region)
	if !from.IsZero() {
		path += "&from=" + url.QueryEscape(from.Format(time.RFC3339Nano))
	}
	if !to.IsZero() {
		path += "&to=" + url.QueryEscape(to.Format(time.RFC3339Nano))
	}
	var out ScoreResponse
	err := c.get(ctx, path, &out)
	return out, err
}

// Ranking fetches the county ranking plus the count of regions omitted
// by scoring failures.
func (c *Client) Ranking(ctx context.Context) (RankingResponse, error) {
	var out RankingResponse
	err := c.get(ctx, "/v1/ranking", &out)
	return out, err
}

// Datasets fetches per-dataset record counts.
func (c *Client) Datasets(ctx context.Context) ([]DatasetCount, error) {
	var out []DatasetCount
	err := c.get(ctx, "/v1/datasets", &out)
	return out, err
}
