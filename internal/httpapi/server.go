// Package httpapi exposes IQB scores over a JSON HTTP API, with a typed
// client. It serves a scored world: a record store, a geography, and a
// framework configuration.
//
// Endpoints (JSON):
//
//	GET  /v1/health            liveness, store size, persistence status
//	GET  /v1/config            the active framework configuration
//	GET  /v1/regions           region codes with level/character/population
//	GET  /v1/score?region=R    full score breakdown for a region subtree
//	GET  /v1/ranking           counties ranked best-first
//	GET  /v1/datasets          dataset names with record counts
//	POST /v1/snapshot          cut a durable snapshot (503 when the
//	                           server runs memory-only)
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/geo"
	"iqb/internal/iqb"
	"iqb/internal/persist"
)

// Persistence is the durable-store control surface the server exposes
// when it is backed by a data directory. *persist.Manager implements it.
type Persistence interface {
	// Snapshot cuts an atomic point-in-time snapshot and compacts the
	// WAL segments it covers.
	Snapshot() (persist.SnapshotInfo, error)
	// Status reports the durable store's current shape.
	Status() persist.Status
}

// Server bundles the scored world behind an http.Handler.
type Server struct {
	cfg     iqb.Config
	store   *dataset.Store
	db      *geo.DB
	log     *slog.Logger
	mux     *http.ServeMux
	persist Persistence
}

// New builds a server. The logger may be nil.
func New(cfg iqb.Config, store *dataset.Store, db *geo.DB, logger *slog.Logger) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if store == nil || db == nil {
		return nil, fmt.Errorf("httpapi: store and geography are required")
	}
	if logger == nil {
		logger = slog.Default()
	}
	s := &Server{cfg: cfg, store: store, db: db, log: logger, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.HandleFunc("GET /v1/config", s.handleConfig)
	s.mux.HandleFunc("GET /v1/regions", s.handleRegions)
	s.mux.HandleFunc("GET /v1/score", s.handleScore)
	s.mux.HandleFunc("GET /v1/ranking", s.handleRanking)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	s.registerTimeSeries()
	return s, nil
}

// SetPersistence attaches the durable-store control surface (nil
// detaches it). Call before serving; the snapshot endpoint and the
// health persistence block answer 503/absent until one is attached.
func (s *Server) SetPersistence(p Persistence) { s.persist = p }

// ServeHTTP implements http.Handler with logging and panic recovery.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		if rec := recover(); rec != nil {
			s.log.Error("panic in handler", "path", r.URL.Path, "panic", rec)
			writeError(w, http.StatusInternalServerError, "internal error")
		}
	}()
	s.mux.ServeHTTP(w, r)
	s.log.Info("request", "method", r.Method, "path", r.URL.Path, "elapsed", time.Since(start))
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to do but log upstream.
		return
	}
}

// HealthResponse reports liveness, store size, and — when the server is
// backed by a data directory — the durable store's shape.
type HealthResponse struct {
	Status  string `json:"status"`
	Records int    `json:"records"`
	// Persistence is nil for a memory-only server.
	Persistence *persist.Status `json:"persistence,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok", Records: s.store.Len()}
	if s.persist != nil {
		st := s.persist.Status()
		resp.Persistence = &st
	}
	writeJSON(w, resp)
}

// SnapshotResponse wraps the snapshot a POST /v1/snapshot produced.
type SnapshotResponse struct {
	Snapshot persist.SnapshotInfo `json:"snapshot"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.persist == nil {
		writeError(w, http.StatusServiceUnavailable, "persistence not enabled (start the server with -data-dir)")
		return
	}
	info, err := s.persist.Snapshot()
	if err != nil {
		s.log.Error("snapshot", "err", err)
		writeError(w, http.StatusInternalServerError, "snapshot failed")
		return
	}
	s.log.Info("snapshot", "path", info.Path, "records", info.Records, "wal_offset", info.WALOffset)
	writeJSON(w, SnapshotResponse{Snapshot: info})
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.cfg.WriteJSON(w); err != nil {
		s.log.Error("writing config", "err", err)
	}
}

// RegionInfo is one row of /v1/regions.
type RegionInfo struct {
	Code       string `json:"code"`
	Name       string `json:"name"`
	Level      string `json:"level"`
	Character  string `json:"character"`
	Population int    `json:"population"`
	Parent     string `json:"parent,omitempty"`
}

func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	regions := s.db.AllRegions()
	// Non-nil so an empty region set encodes as [] rather than null.
	out := make([]RegionInfo, 0, len(regions))
	for _, code := range regions {
		reg, _ := s.db.Region(code)
		out = append(out, RegionInfo{
			Code:       reg.Code,
			Name:       reg.Name,
			Level:      reg.Level.String(),
			Character:  reg.Character.String(),
			Population: reg.Population,
			Parent:     reg.Parent,
		})
	}
	writeJSON(w, out)
}

// ScoreResponse wraps a region's score.
type ScoreResponse struct {
	Region string    `json:"region"`
	Score  iqb.Score `json:"score"`
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	region := r.URL.Query().Get("region")
	if region == "" {
		writeError(w, http.StatusBadRequest, "region parameter required")
		return
	}
	if _, ok := s.db.Region(region); !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown region %q", region))
		return
	}
	score, err := s.cfg.ScoreRegion(s.store, region, time.Time{}, time.Time{})
	if err != nil {
		if errors.Is(err, iqb.ErrNoUsableData) {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no usable data for region %q", region))
			return
		}
		s.log.Error("scoring", "region", region, "err", err)
		writeError(w, http.StatusInternalServerError, "scoring failed")
		return
	}
	writeJSON(w, ScoreResponse{Region: region, Score: score})
}

// RankingRow is one row of /v1/ranking.
type RankingRow struct {
	Rank      int     `json:"rank"`
	Region    string  `json:"region"`
	Character string  `json:"character"`
	IQB       float64 `json:"iqb"`
	Grade     string  `json:"grade"`
}

func (s *Server) handleRanking(w http.ResponseWriter, r *http.Request) {
	type scored struct {
		code      string
		character string
		score     iqb.Score
	}
	var rows []scored
	for _, code := range s.db.Regions(geo.County) {
		reg, _ := s.db.Region(code)
		sc, err := s.cfg.ScoreRegion(s.store, code, time.Time{}, time.Time{})
		if err != nil {
			if errors.Is(err, iqb.ErrNoUsableData) {
				continue
			}
			s.log.Error("ranking", "region", code, "err", err)
			writeError(w, http.StatusInternalServerError, "scoring failed")
			return
		}
		rows = append(rows, scored{code, reg.Character.String(), sc})
	}
	// Descending score, ties broken by code ascending.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].score.IQB != rows[j].score.IQB {
			return rows[i].score.IQB > rows[j].score.IQB
		}
		return rows[i].code < rows[j].code
	})
	out := make([]RankingRow, len(rows))
	for i, row := range rows {
		out[i] = RankingRow{
			Rank:      i + 1,
			Region:    row.code,
			Character: row.character,
			IQB:       row.score.IQB,
			Grade:     string(row.score.Grade),
		}
	}
	writeJSON(w, out)
}

// DatasetCount is one row of /v1/datasets.
type DatasetCount struct {
	Name    string `json:"name"`
	Records int    `json:"records"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	// One O(shards) pass instead of a per-dataset record scan.
	counts := s.store.DatasetCounts()
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	// Non-nil so an empty store encodes as [] rather than null.
	out := make([]DatasetCount, 0, len(names))
	for _, name := range names {
		out = append(out, DatasetCount{Name: name, Records: counts[name]})
	}
	writeJSON(w, out)
}
