// Package httpapi exposes IQB scores over a JSON HTTP API, with a typed
// client. It serves a scored world: a record store, a geography, and a
// framework configuration.
//
// Endpoints (JSON):
//
//	GET  /v1/health            liveness, store size, persistence and
//	                           score-cache status
//	GET  /v1/config            the active framework configuration
//	GET  /v1/regions           region codes with level/character/population
//	GET  /v1/score?region=R    full score breakdown for a region subtree;
//	                           optional from/to RFC 3339 bounds select a
//	                           [from, to) time window
//	GET  /v1/ranking           counties ranked best-first, with a count
//	                           of regions omitted by scoring failures
//	GET  /v1/datasets          dataset names with record counts
//	POST /v1/snapshot          cut a durable snapshot (503 when the
//	                           server runs memory-only)
//	POST /v1/ingest            stream NDJSON records into the live
//	                           ingest pipeline (202 with accepted
//	                           counts; 429 + Retry-After on overload;
//	                           413 past the body cap; 503 when live
//	                           ingest is not enabled)
//
// When a scored-region cache is attached (SetScoreCache), /v1/score and
// /v1/ranking are served from it — invalidated precisely by ingest via
// the store's hook chain — and /v1/health reports its effectiveness.
package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/geo"
	"iqb/internal/ingest"
	"iqb/internal/iqb"
	"iqb/internal/persist"
	"iqb/internal/scorecache"
)

// Persistence is the durable-store control surface the server exposes
// when it is backed by a data directory. *persist.Manager implements it.
type Persistence interface {
	// Snapshot cuts an atomic point-in-time snapshot and compacts the
	// WAL segments it covers.
	Snapshot() (persist.SnapshotInfo, error)
	// Status reports the durable store's current shape.
	Status() persist.Status
}

// Server bundles the scored world behind an http.Handler.
type Server struct {
	cfg      iqb.Config
	store    *dataset.Store
	db       *geo.DB
	log      *slog.Logger
	mux      *http.ServeMux
	persist  Persistence
	cache    *scorecache.Cache
	patterns []string // mux patterns registered via handle, for SetMetrics

	// Live ingest pipeline (SetIngest); nil answers 503.
	ingestq       *ingest.Ingester
	ingestBodyCap int64

	// endpoints maps a mux pattern to its instruments. Built once by
	// SetMetrics before serving, then only read; nil when the server
	// runs uninstrumented.
	endpoints map[string]*endpointMetrics

	// scoreOverride substitutes the scoring function in tests (e.g. to
	// inject per-region failures); nil in production.
	scoreOverride func(region string, from, to time.Time) (iqb.Score, error)
}

// New builds a server. The logger may be nil.
func New(cfg iqb.Config, store *dataset.Store, db *geo.DB, logger *slog.Logger) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if store == nil || db == nil {
		return nil, fmt.Errorf("httpapi: store and geography are required")
	}
	if logger == nil {
		logger = slog.Default()
	}
	s := &Server{cfg: cfg, store: store, db: db, log: logger, mux: http.NewServeMux()}
	s.handle("GET /v1/health", s.handleHealth)
	s.handle("GET /v1/config", s.handleConfig)
	s.handle("GET /v1/regions", s.handleRegions)
	s.handle("GET /v1/score", s.handleScore)
	s.handle("GET /v1/ranking", s.handleRanking)
	s.handle("GET /v1/datasets", s.handleDatasets)
	s.handle("POST /v1/snapshot", s.handleSnapshot)
	s.handle("POST /v1/ingest", s.handleIngest)
	s.registerTimeSeries()
	return s, nil
}

// handle registers a route through the instrumentation middleware: the
// wrapper knows its pattern (the CI toolchain predates http.Request
// .Pattern), bumps the endpoint's request counter and in-flight gauge,
// and tags the response writer so ServeHTTP can feed the one elapsed
// measurement it already takes for the log line into the endpoint's
// latency histogram — logged and exported latencies cannot diverge.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.patterns = append(s.patterns, pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if em := s.endpoints[pattern]; em != nil {
			em.requests.Inc()
			em.inFlight.Inc()
			defer em.inFlight.Dec()
			if tw, ok := w.(*trackedWriter); ok {
				tw.endpoint = em
			}
		}
		h(w, r)
	})
}

// SetPersistence attaches the durable-store control surface (nil
// detaches it). Call before serving; the snapshot endpoint and the
// health persistence block answer 503/absent until one is attached.
func (s *Server) SetPersistence(p Persistence) { s.persist = p }

// SetScoreCache attaches a scored-region cache (nil detaches it). Call
// before serving. With a cache attached, /v1/score and /v1/ranking are
// answered from cached scores invalidated by ingest, and /v1/health
// grows a cache block. The cache must be built over the same store and
// configuration the server was.
func (s *Server) SetScoreCache(c *scorecache.Cache) { s.cache = c }

// scoreRegion scores one region subtree through the cache when one is
// attached, directly otherwise.
func (s *Server) scoreRegion(region string, from, to time.Time) (iqb.Score, error) {
	if s.scoreOverride != nil {
		return s.scoreOverride(region, from, to)
	}
	if s.cache != nil {
		score, _, err := s.cache.Score(region, from, to)
		return score, err
	}
	return s.cfg.ScoreRegion(s.store, region, from, to)
}

// ServeHTTP implements http.Handler with logging, panic recovery, and
// latency attribution: the elapsed time is measured exactly once and
// feeds both the request log line and the serving endpoint's latency
// histogram, so logged and exported latencies cannot disagree.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tw := &trackedWriter{ResponseWriter: w}
	defer func() {
		if rec := recover(); rec != nil {
			s.log.Error("panic in handler", "path", r.URL.Path, "panic", rec)
			writeError(w, http.StatusInternalServerError, "internal error")
		}
	}()
	s.mux.ServeHTTP(tw, r)
	elapsed := time.Since(start)
	tw.endpoint.observeLatency(elapsed.Seconds())
	s.log.Info("request", "method", r.Method, "path", r.URL.Path, "elapsed", elapsed)
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

// writeJSON encodes v to a buffer first, so a mid-encode failure yields
// a real 500 instead of a truncated 200 body whose status line already
// went out.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		s.log.Error("encoding response", "err", err)
		writeError(w, http.StatusInternalServerError, "encoding response failed")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// HealthResponse reports liveness, store size, and — when attached —
// the durable store's shape and the score cache's effectiveness.
type HealthResponse struct {
	Status  string `json:"status"`
	Records int    `json:"records"`
	// Persistence is nil for a memory-only server.
	Persistence *persist.Status `json:"persistence,omitempty"`
	// Cache is nil when no score cache is attached.
	Cache *scorecache.Stats `json:"cache,omitempty"`
	// Ingest is nil when live ingest is not enabled.
	Ingest *ingest.Stats `json:"ingest,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok", Records: s.store.Len()}
	if s.persist != nil {
		st := s.persist.Status()
		resp.Persistence = &st
	}
	if s.cache != nil {
		st := s.cache.Stats()
		resp.Cache = &st
	}
	if s.ingestq != nil {
		st := s.ingestq.Stats()
		resp.Ingest = &st
	}
	s.writeJSON(w, resp)
}

// SnapshotResponse wraps the snapshot a POST /v1/snapshot produced.
type SnapshotResponse struct {
	Snapshot persist.SnapshotInfo `json:"snapshot"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.persist == nil {
		writeError(w, http.StatusServiceUnavailable, "persistence not enabled (start the server with -data-dir)")
		return
	}
	info, err := s.persist.Snapshot()
	if err != nil {
		s.log.Error("snapshot", "err", err)
		writeError(w, http.StatusInternalServerError, "snapshot failed")
		return
	}
	s.log.Info("snapshot", "path", info.Path, "records", info.Records, "wal_offset", info.WALOffset)
	s.writeJSON(w, SnapshotResponse{Snapshot: info})
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	// Buffer-first for the same reason as writeJSON: an encode failure
	// must surface as a 500, not a truncated 200.
	var buf bytes.Buffer
	if err := s.cfg.WriteJSON(&buf); err != nil {
		s.log.Error("writing config", "err", err)
		writeError(w, http.StatusInternalServerError, "encoding config failed")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// RegionInfo is one row of /v1/regions.
type RegionInfo struct {
	Code       string `json:"code"`
	Name       string `json:"name"`
	Level      string `json:"level"`
	Character  string `json:"character"`
	Population int    `json:"population"`
	Parent     string `json:"parent,omitempty"`
}

func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	regions := s.db.AllRegions()
	// Non-nil so an empty region set encodes as [] rather than null.
	out := make([]RegionInfo, 0, len(regions))
	for _, code := range regions {
		reg, ok := s.db.Region(code)
		if !ok {
			// A dangling code would otherwise panic or emit a zero row.
			s.log.Error("regions: code without a region; skipping", "code", code)
			continue
		}
		out = append(out, RegionInfo{
			Code:       reg.Code,
			Name:       reg.Name,
			Level:      reg.Level.String(),
			Character:  reg.Character.String(),
			Population: reg.Population,
			Parent:     reg.Parent,
		})
	}
	s.writeJSON(w, out)
}

// ScoreResponse wraps a region's score.
type ScoreResponse struct {
	Region string    `json:"region"`
	Score  iqb.Score `json:"score"`
}

// timeBound parses an optional RFC 3339 query parameter; ok is false
// (and a 400 already written) when the value does not parse.
func (s *Server) timeBound(w http.ResponseWriter, r *http.Request, name string) (time.Time, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return time.Time{}, true
	}
	t, err := time.Parse(time.RFC3339, raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad %s %q: want RFC 3339, e.g. 2025-06-01T00:00:00Z", name, raw))
		return time.Time{}, false
	}
	return t, true
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	region := r.URL.Query().Get("region")
	if region == "" {
		writeError(w, http.StatusBadRequest, "region parameter required")
		return
	}
	if _, ok := s.db.Region(region); !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown region %q", region))
		return
	}
	// Optional [from, to) window; both bounds default to unbounded. The
	// old handler accepted and silently dropped these.
	from, ok := s.timeBound(w, r, "from")
	if !ok {
		return
	}
	to, ok := s.timeBound(w, r, "to")
	if !ok {
		return
	}
	if !from.IsZero() && !to.IsZero() && !from.Before(to) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("empty window: from %s is not before to %s", from.Format(time.RFC3339), to.Format(time.RFC3339)))
		return
	}
	score, err := s.scoreRegion(region, from, to)
	if err != nil {
		if errors.Is(err, iqb.ErrNoUsableData) {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no usable data for region %q", region))
			return
		}
		s.log.Error("scoring", "region", region, "err", err)
		writeError(w, http.StatusInternalServerError, "scoring failed")
		return
	}
	s.writeJSON(w, ScoreResponse{Region: region, Score: score})
}

// RankingRow is one row of /v1/ranking.
type RankingRow struct {
	Rank      int     `json:"rank"`
	Region    string  `json:"region"`
	Character string  `json:"character"`
	IQB       float64 `json:"iqb"`
	Grade     string  `json:"grade"`
}

// RankingResponse is the /v1/ranking envelope. Omitted counts counties
// whose scoring failed outright this request (they are logged and
// skipped rather than taking the whole ranking down); counties with no
// usable data are simply absent and not counted.
type RankingResponse struct {
	// Rows is non-nil so an empty ranking encodes as [].
	Rows    []RankingRow `json:"rows"`
	Omitted int          `json:"omitted"`
}

func (s *Server) handleRanking(w http.ResponseWriter, r *http.Request) {
	counties := s.db.Regions(geo.County)
	var (
		ranked  []scorecache.Ranked
		omitted int
	)
	if s.cache != nil && s.scoreOverride == nil {
		// Served from the incrementally repaired sorted view: only
		// counties invalidated since the last request are rescored.
		ranked, omitted = s.cache.Ranking(counties)
	} else {
		for _, code := range counties {
			sc, err := s.scoreRegion(code, time.Time{}, time.Time{})
			if err != nil {
				if errors.Is(err, iqb.ErrNoUsableData) {
					continue
				}
				// One failing region no longer 500s the whole ranking.
				s.log.Error("ranking: scoring region failed; omitting", "region", code, "err", err)
				omitted++
				continue
			}
			ranked = append(ranked, scorecache.Ranked{Region: code, Score: sc})
		}
		// Descending score, ties broken by code ascending — the same
		// order the cached view maintains.
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].Score.IQB != ranked[j].Score.IQB {
				return ranked[i].Score.IQB > ranked[j].Score.IQB
			}
			return ranked[i].Region < ranked[j].Region
		})
	}
	rows := make([]RankingRow, 0, len(ranked))
	for _, row := range ranked {
		reg, ok := s.db.Region(row.Region)
		if !ok {
			s.log.Error("ranking: code without a region; skipping", "code", row.Region)
			continue
		}
		rows = append(rows, RankingRow{
			Rank:      len(rows) + 1,
			Region:    row.Region,
			Character: reg.Character.String(),
			IQB:       row.Score.IQB,
			Grade:     string(row.Score.Grade),
		})
	}
	s.writeJSON(w, RankingResponse{Rows: rows, Omitted: omitted})
}

// DatasetCount is one row of /v1/datasets.
type DatasetCount struct {
	Name    string `json:"name"`
	Records int    `json:"records"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	// One O(shards) pass instead of a per-dataset record scan.
	counts := s.store.DatasetCounts()
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	// Non-nil so an empty store encodes as [] rather than null.
	out := make([]DatasetCount, 0, len(names))
	for _, name := range names {
		out = append(out, DatasetCount{Name: name, Records: counts[name]})
	}
	s.writeJSON(w, out)
}
