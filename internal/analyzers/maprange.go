package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapRange flags `range` over a map whose loop body feeds an
// order-sensitive sink, inside the packages that carry the fixed-seed
// determinism contract (TestScoreAllDeterministicAcrossWorkerCounts
// and friends). Map iteration order is randomized per execution, so a
// loop that appends to an outer slice, builds a string, or pushes
// values into module-local aggregation state in iteration order makes
// scoring output depend on the run, not the seed — the exact bug class
// the pinning tests only catch probabilistically.
//
// The canonical escape is recognized: collecting the keys and sorting
// them afterwards (`for k := range m { keys = append(keys, k) }` with
// a later sort.X(keys...) / slices.Sort(keys)) is not flagged, because
// the order leak is resolved before the data is used. Receivers and
// append targets declared inside the loop are per-iteration state and
// are not flagged either.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "map iteration feeding order-sensitive sinks (appends, string building, aggregate ingestion) " +
		"in determinism-contract packages; sort the keys first or document why the sink is commutative",
	Scope: []string{
		"iqb/internal/dataset",
		"iqb/internal/pipeline",
		"iqb/internal/iqb",
		"iqb/internal/stats",
	},
	Run: runMapRange,
}

// ingestionPrefixes are the method-name shapes that read as "fold this
// value into accumulated state". Only methods on module-local types
// count: the repo's own sketches, stores, and accumulators are where
// iteration order can leak into scoring.
var ingestionPrefixes = []string{"add", "insert", "ingest", "observe", "record", "merge", "push", "append", "write"}

func runMapRange(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !rangesOverMap(pass.Info, rng) {
				return true
			}
			checkMapRange(pass, f, rng)
			return true
		})
	}
}

func rangesOverMap(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is checked on its own visit; its body's
			// sinks belong to it.
			if s != rng && rangesOverMap(pass.Info, s) {
				return false
			}
		case *ast.AssignStmt:
			checkAssignSink(pass, file, rng, s)
		case *ast.CallExpr:
			checkCallSink(pass, rng, s)
		}
		return true
	})
}

// checkAssignSink flags `v = append(v, ...)` on a slice declared
// before the loop (unless v is sorted afterwards) and string building
// (`s += x`, `s = s + x`) on an outer string.
func checkAssignSink(pass *Pass, file *ast.File, rng *ast.RangeStmt, as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if obj := outerObj(pass.Info, as.Lhs[0], rng); obj != nil && isStringType(obj.Type()) {
			pass.Reportf(as.Pos(), "string built in map iteration order; collect and sort the keys first")
			return
		}
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltin(pass.Info, call, "append") || i >= len(as.Lhs) {
			continue
		}
		obj := outerObj(pass.Info, as.Lhs[i], rng)
		if obj == nil {
			continue
		}
		// `s = s + x` parses as ASSIGN of a BinaryExpr, handled here too.
		if sortedAfter(pass.Info, file, rng, obj) {
			continue
		}
		pass.Reportf(as.Pos(), "append to %s in map iteration order; sort the keys first (or sort %s before use)", obj.Name(), obj.Name())
	}
	if as.Tok == token.ASSIGN && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr); ok && bin.Op == token.ADD {
			obj := outerObj(pass.Info, as.Lhs[0], rng)
			if obj != nil && isStringType(obj.Type()) && exprUsesObj(pass.Info, bin, obj) {
				pass.Reportf(as.Pos(), "string built in map iteration order; collect and sort the keys first")
			}
		}
	}
}

// checkCallSink flags ingestion-shaped method calls on module-local
// receivers declared before the loop, and writes into outer
// strings.Builder / bytes.Buffer values.
func checkCallSink(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	fn := calleeOf(pass.Info, call)
	if fn == nil || sigOf(fn).Recv() == nil {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recvObj := baseIdentObj(pass.Info, sel.X)
	if recvObj == nil || declaredInside(recvObj, rng) {
		return
	}
	named := recvOf(fn)
	if isNamed(named, "strings", "Builder") || isNamed(named, "bytes", "Buffer") {
		if strings.HasPrefix(fn.Name(), "Write") {
			pass.Reportf(call.Pos(), "%s.%s in map iteration order builds order-dependent output; sort the keys first", recvObj.Name(), fn.Name())
		}
		return
	}
	if named == nil || !moduleLocal(pass.Pkg, named.Obj()) {
		return
	}
	name := strings.ToLower(fn.Name())
	for _, p := range ingestionPrefixes {
		if strings.HasPrefix(name, p) {
			pass.Reportf(call.Pos(), "%s.%s called in map iteration order; sort the keys first or document why ingestion into %s is order-independent",
				recvObj.Name(), fn.Name(), named.Obj().Name())
			return
		}
	}
}

// outerObj resolves e to a variable declared before the range
// statement, or nil when e is not a plain identifier or is
// loop-local.
func outerObj(info *types.Info, e ast.Expr, rng *ast.RangeStmt) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || declaredInside(obj, rng) {
		return nil
	}
	return obj
}

func declaredInside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func exprUsesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// sortedAfter reports whether obj is passed to a sort.* or slices.*
// sorting call in any statement that follows the range loop inside the
// enclosing function — the collect-keys-then-sort idiom that resolves
// the iteration-order leak before the slice is used.
func sortedAfter(info *types.Info, file *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	path := pathTo(file, func(n ast.Node) bool { return n == rng })
	if path == nil {
		return false
	}
	// Trim the path to the enclosing function, so a sort in a sibling
	// function never counts.
	start := 0
	for i, n := range path {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			start = i
		}
	}
	sorted := false
	for _, n := range path[start:] {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			continue
		}
		for _, st := range block.List {
			if st.Pos() < rng.End() {
				continue
			}
			ast.Inspect(st, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || sorted {
					return !sorted
				}
				fn := calleeOf(info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
					return true
				}
				for _, arg := range call.Args {
					if exprUsesObj(info, arg, obj) {
						sorted = true
					}
				}
				return !sorted
			})
			if sorted {
				return true
			}
		}
	}
	return false
}
