package analyzers

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (or a bare name for testdata
	// packages, which are never imported).
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader resolves package patterns against one module and type-checks
// packages with a shared file set and source importer, so dependencies
// (including the standard library) are checked once per process rather
// than once per target package.
//
// The loader is built on the standard library alone: files are chosen
// by go/build (so build constraints are honored), parsed with comments
// (suppressions live there), and checked by go/types with the "source"
// compiler importer, which resolves module-local imports without
// needing export data or golang.org/x/tools. Test files are not
// loaded: the invariants the suite encodes are production-code
// contracts, and tests intentionally use wall clocks and ad-hoc
// ordering.
type Loader struct {
	ModuleRoot string
	ModulePath string
	fset       *token.FileSet
	imp        types.Importer
}

// NewLoader finds the enclosing module of dir and returns a loader
// rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analyzers: no go.mod found above %s", abs)
		}
		root = parent
	}
	body, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analyzers: %s/go.mod declares no module path", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		imp:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// Expand resolves package patterns ("./...", "./internal/persist",
// "internal/...") to module-relative directories that contain Go
// files. Directories named testdata or vendor, and directories whose
// name starts with "." or "_", are never matched by a ... wildcard.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(rel string) {
		rel = filepath.ToSlash(filepath.Clean(rel))
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		base := filepath.Join(l.ModuleRoot, filepath.FromSlash(pat))
		info, err := os.Stat(base)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("analyzers: pattern %q does not name a directory under %s", pat, l.ModuleRoot)
		}
		if !recursive {
			add(relOf(l.ModuleRoot, base))
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(relOf(l.ModuleRoot, path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func relOf(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return path
	}
	return rel
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Load parses and type-checks the package in the module-relative
// directory rel. It returns nil (no error) when the directory holds no
// non-test Go files.
func (l *Loader) Load(rel string) (*Package, error) {
	importPath := l.ModulePath
	if rel != "." {
		importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), importPath)
}

// LoadDir parses and type-checks the package in dir under the given
// import path. analyzertest uses it directly to load testdata packages
// under bare, unimportable paths.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("analyzers: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analyzers: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyzers: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Vet loads every package matching the patterns (resolved against the
// module enclosing root) and runs each analyzer whose scope covers it,
// returning all surviving diagnostics sorted by position.
func Vet(root string, patterns []string, as []*Analyzer) ([]Diagnostic, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, rel := range dirs {
		importPath := l.ModulePath
		if rel != "." {
			importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		var applicable []*Analyzer
		for _, a := range as {
			if a.AppliesTo(importPath) {
				applicable = append(applicable, a)
			}
		}
		if len(applicable) == 0 {
			continue
		}
		pkg, err := l.Load(rel)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		diags = append(diags, RunPackage(pkg, applicable)...)
	}
	return diags, nil
}
