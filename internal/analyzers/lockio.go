package analyzers

import (
	"go/ast"
	"go/types"
)

// LockIO flags blocking I/O reached while a sync.Mutex or sync.RWMutex
// is held: os.File method calls, filesystem calls in package os,
// net dials and listens (and any net type's methods), interface
// methods named Sync or Truncate (the shape of persist's WALFile), and
// time.Sleep. Holding a lock across disk or network latency is the
// invariant the persist group-commit redesign exists to preserve —
// one fsync under a shared lock parks every other reader and writer
// behind the disk.
//
// The analysis is intra-procedural and tracks lock state linearly
// through each function body (branches are explored with the entry
// state; a branch that releases a lock and falls through merges as
// released). Locks taken by callers are invisible, so helper
// functions named *Locked are by convention audited at their call
// sites instead.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc: "blocking I/O (file writes, fsync, net calls, sleeps) while a sync.Mutex/RWMutex is held; " +
		"move the I/O outside the critical section or document why this lock exists to serialize it",
	Run: runLockIO,
}

func runLockIO(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass}
			w.walkStmts(fd.Body.List, lockSet{})
		}
	}
}

// lockSet maps the printed receiver expression of a held lock
// ("l.mu", "s") to the kind of hold ("Lock" or "RLock").
type lockSet map[string]string

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

type lockWalker struct {
	pass *Pass
}

// walkStmts interprets the statement list with the given entry lock
// state and returns the state at its end.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held lockSet) lockSet {
	held = held.clone()
	for _, st := range stmts {
		held = w.walkStmt(st, held)
	}
	return held
}

func (w *lockWalker) walkStmt(st ast.Stmt, held lockSet) lockSet {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if name, kind, ok := lockCall(w.pass.Info, s.X); ok {
			if kind == "Lock" || kind == "RLock" {
				held[name] = kind
			} else {
				delete(held, name)
			}
			return held
		}
		w.scanExpr(s.X, held)
	case *ast.DeferStmt:
		if _, kind, ok := lockCall(w.pass.Info, s.Call); ok && (kind == "Unlock" || kind == "RUnlock") {
			// The lock stays held for the remainder of the function; the
			// entry in held already reflects that.
			return held
		}
		// A deferred call runs at return. If a deferred Unlock is also
		// pending, defers registered later run before it — i.e. under
		// the lock — so conservatively treat deferred I/O as locked
		// whenever anything is held here.
		w.scanExpr(s.Call, held)
	case *ast.GoStmt:
		// The goroutine does not inherit the caller's critical section.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(lit.Body.List, lockSet{})
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		w.scanExpr(s.Cond, held)
		bodyOut := w.walkStmts(s.Body.List, held)
		var outs []lockSet
		if !terminates(s.Body.List) {
			outs = append(outs, bodyOut)
		}
		if s.Else != nil {
			elseOut := w.walkStmt(s.Else, held.clone())
			if !stmtTerminates(s.Else) {
				outs = append(outs, elseOut)
			}
		} else {
			outs = append(outs, held)
		}
		return intersectLocks(outs, held)
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, held)
		}
		w.walkStmts(s.Body.List, held)
		return held
	case *ast.RangeStmt:
		w.scanExpr(s.X, held)
		w.walkStmts(s.Body.List, held)
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
		return held
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, held)
			}
		}
		return held
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.SendStmt:
		w.scanExpr(s.Value, held)
	}
	return held
}

// scanExpr reports sink calls inside e given the current lock state,
// descending into immediately-invoked function literals with the
// caller's state and into other literals with a clean one (they run
// later, in an unknown locking context).
func (w *lockWalker) scanExpr(e ast.Expr, held lockSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.walkStmts(x.Body.List, lockSet{})
			return false
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				for _, arg := range x.Args {
					w.scanExpr(arg, held)
				}
				w.walkStmts(lit.Body.List, held)
				return false
			}
			if len(held) > 0 {
				if desc := blockingIO(w.pass.Info, x); desc != "" {
					w.pass.Reportf(x.Pos(), "%s while %s is held", desc, heldNames(held))
				}
			}
		}
		return true
	})
}

func heldNames(held lockSet) string {
	names := make([]string, 0, len(held))
	for n, kind := range held {
		names = append(names, n+" ("+kind+")")
	}
	// Deterministic order for stable output.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func intersectLocks(outs []lockSet, fallback lockSet) lockSet {
	if len(outs) == 0 {
		return fallback
	}
	res := outs[0].clone()
	for _, o := range outs[1:] {
		for k := range res {
			if _, ok := o[k]; !ok {
				delete(res, k)
			}
		}
	}
	return res
}

func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtTerminates(stmts[len(stmts)-1])
}

func stmtTerminates(st ast.Stmt) bool {
	switch s := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

// lockCall classifies e as a (R)Lock/(R)Unlock call on a sync.Mutex or
// sync.RWMutex (including promoted embeds) and names the lock by its
// receiver expression.
func lockCall(info *types.Info, e ast.Expr) (name, kind string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	fn := calleeOf(info, call)
	named := recvOf(fn)
	if !isNamed(named, "sync", "Mutex") && !isNamed(named, "sync", "RWMutex") {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// fileIOMethods are the *os.File methods that reach the disk.
var fileIOMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true, "Read": true,
	"ReadAt": true, "Sync": true, "Truncate": true, "Close": true,
}

// osFSFuncs are the package-level os functions that touch the
// filesystem.
var osFSFuncs = map[string]bool{
	"OpenFile": true, "Open": true, "Create": true, "CreateTemp": true,
	"Rename": true, "Remove": true, "RemoveAll": true, "Mkdir": true,
	"MkdirAll": true, "MkdirTemp": true, "ReadFile": true, "WriteFile": true,
	"ReadDir": true, "Truncate": true, "Link": true, "Symlink": true,
}

// blockingIO describes the call when it is a blocking I/O sink, or
// returns "" otherwise.
func blockingIO(info *types.Info, call *ast.CallExpr) string {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if recvIsInterface(fn) {
		if fn.Name() == "Sync" || fn.Name() == "Truncate" {
			return "interface method " + fn.Name()
		}
		return ""
	}
	if named := recvOf(fn); named != nil {
		if isNamed(named, "os", "File") && fileIOMethods[fn.Name()] {
			return "os.File." + fn.Name()
		}
		if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net" {
			return "net." + named.Obj().Name() + "." + fn.Name()
		}
		return ""
	}
	switch fn.Pkg().Path() {
	case "os":
		if sigOf(fn).Recv() == nil && osFSFuncs[fn.Name()] {
			return "os." + fn.Name()
		}
	case "net":
		switch fn.Name() {
		case "Dial", "DialTimeout", "Listen", "ListenPacket":
			return "net." + fn.Name()
		}
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	}
	return ""
}
