// Package analyzers is iqbvet: a suite of project-specific static
// analyzers that turn this repository's determinism, durability, and
// locking contracts into machine-checked rules.
//
// The repo's hardest guarantees — bit-identical fixed-seed scoring
// across worker counts, fsync never reached while an in-memory lock is
// held, every write-path Sync/Close/Truncate error observed, and
// simulation output that is a pure function of the seed — otherwise
// live only in prose comments and a handful of pinning tests that catch
// regressions probabilistically at best. Each analyzer encodes one of
// those invariants so CI rejects a violation the moment it is written:
//
//   - maprange flags map iteration that feeds order-sensitive sinks
//     (slice appends, string building, ingestion into module-local
//     aggregation state) inside the determinism-contract packages,
//     unless the collected keys are sorted afterwards. Map iteration
//     order is randomized per run, so such a loop breaks
//     fixed-seed bit-identity in a way tests only catch sometimes.
//
//   - lockio flags blocking I/O (os.File method calls, os filesystem
//     calls, net dials/listens, interface methods named Sync or
//     Truncate, time.Sleep) reached while a sync.Mutex or sync.RWMutex
//     is held — the invariant the persist group-commit redesign exists
//     to preserve: an fsync under a shared lock stalls every reader
//     and writer behind disk latency.
//
//   - syncerr flags discarded errors from Sync and Truncate, and from
//     Close on write-path files, in the packages that write under
//     -data-dir. An unobserved fsync error is a silent durability
//     hole: the write is acknowledged but may not be on disk.
//
//   - walltime flags time.Now/Since/Until/Sleep (and friends) and
//     global math/rand state in the simulation and scoring packages,
//     where the world must be a pure function of the seed (the
//     internal/rng package exists so nothing there needs either).
//
// Intentional exceptions are documented at the use site with a
// suppression comment naming the analyzer and the reason:
//
//	//iqbvet:ignore walltime Elapsed is wall-clock telemetry only; no scoring depends on it.
//
// which suppresses that analyzer's findings on the same line and the
// line directly below. A file-wide waiver uses //iqbvet:file-ignore
// with the same shape. A suppression without a reason (or naming an
// unknown analyzer) is itself reported, so waivers cannot rot silently.
//
// The suite runs as `go run ./cmd/iqbvet ./...` (a required CI step)
// and each analyzer carries a testdata package exercised by
// analyzertest, in the style of golang.org/x/tools' analysistest. The
// framework itself mirrors the x/tools go/analysis API shape but is
// built on the standard library alone (go/parser, go/types, and the
// source importer), so the tool builds with no module dependencies.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats a diagnostic the way go vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named rule. Run inspects a type-checked package via
// the Pass and reports findings; it must not retain the Pass.
type Analyzer struct {
	Name string
	// Doc is a one-paragraph description: the rule, and the repo
	// invariant behind it.
	Doc string
	// Scope lists the import-path prefixes the multichecker applies
	// the analyzer to. Empty means every package. analyzertest runs
	// analyzers directly, so testdata packages need not match.
	Scope []string
	Run   func(*Pass)
}

// AppliesTo reports whether the analyzer's scope covers the package.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, p := range a.Scope {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{MapRange, LockIO, SyncErr, WallTime}
}

// RunPackage applies the given analyzers to one loaded package and
// returns the surviving diagnostics: suppressions from
// //iqbvet:ignore and //iqbvet:file-ignore comments are honored, and
// malformed or unknown-analyzer suppression comments are themselves
// reported. Results are sorted by position.
func RunPackage(p *Package, as []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	sup, diags := collectSuppressions(p, known)
	for _, a := range as {
		pass := &Pass{Analyzer: a, Fset: p.Fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info}
		a.Run(pass)
		for _, d := range pass.diags {
			if !sup.suppressed(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

const (
	ignorePrefix     = "iqbvet:ignore"
	fileIgnorePrefix = "iqbvet:file-ignore"
)

// suppressions indexes the package's ignore comments: per (file, line,
// analyzer) for line ignores, per (file, analyzer) for file waivers. A
// line ignore covers the comment's own line and the line directly
// below it, so both trailing and preceding-line placement work.
type suppressions struct {
	line map[string]map[int]map[string]bool
	file map[string]map[string]bool
}

func (s suppressions) suppressed(d Diagnostic) bool {
	if s.file[d.Pos.Filename][d.Analyzer] {
		return true
	}
	lines := s.line[d.Pos.Filename]
	return lines[d.Pos.Line][d.Analyzer] || lines[d.Pos.Line-1][d.Analyzer]
}

// collectSuppressions parses every ignore comment in the package,
// reporting malformed ones (missing analyzer name, missing reason, or
// an analyzer the suite does not define) as diagnostics so a stale or
// typo'd waiver fails the build instead of silently suppressing
// nothing — or worse, something it never named.
func collectSuppressions(p *Package, known map[string]bool) (suppressions, []Diagnostic) {
	sup := suppressions{
		line: map[string]map[int]map[string]bool{},
		file: map[string]map[string]bool{},
	}
	var diags []Diagnostic
	malformed := func(pos token.Pos, form, text string) {
		diags = append(diags, Diagnostic{
			Pos:      p.Fset.Position(pos),
			Analyzer: "iqbvet",
			Message:  fmt.Sprintf("malformed suppression %q: want //%s <analyzer> <reason>", text, form),
		})
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, " ")
				var form string
				switch {
				case strings.HasPrefix(text, fileIgnorePrefix):
					form = fileIgnorePrefix
				case strings.HasPrefix(text, ignorePrefix):
					form = ignorePrefix
				default:
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, form))
				if len(fields) < 2 || !known[fields[0]] {
					malformed(c.Pos(), form, c.Text)
					continue
				}
				pos := p.Fset.Position(c.Pos())
				name := fields[0]
				if form == fileIgnorePrefix {
					byName := sup.file[pos.Filename]
					if byName == nil {
						byName = map[string]bool{}
						sup.file[pos.Filename] = byName
					}
					byName[name] = true
					continue
				}
				byLine := sup.line[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					sup.line[pos.Filename] = byLine
				}
				byName := byLine[pos.Line]
				if byName == nil {
					byName = map[string]bool{}
					byLine[pos.Line] = byName
				}
				byName[name] = true
			}
		}
	}
	return sup, diags
}
