package analyzers

import (
	"strings"
	"testing"
)

func TestExpandSkipsTestdataAndFindsSelf(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "iqb" {
		t.Fatalf("ModulePath = %q, want iqb", l.ModulePath)
	}
	dirs, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, d := range dirs {
		found[d] = true
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand matched a testdata directory: %s", d)
		}
	}
	for _, want := range []string{"internal/analyzers", "internal/persist", "cmd/iqbvet", "."} {
		if !found[want] {
			t.Errorf("Expand(./...) missed %s (got %v)", want, dirs)
		}
	}
}

func TestExpandNonRecursive(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := l.Expand([]string{"./internal/analyzers"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != "internal/analyzers" {
		t.Fatalf("Expand = %v, want [internal/analyzers]", dirs)
	}
}

func TestExpandRejectsMissingDir(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Expand([]string{"./no/such/dir"}); err == nil {
		t.Fatal("expected an error for a nonexistent pattern")
	}
}

func TestAppliesTo(t *testing.T) {
	a := &Analyzer{Name: "x", Scope: []string{"iqb/internal/persist"}}
	for path, want := range map[string]bool{
		"iqb/internal/persist":     true,
		"iqb/internal/persist/sub": true,
		"iqb/internal/persistence": false,
		"iqb/cmd/iqbserver":        false,
	} {
		if got := a.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	unscoped := &Analyzer{Name: "y"}
	if !unscoped.AppliesTo("anything/at/all") {
		t.Error("empty scope must cover every package")
	}
}
