// Package syncerr is the executable specification of the syncerr rule.
package syncerr

import (
	"errors"
	"os"
)

// segFile mirrors persist's WALFile seam: Close on an interface
// declared in the analyzed package is write-path by definition.
type segFile interface {
	Close() error
}

// plainCloser is a module struct with a Close method; unlike the
// interface seam it is not assumed to be a write path.
type plainCloser struct{}

func (plainCloser) Close() error { return nil }

func badSync(f *os.File) {
	f.Sync() // want `Sync error discarded`
}

func badBlankSync(f *os.File) {
	_ = f.Sync() // want `Sync error discarded`
}

func badTruncate(f *os.File) {
	f.Truncate(0) // want `Truncate error discarded`
}

func badDeferredCloseOnWrite(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred Close error discarded on a file opened for writing`
	_, err = f.Write([]byte("x"))
	return err
}

func badCloseAfterOpenFileWrite(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	f.Close() // want `Close error discarded on a file opened for writing`
	return nil
}

func badCloseUnknownOsFile(f *os.File) {
	f.Close() // want `Close error discarded on a write-path File`
}

func badSegFileClose(f segFile) {
	f.Close() // want `Close error discarded on a write-path segFile`
}

func goodReadOnlyClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

func goodPlainCloserClose(c plainCloser) {
	c.Close()
}

func goodJoinedClose(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		err = errors.Join(err, f.Close())
	}()
	_, err = f.Write([]byte("x"))
	return err
}

func goodCheckedSync(f *os.File) error {
	return f.Sync()
}

func suppressedAbandon(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	//iqbvet:ignore syncerr the file is being abandoned and removed; a close failure cannot lose data
	f.Close()
	os.Remove(path)
}
