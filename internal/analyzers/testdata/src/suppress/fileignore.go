package suppress

//iqbvet:file-ignore walltime this file demonstrates the file-wide waiver

import "time"

func waivedNow() time.Time {
	return time.Now()
}

func waivedSince(t0 time.Time) time.Duration {
	return time.Since(t0)
}
