// Package suppress exercises the suppression machinery itself:
// malformed waivers are reported, and a file-wide waiver silences a
// whole file (see fileignore.go). Missing-reason forms are covered by
// a unit test, since appending a want comment would itself become the
// reason.
package suppress

//iqbvet:ignore nosuchrule some reason // want `malformed suppression`

//iqbvet:file-ignore nosuchrule some reason // want `malformed suppression`

func unrelated() int { return 1 }
