// Package lockio is the executable specification of the lockio rule.
package lockio

import (
	"net"
	"os"
	"sync"
	"time"
)

type store struct {
	mu sync.Mutex
	f  *os.File
}

// segFile mirrors persist's WALFile seam: an interface whose Sync is
// an fsync.
type segFile interface {
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
}

func badWriteAndSyncUnderLock(s *store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write([]byte("x")); err != nil { // want `os.File.Write while s.mu \(Lock\) is held`
		return err
	}
	return s.f.Sync() // want `os.File.Sync while s.mu \(Lock\) is held`
}

func badInterfaceSyncUnderRLock(mu *sync.RWMutex, f segFile) error {
	mu.RLock()
	defer mu.RUnlock()
	return f.Sync() // want `interface method Sync while mu \(RLock\) is held`
}

func badSleepUnderLock(mu *sync.Mutex) {
	mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while mu \(Lock\) is held`
	mu.Unlock()
}

func badDialUnderLock(s *store) (net.Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return net.Dial("tcp", "localhost:1") // want `net.Dial while s.mu \(Lock\) is held`
}

func badRenameUnderLock(s *store, from, to string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.Rename(from, to) // want `os.Rename while s.mu \(Lock\) is held`
}

// goodIOAfterUnlock releases the lock before touching the disk — the
// shape the group-commit write path preserves.
func goodIOAfterUnlock(s *store) error {
	s.mu.Lock()
	name := s.f.Name()
	s.mu.Unlock()
	_ = name
	return s.f.Sync()
}

// goodBranchRelease unlocks on the early-return path and again on the
// fallthrough before the I/O.
func goodBranchRelease(s *store, fast bool) error {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	return s.f.Sync()
}

// goodGoroutine does not inherit the spawner's critical section.
func goodGoroutine(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_ = s.f.Sync()
	}()
}

func suppressedSerializedFile(s *store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//iqbvet:ignore lockio this lock exists to serialize the segment file itself
	return s.f.Sync()
}
