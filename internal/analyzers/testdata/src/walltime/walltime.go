// Package walltime is the executable specification of the walltime
// rule.
package walltime

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func badNow() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock`
}

func badSleep() {
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
}

func badGlobalRand() int {
	return rand.Intn(10) // want `math/rand.Intn draws from process-global random state`
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand.Shuffle draws from process-global random state`
}

func badCryptoRand(p []byte) error {
	_, err := crand.Read(p) // want `crypto/rand is non-deterministic`
	return err
}

// goodSeeded threads an explicit source, which is the deterministic
// shape the rule exists to push code toward.
func goodSeeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// goodConstructedTime builds a time value without reading the clock.
func goodConstructedTime() time.Time {
	return time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
}

func suppressedTelemetry() time.Time {
	//iqbvet:ignore walltime wall-clock telemetry only; no simulation state depends on it
	return time.Now()
}
