// Package maprange is the executable specification of the maprange
// rule: positives carry want comments, negatives carry nothing, and
// the suppressed case documents that //iqbvet:ignore is honored.
package maprange

import (
	"sort"
	"strings"
)

// sketch stands in for the repo's aggregation state: module-local
// types with ingestion-shaped methods.
type sketch struct{ vals []float64 }

func (s *sketch) Add(v float64)     { s.vals = append(s.vals, v) }
func (s *sketch) Quantile() float64 { return 0 }

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out in map iteration order`
	}
	return out
}

func goodSortedAfter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func badString(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string built in map iteration order`
	}
	return s
}

func badConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s = s + k // want `string built in map iteration order`
	}
	return s
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `b.WriteString in map iteration order`
	}
	return b.String()
}

func badIngest(m map[string]float64) *sketch {
	sk := &sketch{}
	for _, v := range m {
		sk.Add(v) // want `sk.Add called in map iteration order`
	}
	return sk
}

func suppressedIngest(m map[string]float64) *sketch {
	sk := &sketch{}
	for _, v := range m {
		//iqbvet:ignore maprange this sketch is order-independent by construction
		sk.Add(v)
	}
	return sk
}

// goodLoopLocal ingests into per-key state declared inside the loop:
// nothing outlives an iteration in a way order can leak through.
func goodLoopLocal(m map[string][]float64) map[string]*sketch {
	out := map[string]*sketch{}
	for k, vs := range m {
		sk := &sketch{}
		for _, v := range vs {
			sk.Add(v)
		}
		out[k] = sk
	}
	return out
}

// goodMapWrite accumulates into a map, which is order-independent.
func goodMapWrite(m map[string]int) map[string]int {
	counts := map[string]int{}
	for k, v := range m {
		counts[k] += v
	}
	return counts
}

// goodSliceRange is not a map range at all — the sorted-keys idiom
// lands here after goodSortedAfter.
func goodSliceRange(xs []float64) *sketch {
	sk := &sketch{}
	for _, v := range xs {
		sk.Add(v)
	}
	return sk
}
