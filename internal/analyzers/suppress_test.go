package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parsePkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "p", Fset: fset, Files: []*ast.File{f}}
}

func TestMissingReasonIsMalformed(t *testing.T) {
	// A reasonless waiver can't be exercised via // want comments —
	// appending one would itself become the reason — so it is pinned
	// here.
	p := parsePkg(t, "package p\n\n//iqbvet:ignore walltime\n\nfunc f() {}\n")
	sup, diags := collectSuppressions(p, map[string]bool{"walltime": true})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "iqbvet" || !strings.Contains(diags[0].Message, "malformed suppression") {
		t.Errorf("unexpected diagnostic: %v", diags[0])
	}
	if len(sup.line["p.go"]) != 0 {
		t.Errorf("malformed waiver still registered a suppression: %v", sup.line)
	}
}

func TestLineIgnoreCoversCommentAndNextLine(t *testing.T) {
	p := parsePkg(t, strings.Join([]string{
		"package p",
		"",
		"//iqbvet:ignore walltime pinned reason", // line 3
		"func f() {}",                            // line 4
		"func g() {}",                            // line 5
	}, "\n")+"\n")
	sup, diags := collectSuppressions(p, map[string]bool{"walltime": true})
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	at := func(line int, analyzer string) bool {
		return sup.suppressed(Diagnostic{
			Pos:      token.Position{Filename: "p.go", Line: line},
			Analyzer: analyzer,
		})
	}
	if !at(3, "walltime") || !at(4, "walltime") {
		t.Error("ignore should cover its own line and the line below")
	}
	if at(5, "walltime") {
		t.Error("ignore must not reach two lines down")
	}
	if at(4, "lockio") {
		t.Error("ignore must only cover the named analyzer")
	}
}

func TestFileIgnoreCoversWholeFile(t *testing.T) {
	p := parsePkg(t, "package p\n\n//iqbvet:file-ignore lockio test-double file\n\nfunc f() {}\n")
	sup, diags := collectSuppressions(p, map[string]bool{"lockio": true})
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	d := Diagnostic{Pos: token.Position{Filename: "p.go", Line: 99}, Analyzer: "lockio"}
	if !sup.suppressed(d) {
		t.Error("file-ignore should cover every line of the file")
	}
	d.Analyzer = "walltime"
	if sup.suppressed(d) {
		t.Error("file-ignore must only cover the named analyzer")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "a/b.go", Line: 7, Column: 3},
		Analyzer: "maprange",
		Message:  "boom",
	}
	if got, want := d.String(), "a/b.go:7:3: [maprange] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
