package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// SyncErr flags discarded errors from durability-critical calls in the
// packages that write under -data-dir (and the exporters next to
// them): Sync and Truncate anywhere in scope, and Close on write-path
// files. An unobserved fsync error is exactly the durability hole the
// WAL's wedge logic guards against — the write is acknowledged but the
// kernel may have dropped the pages — and a swallowed Close on a file
// opened for writing can hide the final flush failing.
//
// A discard is an expression statement, a defer/go statement, or an
// assignment of every result to the blank identifier. Close is only
// flagged when the receiver is plausibly a write path: a file opened
// writable in the same function (os.Create, or OpenFile with a
// writing flag — including through persist's WALFS seam), an os.File
// of unknown origin, or a type declared in internal/persist (whose
// Close methods flush and sync). Files opened read-only in the same
// function are exempt.
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc: "discarded error from Sync/Truncate, or from Close on a write-path file, in the packages " +
		"that persist data; join the error into the return path or document why losing it is safe",
	Scope: []string{
		"iqb/internal/persist",
		"iqb/internal/report",
		"iqb/internal/dataset",
		"iqb/cmd/iqbserver",
		"iqb/cmd/iqb",
		"iqb/cmd/iqbgen",
		"iqb/cmd/iqbsim",
	},
	Run: runSyncErr,
}

func runSyncErr(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			origins := collectFileOrigins(pass.Info, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.ExprStmt:
					checkDiscard(pass, origins, s.X, "")
				case *ast.DeferStmt:
					checkDiscard(pass, origins, s.Call, "deferred ")
				case *ast.GoStmt:
					checkDiscard(pass, origins, s.Call, "")
				case *ast.AssignStmt:
					if allBlank(s.Lhs) {
						for _, rhs := range s.Rhs {
							checkDiscard(pass, origins, rhs, "")
						}
					}
				}
				return true
			})
		}
	}
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}

// fileOrigin records how a variable holding a file (or file-like
// value) was obtained in this function.
type fileOrigin int

const (
	originUnknown fileOrigin = iota
	originReadOnly
	originWrite
)

// collectFileOrigins scans a function body for `f, err := os.Open(...)`
// shapes (direct os calls or any method named Open/OpenFile/Create,
// which covers persist's WALFS seam) and classifies each assigned
// variable as read-only or writable.
func collectFileOrigins(info *types.Info, body *ast.BlockStmt) map[types.Object]fileOrigin {
	origins := map[types.Object]fileOrigin{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return true
		}
		var origin fileOrigin
		switch fn.Name() {
		case "Open":
			origin = originReadOnly
		case "Create", "CreateTemp":
			origin = originWrite
		case "OpenFile":
			origin = originReadOnly
			if len(call.Args) >= 2 && hasWriteFlag(call.Args[1]) {
				origin = originWrite
			}
		default:
			return true
		}
		if fn.Pkg() == nil || (fn.Pkg().Path() != "os" && sigOf(fn).Recv() == nil) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			origins[obj] = origin
		}
		return true
	})
	return origins
}

// hasWriteFlag reports whether the flags expression mentions any
// os.O_* writing mode.
func hasWriteFlag(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC":
				found = true
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			switch id.Name {
			case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC":
				found = true
			}
		}
		return !found
	})
	return found
}

func checkDiscard(pass *Pass, origins map[types.Object]fileOrigin, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeOf(pass.Info, call)
	if fn == nil || sigOf(fn).Recv() == nil || !returnsError(fn) {
		return
	}
	switch fn.Name() {
	case "Sync", "Truncate":
		pass.Reportf(call.Pos(), "%s%s error discarded; a lost %s error is a silent durability hole", how, fn.Name(), fn.Name())
	case "Close":
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		recvObj := baseIdentObj(pass.Info, sel.X)
		if recvObj != nil {
			switch origins[recvObj] {
			case originReadOnly:
				return
			case originWrite:
				pass.Reportf(call.Pos(), "%sClose error discarded on a file opened for writing; join it into the error path", how)
				return
			}
		}
		if closableWritePath(pass, fn) {
			pass.Reportf(call.Pos(), "%sClose error discarded on a write-path %s; join it into the error path", how, recvTypeName(fn))
		}
	}
}

func returnsError(fn *types.Func) bool {
	res := sigOf(fn).Results()
	if res.Len() != 1 {
		return false
	}
	named, ok := res.At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// closableWritePath reports whether a Close receiver of unknown origin
// is still worth flagging: os.File values (conservatively — the
// read-only ones are exempted by origin tracking) and anything
// declared in internal/persist, whose Close methods flush WAL queues
// and sync.
func closableWritePath(pass *Pass, fn *types.Func) bool {
	recv := sigOf(fn).Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if isNamed(named, "os", "File") {
		return true
	}
	p := named.Obj().Pkg().Path()
	return p == "iqb/internal/persist" || strings.HasPrefix(p, "iqb/internal/persist/") ||
		// In testdata and in persist itself the WALFile seam is an
		// interface; Close on any interface declared in the analyzed
		// package counts when that package is in scope.
		(types.IsInterface(named.Underlying()) && p == pass.Pkg.Path())
}

func recvTypeName(fn *types.Func) string {
	recv := sigOf(fn).Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	if named, ok := recv.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "value"
}
