package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeOf resolves the function or method a call expression invokes,
// or nil for builtins, conversions, and calls through function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// pkgFunc reports whether fn is the package-level function pkgPath.name.
func pkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && sigOf(fn).Recv() == nil
}

// recvOf returns the named type a method's receiver resolves to after
// stripping pointers, or nil for package-level functions and methods
// on unnamed receivers.
func recvOf(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	recv := sigOf(fn).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isNamed reports whether named is pkgPath.name.
func isNamed(named *types.Named, pkgPath, name string) bool {
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// recvIsInterface reports whether fn is declared on an interface
// receiver (i.e. the call site dispatches dynamically).
func recvIsInterface(fn *types.Func) bool {
	recv := sigOf(fn).Recv()
	return recv != nil && types.IsInterface(recv.Type())
}

// baseIdentObj walks to the base identifier of a selector/index chain
// (s.stripes[i].mu → s, f → f) and returns its object, or nil when the
// base is not a simple identifier (a call result, for example).
func baseIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := info.Uses[x]; o != nil {
				return o
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// moduleLocal reports whether the object is declared in the analyzed
// package itself or anywhere else in this module — the types whose
// methods encode repo semantics, as opposed to the standard library's.
func moduleLocal(pkg *types.Package, obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkg.Path() || p == "iqb" || strings.HasPrefix(p, "iqb/")
}

// pathTo returns the chain of nodes from root down to the node for
// which match returns true, or nil when no such node exists under
// root. The target node is the last element.
func pathTo(root ast.Node, match func(ast.Node) bool) []ast.Node {
	var stack, found []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if match(n) {
			found = append([]ast.Node(nil), stack...)
			return false
		}
		return true
	})
	return found
}

// funcBodies yields every function body in the file along with its
// enclosing declaration node (FuncDecl or FuncLit).
func funcBodies(f *ast.File, fn func(node ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d, d.Body)
			}
		case *ast.FuncLit:
			fn(d, d.Body)
		}
		return true
	})
}

// sigOf returns fn's signature. (*types.Func).Signature() exists but
// only since go1.23; the module language version is go1.22.
func sigOf(fn *types.Func) *types.Signature {
	return fn.Type().(*types.Signature)
}
