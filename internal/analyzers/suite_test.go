package analyzers_test

import (
	"testing"

	"iqb/internal/analyzers"
	"iqb/internal/analyzers/analyzertest"
)

// Each analyzer's testdata package holds at least one true positive
// (// want), negatives, and a suppressed case with no want — so these
// runs prove both that the rule fires and that //iqbvet:ignore is
// honored.

func TestMapRange(t *testing.T) { analyzertest.Run(t, analyzers.MapRange, "maprange") }

func TestLockIO(t *testing.T) { analyzertest.Run(t, analyzers.LockIO, "lockio") }

func TestSyncErr(t *testing.T) { analyzertest.Run(t, analyzers.SyncErr, "syncerr") }

func TestWallTime(t *testing.T) { analyzertest.Run(t, analyzers.WallTime, "walltime") }

// TestSuppression runs walltime over the suppress package: malformed
// waivers must be reported, and the file-wide waiver must silence
// every walltime finding in fileignore.go.
func TestSuppression(t *testing.T) { analyzertest.Run(t, analyzers.WallTime, "suppress") }
