package analyzers

import (
	"go/ast"
)

// WallTime flags reads of the wall clock and uses of global random
// state in the simulation and scoring packages, where the world must
// be a pure function of the seed: time.Now/Since/Until (and the
// timer/sleep constructors), package-level math/rand and
// math/rand/v2 functions (which draw from the process-global,
// time-seeded source), and crypto/rand. The internal/rng package
// exists precisely so none of these are needed there — every
// component forks a deterministic child stream instead.
//
// Explicitly seeded generators (rand.New(rand.NewSource(seed)) and
// methods on *rand.Rand) are not flagged; neither are the time
// constructors (time.Date, time.Unix) that build values instead of
// reading the clock.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: "wall-clock reads (time.Now/Since/Until/Sleep) or global rand in deterministic simulation/scoring " +
		"packages; thread a seeded rng.Source or an explicit timestamp instead, or document the telemetry exception",
	Scope: []string{
		"iqb/internal/netem",
		"iqb/internal/geo",
		"iqb/internal/pipeline",
		"iqb/internal/iqb",
		"iqb/internal/rng",
		"iqb/internal/tcpmodel",
		"iqb/internal/stats",
		"iqb/internal/dataset",
		// telemetry is deliberately in scope even though it is the
		// wall-clock boundary: its single now() seam carries the
		// documented ignore, and any other clock read added to the
		// package becomes a finding.
		"iqb/internal/telemetry",
	},
	Run: runWallTime,
}

// wallClockFuncs are the package-level time functions that read (or
// schedule against) the real clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

// seededRandFuncs are the math/rand constructors that take an explicit
// source or seed and are therefore deterministic to call.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true,
	"NewChaCha8": true,
}

func runWallTime(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || sigOf(fn).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "time.%s reads the wall clock in a deterministic package; the world must be a pure function of the seed", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededRandFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "%s.%s draws from process-global random state; fork a seeded rng.Source instead", fn.Pkg().Path(), fn.Name())
				}
			case "crypto/rand":
				pass.Reportf(call.Pos(), "crypto/rand is non-deterministic; fork a seeded rng.Source instead")
			}
			return true
		})
	}
}
