// Package analyzertest runs one analyzer over a testdata package and
// diffs its findings against // want comments, in the style of
// golang.org/x/tools' analysistest (which the module cannot depend
// on). Each analyzer's testdata package is the executable
// specification of its rule: positive cases carry a want comment,
// negative cases carry nothing, and documented exceptions carry an
// //iqbvet:ignore suppression and no want — proving the suppression is
// honored.
//
// A want comment names one or more regular expressions that must each
// match a finding reported on that line:
//
//	s += k // want `string built in map iteration order`
//
// Findings with no matching want, and wants with no matching finding,
// fail the test.
package analyzertest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"iqb/internal/analyzers"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+(.+)$")

// Run loads testdata/src/<pkgname> (relative to the calling test's
// working directory), applies the analyzer through the same
// suppression-aware driver the iqbvet binary uses, and reports any
// mismatch against the package's want comments.
func Run(t *testing.T, a *analyzers.Analyzer, pkgname string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkgname)
	loader, err := analyzers.NewLoader(".")
	if err != nil {
		t.Fatalf("building loader: %v", err)
	}
	pkg, err := loader.LoadDir(dir, pkgname)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("no Go files in %s", dir)
	}
	diags := analyzers.RunPackage(pkg, []*analyzers.Analyzer{a})

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		body, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(body), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, pat := range splitWant(m[1]) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
				}
				wants[key{path, i + 1}] = append(wants[key{path, i + 1}], re)
			}
		}
	}

	matched := map[*regexp.Regexp]bool{}
	for _, d := range diags {
		k := key{relToHere(t, d.Pos.Filename), d.Pos.Line}
		ok := false
		for _, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[re] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s:%d: [%s] %s", k.file, k.line, d.Analyzer, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("%s:%d: want %q matched no finding", k.file, k.line, re)
			}
		}
	}
}

// splitWant extracts the quoted or backquoted patterns from the text
// after "want".
func splitWant(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			return out
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return out
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[2+end:])
	}
	return out
}

// relToHere rewrites an absolute diagnostic path to be relative to the
// test's working directory, matching how want keys are built.
func relToHere(t *testing.T, path string) string {
	t.Helper()
	if !filepath.IsAbs(path) {
		return path
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(cwd, path)
	if err != nil {
		return path
	}
	return rel
}
