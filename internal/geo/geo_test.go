package geo

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"iqb/internal/rng"
)

func buildSmall(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.AddRegion(Region{Code: "XA", Name: "Examplia", Level: Country}))
	must(db.AddRegion(Region{Code: "XA-01", Level: State, Parent: "XA"}))
	must(db.AddRegion(Region{Code: "XA-02", Level: State, Parent: "XA"}))
	must(db.AddRegion(Region{Code: "XA-01-001", Level: County, Parent: "XA-01", Population: 1000, Character: Urban}))
	must(db.AddRegion(Region{Code: "XA-01-002", Level: County, Parent: "XA-01", Population: 500, Character: Rural}))
	must(db.AddISP(ISP{ASN: 64500, Name: "NorthFiber"}))
	must(db.AddISP(ISP{ASN: 64501, Name: "MetroLink"}))
	must(db.SetMarket("XA-01-001", []MarketShare{{ASN: 64500, Share: 3}, {ASN: 64501, Share: 1}}))
	return db
}

func TestAddRegionErrors(t *testing.T) {
	db := NewDB()
	if err := db.AddRegion(Region{}); err == nil {
		t.Error("empty code should error")
	}
	if err := db.AddRegion(Region{Code: "XA"}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRegion(Region{Code: "XA"}); err == nil {
		t.Error("duplicate should error")
	}
	if err := db.AddRegion(Region{Code: "XB"}); err == nil {
		t.Error("second root should error")
	}
	if err := db.AddRegion(Region{Code: "XA-01", Parent: "nope"}); err == nil {
		t.Error("missing parent should error")
	}
}

func TestAddISPErrors(t *testing.T) {
	db := NewDB()
	if err := db.AddISP(ISP{ASN: 0}); err == nil {
		t.Error("zero ASN should error")
	}
	if err := db.AddISP(ISP{ASN: 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddISP(ISP{ASN: 1}); err == nil {
		t.Error("duplicate ASN should error")
	}
}

func TestSetMarket(t *testing.T) {
	db := buildSmall(t)
	m := db.Market("XA-01-001")
	if len(m) != 2 {
		t.Fatalf("market size = %d", len(m))
	}
	total := m[0].Share + m[1].Share
	if total < 0.999 || total > 1.001 {
		t.Errorf("market not normalized: %v", total)
	}
	// 3:1 ratio preserved; sorted by ASN so 64500 first.
	if m[0].ASN != 64500 || m[0].Share < 0.74 || m[0].Share > 0.76 {
		t.Errorf("dominant share = %+v", m[0])
	}

	if err := db.SetMarket("missing", m); err == nil {
		t.Error("unknown region should error")
	}
	if err := db.SetMarket("XA-01-002", nil); err == nil {
		t.Error("empty market should error")
	}
	if err := db.SetMarket("XA-01-002", []MarketShare{{ASN: 9, Share: 1}}); err == nil {
		t.Error("unknown ASN should error")
	}
	if err := db.SetMarket("XA-01-002", []MarketShare{{ASN: 64500, Share: -1}}); err == nil {
		t.Error("negative share should error")
	}
}

func TestHierarchyQueries(t *testing.T) {
	db := buildSmall(t)
	if db.Root() != "XA" {
		t.Errorf("Root = %q", db.Root())
	}
	if got := db.Regions(State); len(got) != 2 || got[0] != "XA-01" {
		t.Errorf("Regions(State) = %v", got)
	}
	if got := db.AllRegions(); len(got) != 5 {
		t.Errorf("AllRegions = %v", got)
	}
	anc := db.Ancestors("XA-01-001")
	if len(anc) != 2 || anc[0] != "XA-01" || anc[1] != "XA" {
		t.Errorf("Ancestors = %v", anc)
	}
	desc := db.Descendants("XA")
	if len(desc) != 4 {
		t.Errorf("Descendants(XA) = %v", desc)
	}
	if db.Descendants("missing") != nil {
		t.Error("Descendants of missing region should be nil")
	}
	if !db.Contains("XA", "XA-01-002") || !db.Contains("XA-01", "XA-01-001") {
		t.Error("Contains should hold for ancestors")
	}
	if db.Contains("XA-02", "XA-01-001") {
		t.Error("Contains should not hold across branches")
	}
	if !db.Contains("XA-01", "XA-01") {
		t.Error("Contains should hold for self")
	}
}

func TestLookups(t *testing.T) {
	db := buildSmall(t)
	if r, ok := db.Region("XA-01-001"); !ok || r.Character != Urban {
		t.Errorf("Region lookup = %+v, %v", r, ok)
	}
	if _, ok := db.Region("nope"); ok {
		t.Error("missing region should not be found")
	}
	if isp, ok := db.ISPByASN(64501); !ok || isp.Name != "MetroLink" {
		t.Errorf("ISP lookup = %+v, %v", isp, ok)
	}
	isps := db.ISPs()
	if len(isps) != 2 || isps[0].ASN != 64500 {
		t.Errorf("ISPs = %v", isps)
	}
	if !strings.Contains(db.String(), "regions=5") {
		t.Errorf("String = %q", db.String())
	}
}

func TestValidate(t *testing.T) {
	db := buildSmall(t)
	if err := db.Validate(); err != nil {
		t.Errorf("valid db failed: %v", err)
	}
	if err := NewDB().Validate(); err == nil {
		t.Error("empty db should be invalid (no root)")
	}
	// Negative population.
	r, _ := db.Region("XA-01-001")
	r.Population = -1
	if err := db.Validate(); err == nil {
		t.Error("negative population should be invalid")
	}
	r.Population = 1000
}

func TestLevelCharacterStrings(t *testing.T) {
	if Country.String() != "country" || State.String() != "state" || County.String() != "county" {
		t.Error("level strings")
	}
	if Urban.String() != "urban" || Suburban.String() != "suburban" || Rural.String() != "rural" {
		t.Error("character strings")
	}
	if Level(9).String() == "" || Character(9).String() == "" {
		t.Error("unknown values should still format")
	}
}

func TestSynthesizeDefault(t *testing.T) {
	db, err := Synthesize(DefaultSynthSpec(), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	counties := db.Regions(County)
	if len(counties) != 12 {
		t.Errorf("counties = %d, want 12", len(counties))
	}
	if len(db.Regions(State)) != 4 {
		t.Error("want 4 states")
	}
	if len(db.ISPs()) != 3 {
		t.Error("want 3 ISPs")
	}
	// Every county must have a normalized market.
	for _, c := range counties {
		m := db.Market(c)
		if len(m) == 0 {
			t.Errorf("county %s has no market", c)
		}
	}
	// Populations roll up.
	root, _ := db.Region(db.Root())
	sum := 0
	for _, c := range counties {
		r, _ := db.Region(c)
		sum += r.Population
	}
	if root.Population != sum {
		t.Errorf("country pop %d != sum of counties %d", root.Population, sum)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, err := Synthesize(DefaultSynthSpec(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Synthesize(DefaultSynthSpec(), rng.New(7))
	for _, code := range a.Regions(County) {
		ra, _ := a.Region(code)
		rb, ok := b.Region(code)
		if !ok || ra.Population != rb.Population || ra.Character != rb.Character {
			t.Fatalf("county %s differs across same-seed runs", code)
		}
	}
}

func TestSynthesizeRuralMarketsSmaller(t *testing.T) {
	spec := DefaultSynthSpec()
	spec.States = 10
	spec.CountiesPer = 10
	db, err := Synthesize(spec, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, code := range db.Regions(County) {
		r, _ := db.Region(code)
		m := db.Market(code)
		if r.Character == Rural && len(m) > 2 {
			t.Errorf("rural county %s has %d ISPs, want <=2", code, len(m))
		}
	}
}

func TestSynthesizeErrors(t *testing.T) {
	bad := DefaultSynthSpec()
	bad.States = 0
	if _, err := Synthesize(bad, nil); err == nil {
		t.Error("zero states should error")
	}
	bad = DefaultSynthSpec()
	bad.CountryCode = ""
	if _, err := Synthesize(bad, nil); err == nil {
		t.Error("empty country code should error")
	}
	bad = DefaultSynthSpec()
	bad.UrbanFraction = 2
	if _, err := Synthesize(bad, nil); err == nil {
		t.Error("bad urban fraction should error")
	}
}

func TestSynthesizeManyISPs(t *testing.T) {
	spec := DefaultSynthSpec()
	spec.ISPs = 15 // exceeds the name-part table; names must stay unique
	db, err := Synthesize(spec, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, isp := range db.ISPs() {
		if names[isp.Name] {
			t.Errorf("duplicate ISP name %q", isp.Name)
		}
		names[isp.Name] = true
	}
}

func TestSynthesizeNilSourceAndPopFloor(t *testing.T) {
	spec := DefaultSynthSpec()
	spec.MeanCountyPop = 0 // exercises the default fallback
	db, err := Synthesize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, code := range db.Regions(County) {
		r, _ := db.Region(code)
		if r.Population < 1000 {
			t.Errorf("county %s population %d below floor", code, r.Population)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	db, err := Synthesize(DefaultSynthSpec(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Root() != db.Root() {
		t.Errorf("root = %q, want %q", back.Root(), db.Root())
	}
	if len(back.AllRegions()) != len(db.AllRegions()) {
		t.Errorf("region count = %d, want %d", len(back.AllRegions()), len(db.AllRegions()))
	}
	for _, code := range db.Regions(County) {
		a, _ := db.Region(code)
		b, ok := back.Region(code)
		if !ok {
			t.Fatalf("county %s lost", code)
		}
		if a.Population != b.Population || a.Character != b.Character || a.Parent != b.Parent {
			t.Errorf("county %s changed: %+v vs %+v", code, a, b)
		}
		ma, mb := db.Market(code), back.Market(code)
		if len(ma) != len(mb) {
			t.Fatalf("county %s market size changed", code)
		}
		for i := range ma {
			if ma[i].ASN != mb[i].ASN || math.Abs(ma[i].Share-mb[i].Share) > 1e-9 {
				t.Errorf("county %s market changed: %+v vs %+v", code, ma[i], mb[i])
			}
		}
	}
	if len(back.ISPs()) != len(db.ISPs()) {
		t.Error("ISPs lost")
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		"{not json",
		`{"regions":[{"code":"XA","level":"galaxy","character":"urban"}]}`,
		`{"regions":[{"code":"XA","level":"country","character":"hip"}]}`,
		`{"regions":[{"code":"XA","level":"country","character":"urban"},{"code":"XA","level":"country","character":"urban"}]}`,
		`{"regions":[{"code":"XA","level":"country","character":"urban"}],"isps":[{"asn":0,"name":"x"}]}`,
		`{"regions":[{"code":"XA","level":"country","character":"urban"}],"markets":[{"region":"XB","shares":[{"asn":1,"share":1}]}]}`,
		`{}`, // valid JSON, no root region -> Validate fails
	}
	for _, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("geography %q should fail", in)
		}
	}
}
