package geo

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// jsonDB is the wire form of a DB: flat lists with string-keyed enums,
// so geography files are hand-editable.
type jsonDB struct {
	Regions []jsonRegion `json:"regions"`
	ISPs    []jsonISP    `json:"isps"`
	Markets []jsonMarket `json:"markets"`
}

type jsonRegion struct {
	Code       string `json:"code"`
	Name       string `json:"name,omitempty"`
	Level      string `json:"level"`
	Character  string `json:"character"`
	Population int    `json:"population,omitempty"`
	Parent     string `json:"parent,omitempty"`
}

type jsonISP struct {
	ASN  uint32 `json:"asn"`
	Name string `json:"name"`
}

type jsonMarket struct {
	Region string            `json:"region"`
	Shares []jsonMarketShare `json:"shares"`
}

type jsonMarketShare struct {
	ASN   uint32  `json:"asn"`
	Share float64 `json:"share"`
}

func levelName(l Level) string { return l.String() }

func parseLevel(s string) (Level, error) {
	for _, l := range []Level{Country, State, County} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("geo: unknown level %q", s)
}

func parseCharacter(s string) (Character, error) {
	for _, c := range []Character{Urban, Suburban, Rural} {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("geo: unknown character %q", s)
}

// WriteJSON serializes the geography. Regions are ordered parents-first
// so ReadJSON can rebuild incrementally.
func (db *DB) WriteJSON(w io.Writer) error {
	var jdb jsonDB
	// Parents-first: sort by level then code.
	codes := db.AllRegions()
	sort.Slice(codes, func(i, j int) bool {
		a, _ := db.Region(codes[i])
		b, _ := db.Region(codes[j])
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		return a.Code < b.Code
	})
	for _, code := range codes {
		r, _ := db.Region(code)
		jdb.Regions = append(jdb.Regions, jsonRegion{
			Code:       r.Code,
			Name:       r.Name,
			Level:      levelName(r.Level),
			Character:  r.Character.String(),
			Population: r.Population,
			Parent:     r.Parent,
		})
	}
	for _, isp := range db.ISPs() {
		jdb.ISPs = append(jdb.ISPs, jsonISP{ASN: isp.ASN, Name: isp.Name})
	}
	for _, code := range codes {
		shares := db.Market(code)
		if len(shares) == 0 {
			continue
		}
		m := jsonMarket{Region: code}
		for _, s := range shares {
			m.Shares = append(m.Shares, jsonMarketShare{ASN: s.ASN, Share: s.Share})
		}
		jdb.Markets = append(jdb.Markets, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jdb)
}

// ReadJSON parses a geography written by WriteJSON (or hand-authored in
// the same shape) and validates it.
func ReadJSON(r io.Reader) (*DB, error) {
	var jdb jsonDB
	if err := json.NewDecoder(r).Decode(&jdb); err != nil {
		return nil, fmt.Errorf("geo: parsing geography: %w", err)
	}
	db := NewDB()
	for _, jr := range jdb.Regions {
		level, err := parseLevel(jr.Level)
		if err != nil {
			return nil, fmt.Errorf("geo: region %q: %w", jr.Code, err)
		}
		char, err := parseCharacter(jr.Character)
		if err != nil {
			return nil, fmt.Errorf("geo: region %q: %w", jr.Code, err)
		}
		if err := db.AddRegion(Region{
			Code:       jr.Code,
			Name:       jr.Name,
			Level:      level,
			Character:  char,
			Population: jr.Population,
			Parent:     jr.Parent,
		}); err != nil {
			return nil, err
		}
	}
	for _, ji := range jdb.ISPs {
		if err := db.AddISP(ISP{ASN: ji.ASN, Name: ji.Name}); err != nil {
			return nil, err
		}
	}
	for _, jm := range jdb.Markets {
		shares := make([]MarketShare, len(jm.Shares))
		for i, s := range jm.Shares {
			shares[i] = MarketShare{ASN: s.ASN, Share: s.Share}
		}
		if err := db.SetMarket(jm.Region, shares); err != nil {
			return nil, err
		}
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	return db, nil
}
