package geo

import (
	"fmt"

	"iqb/internal/rng"
)

// SynthSpec configures Synthesize.
type SynthSpec struct {
	CountryCode string // e.g. "XA"
	CountryName string
	States      int // number of states, >= 1
	CountiesPer int // counties per state, >= 1
	ISPs        int // national ISPs, >= 1
	// UrbanFraction is the probability a county is urban; half of the
	// remainder is suburban, the rest rural.
	UrbanFraction float64
	// MeanCountyPop is the mean county population (log-normal, cv 0.8).
	MeanCountyPop int
}

// DefaultSynthSpec returns a 4-state, 12-county synthetic country with
// three national ISPs, sized for tests and the experiment harness.
func DefaultSynthSpec() SynthSpec {
	return SynthSpec{
		CountryCode:   "XA",
		CountryName:   "Examplia",
		States:        4,
		CountiesPer:   3,
		ISPs:          3,
		UrbanFraction: 0.35,
		MeanCountyPop: 250000,
	}
}

var ispNameParts = [][2]string{
	{"North", "Fiber"}, {"Metro", "Link"}, {"Rural", "Wave"},
	{"Unified", "Net"}, {"Coastal", "Cable"}, {"Prairie", "Broadband"},
	{"Summit", "Comm"}, {"Valley", "Online"}, {"Apex", "Telecom"},
	{"Horizon", "Digital"},
}

// Synthesize builds a deterministic synthetic geography from the spec and
// seed source. Urban counties get cable/fiber heavy markets, rural ones
// DSL/satellite heavy markets; the technology mix itself lives in the
// netem package and is keyed by Character.
func Synthesize(spec SynthSpec, src *rng.Source) (*DB, error) {
	if spec.States < 1 || spec.CountiesPer < 1 || spec.ISPs < 1 {
		return nil, fmt.Errorf("geo: spec needs >=1 state, county, ISP: %+v", spec)
	}
	if spec.CountryCode == "" {
		return nil, fmt.Errorf("geo: spec needs a country code")
	}
	if spec.UrbanFraction < 0 || spec.UrbanFraction > 1 {
		return nil, fmt.Errorf("geo: urban fraction %v out of [0,1]", spec.UrbanFraction)
	}
	if spec.MeanCountyPop <= 0 {
		spec.MeanCountyPop = 100000
	}
	if src == nil {
		src = rng.New(0)
	}
	db := NewDB()

	for i := 0; i < spec.ISPs; i++ {
		part := ispNameParts[i%len(ispNameParts)]
		name := part[0] + part[1]
		if i >= len(ispNameParts) {
			name = fmt.Sprintf("%s%d", name, i/len(ispNameParts)+1)
		}
		if err := db.AddISP(ISP{ASN: 64500 + uint32(i), Name: name}); err != nil {
			return nil, err
		}
	}

	if err := db.AddRegion(Region{
		Code:      spec.CountryCode,
		Name:      spec.CountryName,
		Level:     Country,
		Character: Suburban,
	}); err != nil {
		return nil, err
	}

	countryPop := 0
	for s := 0; s < spec.States; s++ {
		stateCode := fmt.Sprintf("%s-%02d", spec.CountryCode, s+1)
		if err := db.AddRegion(Region{
			Code:      stateCode,
			Name:      fmt.Sprintf("State %02d", s+1),
			Level:     State,
			Character: Suburban,
			Parent:    spec.CountryCode,
		}); err != nil {
			return nil, err
		}
		statePop := 0
		for c := 0; c < spec.CountiesPer; c++ {
			countyCode := fmt.Sprintf("%s-%03d", stateCode, c+1)
			char := Rural
			switch u := src.Float64(); {
			case u < spec.UrbanFraction:
				char = Urban
			case u < spec.UrbanFraction+(1-spec.UrbanFraction)/2:
				char = Suburban
			}
			pop := int(src.LogNormalFromMoments(float64(spec.MeanCountyPop), 0.8))
			if char == Urban {
				pop *= 3
			}
			if pop < 1000 {
				pop = 1000
			}
			if err := db.AddRegion(Region{
				Code:       countyCode,
				Name:       fmt.Sprintf("County %s-%d", stateCode, c+1),
				Level:      County,
				Character:  char,
				Population: pop,
				Parent:     stateCode,
			}); err != nil {
				return nil, err
			}
			statePop += pop

			if err := db.SetMarket(countyCode, synthMarket(db, char, src)); err != nil {
				return nil, err
			}
		}
		st, _ := db.Region(stateCode)
		st.Population = statePop
		countryPop += statePop
	}
	root, _ := db.Region(spec.CountryCode)
	root.Population = countryPop

	if err := db.Validate(); err != nil {
		return nil, fmt.Errorf("geo: synthesized database invalid: %w", err)
	}
	return db, nil
}

// synthMarket draws market shares over the registered ISPs: one or two
// dominant providers plus a tail, with fewer competitors in rural areas.
func synthMarket(db *DB, char Character, src *rng.Source) []MarketShare {
	isps := db.ISPs()
	n := len(isps)
	present := n
	if char == Rural && n > 2 {
		present = 2 // rural counties typically have fewer choices
	}
	// Dirichlet-ish draw: exponential weights, normalized by SetMarket.
	shares := make([]MarketShare, 0, present)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	src.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	for k := 0; k < present; k++ {
		w := src.Exponential(1) + 0.1
		if k == 0 {
			w += 1.5 // a dominant incumbent
		}
		shares = append(shares, MarketShare{ASN: isps[perm[k]].ASN, Share: w})
	}
	return shares
}
