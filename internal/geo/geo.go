// Package geo models the geographic and market structure the IQB
// framework scores over: a hierarchy of regions (country → state →
// county), each with a population, an urban/rural character, and a set of
// ISPs with market shares and access-technology mixes.
//
// The paper scores regions using measurements "collected from users in
// that region"; this package supplies the synthetic population of users
// those measurements come from.
package geo

import (
	"fmt"
	"sort"
	"strings"
)

// Level is a region's depth in the hierarchy.
type Level int

// Region hierarchy levels, top down.
const (
	Country Level = iota
	State
	County
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Country:
		return "country"
	case State:
		return "state"
	case County:
		return "county"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Character classifies how built-up a region is; it drives the access
// technology mix.
type Character int

// Region characters.
const (
	Urban Character = iota
	Suburban
	Rural
)

// String names the character.
func (c Character) String() string {
	switch c {
	case Urban:
		return "urban"
	case Suburban:
		return "suburban"
	case Rural:
		return "rural"
	default:
		return fmt.Sprintf("Character(%d)", int(c))
	}
}

// Region is a node in the geographic hierarchy. Codes are hierarchical
// and slash-separated, e.g. "XA/XA-03/XA-03-017".
type Region struct {
	Code       string
	Name       string
	Level      Level
	Character  Character
	Population int
	Parent     string   // parent code, empty for the country
	Children   []string // child codes, sorted
}

// ISP is an internet service provider operating in one or more regions.
type ISP struct {
	ASN  uint32
	Name string
}

// MarketShare is one ISP's presence in a region.
type MarketShare struct {
	ASN   uint32
	Share float64 // fraction of subscribers in the region, sums to ~1
}

// DB is an immutable geography: regions, ISPs, and per-region markets.
type DB struct {
	regions map[string]*Region
	isps    map[uint32]*ISP
	markets map[string][]MarketShare // region code -> shares
	root    string
}

// NewDB returns an empty database. Use AddRegion/AddISP/SetMarket or
// Synthesize to populate it.
func NewDB() *DB {
	return &DB{
		regions: make(map[string]*Region),
		isps:    make(map[uint32]*ISP),
		markets: make(map[string][]MarketShare),
	}
}

// AddRegion inserts a region. The parent, if any, must already exist.
func (db *DB) AddRegion(r Region) error {
	if r.Code == "" {
		return fmt.Errorf("geo: region needs a code")
	}
	if _, dup := db.regions[r.Code]; dup {
		return fmt.Errorf("geo: duplicate region %q", r.Code)
	}
	if r.Parent == "" {
		if db.root != "" {
			return fmt.Errorf("geo: second root region %q (root is %q)", r.Code, db.root)
		}
		db.root = r.Code
	} else {
		p, ok := db.regions[r.Parent]
		if !ok {
			return fmt.Errorf("geo: region %q references missing parent %q", r.Code, r.Parent)
		}
		p.Children = append(p.Children, r.Code)
		sort.Strings(p.Children)
	}
	cp := r
	db.regions[r.Code] = &cp
	return nil
}

// AddISP registers an ISP.
func (db *DB) AddISP(isp ISP) error {
	if isp.ASN == 0 {
		return fmt.Errorf("geo: ISP needs a non-zero ASN")
	}
	if _, dup := db.isps[isp.ASN]; dup {
		return fmt.Errorf("geo: duplicate ASN %d", isp.ASN)
	}
	cp := isp
	db.isps[isp.ASN] = &cp
	return nil
}

// SetMarket records the ISP market shares for a region. Shares must be
// positive and reference registered ISPs; they are normalized to sum to 1.
func (db *DB) SetMarket(regionCode string, shares []MarketShare) error {
	if _, ok := db.regions[regionCode]; !ok {
		return fmt.Errorf("geo: market for unknown region %q", regionCode)
	}
	if len(shares) == 0 {
		return fmt.Errorf("geo: empty market for region %q", regionCode)
	}
	total := 0.0
	for _, s := range shares {
		if _, ok := db.isps[s.ASN]; !ok {
			return fmt.Errorf("geo: market references unknown ASN %d", s.ASN)
		}
		if s.Share <= 0 {
			return fmt.Errorf("geo: non-positive share %v for ASN %d", s.Share, s.ASN)
		}
		total += s.Share
	}
	norm := make([]MarketShare, len(shares))
	for i, s := range shares {
		norm[i] = MarketShare{ASN: s.ASN, Share: s.Share / total}
	}
	sort.Slice(norm, func(i, j int) bool { return norm[i].ASN < norm[j].ASN })
	db.markets[regionCode] = norm
	return nil
}

// Region returns a region by code.
func (db *DB) Region(code string) (*Region, bool) {
	r, ok := db.regions[code]
	return r, ok
}

// ISPByASN returns an ISP by ASN.
func (db *DB) ISPByASN(asn uint32) (*ISP, bool) {
	isp, ok := db.isps[asn]
	return isp, ok
}

// Market returns the market shares for a region, or nil if unset.
func (db *DB) Market(code string) []MarketShare { return db.markets[code] }

// Root returns the country-level region code.
func (db *DB) Root() string { return db.root }

// Regions returns all region codes at the given level, sorted.
func (db *DB) Regions(level Level) []string {
	var out []string
	for code, r := range db.regions {
		if r.Level == level {
			out = append(out, code)
		}
	}
	sort.Strings(out)
	return out
}

// AllRegions returns every region code, sorted.
func (db *DB) AllRegions() []string {
	out := make([]string, 0, len(db.regions))
	for code := range db.regions {
		out = append(out, code)
	}
	sort.Strings(out)
	return out
}

// ISPs returns all registered ISPs sorted by ASN.
func (db *DB) ISPs() []ISP {
	out := make([]ISP, 0, len(db.isps))
	for _, isp := range db.isps {
		out = append(out, *isp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// Ancestors returns the chain of region codes from code's parent up to
// the root, nearest first.
func (db *DB) Ancestors(code string) []string {
	var out []string
	r, ok := db.regions[code]
	for ok && r.Parent != "" {
		out = append(out, r.Parent)
		r, ok = db.regions[r.Parent]
	}
	return out
}

// Descendants returns all region codes in the subtree rooted at code
// (excluding code itself), in depth-first sorted order.
func (db *DB) Descendants(code string) []string {
	var out []string
	r, ok := db.regions[code]
	if !ok {
		return nil
	}
	for _, child := range r.Children {
		out = append(out, child)
		out = append(out, db.Descendants(child)...)
	}
	return out
}

// Contains reports whether ancestor contains (or equals) code.
func (db *DB) Contains(ancestor, code string) bool {
	if ancestor == code {
		return true
	}
	for _, a := range db.Ancestors(code) {
		if a == ancestor {
			return true
		}
	}
	return false
}

// Validate checks structural invariants: a single root, resolvable
// parents, populations that do not exceed the parent's, and markets that
// sum to 1.
func (db *DB) Validate() error {
	if db.root == "" {
		return fmt.Errorf("geo: no root region")
	}
	for code, r := range db.regions {
		if r.Population < 0 {
			return fmt.Errorf("geo: region %q has negative population", code)
		}
		if r.Parent != "" {
			p, ok := db.regions[r.Parent]
			if !ok {
				return fmt.Errorf("geo: region %q has missing parent %q", code, r.Parent)
			}
			if p.Level >= r.Level {
				return fmt.Errorf("geo: region %q level %v not below parent level %v", code, r.Level, p.Level)
			}
		}
	}
	for code, shares := range db.markets {
		total := 0.0
		for _, s := range shares {
			total += s.Share
		}
		if total < 0.999 || total > 1.001 {
			return fmt.Errorf("geo: market for %q sums to %v", code, total)
		}
	}
	return nil
}

// String summarizes the database.
func (db *DB) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "geo.DB{root=%s regions=%d isps=%d}", db.root, len(db.regions), len(db.isps))
	return b.String()
}
