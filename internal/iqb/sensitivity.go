package iqb

import (
	"errors"
	"fmt"
	"sort"

	"iqb/internal/units"
)

// LeaveOneOut holds the score obtained when one dataset is removed,
// quantifying how much the composite relies on cross-dataset
// corroboration (the poster's stated reason for using multiple sources).
type LeaveOneOut struct {
	Dataset string  `json:"dataset"`
	Score   float64 `json:"score"`
	Delta   float64 `json:"delta"` // Score - full score
}

// LeaveOneOutAnalysis recomputes the score with each dataset excluded in
// turn. Datasets whose removal leaves no usable data are skipped.
func (c Config) LeaveOneOutAnalysis(agg *Aggregates) (full Score, outs []LeaveOneOut, err error) {
	full, err = c.ScoreAggregates(agg)
	if err != nil {
		return Score{}, nil, err
	}
	for _, d := range c.Datasets {
		reduced := c
		reduced.Datasets = nil
		for _, other := range c.Datasets {
			if other.Name != d.Name {
				reduced.Datasets = append(reduced.Datasets, other)
			}
		}
		// Drop the excluded dataset's weights too.
		reduced.DatasetWeights = cloneDatasetWeights(c.DatasetWeights)
		for _, u := range AllUseCases() {
			for _, r := range AllRequirements() {
				delete(reduced.DatasetWeights[u][r], d.Name)
			}
		}
		s, err := reduced.ScoreAggregates(agg)
		if errors.Is(err, ErrNoUsableData) {
			continue
		}
		if err != nil {
			return Score{}, nil, fmt.Errorf("iqb: leave-one-out without %s: %w", d.Name, err)
		}
		outs = append(outs, LeaveOneOut{Dataset: d.Name, Score: s.IQB, Delta: s.IQB - full.IQB})
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].Dataset < outs[j].Dataset })
	return full, outs, nil
}

// WeightPerturbation is the score range induced by moving a single
// requirement weight by ±1 (within the 0..5 scale).
type WeightPerturbation struct {
	UseCase     UseCase `json:"-"`
	UseCaseName string  `json:"use_case"`
	Requirement string  `json:"requirement"`
	Base        Weight  `json:"base_weight"`
	ScoreDown   float64 `json:"score_minus_one"` // weight-1 (or base if at 0)
	ScoreUp     float64 `json:"score_plus_one"`  // weight+1 (or base if at 5)
	Range       float64 `json:"range"`
}

// WeightSensitivity perturbs every Table 1 cell by ±1 and reports the
// induced score ranges, largest first — experiment E7.
func (c Config) WeightSensitivity(agg *Aggregates) ([]WeightPerturbation, error) {
	base, err := c.ScoreAggregates(agg)
	if err != nil {
		return nil, err
	}
	var out []WeightPerturbation
	for _, u := range AllUseCases() {
		for _, r := range AllRequirements() {
			w := c.RequirementWeights[u][r]
			p := WeightPerturbation{
				UseCase: u, UseCaseName: u.String(), Requirement: r.String(),
				Base: w, ScoreDown: base.IQB, ScoreUp: base.IQB,
			}
			if w > 0 {
				s, err := c.withRequirementWeight(u, r, w-1).ScoreAggregates(agg)
				if err != nil && !errors.Is(err, ErrNoUsableData) {
					return nil, err
				}
				if err == nil {
					p.ScoreDown = s.IQB
				}
			}
			if w < 5 {
				s, err := c.withRequirementWeight(u, r, w+1).ScoreAggregates(agg)
				if err != nil {
					return nil, err
				}
				p.ScoreUp = s.IQB
			}
			lo, hi := p.ScoreDown, p.ScoreUp
			if lo > hi {
				lo, hi = hi, lo
			}
			if base.IQB < lo {
				lo = base.IQB
			}
			if base.IQB > hi {
				hi = base.IQB
			}
			p.Range = hi - lo
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Range > out[j].Range })
	return out, nil
}

// withRequirementWeight returns a copy of the config with one w(u,r)
// replaced.
func (c Config) withRequirementWeight(u UseCase, r Requirement, w Weight) Config {
	out := c
	out.RequirementWeights = make(RequirementWeights, len(c.RequirementWeights))
	for uc, reqs := range c.RequirementWeights {
		m := make(map[Requirement]Weight, len(reqs))
		for rr, ww := range reqs {
			m[rr] = ww
		}
		out.RequirementWeights[uc] = m
	}
	out.RequirementWeights[u][r] = w
	return out
}

// SweepPoint is one point of a threshold sweep.
type SweepPoint struct {
	Threshold float64 `json:"threshold"`
	Score     float64 `json:"score"`
}

// ThresholdSweep recomputes the score while varying one threshold cell
// across the given values (at the configured quality level) — experiment
// E8. The returned points are in input order.
func (c Config) ThresholdSweep(agg *Aggregates, u UseCase, r Requirement, values []float64) ([]SweepPoint, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("iqb: empty threshold sweep")
	}
	out := make([]SweepPoint, 0, len(values))
	for _, v := range values {
		mod := c
		mod.Thresholds = cloneThresholds(c.Thresholds)
		b := mod.Thresholds[u][r]
		higherBetter := RequirementDirection(r) == units.HigherBetter
		if c.Quality == HighQuality {
			b.High = v
			// Keep the band internally consistent so Validate passes.
			if higherBetter && b.Minimum > b.High {
				b.Minimum = b.High
			} else if !higherBetter && b.Minimum < b.High {
				b.Minimum = b.High
			}
		} else {
			b.Minimum = v
			if higherBetter && b.High < b.Minimum {
				b.High = b.Minimum
			} else if !higherBetter && b.High > b.Minimum {
				b.High = b.Minimum
			}
		}
		mod.Thresholds[u][r] = b
		s, err := mod.ScoreAggregates(agg)
		if err != nil {
			return nil, fmt.Errorf("iqb: sweep at %v: %w", v, err)
		}
		out = append(out, SweepPoint{Threshold: v, Score: s.IQB})
	}
	return out, nil
}

func cloneThresholds(t Thresholds) Thresholds {
	out := make(Thresholds, len(t))
	for u, reqs := range t {
		m := make(map[Requirement]Band, len(reqs))
		for r, b := range reqs {
			m[r] = b
		}
		out[u] = m
	}
	return out
}

func cloneDatasetWeights(w DatasetWeights) DatasetWeights {
	out := make(DatasetWeights, len(w))
	for u, reqs := range w {
		m := make(map[Requirement]map[string]Weight, len(reqs))
		for r, cell := range reqs {
			inner := make(map[string]Weight, len(cell))
			for name, ww := range cell {
				inner[name] = ww
			}
			m[r] = inner
		}
		out[u] = m
	}
	return out
}
