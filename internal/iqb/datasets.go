package iqb

import (
	"fmt"
	"sort"
)

// Dataset name constants for the three pipelines the poster builds on.
const (
	DatasetNDT        = "ndt"
	DatasetCloudflare = "cloudflare"
	DatasetOokla      = "ookla"
)

// DatasetInfo describes one source dataset: its name and which
// requirements it can measure. The capability matrix encodes real-world
// constraints such as Ookla's public aggregates carrying no packet loss.
type DatasetInfo struct {
	Name string `json:"name"`
	// Capabilities lists the requirements the dataset reports.
	Capabilities []Requirement `json:"capabilities"`
	// Description documents the measurement methodology, for reports.
	Description string `json:"description,omitempty"`
}

// Measures reports whether the dataset reports requirement r.
func (d DatasetInfo) Measures(r Requirement) bool {
	for _, c := range d.Capabilities {
		if c == r {
			return true
		}
	}
	return false
}

// DefaultDatasets returns the three-source registry the poster uses:
// M-Lab NDT and Cloudflare at the individual-test level (all four
// metrics) and Ookla aggregates (no packet loss column).
func DefaultDatasets() []DatasetInfo {
	return []DatasetInfo{
		{
			Name:         DatasetNDT,
			Capabilities: []Requirement{Download, Upload, Latency, Loss},
			Description:  "Single-stream 10s transfer with BBR-era counters (NDT7-style)",
		},
		{
			Name:         DatasetCloudflare,
			Capabilities: []Requirement{Download, Upload, Latency, Loss},
			Description:  "Fixed-size HTTP transfer ladder with percentile aggregation",
		},
		{
			Name:         DatasetOokla,
			Capabilities: []Requirement{Download, Upload, Latency},
			Description:  "Multi-connection test, published as regional aggregates without loss",
		},
	}
}

// validateDatasets checks names are unique and capabilities non-empty.
func validateDatasets(ds []DatasetInfo) error {
	if len(ds) == 0 {
		return fmt.Errorf("iqb: no datasets configured")
	}
	seen := map[string]bool{}
	for _, d := range ds {
		if d.Name == "" {
			return fmt.Errorf("iqb: dataset with empty name")
		}
		if seen[d.Name] {
			return fmt.Errorf("iqb: duplicate dataset %q", d.Name)
		}
		seen[d.Name] = true
		if len(d.Capabilities) == 0 {
			return fmt.Errorf("iqb: dataset %q measures nothing", d.Name)
		}
		for _, r := range d.Capabilities {
			if int(r) < 0 || int(r) >= len(AllRequirements()) {
				return fmt.Errorf("iqb: dataset %q has unknown capability %d", d.Name, int(r))
			}
		}
	}
	return nil
}

// datasetNames returns the sorted names of the registry.
func datasetNames(ds []DatasetInfo) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	sort.Strings(out)
	return out
}
