package iqb

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"iqb/internal/dataset"
	"iqb/internal/units"
)

// Convention selects how the configured percentile applies to
// higher-better requirements. The poster states "IQB uses the 95th
// percentile of a dataset to evaluate a metric" with a packet-loss
// example, where the 95th percentile being under the bar means 95% of
// tests meet it.
type Convention int

// Aggregation conventions.
const (
	// MirrorTail (default) preserves the "95% of tests meet the bar"
	// semantics for every requirement: lower-better metrics use the
	// configured percentile, higher-better metrics use its mirror
	// (100-p, i.e. the 5th percentile of throughput).
	MirrorTail Convention = iota
	// SameTail applies the configured percentile literally to every
	// requirement, which for throughput tests the best measurements.
	SameTail
)

// String names the convention.
func (c Convention) String() string {
	switch c {
	case MirrorTail:
		return "mirror-tail"
	case SameTail:
		return "same-tail"
	default:
		return fmt.Sprintf("Convention(%d)", int(c))
	}
}

// Config is the complete, serializable configuration of the IQB
// framework: the three weight tiers, the threshold table, the dataset
// registry, and the aggregation rules. The paper's conclusion emphasizes
// all of these are adaptable; the defaults reproduce the paper.
type Config struct {
	// UseCaseWeights is w(u); defaults to equal.
	UseCaseWeights UseCaseWeights `json:"use_case_weights"`
	// RequirementWeights is w(u,r); defaults to Table 1.
	RequirementWeights RequirementWeights `json:"requirement_weights"`
	// DatasetWeights is w(u,r,d); defaults to equal within capability.
	DatasetWeights DatasetWeights `json:"dataset_weights"`
	// Thresholds is the Fig. 2 table.
	Thresholds Thresholds `json:"thresholds"`
	// Datasets is the source registry with capability matrix.
	Datasets []DatasetInfo `json:"datasets"`
	// Quality selects which bar to score against. Default HighQuality.
	Quality QualityLevel `json:"quality"`
	// Percentile is the aggregation percentile (the paper's 95).
	Percentile float64 `json:"percentile"`
	// Convention maps the percentile onto higher-better requirements.
	Convention Convention `json:"convention"`
	// MinSamples is the smallest sample count from which an aggregate is
	// trusted; datasets below it are treated as missing for that cell.
	MinSamples int `json:"min_samples"`
}

// DefaultConfig reproduces the paper's published choices plus the
// documented substitutions for unpublished ones.
func DefaultConfig() Config {
	ds := DefaultDatasets()
	return Config{
		UseCaseWeights:     DefaultUseCaseWeights(),
		RequirementWeights: Table1Weights(),
		DatasetWeights:     EqualDatasetWeights(ds),
		Thresholds:         DefaultThresholds(),
		Datasets:           ds,
		Quality:            HighQuality,
		Percentile:         95,
		Convention:         MirrorTail,
		MinSamples:         10,
	}
}

// Validate checks the configuration is complete and internally
// consistent.
func (c Config) Validate() error {
	if err := validateDatasets(c.Datasets); err != nil {
		return err
	}
	if err := c.Thresholds.Validate(); err != nil {
		return err
	}
	if c.Percentile <= 0 || c.Percentile >= 100 {
		return fmt.Errorf("iqb: percentile %v out of (0,100)", c.Percentile)
	}
	if c.Quality != MinimumQuality && c.Quality != HighQuality {
		return fmt.Errorf("iqb: unknown quality level %d", int(c.Quality))
	}
	if c.Convention != MirrorTail && c.Convention != SameTail {
		return fmt.Errorf("iqb: unknown convention %d", int(c.Convention))
	}
	if c.MinSamples < 1 {
		return fmt.Errorf("iqb: min samples %d must be >= 1", c.MinSamples)
	}
	if len(c.UseCaseWeights) == 0 {
		return fmt.Errorf("iqb: no use case weights")
	}
	if _, err := NormalizeUseCaseWeights(c.UseCaseWeights); err != nil {
		return err
	}
	for u := range c.UseCaseWeights {
		if int(u) < 0 || int(u) >= int(numUseCases) {
			return fmt.Errorf("iqb: weight for unknown use case %d", int(u))
		}
		reqs, ok := c.RequirementWeights[u]
		if !ok {
			return fmt.Errorf("iqb: no requirement weights for %v", u)
		}
		for _, r := range AllRequirements() {
			if _, ok := reqs[r]; !ok {
				return fmt.Errorf("iqb: no weight for %v/%v", u, r)
			}
			if !reqs[r].Valid() {
				return fmt.Errorf("iqb: weight %d for %v/%v out of [0,5]", reqs[r], u, r)
			}
		}
		if _, err := NormalizeRequirementWeights(reqs); err != nil {
			return fmt.Errorf("iqb: %v: %w", u, err)
		}
		dsw, ok := c.DatasetWeights[u]
		if !ok {
			return fmt.Errorf("iqb: no dataset weights for %v", u)
		}
		for _, r := range AllRequirements() {
			cell, ok := dsw[r]
			if !ok {
				return fmt.Errorf("iqb: no dataset weights for %v/%v", u, r)
			}
			for name, w := range cell {
				if !w.Valid() {
					return fmt.Errorf("iqb: weight %d for %v/%v/%s out of [0,5]", w, u, r, name)
				}
				found := false
				for _, d := range c.Datasets {
					if d.Name == name {
						found = true
						if !d.Measures(r) {
							return fmt.Errorf("iqb: dataset %s weighted for %v it cannot measure", name, r)
						}
					}
				}
				if !found {
					return fmt.Errorf("iqb: weight references unregistered dataset %q", name)
				}
			}
		}
	}
	return nil
}

// Hash returns a stable fingerprint of the configuration: two configs
// that would score identically hash identically. It is derived from the
// canonical JSON form (encoding/json sorts map keys), so it survives
// process restarts — cache keys built from it stay comparable across
// runs. The value is a truncated hex SHA-256.
func (c Config) Hash() (string, error) {
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		return "", fmt.Errorf("iqb: hashing config: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:8]), nil
}

// effectivePercentile returns the percentile to use for requirement r
// under the configured convention.
func (c Config) effectivePercentile(r Requirement) float64 {
	if c.Convention == MirrorTail && RequirementDirection(r) == units.HigherBetter {
		return 100 - c.Percentile
	}
	return c.Percentile
}

// jsonConfig mirrors Config with string-keyed maps for stable JSON.
type jsonConfig struct {
	UseCaseWeights     map[string]Weight                       `json:"use_case_weights"`
	RequirementWeights map[string]map[string]Weight            `json:"requirement_weights"`
	DatasetWeights     map[string]map[string]map[string]Weight `json:"dataset_weights"`
	Thresholds         map[string]map[string]Band              `json:"thresholds"`
	Datasets           []jsonDatasetInfo                       `json:"datasets"`
	Quality            string                                  `json:"quality"`
	Percentile         float64                                 `json:"percentile"`
	Convention         string                                  `json:"convention"`
	MinSamples         int                                     `json:"min_samples"`
}

type jsonDatasetInfo struct {
	Name         string   `json:"name"`
	Capabilities []string `json:"capabilities"`
	Description  string   `json:"description,omitempty"`
}

// WriteJSON serializes the configuration with human-readable keys.
func (c Config) WriteJSON(w io.Writer) error {
	jc := jsonConfig{
		UseCaseWeights:     map[string]Weight{},
		RequirementWeights: map[string]map[string]Weight{},
		DatasetWeights:     map[string]map[string]map[string]Weight{},
		Thresholds:         map[string]map[string]Band{},
		Quality:            c.Quality.String(),
		Percentile:         c.Percentile,
		Convention:         c.Convention.String(),
		MinSamples:         c.MinSamples,
	}
	for u, w := range c.UseCaseWeights {
		jc.UseCaseWeights[u.String()] = w
	}
	for u, reqs := range c.RequirementWeights {
		m := map[string]Weight{}
		for r, w := range reqs {
			m[r.String()] = w
		}
		jc.RequirementWeights[u.String()] = m
	}
	for u, reqs := range c.DatasetWeights {
		m := map[string]map[string]Weight{}
		for r, cell := range reqs {
			inner := map[string]Weight{}
			for name, w := range cell {
				inner[name] = w
			}
			m[r.String()] = inner
		}
		jc.DatasetWeights[u.String()] = m
	}
	for u, reqs := range c.Thresholds {
		m := map[string]Band{}
		for r, b := range reqs {
			m[r.String()] = b
		}
		jc.Thresholds[u.String()] = m
	}
	for _, d := range c.Datasets {
		jd := jsonDatasetInfo{Name: d.Name, Description: d.Description}
		for _, r := range d.Capabilities {
			jd.Capabilities = append(jd.Capabilities, r.String())
		}
		jc.Datasets = append(jc.Datasets, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jc)
}

// ReadConfigJSON parses a configuration written by WriteJSON and
// validates it.
func ReadConfigJSON(r io.Reader) (Config, error) {
	var jc jsonConfig
	if err := json.NewDecoder(r).Decode(&jc); err != nil {
		return Config{}, fmt.Errorf("iqb: parsing config: %w", err)
	}
	c := Config{
		UseCaseWeights:     UseCaseWeights{},
		RequirementWeights: RequirementWeights{},
		DatasetWeights:     DatasetWeights{},
		Thresholds:         Thresholds{},
		Percentile:         jc.Percentile,
		MinSamples:         jc.MinSamples,
	}
	switch jc.Quality {
	case "minimum":
		c.Quality = MinimumQuality
	case "high", "":
		c.Quality = HighQuality
	default:
		return Config{}, fmt.Errorf("iqb: unknown quality %q", jc.Quality)
	}
	switch jc.Convention {
	case "mirror-tail", "":
		c.Convention = MirrorTail
	case "same-tail":
		c.Convention = SameTail
	default:
		return Config{}, fmt.Errorf("iqb: unknown convention %q", jc.Convention)
	}
	for name, w := range jc.UseCaseWeights {
		u, err := ParseUseCase(name)
		if err != nil {
			return Config{}, err
		}
		c.UseCaseWeights[u] = w
	}
	for name, reqs := range jc.RequirementWeights {
		u, err := ParseUseCase(name)
		if err != nil {
			return Config{}, err
		}
		m := map[Requirement]Weight{}
		for rn, w := range reqs {
			r, err := dataset.ParseMetric(rn)
			if err != nil {
				return Config{}, err
			}
			m[r] = w
		}
		c.RequirementWeights[u] = m
	}
	for name, reqs := range jc.DatasetWeights {
		u, err := ParseUseCase(name)
		if err != nil {
			return Config{}, err
		}
		m := map[Requirement]map[string]Weight{}
		for rn, cell := range reqs {
			r, err := dataset.ParseMetric(rn)
			if err != nil {
				return Config{}, err
			}
			inner := map[string]Weight{}
			for dn, w := range cell {
				inner[dn] = w
			}
			m[r] = inner
		}
		c.DatasetWeights[u] = m
	}
	for name, reqs := range jc.Thresholds {
		u, err := ParseUseCase(name)
		if err != nil {
			return Config{}, err
		}
		m := map[Requirement]Band{}
		for rn, b := range reqs {
			r, err := dataset.ParseMetric(rn)
			if err != nil {
				return Config{}, err
			}
			m[r] = b
		}
		c.Thresholds[u] = m
	}
	for _, jd := range jc.Datasets {
		d := DatasetInfo{Name: jd.Name, Description: jd.Description}
		for _, rn := range jd.Capabilities {
			r, err := dataset.ParseMetric(rn)
			if err != nil {
				return Config{}, err
			}
			d.Capabilities = append(d.Capabilities, r)
		}
		c.Datasets = append(c.Datasets, d)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
