package iqb

import "fmt"

// Grade is a Nutri-Score-inspired letter band over the IQB score, giving
// decision-makers the single-glance summary the paper motivates with the
// credit-score and Nutri-Score analogies.
type Grade string

// Grade bands, best to worst.
const (
	GradeA Grade = "A"
	GradeB Grade = "B"
	GradeC Grade = "C"
	GradeD Grade = "D"
	GradeE Grade = "E"
)

// gradeCut holds the inclusive lower bound of each band.
var gradeCuts = []struct {
	grade Grade
	lo    float64
}{
	{GradeA, 0.90},
	{GradeB, 0.75},
	{GradeC, 0.60},
	{GradeD, 0.40},
	{GradeE, 0},
}

// GradeOf maps a score in [0,1] to its band. Out-of-range scores are
// clamped.
func GradeOf(score float64) Grade {
	if score < 0 {
		score = 0
	}
	if score > 1 {
		score = 1
	}
	for _, c := range gradeCuts {
		if score >= c.lo {
			return c.grade
		}
	}
	return GradeE
}

// Bounds returns the [lo, hi) score interval of the grade; GradeA's upper
// bound is 1 inclusive.
func (g Grade) Bounds() (lo, hi float64, err error) {
	for i, c := range gradeCuts {
		if c.grade == g {
			hi := 1.0
			if i > 0 {
				hi = gradeCuts[i-1].lo
			}
			return c.lo, hi, nil
		}
	}
	return 0, 0, fmt.Errorf("iqb: unknown grade %q", string(g))
}

// Valid reports whether g is one of the five bands.
func (g Grade) Valid() bool {
	_, _, err := g.Bounds()
	return err == nil
}
