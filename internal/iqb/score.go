package iqb

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/stats"
)

// Aggregates holds the percentile-aggregated metric value for each
// (dataset, requirement) pair of one scoring scope (typically a region
// and time window). Cells that a dataset cannot or did not measure are
// simply absent.
type Aggregates struct {
	values  map[string]map[Requirement]float64
	samples map[string]map[Requirement]int
}

// NewAggregates returns an empty aggregate set.
func NewAggregates() *Aggregates {
	return &Aggregates{
		values:  map[string]map[Requirement]float64{},
		samples: map[string]map[Requirement]int{},
	}
}

// Set records the aggregated value for (dataset, requirement) computed
// from n samples.
func (a *Aggregates) Set(ds string, r Requirement, value float64, n int) {
	if a.values[ds] == nil {
		a.values[ds] = map[Requirement]float64{}
		a.samples[ds] = map[Requirement]int{}
	}
	a.values[ds][r] = value
	a.samples[ds][r] = n
}

// Get returns the aggregate for (dataset, requirement), if present.
func (a *Aggregates) Get(ds string, r Requirement) (float64, bool) {
	m, ok := a.values[ds]
	if !ok {
		return 0, false
	}
	v, ok := m[r]
	return v, ok
}

// Samples returns the sample count behind an aggregate cell.
func (a *Aggregates) Samples(ds string, r Requirement) int {
	if m, ok := a.samples[ds]; ok {
		return m[r]
	}
	return 0
}

// DatasetCell is the leaf of a score breakdown: one dataset's verdict on
// one requirement for one use case — the S(u,r,d) of equation 1.
type DatasetCell struct {
	Dataset    string  `json:"dataset"`
	Aggregate  float64 `json:"aggregate"`
	Samples    int     `json:"samples"`
	Threshold  float64 `json:"threshold"`
	Met        bool    `json:"met"`
	Weight     Weight  `json:"weight"`
	NormWeight float64 `json:"norm_weight"`
	// Missing marks cells excluded from scoring (no data or below the
	// minimum sample count); their weight is renormalized away.
	Missing bool `json:"missing"`
}

// RequirementScore is S(u,r) of equation 1: the weighted agreement of the
// datasets on requirement r for use case u.
type RequirementScore struct {
	Requirement Requirement   `json:"-"`
	Name        string        `json:"requirement"`
	Agreement   float64       `json:"agreement"`
	Weight      Weight        `json:"weight"`
	NormWeight  float64       `json:"norm_weight"`
	Datasets    []DatasetCell `json:"datasets"`
	// Missing marks requirements with no usable dataset at all.
	Missing bool `json:"missing"`
}

// UseCaseScore is S(u) of equations 2-3.
type UseCaseScore struct {
	UseCase      UseCase            `json:"-"`
	Name         string             `json:"use_case"`
	Score        float64            `json:"score"`
	Weight       Weight             `json:"weight"`
	NormWeight   float64            `json:"norm_weight"`
	Requirements []RequirementScore `json:"requirements"`
}

// Score is the complete result: S_IQB of equations 4-5 plus the full
// explanation tree.
type Score struct {
	IQB      float64        `json:"iqb"`
	Grade    Grade          `json:"grade"`
	Quality  QualityLevel   `json:"-"`
	UseCases []UseCaseScore `json:"use_cases"`
	// Coverage is the fraction of (u,r,d) cells that had usable data.
	Coverage float64 `json:"coverage"`
}

// ErrNoUsableData is returned when no (use case, requirement, dataset)
// cell has enough data to score.
var ErrNoUsableData = errors.New("iqb: no usable data in any cell")

// ScoreAggregates applies equations 1-5 to pre-computed aggregates.
//
// Cells without data are excluded and their weights renormalized over the
// remaining datasets; requirements with no usable dataset are likewise
// renormalized away within their use case. This is the natural extension
// of the paper's normalization to partial data availability.
func (c Config) ScoreAggregates(agg *Aggregates) (Score, error) {
	if err := c.Validate(); err != nil {
		return Score{}, err
	}
	if agg == nil {
		return Score{}, fmt.Errorf("iqb: nil aggregates")
	}

	usable, total := 0, 0
	var ucScores []UseCaseScore

	useCases := make([]UseCase, 0, len(c.UseCaseWeights))
	for u := range c.UseCaseWeights {
		useCases = append(useCases, u)
	}
	sort.Slice(useCases, func(i, j int) bool { return useCases[i] < useCases[j] })

	for _, u := range useCases {
		uc := UseCaseScore{UseCase: u, Name: u.String(), Weight: c.UseCaseWeights[u]}

		reqWeights := c.RequirementWeights[u]
		reqs := AllRequirements()

		presentReqWeights := map[Requirement]Weight{}
		var reqScores []RequirementScore
		for _, r := range reqs {
			rs := RequirementScore{Requirement: r, Name: r.String(), Weight: reqWeights[r]}
			band := c.Thresholds[u][r]
			threshold := band.At(c.Quality)

			cellWeights := c.DatasetWeights[u][r]
			names := make([]string, 0, len(cellWeights))
			for name := range cellWeights {
				names = append(names, name)
			}
			sort.Strings(names)

			presentCellWeights := map[string]Weight{}
			var cells []DatasetCell
			for _, name := range names {
				total++
				cell := DatasetCell{Dataset: name, Threshold: threshold, Weight: cellWeights[name]}
				v, ok := agg.Get(name, r)
				n := agg.Samples(name, r)
				if !ok || n < c.MinSamples || cellWeights[name] == 0 {
					cell.Missing = true
					cell.Samples = n
					cells = append(cells, cell)
					continue
				}
				usable++
				met, err := c.Thresholds.Meets(u, r, c.Quality, v)
				if err != nil {
					return Score{}, err
				}
				cell.Aggregate = v
				cell.Samples = n
				cell.Met = met
				presentCellWeights[name] = cellWeights[name]
				cells = append(cells, cell)
			}

			if len(presentCellWeights) == 0 {
				rs.Missing = true
				rs.Datasets = cells
				reqScores = append(reqScores, rs)
				continue
			}
			norm, err := NormalizeDatasetWeights(presentCellWeights)
			if err != nil {
				rs.Missing = true
				rs.Datasets = cells
				reqScores = append(reqScores, rs)
				continue
			}
			agreement := 0.0
			for i := range cells {
				if cells[i].Missing {
					continue
				}
				cells[i].NormWeight = norm[cells[i].Dataset]
				if cells[i].Met {
					agreement += cells[i].NormWeight
				}
			}
			rs.Agreement = agreement
			rs.Datasets = cells
			presentReqWeights[r] = reqWeights[r]
			reqScores = append(reqScores, rs)
		}

		if len(presentReqWeights) == 0 {
			// Nothing usable for this use case: contribute nothing and
			// let the use-case tier renormalize.
			uc.Requirements = reqScores
			uc.Score = 0
			ucScores = append(ucScores, uc)
			continue
		}
		normReq, err := NormalizeRequirementWeights(presentReqWeights)
		if err != nil {
			return Score{}, err
		}
		score := 0.0
		for i := range reqScores {
			if reqScores[i].Missing {
				continue
			}
			reqScores[i].NormWeight = normReq[reqScores[i].Requirement]
			score += reqScores[i].NormWeight * reqScores[i].Agreement
		}
		uc.Score = score
		uc.Requirements = reqScores
		ucScores = append(ucScores, uc)
	}

	if usable == 0 {
		return Score{}, ErrNoUsableData
	}

	// Use cases whose every requirement is missing are excluded from the
	// top-level normalization.
	presentUC := map[UseCase]Weight{}
	for _, uc := range ucScores {
		anyPresent := false
		for _, rs := range uc.Requirements {
			if !rs.Missing {
				anyPresent = true
				break
			}
		}
		if anyPresent {
			presentUC[uc.UseCase] = uc.Weight
		}
	}
	normUC, err := NormalizeUseCaseWeights(presentUC)
	if err != nil {
		return Score{}, err
	}
	iqbScore := 0.0
	for i := range ucScores {
		if w, ok := normUC[ucScores[i].UseCase]; ok {
			ucScores[i].NormWeight = w
			iqbScore += w * ucScores[i].Score
		}
	}

	return Score{
		IQB:      iqbScore,
		Grade:    GradeOf(iqbScore),
		Quality:  c.Quality,
		UseCases: ucScores,
		Coverage: float64(usable) / float64(total),
	}, nil
}

// AggregateFiltered computes the Aggregates for every record matching
// the base filter (its Dataset and HasMetric fields are overridden per
// cell), using the configured percentile and convention. This is the
// general scoring scope: region subtrees, single ISPs, time windows, or
// any combination.
//
// Aggregation reads through the store's streaming quantile path:
// region-scoped cells are answered from per-(dataset, region, metric)
// sketch cells without materializing values, while filters the cells
// cannot express (ASN, time windows) fall back to an exact scan inside
// the store.
func (c Config) AggregateFiltered(store *dataset.Store, base dataset.Filter) (*Aggregates, error) {
	if store == nil {
		return nil, fmt.Errorf("iqb: nil store")
	}
	agg := NewAggregates()
	for _, d := range c.Datasets {
		for _, r := range d.Capabilities {
			f := base
			f.Dataset = d.Name
			f.HasMetric = []Requirement{r}
			p, n, err := store.AggregateCount(f, r, c.effectivePercentile(r))
			if errors.Is(err, stats.ErrNoData) {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("iqb: aggregating %s/%v: %w", d.Name, r, err)
			}
			agg.Set(d.Name, r, p, n)
		}
	}
	return agg, nil
}

// AggregateStore computes the Aggregates for one region subtree and time
// window. From and to may be zero for an unbounded window.
func (c Config) AggregateStore(store *dataset.Store, region string, from, to time.Time) (*Aggregates, error) {
	return c.AggregateFiltered(store, dataset.Filter{RegionPrefix: region, From: from, To: to})
}

// ScoreRegion aggregates and scores one region subtree in one call.
func (c Config) ScoreRegion(store *dataset.Store, region string, from, to time.Time) (Score, error) {
	agg, err := c.AggregateStore(store, region, from, to)
	if err != nil {
		return Score{}, err
	}
	return c.ScoreAggregates(agg)
}

// ScoreFiltered aggregates and scores an arbitrary record scope.
func (c Config) ScoreFiltered(store *dataset.Store, base dataset.Filter) (Score, error) {
	agg, err := c.AggregateFiltered(store, base)
	if err != nil {
		return Score{}, err
	}
	return c.ScoreAggregates(agg)
}

// UseCaseByName returns the named use-case component of the score.
func (s Score) UseCaseByName(u UseCase) (UseCaseScore, bool) {
	for _, uc := range s.UseCases {
		if uc.UseCase == u {
			return uc, true
		}
	}
	return UseCaseScore{}, false
}
