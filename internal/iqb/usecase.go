// Package iqb implements the Internet Quality Barometer framework from
// "Poster: The Internet Quality Barometer Framework" (IMC 2025): a
// three-tier model (use cases → network requirements → datasets) that
// aggregates openly available measurement datasets at the 95th percentile,
// checks them against per-use-case quality thresholds, and combines the
// binary outcomes through three levels of normalized weights into the
// composite IQB score (equations 1-5 of the paper).
package iqb

import (
	"fmt"

	"iqb/internal/dataset"
	"iqb/internal/units"
)

// UseCase is one of the paper's six user-centric Internet use cases.
type UseCase int

// The six use cases, following Cranor et al. as adopted by the paper.
const (
	WebBrowsing UseCase = iota
	VideoStreaming
	AudioStreaming
	VideoConferencing
	OnlineBackup
	Gaming
	numUseCases
)

// AllUseCases returns every use case in declaration order.
func AllUseCases() []UseCase {
	out := make([]UseCase, numUseCases)
	for i := range out {
		out[i] = UseCase(i)
	}
	return out
}

// String names the use case.
func (u UseCase) String() string {
	switch u {
	case WebBrowsing:
		return "web-browsing"
	case VideoStreaming:
		return "video-streaming"
	case AudioStreaming:
		return "audio-streaming"
	case VideoConferencing:
		return "video-conferencing"
	case OnlineBackup:
		return "online-backup"
	case Gaming:
		return "gaming"
	default:
		return fmt.Sprintf("UseCase(%d)", int(u))
	}
}

// Title returns the display name used in the paper's tables and figures.
func (u UseCase) Title() string {
	switch u {
	case WebBrowsing:
		return "Web Browsing"
	case VideoStreaming:
		return "Video Streaming"
	case AudioStreaming:
		return "Audio Streaming"
	case VideoConferencing:
		return "Video Conferencing"
	case OnlineBackup:
		return "Online Backup"
	case Gaming:
		return "Gaming"
	default:
		return u.String()
	}
}

// ParseUseCase resolves a use case by its String name.
func ParseUseCase(s string) (UseCase, error) {
	for _, u := range AllUseCases() {
		if u.String() == s {
			return u, nil
		}
	}
	return 0, fmt.Errorf("iqb: unknown use case %q", s)
}

// Requirement is a network requirement — the middle tier of the
// framework. The four requirements coincide with the dataset metrics, so
// the type is shared with the dataset package.
type Requirement = dataset.Metric

// The four network requirements.
const (
	Download = dataset.Download
	Upload   = dataset.Upload
	Latency  = dataset.Latency
	Loss     = dataset.Loss
)

// AllRequirements returns every requirement in declaration order.
func AllRequirements() []Requirement { return dataset.AllMetrics() }

// RequirementDirection reports whether larger values of the requirement
// indicate better quality.
func RequirementDirection(r Requirement) units.Direction {
	switch r {
	case Latency, Loss:
		return units.LowerBetter
	default:
		return units.HigherBetter
	}
}

// RequirementUnit names the unit each requirement is expressed in.
func RequirementUnit(r Requirement) string {
	switch r {
	case Download, Upload:
		return "Mbit/s"
	case Latency:
		return "ms"
	case Loss:
		return "fraction"
	default:
		return ""
	}
}
