package iqb

import (
	"errors"
	"fmt"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/stats"
)

// AggregateSketcher builds the framework aggregates from a streaming
// sketcher instead of raw records, using the configured percentile and
// convention. This is the memory-bounded production path, reading the
// sketcher's per-(dataset, region, metric) DDSketch-backed cells: exact
// below the cell cutover, within the sketch's relative-error bound
// above it — and deterministic either way, since cell state is a pure
// function of the ingested multiset. Thanks to the binary threshold
// comparison, the small quantile error of a promoted cell almost never
// changes a score.
func (c Config) AggregateSketcher(sk *dataset.Sketcher, region string) (*Aggregates, error) {
	if sk == nil {
		return nil, fmt.Errorf("iqb: nil sketcher")
	}
	agg := NewAggregates()
	for _, d := range c.Datasets {
		for _, r := range d.Capabilities {
			q := c.effectivePercentile(r) / 100
			v, n, err := sk.Quantile(d.Name, region, r, q)
			if errors.Is(err, stats.ErrNoData) {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("iqb: sketch aggregate %s/%v: %w", d.Name, r, err)
			}
			agg.Set(d.Name, r, v, n)
		}
	}
	return agg, nil
}

// ScoreSketcher aggregates and scores one region from a sketch.
func (c Config) ScoreSketcher(sk *dataset.Sketcher, region string) (Score, error) {
	agg, err := c.AggregateSketcher(sk, region)
	if err != nil {
		return Score{}, err
	}
	return c.ScoreAggregates(agg)
}

// TimePoint is one window of a score time series.
type TimePoint struct {
	From  time.Time `json:"from"`
	To    time.Time `json:"to"`
	Score Score     `json:"score"`
	// NoData marks windows with no usable measurements.
	NoData bool `json:"no_data,omitempty"`
}

// ScoreWindows scores a region over consecutive windows of the given
// width between start and end, returning one point per window. Windows
// without usable data are marked NoData rather than failing the series.
func (c Config) ScoreWindows(store *dataset.Store, region string, start, end time.Time, window time.Duration) ([]TimePoint, error) {
	if window <= 0 {
		return nil, fmt.Errorf("iqb: window must be positive, got %v", window)
	}
	if !start.Before(end) {
		return nil, fmt.Errorf("iqb: start %v not before end %v", start, end)
	}
	var out []TimePoint
	for from := start; from.Before(end); from = from.Add(window) {
		to := from.Add(window)
		if to.After(end) {
			to = end
		}
		score, err := c.ScoreRegion(store, region, from, to)
		if errors.Is(err, ErrNoUsableData) {
			out = append(out, TimePoint{From: from, To: to, NoData: true})
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("iqb: window %v: %w", from, err)
		}
		out = append(out, TimePoint{From: from, To: to, Score: score})
	}
	return out, nil
}

// HourBucket is one hour-of-day slice of a diurnal score profile.
type HourBucket struct {
	FromHour int   `json:"from_hour"` // inclusive
	ToHour   int   `json:"to_hour"`   // exclusive
	Records  int   `json:"records"`
	Score    Score `json:"score"`
	NoData   bool  `json:"no_data,omitempty"`
}

// ScoreByHourOfDay buckets a region's records into hour-of-day bands of
// the given width (which must divide 24) and scores each band — the
// "does evening congestion move the composite" view.
func (c Config) ScoreByHourOfDay(store *dataset.Store, region string, bandHours int) ([]HourBucket, error) {
	if bandHours <= 0 || 24%bandHours != 0 {
		return nil, fmt.Errorf("iqb: band width %d must divide 24", bandHours)
	}
	records := store.Select(dataset.Filter{RegionPrefix: region})
	buckets := make([]*dataset.Store, 24/bandHours)
	counts := make([]int, len(buckets))
	for i := range buckets {
		buckets[i] = dataset.NewStore()
	}
	for _, r := range records {
		b := r.Time.UTC().Hour() / bandHours
		if err := buckets[b].Add(r); err != nil {
			return nil, fmt.Errorf("iqb: bucketing record %s: %w", r.ID, err)
		}
		counts[b]++
	}
	out := make([]HourBucket, len(buckets))
	for i := range buckets {
		out[i] = HourBucket{FromHour: i * bandHours, ToHour: (i + 1) * bandHours, Records: counts[i]}
		score, err := c.ScoreRegion(buckets[i], region, time.Time{}, time.Time{})
		if errors.Is(err, ErrNoUsableData) {
			out[i].NoData = true
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("iqb: scoring hour band %d: %w", i, err)
		}
		out[i].Score = score
	}
	return out, nil
}
