package iqb

import (
	"fmt"
)

// Weight is an integer importance rating between 0 and 5, as assigned by
// the paper's expert panel.
type Weight int

// Valid reports whether the weight is within the paper's 0..5 scale.
func (w Weight) Valid() bool { return w >= 0 && w <= 5 }

// RequirementWeights holds w(u,r): how much requirement r matters for use
// case u.
type RequirementWeights map[UseCase]map[Requirement]Weight

// Table1Weights returns the paper's Table 1 exactly: the expert-assigned
// importance of each network requirement for each use case.
//
//	Use Case            Download  Upload  Latency  Loss
//	Web Browsing            3       2        4       4
//	Video Streaming         4       2        4       4
//	Audio Streaming         4       1        3       4
//	Video Conferencing      4       4        4       4
//	Online Backup           4       4        2       4
//	Gaming                  4       4        5       4
func Table1Weights() RequirementWeights {
	return RequirementWeights{
		WebBrowsing:       {Download: 3, Upload: 2, Latency: 4, Loss: 4},
		VideoStreaming:    {Download: 4, Upload: 2, Latency: 4, Loss: 4},
		AudioStreaming:    {Download: 4, Upload: 1, Latency: 3, Loss: 4},
		VideoConferencing: {Download: 4, Upload: 4, Latency: 4, Loss: 4},
		OnlineBackup:      {Download: 4, Upload: 4, Latency: 2, Loss: 4},
		Gaming:            {Download: 4, Upload: 4, Latency: 5, Loss: 4},
	}
}

// UseCaseWeights holds w(u): how much each use case contributes to the
// overall IQB score. The poster does not publish values; the neutral
// default weighs every use case equally.
type UseCaseWeights map[UseCase]Weight

// DefaultUseCaseWeights returns equal weights for all six use cases.
func DefaultUseCaseWeights() UseCaseWeights {
	out := make(UseCaseWeights, numUseCases)
	for _, u := range AllUseCases() {
		out[u] = 1
	}
	return out
}

// DatasetWeights holds w(u,r,d): how much dataset d is trusted for
// requirement r under use case u. Keys are dataset names.
type DatasetWeights map[UseCase]map[Requirement]map[string]Weight

// EqualDatasetWeights builds w(u,r,d)=1 for every dataset capable of
// measuring each requirement — the neutral prior the poster implies when
// it motivates cross-dataset corroboration.
func EqualDatasetWeights(datasets []DatasetInfo) DatasetWeights {
	out := make(DatasetWeights, numUseCases)
	for _, u := range AllUseCases() {
		out[u] = make(map[Requirement]map[string]Weight, len(AllRequirements()))
		for _, r := range AllRequirements() {
			m := make(map[string]Weight)
			for _, d := range datasets {
				if d.Measures(r) {
					m[d.Name] = 1
				}
			}
			out[u][r] = m
		}
	}
	return out
}

// Normalize returns the normalized weights w' = w / Σw over the map's
// values, preserving keys. It returns an error if the weights sum to
// zero, which would make the tier undefined.
func normalizeWeights[K comparable](ws map[K]Weight) (map[K]float64, error) {
	total := 0
	for _, w := range ws {
		if !w.Valid() {
			return nil, fmt.Errorf("iqb: weight %d out of [0,5]", w)
		}
		total += int(w)
	}
	if total == 0 {
		return nil, fmt.Errorf("iqb: weights sum to zero")
	}
	out := make(map[K]float64, len(ws))
	for k, w := range ws {
		out[k] = float64(w) / float64(total)
	}
	return out, nil
}

// NormalizeUseCaseWeights returns w'(u) for the configured use cases.
func NormalizeUseCaseWeights(ws UseCaseWeights) (map[UseCase]float64, error) {
	return normalizeWeights(ws)
}

// NormalizeRequirementWeights returns w'(u,r) for one use case.
func NormalizeRequirementWeights(ws map[Requirement]Weight) (map[Requirement]float64, error) {
	return normalizeWeights(ws)
}

// NormalizeDatasetWeights returns w'(u,r,d) for one (use case,
// requirement) pair.
func NormalizeDatasetWeights(ws map[string]Weight) (map[string]float64, error) {
	return normalizeWeights(ws)
}
