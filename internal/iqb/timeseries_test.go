package iqb

import (
	"math"
	"testing"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/rng"
)

// passRecord builds a record that meets every high-quality bar.
func passRecord(id, ds, region string, ts time.Time) dataset.Record {
	r := dataset.NewRecord(id, ds, region, ts)
	r.SetValue(dataset.Download, 500)
	r.SetValue(dataset.Upload, 100)
	r.SetValue(dataset.Latency, 12)
	if ds != DatasetOokla {
		r.SetValue(dataset.Loss, 0.0005)
	}
	return r
}

// failRecord builds a record that misses every bar.
func failRecord(id, ds, region string, ts time.Time) dataset.Record {
	r := dataset.NewRecord(id, ds, region, ts)
	r.SetValue(dataset.Download, 0.2)
	r.SetValue(dataset.Upload, 0.1)
	r.SetValue(dataset.Latency, 900)
	if ds != DatasetOokla {
		r.SetValue(dataset.Loss, 0.3)
	}
	return r
}

func TestScoreSketcherMatchesStore(t *testing.T) {
	cfg := DefaultConfig()
	store := dataset.NewStore()
	sk := dataset.NewSketcher(0)
	src := rng.New(9)
	ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3000; i++ {
		for _, ds := range []string{DatasetNDT, DatasetCloudflare, DatasetOokla} {
			r := dataset.NewRecord(itoa(i), ds, "XA-01-001", ts)
			r.SetValue(dataset.Download, src.LogNormalFromMoments(120, 0.7))
			r.SetValue(dataset.Upload, src.LogNormalFromMoments(15, 0.7))
			r.SetValue(dataset.Latency, src.LogNormalFromMoments(35, 0.5))
			if ds != DatasetOokla {
				r.SetValue(dataset.Loss, src.Float64()*0.01)
			}
			if err := store.Add(r); err != nil {
				t.Fatal(err)
			}
			if err := sk.Ingest(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	exact, err := cfg.ScoreRegion(store, "XA-01-001", time.Time{}, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := cfg.ScoreSketcher(sk, "XA-01-001")
	if err != nil {
		t.Fatal(err)
	}
	// Binary thresholds absorb small quantile error: the scores should
	// agree closely, usually exactly.
	if math.Abs(exact.IQB-approx.IQB) > 0.1 {
		t.Errorf("sketch score %v vs exact %v", approx.IQB, exact.IQB)
	}
}

func TestScoreSketcherErrors(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := cfg.AggregateSketcher(nil, "XA"); err == nil {
		t.Error("nil sketcher should error")
	}
	if _, err := cfg.ScoreSketcher(dataset.NewSketcher(0), "XA"); err == nil {
		t.Error("empty sketcher should yield no usable data")
	}
}

func TestScoreWindows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinSamples = 1
	store := dataset.NewStore()
	start := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	// Day 1: passing records; day 2: nothing; day 3: failing records.
	for i := 0; i < 5; i++ {
		ts1 := start.Add(time.Duration(i) * time.Hour)
		ts3 := start.Add(48*time.Hour + time.Duration(i)*time.Hour)
		for _, ds := range []string{DatasetNDT, DatasetCloudflare} {
			if err := store.Add(passRecord(itoa(i)+"-1", ds, "XA", ts1)); err != nil {
				t.Fatal(err)
			}
			if err := store.Add(failRecord(itoa(i)+"-3", ds, "XA", ts3)); err != nil {
				t.Fatal(err)
			}
		}
	}
	points, err := cfg.ScoreWindows(store, "XA", start, start.Add(72*time.Hour), 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	if points[0].NoData || math.Abs(points[0].Score.IQB-1) > 1e-12 {
		t.Errorf("day 1 = %+v, want score 1", points[0])
	}
	if !points[1].NoData {
		t.Errorf("day 2 should be NoData, got %+v", points[1])
	}
	if points[2].NoData || points[2].Score.IQB != 0 {
		t.Errorf("day 3 = %+v, want score 0", points[2])
	}
}

func TestScoreWindowsErrors(t *testing.T) {
	cfg := DefaultConfig()
	store := dataset.NewStore()
	now := time.Now()
	if _, err := cfg.ScoreWindows(store, "XA", now, now.Add(time.Hour), 0); err == nil {
		t.Error("zero window should error")
	}
	if _, err := cfg.ScoreWindows(store, "XA", now, now, time.Hour); err == nil {
		t.Error("empty range should error")
	}
}

func TestScoreByHourOfDay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinSamples = 1
	store := dataset.NewStore()
	base := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	// Morning (hour 3): good records. Evening (hour 21): bad records.
	for i := 0; i < 5; i++ {
		for _, ds := range []string{DatasetNDT, DatasetCloudflare} {
			if err := store.Add(passRecord(itoa(i)+"-m", ds, "XA", base.Add(3*time.Hour))); err != nil {
				t.Fatal(err)
			}
			if err := store.Add(failRecord(itoa(i)+"-e", ds, "XA", base.Add(21*time.Hour))); err != nil {
				t.Fatal(err)
			}
		}
	}
	buckets, err := cfg.ScoreByHourOfDay(store, "XA", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 4 {
		t.Fatalf("buckets = %d, want 4", len(buckets))
	}
	// Bucket 0 (00-06) has the good records; bucket 3 (18-24) the bad.
	if buckets[0].NoData || math.Abs(buckets[0].Score.IQB-1) > 1e-9 {
		t.Errorf("morning bucket score = %v, want ~1", buckets[0].Score.IQB)
	}
	if buckets[3].NoData || buckets[3].Score.IQB != 0 {
		t.Errorf("evening bucket = %+v", buckets[3])
	}
	if !buckets[1].NoData || !buckets[2].NoData {
		t.Error("empty buckets should be NoData")
	}
	if buckets[0].Records != 10 {
		t.Errorf("morning record count = %d", buckets[0].Records)
	}
	if _, err := cfg.ScoreByHourOfDay(store, "XA", 5); err == nil {
		t.Error("band width not dividing 24 should error")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf []byte
	for i > 0 {
		buf = append([]byte{byte('0' + i%10)}, buf...)
		i /= 10
	}
	return string(buf)
}
