package iqb

import (
	"errors"
	"fmt"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/rng"
	"iqb/internal/stats"
)

// ScoreCI is a composite score with a bootstrap confidence interval —
// the uncertainty a decision-maker should see next to any league table
// built from finite measurement samples.
type ScoreCI struct {
	Score Score   `json:"score"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Level float64 `json:"level"`
	// Resamples records how many bootstrap iterations produced the
	// interval, and Degenerate how many of them had no usable data.
	Resamples  int `json:"resamples"`
	Degenerate int `json:"degenerate,omitempty"`
}

// ScoreRegionCI scores a region and attaches a nonparametric bootstrap
// confidence interval: each resample redraws every (dataset,
// requirement) value vector with replacement, re-aggregates at the
// configured percentile, and rescores. Because the score is a sum of
// binary threshold checks, its sampling distribution is discrete; the
// interval honestly reflects that cells near their thresholds flip
// between resamples.
func (c Config) ScoreRegionCI(store *dataset.Store, region string, from, to time.Time, resamples int, level float64, src *rng.Source) (ScoreCI, error) {
	if resamples < 1 {
		return ScoreCI{}, fmt.Errorf("iqb: need >= 1 resample, got %d", resamples)
	}
	if level <= 0 || level >= 1 {
		return ScoreCI{}, fmt.Errorf("iqb: confidence level %v out of (0,1)", level)
	}
	if src == nil {
		src = rng.New(0)
	}
	point, err := c.ScoreRegion(store, region, from, to)
	if err != nil {
		return ScoreCI{}, err
	}

	// Pull each cell's raw values once.
	type cell struct {
		ds   string
		r    Requirement
		vals []float64
	}
	var cells []cell
	for _, d := range c.Datasets {
		for _, r := range d.Capabilities {
			f := dataset.Filter{
				Dataset:      d.Name,
				RegionPrefix: region,
				From:         from,
				To:           to,
				HasMetric:    []Requirement{r},
			}
			vals := store.Values(f, r)
			if len(vals) == 0 {
				continue
			}
			cells = append(cells, cell{ds: d.Name, r: r, vals: vals})
		}
	}

	estimates := make([]float64, 0, resamples)
	degenerate := 0
	for it := 0; it < resamples; it++ {
		agg := NewAggregates()
		for _, cl := range cells {
			sample := make([]float64, len(cl.vals))
			for i := range sample {
				sample[i] = cl.vals[src.Intn(len(cl.vals))]
			}
			p, err := stats.Percentile(sample, c.effectivePercentile(cl.r))
			if err != nil {
				return ScoreCI{}, fmt.Errorf("iqb: bootstrap percentile: %w", err)
			}
			agg.Set(cl.ds, cl.r, p, len(sample))
		}
		s, err := c.ScoreAggregates(agg)
		if errors.Is(err, ErrNoUsableData) {
			degenerate++
			continue
		}
		if err != nil {
			return ScoreCI{}, err
		}
		estimates = append(estimates, s.IQB)
	}
	if len(estimates) == 0 {
		return ScoreCI{}, ErrNoUsableData
	}
	alpha := (1 - level) / 2
	bounds, err := stats.Percentiles(estimates, alpha*100, (1-alpha)*100)
	if err != nil {
		return ScoreCI{}, err
	}
	return ScoreCI{
		Score:      point,
		Lo:         bounds[0],
		Hi:         bounds[1],
		Level:      level,
		Resamples:  resamples,
		Degenerate: degenerate,
	}, nil
}
