package iqb

import (
	"fmt"

	"iqb/internal/units"
)

// QualityLevel selects which of the paper's two quality bars a score is
// computed against (Fig. 2 defines both).
type QualityLevel int

// The two quality levels of Fig. 2.
const (
	MinimumQuality QualityLevel = iota
	HighQuality
)

// String names the quality level.
func (q QualityLevel) String() string {
	switch q {
	case MinimumQuality:
		return "minimum"
	case HighQuality:
		return "high"
	default:
		return fmt.Sprintf("QualityLevel(%d)", int(q))
	}
}

// Band holds the minimum- and high-quality thresholds for one
// (use case, requirement) cell of Fig. 2. For higher-better requirements
// both are lower bounds with High >= Minimum; for lower-better
// requirements both are upper bounds with High <= Minimum.
type Band struct {
	Minimum float64 `json:"minimum"`
	High    float64 `json:"high"`
}

// At returns the threshold for the chosen quality level.
func (b Band) At(q QualityLevel) float64 {
	if q == MinimumQuality {
		return b.Minimum
	}
	return b.High
}

// Thresholds is the full Fig. 2 table: per use case, per requirement.
type Thresholds map[UseCase]map[Requirement]Band

// DefaultThresholds returns the repository's default threshold table.
//
// The poster presents these values only as a figure; the numbers here
// are the documented substitution from DESIGN.md, drawn from the
// consumer broadband label literature the poster cites (Cranor et al.)
// and FCC/ITU application-requirement guidance. Throughputs are Mbit/s
// lower bounds, latency is a milliseconds upper bound, loss is a
// fraction upper bound.
func DefaultThresholds() Thresholds {
	return Thresholds{
		WebBrowsing: {
			Download: {Minimum: 5, High: 25},
			Upload:   {Minimum: 1, High: 5},
			Latency:  {Minimum: 150, High: 50},
			Loss:     {Minimum: 0.025, High: 0.005},
		},
		VideoStreaming: {
			Download: {Minimum: 10, High: 50},
			Upload:   {Minimum: 1, High: 5},
			Latency:  {Minimum: 200, High: 100},
			Loss:     {Minimum: 0.02, High: 0.005},
		},
		AudioStreaming: {
			Download: {Minimum: 1, High: 5},
			Upload:   {Minimum: 0.5, High: 1},
			Latency:  {Minimum: 200, High: 100},
			Loss:     {Minimum: 0.02, High: 0.005},
		},
		VideoConferencing: {
			Download: {Minimum: 5, High: 25},
			Upload:   {Minimum: 3, High: 12},
			Latency:  {Minimum: 150, High: 50},
			Loss:     {Minimum: 0.01, High: 0.0025},
		},
		OnlineBackup: {
			Download: {Minimum: 10, High: 100},
			Upload:   {Minimum: 5, High: 50},
			Latency:  {Minimum: 300, High: 100},
			Loss:     {Minimum: 0.025, High: 0.01},
		},
		Gaming: {
			Download: {Minimum: 10, High: 50},
			Upload:   {Minimum: 3, High: 10},
			Latency:  {Minimum: 100, High: 30},
			Loss:     {Minimum: 0.01, High: 0.0025},
		},
	}
}

// Validate checks the table covers every (use case, requirement) cell
// with internally consistent bands.
func (t Thresholds) Validate() error {
	for _, u := range AllUseCases() {
		reqs, ok := t[u]
		if !ok {
			return fmt.Errorf("iqb: thresholds missing use case %v", u)
		}
		for _, r := range AllRequirements() {
			b, ok := reqs[r]
			if !ok {
				return fmt.Errorf("iqb: thresholds missing %v/%v", u, r)
			}
			if b.Minimum < 0 || b.High < 0 {
				return fmt.Errorf("iqb: negative threshold for %v/%v", u, r)
			}
			switch RequirementDirection(r) {
			case units.HigherBetter:
				if b.High < b.Minimum {
					return fmt.Errorf("iqb: %v/%v high bar %v below minimum bar %v", u, r, b.High, b.Minimum)
				}
			case units.LowerBetter:
				if b.High > b.Minimum {
					return fmt.Errorf("iqb: %v/%v high bar %v above minimum bar %v", u, r, b.High, b.Minimum)
				}
			}
			if r == Loss && (b.Minimum > 1 || b.High > 1) {
				return fmt.Errorf("iqb: %v loss threshold above 1 (must be a fraction)", u)
			}
		}
	}
	return nil
}

// Meets reports whether an aggregated metric value satisfies the
// threshold for (u, r) at quality level q — this is the binary
// requirement score S(u,r,d) of the paper, for one dataset's aggregate.
func (t Thresholds) Meets(u UseCase, r Requirement, q QualityLevel, value float64) (bool, error) {
	reqs, ok := t[u]
	if !ok {
		return false, fmt.Errorf("iqb: no thresholds for use case %v", u)
	}
	b, ok := reqs[r]
	if !ok {
		return false, fmt.Errorf("iqb: no threshold for %v/%v", u, r)
	}
	return RequirementDirection(r).Meets(value, b.At(q)), nil
}
