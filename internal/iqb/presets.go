package iqb

import "fmt"

// The paper's conclusion positions IQB as "designed to be easily
// adapted (e.g., based on the intended application)". Presets package
// the obvious adaptations as named configurations so downstream tools
// can expose them without hand-editing weight tables.

// PresetName identifies a built-in configuration variant.
type PresetName string

// Built-in presets.
const (
	// PresetPaper is the poster's configuration: Table 1 weights, equal
	// use-case weights, the high-quality bar at the 95th percentile.
	PresetPaper PresetName = "paper"
	// PresetBaseline scores against the minimum-quality bar — the
	// "is the Internet usable at all" view for universal-service policy.
	PresetBaseline PresetName = "baseline"
	// PresetRealtime emphasizes the interactive use cases (video
	// conferencing and gaming) that motivated the framework.
	PresetRealtime PresetName = "realtime"
	// PresetRemoteWork weighs conferencing, browsing, and backup for a
	// work-from-home suitability score.
	PresetRemoteWork PresetName = "remote-work"
)

// AllPresets lists the built-in preset names.
func AllPresets() []PresetName {
	return []PresetName{PresetPaper, PresetBaseline, PresetRealtime, PresetRemoteWork}
}

// Preset returns the named configuration. Every preset validates.
func Preset(name PresetName) (Config, error) {
	cfg := DefaultConfig()
	switch name {
	case PresetPaper:
		// The default is the paper.
	case PresetBaseline:
		cfg.Quality = MinimumQuality
	case PresetRealtime:
		cfg.UseCaseWeights = UseCaseWeights{
			WebBrowsing:       2,
			VideoStreaming:    2,
			AudioStreaming:    1,
			VideoConferencing: 5,
			OnlineBackup:      1,
			Gaming:            5,
		}
	case PresetRemoteWork:
		cfg.UseCaseWeights = UseCaseWeights{
			WebBrowsing:       4,
			VideoStreaming:    1,
			AudioStreaming:    2,
			VideoConferencing: 5,
			OnlineBackup:      4,
			Gaming:            1,
		}
	default:
		return Config{}, fmt.Errorf("iqb: unknown preset %q", name)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("iqb: preset %q invalid: %w", name, err)
	}
	return cfg, nil
}
