package iqb

import "testing"

func TestAllPresetsValid(t *testing.T) {
	for _, name := range AllPresets() {
		cfg, err := Preset(name)
		if err != nil {
			t.Errorf("preset %s: %v", name, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
	if _, err := Preset("vibes"); err == nil {
		t.Error("unknown preset should error")
	}
}

func TestPresetPaperIsDefault(t *testing.T) {
	cfg, err := Preset(PresetPaper)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Quality != HighQuality || cfg.Percentile != 95 {
		t.Errorf("paper preset diverged: %+v", cfg.Quality)
	}
	if cfg.RequirementWeights[Gaming][Latency] != 5 {
		t.Error("paper preset must carry Table 1")
	}
}

func TestPresetBaselineUsesMinimumBar(t *testing.T) {
	cfg, err := Preset(PresetBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Quality != MinimumQuality {
		t.Error("baseline preset should use the minimum bar")
	}
}

// TestPresetsDisagreeOnGamingHeavyConnection: a connection that is great
// for gaming but poor for backup should score higher under the realtime
// preset than under remote-work.
func TestPresetsDisagreeOnGamingHeavyConnection(t *testing.T) {
	agg := NewAggregates()
	for _, d := range DefaultDatasets() {
		for _, r := range d.Capabilities {
			var v float64
			switch r {
			case Download:
				v = 60 // passes gaming (50) and conferencing (25), fails backup (100)
			case Upload:
				v = 15 // passes gaming (10) and conferencing (12), fails backup (50)
			case Latency:
				v = 20 // passes everything
			case Loss:
				v = 0.001
			}
			agg.Set(d.Name, r, v, 50)
		}
	}
	realtime, err := Preset(PresetRealtime)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Preset(PresetRemoteWork)
	if err != nil {
		t.Fatal(err)
	}
	sRealtime, err := realtime.ScoreAggregates(agg)
	if err != nil {
		t.Fatal(err)
	}
	sRemote, err := remote.ScoreAggregates(agg)
	if err != nil {
		t.Fatal(err)
	}
	if sRealtime.IQB <= sRemote.IQB {
		t.Errorf("gaming-friendly connection: realtime %v should beat remote-work %v",
			sRealtime.IQB, sRemote.IQB)
	}
}
