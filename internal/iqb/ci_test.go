package iqb

import (
	"testing"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/rng"
)

// ciStore builds a store whose latency values straddle a threshold so
// bootstrap resamples flip cells.
func ciStore(t *testing.T, latencies []float64) *dataset.Store {
	t.Helper()
	store := dataset.NewStore()
	ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	for i, lat := range latencies {
		for _, ds := range []string{DatasetNDT, DatasetCloudflare} {
			r := dataset.NewRecord(itoa(i), ds, "XA", ts)
			r.SetValue(dataset.Download, 500)
			r.SetValue(dataset.Upload, 100)
			r.SetValue(dataset.Latency, lat)
			r.SetValue(dataset.Loss, 0.0005)
			if err := store.Add(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	return store
}

func TestScoreRegionCIBasics(t *testing.T) {
	cfg := DefaultConfig()
	// Latencies straddle the 30 ms gaming bar at the 95th percentile.
	lats := make([]float64, 40)
	for i := range lats {
		lats[i] = 20 + float64(i%3)*8 // 20, 28, 36
	}
	store := ciStore(t, lats)
	ci, err := cfg.ScoreRegionCI(store, "XA", time.Time{}, time.Time{}, 200, 0.95, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Score.IQB+1e-9 || ci.Hi < ci.Score.IQB-1e-9 {
		t.Errorf("interval [%v, %v] should contain the point %v", ci.Lo, ci.Hi, ci.Score.IQB)
	}
	if ci.Lo < 0 || ci.Hi > 1 {
		t.Errorf("interval [%v, %v] out of [0,1]", ci.Lo, ci.Hi)
	}
	if ci.Resamples != 200 || ci.Level != 0.95 {
		t.Errorf("metadata = %+v", ci)
	}
}

func TestScoreRegionCIDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	store := ciStore(t, []float64{20, 25, 28, 33, 36, 40, 22, 27, 31, 35, 24, 29})
	a, err := cfg.ScoreRegionCI(store, "XA", time.Time{}, time.Time{}, 100, 0.9, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := cfg.ScoreRegionCI(store, "XA", time.Time{}, time.Time{}, 100, 0.9, rng.New(7))
	if a.Lo != b.Lo || a.Hi != b.Hi {
		t.Error("same seed should reproduce the interval")
	}
}

func TestScoreRegionCIWidensNearThreshold(t *testing.T) {
	cfg := DefaultConfig()
	// Far from every bar: interval collapses to a point.
	safe := make([]float64, 30)
	for i := range safe {
		safe[i] = 10
	}
	ciSafe, err := cfg.ScoreRegionCI(ciStore(t, safe), "XA", time.Time{}, time.Time{}, 150, 0.95, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if ciSafe.Hi-ciSafe.Lo > 1e-12 {
		t.Errorf("far-from-threshold interval should be degenerate, got [%v, %v]", ciSafe.Lo, ciSafe.Hi)
	}
	// Straddling the bar: ~5% of samples are slow, so the 95th
	// percentile sits right at the flip point and resamples disagree.
	mixed := make([]float64, 40)
	for i := range mixed {
		mixed[i] = 25
	}
	mixed[0], mixed[1] = 37, 37
	ciMixed, err := cfg.ScoreRegionCI(ciStore(t, mixed), "XA", time.Time{}, time.Time{}, 150, 0.95, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if ciMixed.Hi-ciMixed.Lo <= 0 {
		t.Error("threshold-straddling interval should have positive width")
	}
}

func TestScoreRegionCIErrors(t *testing.T) {
	cfg := DefaultConfig()
	store := ciStore(t, []float64{20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31})
	if _, err := cfg.ScoreRegionCI(store, "XA", time.Time{}, time.Time{}, 0, 0.95, nil); err == nil {
		t.Error("zero resamples should error")
	}
	if _, err := cfg.ScoreRegionCI(store, "XA", time.Time{}, time.Time{}, 10, 1.5, nil); err == nil {
		t.Error("bad level should error")
	}
	if _, err := cfg.ScoreRegionCI(dataset.NewStore(), "XA", time.Time{}, time.Time{}, 10, 0.9, nil); err == nil {
		t.Error("empty store should error")
	}
}
