package iqb

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"iqb/internal/units"
)

func TestUseCaseStrings(t *testing.T) {
	if len(AllUseCases()) != 6 {
		t.Fatalf("paper defines six use cases, got %d", len(AllUseCases()))
	}
	for _, u := range AllUseCases() {
		if u.String() == "" || u.Title() == "" {
			t.Errorf("use case %d has empty name", int(u))
		}
		back, err := ParseUseCase(u.String())
		if err != nil || back != u {
			t.Errorf("round trip %v failed", u)
		}
	}
	if _, err := ParseUseCase("doomscrolling"); err == nil {
		t.Error("unknown use case should error")
	}
	if UseCase(17).String() == "" || UseCase(17).Title() == "" {
		t.Error("unknown use case should still format")
	}
}

func TestRequirementDirections(t *testing.T) {
	if RequirementDirection(Download) != units.HigherBetter ||
		RequirementDirection(Upload) != units.HigherBetter {
		t.Error("throughput must be higher-better")
	}
	if RequirementDirection(Latency) != units.LowerBetter ||
		RequirementDirection(Loss) != units.LowerBetter {
		t.Error("latency and loss must be lower-better")
	}
	for _, r := range AllRequirements() {
		if RequirementUnit(r) == "" {
			t.Errorf("requirement %v has no unit", r)
		}
	}
	if RequirementUnit(Requirement(42)) != "" {
		t.Error("unknown requirement should have empty unit")
	}
}

// TestTable1Exact pins the published Table 1 cell by cell. This is the
// paper's only fully published numeric artifact and must match exactly.
func TestTable1Exact(t *testing.T) {
	want := map[UseCase][4]Weight{
		WebBrowsing:       {3, 2, 4, 4},
		VideoStreaming:    {4, 2, 4, 4},
		AudioStreaming:    {4, 1, 3, 4},
		VideoConferencing: {4, 4, 4, 4},
		OnlineBackup:      {4, 4, 2, 4},
		Gaming:            {4, 4, 5, 4},
	}
	got := Table1Weights()
	order := []Requirement{Download, Upload, Latency, Loss}
	for u, row := range want {
		for i, r := range order {
			if got[u][r] != row[i] {
				t.Errorf("Table 1 %v/%v = %d, want %d", u, r, got[u][r], row[i])
			}
		}
	}
	if len(got) != 6 {
		t.Errorf("Table 1 has %d rows, want 6", len(got))
	}
}

func TestWeightNormalization(t *testing.T) {
	for u, reqs := range Table1Weights() {
		norm, err := NormalizeRequirementWeights(reqs)
		if err != nil {
			t.Fatalf("%v: %v", u, err)
		}
		sum := 0.0
		for _, w := range norm {
			if w < 0 || w > 1 {
				t.Errorf("%v: normalized weight %v out of [0,1]", u, w)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("%v: normalized weights sum to %v", u, sum)
		}
	}
	// Gaming latency (5) must be the single largest normalized weight in
	// its row.
	norm, _ := NormalizeRequirementWeights(Table1Weights()[Gaming])
	for r, w := range norm {
		if r != Latency && w >= norm[Latency] {
			t.Errorf("gaming: %v weight %v >= latency %v", r, w, norm[Latency])
		}
	}
}

// Property: normalization sums to 1 for any valid non-zero weight map.
func TestNormalizationProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		ws := map[Requirement]Weight{
			Download: Weight(a % 6), Upload: Weight(b % 6),
			Latency: Weight(c % 6), Loss: Weight(d % 6),
		}
		total := 0
		for _, w := range ws {
			total += int(w)
		}
		norm, err := NormalizeRequirementWeights(ws)
		if total == 0 {
			return err != nil
		}
		if err != nil {
			return false
		}
		sum := 0.0
		for _, w := range norm {
			sum += w
		}
		return math.Abs(sum-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizationErrors(t *testing.T) {
	if _, err := NormalizeUseCaseWeights(UseCaseWeights{WebBrowsing: 0}); err == nil {
		t.Error("all-zero weights should error")
	}
	if _, err := NormalizeDatasetWeights(map[string]Weight{"x": 9}); err == nil {
		t.Error("weight above 5 should error")
	}
}

func TestDefaultThresholdsValid(t *testing.T) {
	if err := DefaultThresholds().Validate(); err != nil {
		t.Fatal(err)
	}
	// Spot checks against the documented substitution table.
	th := DefaultThresholds()
	if th[Gaming][Latency].High != 30 || th[Gaming][Latency].Minimum != 100 {
		t.Errorf("gaming latency band = %+v", th[Gaming][Latency])
	}
	if th[OnlineBackup][Upload].High != 50 {
		t.Errorf("backup upload high = %v", th[OnlineBackup][Upload].High)
	}
	// Gaming has the strictest high-quality latency bar of all use cases.
	for _, u := range AllUseCases() {
		if u != Gaming && th[u][Latency].High <= th[Gaming][Latency].High {
			t.Errorf("%v latency high %v <= gaming %v", u, th[u][Latency].High, th[Gaming][Latency].High)
		}
	}
}

func TestThresholdsValidateRejects(t *testing.T) {
	missingUC := Thresholds{}
	if err := missingUC.Validate(); err == nil {
		t.Error("empty thresholds should be invalid")
	}
	th := DefaultThresholds()
	delete(th[Gaming], Loss)
	if err := th.Validate(); err == nil {
		t.Error("missing cell should be invalid")
	}
	th = DefaultThresholds()
	th[Gaming][Download] = Band{Minimum: 50, High: 10} // inverted for higher-better
	if err := th.Validate(); err == nil {
		t.Error("inverted throughput band should be invalid")
	}
	th = DefaultThresholds()
	th[Gaming][Latency] = Band{Minimum: 30, High: 100} // inverted for lower-better
	if err := th.Validate(); err == nil {
		t.Error("inverted latency band should be invalid")
	}
	th = DefaultThresholds()
	th[Gaming][Loss] = Band{Minimum: 2.5, High: 0.5} // percent, not fraction
	if err := th.Validate(); err == nil {
		t.Error("loss thresholds above 1 should be invalid")
	}
	th = DefaultThresholds()
	th[Gaming][Download] = Band{Minimum: -1, High: 10}
	if err := th.Validate(); err == nil {
		t.Error("negative threshold should be invalid")
	}
}

func TestThresholdMeets(t *testing.T) {
	th := DefaultThresholds()
	// Gaming latency high bar is 30 ms.
	for _, tc := range []struct {
		value float64
		q     QualityLevel
		want  bool
	}{
		{25, HighQuality, true},
		{30, HighQuality, true},
		{31, HighQuality, false},
		{90, MinimumQuality, true},
		{101, MinimumQuality, false},
	} {
		got, err := th.Meets(Gaming, Latency, tc.q, tc.value)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Meets(gaming, latency, %v, %v) = %v", tc.q, tc.value, got)
		}
	}
	// Download is a lower bound.
	if ok, _ := th.Meets(Gaming, Download, HighQuality, 49); ok {
		t.Error("49 < 50 should fail gaming download high bar")
	}
	if ok, _ := th.Meets(Gaming, Download, HighQuality, 50); !ok {
		t.Error("50 should meet gaming download high bar")
	}
	if _, err := th.Meets(UseCase(9), Download, HighQuality, 1); err == nil {
		t.Error("unknown use case should error")
	}
	delete(th[Gaming], Download)
	if _, err := th.Meets(Gaming, Download, HighQuality, 1); err == nil {
		t.Error("missing cell should error")
	}
}

func TestQualityLevelString(t *testing.T) {
	if MinimumQuality.String() != "minimum" || HighQuality.String() != "high" {
		t.Error("quality level strings")
	}
	if QualityLevel(7).String() == "" {
		t.Error("unknown level should still format")
	}
	b := Band{Minimum: 1, High: 2}
	if b.At(MinimumQuality) != 1 || b.At(HighQuality) != 2 {
		t.Error("Band.At")
	}
}

func TestDefaultDatasets(t *testing.T) {
	ds := DefaultDatasets()
	if len(ds) != 3 {
		t.Fatalf("want 3 datasets, got %d", len(ds))
	}
	byName := map[string]DatasetInfo{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	// NDT and Cloudflare measure everything; Ookla lacks loss.
	for _, name := range []string{DatasetNDT, DatasetCloudflare} {
		for _, r := range AllRequirements() {
			if !byName[name].Measures(r) {
				t.Errorf("%s should measure %v", name, r)
			}
		}
	}
	if byName[DatasetOokla].Measures(Loss) {
		t.Error("ookla must not measure loss")
	}
	if !byName[DatasetOokla].Measures(Download) {
		t.Error("ookla should measure download")
	}
	if err := validateDatasets(ds); err != nil {
		t.Error(err)
	}
	names := datasetNames(ds)
	if len(names) != 3 || names[0] != "cloudflare" {
		t.Errorf("names = %v", names)
	}
}

func TestValidateDatasetsRejects(t *testing.T) {
	if err := validateDatasets(nil); err == nil {
		t.Error("empty registry should error")
	}
	if err := validateDatasets([]DatasetInfo{{Name: ""}}); err == nil {
		t.Error("empty name should error")
	}
	two := []DatasetInfo{
		{Name: "x", Capabilities: []Requirement{Download}},
		{Name: "x", Capabilities: []Requirement{Download}},
	}
	if err := validateDatasets(two); err == nil {
		t.Error("duplicate name should error")
	}
	if err := validateDatasets([]DatasetInfo{{Name: "x"}}); err == nil {
		t.Error("no capabilities should error")
	}
	bad := []DatasetInfo{{Name: "x", Capabilities: []Requirement{Requirement(99)}}}
	if err := validateDatasets(bad); err == nil {
		t.Error("unknown capability should error")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad percentile", func(c *Config) { c.Percentile = 100 }},
		{"zero percentile", func(c *Config) { c.Percentile = 0 }},
		{"bad quality", func(c *Config) { c.Quality = QualityLevel(5) }},
		{"bad convention", func(c *Config) { c.Convention = Convention(5) }},
		{"bad min samples", func(c *Config) { c.MinSamples = 0 }},
		{"no use case weights", func(c *Config) { c.UseCaseWeights = UseCaseWeights{} }},
		{"unknown use case", func(c *Config) { c.UseCaseWeights[UseCase(99)] = 1 }},
		{"missing req weights", func(c *Config) { delete(c.RequirementWeights, Gaming) }},
		{"missing req cell", func(c *Config) { delete(c.RequirementWeights[Gaming], Loss) }},
		{"oversized weight", func(c *Config) { c.RequirementWeights[Gaming][Loss] = 9 }},
		{"missing ds weights", func(c *Config) { delete(c.DatasetWeights, Gaming) }},
		{"missing ds cell", func(c *Config) { delete(c.DatasetWeights[Gaming], Loss) }},
		{"ds weight out of range", func(c *Config) { c.DatasetWeights[Gaming][Loss][DatasetNDT] = 7 }},
		{"unregistered ds", func(c *Config) { c.DatasetWeights[Gaming][Loss]["mystery"] = 1 }},
		{"incapable ds", func(c *Config) { c.DatasetWeights[Gaming][Loss][DatasetOokla] = 1 }},
	}
	for _, m := range mutations {
		c := DefaultConfig()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: config should be invalid", m.name)
		}
	}
}

func TestEffectivePercentile(t *testing.T) {
	c := DefaultConfig()
	// MirrorTail: throughput uses the 5th percentile, latency/loss the 95th.
	if got := c.effectivePercentile(Download); got != 5 {
		t.Errorf("mirror download percentile = %v, want 5", got)
	}
	if got := c.effectivePercentile(Loss); got != 95 {
		t.Errorf("mirror loss percentile = %v, want 95", got)
	}
	c.Convention = SameTail
	if got := c.effectivePercentile(Download); got != 95 {
		t.Errorf("same-tail download percentile = %v, want 95", got)
	}
}

// allPass returns aggregates where every dataset reports values that meet
// every high-quality bar.
func allPass() *Aggregates {
	agg := NewAggregates()
	for _, d := range DefaultDatasets() {
		for _, r := range d.Capabilities {
			var v float64
			switch r {
			case Download:
				v = 500
			case Upload:
				v = 100
			case Latency:
				v = 15
			case Loss:
				v = 0.001
			}
			agg.Set(d.Name, r, v, 100)
		}
	}
	return agg
}

// allFail returns aggregates that miss every bar.
func allFail() *Aggregates {
	agg := NewAggregates()
	for _, d := range DefaultDatasets() {
		for _, r := range d.Capabilities {
			var v float64
			switch r {
			case Download, Upload:
				v = 0.1
			case Latency:
				v = 900
			case Loss:
				v = 0.2
			}
			agg.Set(d.Name, r, v, 100)
		}
	}
	return agg
}

func TestScoreExtremes(t *testing.T) {
	c := DefaultConfig()
	s, err := c.ScoreAggregates(allPass())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.IQB-1) > 1e-12 {
		t.Errorf("all-pass IQB = %v, want 1", s.IQB)
	}
	if s.Grade != GradeA {
		t.Errorf("all-pass grade = %v", s.Grade)
	}
	if s.Coverage != 1 {
		t.Errorf("coverage = %v, want 1", s.Coverage)
	}
	s, err = c.ScoreAggregates(allFail())
	if err != nil {
		t.Fatal(err)
	}
	if s.IQB != 0 {
		t.Errorf("all-fail IQB = %v, want 0", s.IQB)
	}
	if s.Grade != GradeE {
		t.Errorf("all-fail grade = %v", s.Grade)
	}
}

// TestScoreHandComputed verifies equations 1-5 against a worked example:
// every cell passes except Ookla's download, which fails everywhere.
//
// For each use case u: S(u,download) = 2/3 (NDT and Cloudflare pass with
// equal weights; Ookla fails), every other requirement scores 1.
// With Table 1 weights this gives, per use case,
// S(u) = (w_down·2/3 + rest) / Σw, and the IQB score is their equal-
// weight mean = 0.909954 (six-case average; see the derivation in the
// assertions below).
func TestScoreHandComputed(t *testing.T) {
	agg := allPass()
	agg.Set(DatasetOokla, Download, 0.1, 100) // fails every download bar

	c := DefaultConfig()
	s, err := c.ScoreAggregates(agg)
	if err != nil {
		t.Fatal(err)
	}
	wantPerUC := map[UseCase]float64{
		WebBrowsing:       (3.0*2/3 + 10) / 13,
		VideoStreaming:    (4.0*2/3 + 10) / 14,
		AudioStreaming:    (4.0*2/3 + 8) / 12,
		VideoConferencing: (4.0*2/3 + 12) / 16,
		OnlineBackup:      (4.0*2/3 + 10) / 14,
		Gaming:            (4.0*2/3 + 13) / 17,
	}
	sum := 0.0
	for u, want := range wantPerUC {
		uc, ok := s.UseCaseByName(u)
		if !ok {
			t.Fatalf("missing use case %v", u)
		}
		if math.Abs(uc.Score-want) > 1e-12 {
			t.Errorf("S(%v) = %v, want %v", u, uc.Score, want)
		}
		sum += want
	}
	if want := sum / 6; math.Abs(s.IQB-want) > 1e-12 {
		t.Errorf("IQB = %v, want %v", s.IQB, want)
	}
	// And the agreement score itself: equation 1 with equal weights.
	uc, _ := s.UseCaseByName(Gaming)
	for _, rs := range uc.Requirements {
		if rs.Requirement == Download && math.Abs(rs.Agreement-2.0/3) > 1e-12 {
			t.Errorf("S(gaming,download) = %v, want 2/3", rs.Agreement)
		}
		if rs.Requirement == Loss && rs.Agreement != 1 {
			t.Errorf("S(gaming,loss) = %v, want 1 (two capable datasets agree)", rs.Agreement)
		}
	}
}

func TestScoreMissingDataRenormalizes(t *testing.T) {
	// Only NDT has data; everything passes. Weights renormalize to NDT
	// alone so the score is still 1.
	agg := NewAggregates()
	agg.Set(DatasetNDT, Download, 500, 100)
	agg.Set(DatasetNDT, Upload, 100, 100)
	agg.Set(DatasetNDT, Latency, 15, 100)
	agg.Set(DatasetNDT, Loss, 0.001, 100)
	c := DefaultConfig()
	s, err := c.ScoreAggregates(agg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.IQB-1) > 1e-12 {
		t.Errorf("single-dataset all-pass IQB = %v, want 1", s.IQB)
	}
	if s.Coverage >= 1 {
		t.Errorf("coverage should reflect missing cells, got %v", s.Coverage)
	}
}

func TestScoreMinSamples(t *testing.T) {
	agg := allPass()
	// Degrade NDT's loss cell to 3 samples; with MinSamples 10 it must be
	// ignored, leaving Cloudflare alone on loss (which passes anyway).
	agg.Set(DatasetNDT, Loss, 0.001, 3)
	c := DefaultConfig()
	s, err := c.ScoreAggregates(agg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.IQB-1) > 1e-12 {
		t.Errorf("IQB = %v, want 1", s.IQB)
	}
	uc, _ := s.UseCaseByName(Gaming)
	for _, rs := range uc.Requirements {
		if rs.Requirement != Loss {
			continue
		}
		for _, cell := range rs.Datasets {
			if cell.Dataset == DatasetNDT && !cell.Missing {
				t.Error("under-sampled NDT loss cell should be missing")
			}
			if cell.Dataset == DatasetCloudflare && math.Abs(cell.NormWeight-1) > 1e-12 {
				t.Errorf("cloudflare should carry full weight, got %v", cell.NormWeight)
			}
		}
	}
}

func TestScoreNoData(t *testing.T) {
	c := DefaultConfig()
	if _, err := c.ScoreAggregates(NewAggregates()); !errors.Is(err, ErrNoUsableData) {
		t.Errorf("want ErrNoUsableData, got %v", err)
	}
	if _, err := c.ScoreAggregates(nil); err == nil {
		t.Error("nil aggregates should error")
	}
	bad := c
	bad.Percentile = -1
	if _, err := bad.ScoreAggregates(allPass()); err == nil {
		t.Error("invalid config should error")
	}
}

// Property: improving any single aggregate in its better direction never
// lowers the IQB score (monotonicity of the composite).
func TestScoreMonotonicity(t *testing.T) {
	c := DefaultConfig()
	base := allPass()
	// Start from a mid-grade state: ookla fails download, ndt fails
	// latency.
	base.Set(DatasetOokla, Download, 1, 100)
	base.Set(DatasetNDT, Latency, 500, 100)
	s0, err := c.ScoreAggregates(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range DefaultDatasets() {
		for _, r := range d.Capabilities {
			improved := NewAggregates()
			for _, dd := range DefaultDatasets() {
				for _, rr := range dd.Capabilities {
					v, _ := base.Get(dd.Name, rr)
					improved.Set(dd.Name, rr, v, 100)
				}
			}
			v, _ := base.Get(d.Name, r)
			if RequirementDirection(r) == units.HigherBetter {
				improved.Set(d.Name, r, v*100+100, 100)
			} else {
				improved.Set(d.Name, r, v/100, 100)
			}
			s1, err := c.ScoreAggregates(improved)
			if err != nil {
				t.Fatal(err)
			}
			if s1.IQB < s0.IQB-1e-12 {
				t.Errorf("improving %s/%v lowered IQB from %v to %v", d.Name, r, s0.IQB, s1.IQB)
			}
		}
	}
}

func TestScoreQualityLevels(t *testing.T) {
	// Values between the minimum and high bars: passes minimum, fails high.
	agg := NewAggregates()
	for _, d := range DefaultDatasets() {
		for _, r := range d.Capabilities {
			var v float64
			switch r {
			case Download:
				v = 15 // above most minimums, below every high bar
			case Upload:
				v = 2
			case Latency:
				v = 90
			case Loss:
				v = 0.008
			}
			agg.Set(d.Name, r, v, 50)
		}
	}
	hi := DefaultConfig()
	lo := DefaultConfig()
	lo.Quality = MinimumQuality
	sHi, err := hi.ScoreAggregates(agg)
	if err != nil {
		t.Fatal(err)
	}
	sLo, err := lo.ScoreAggregates(agg)
	if err != nil {
		t.Fatal(err)
	}
	if sLo.IQB <= sHi.IQB {
		t.Errorf("minimum-quality score %v should exceed high-quality %v", sLo.IQB, sHi.IQB)
	}
}

func TestGrades(t *testing.T) {
	cases := []struct {
		score float64
		want  Grade
	}{
		{1, GradeA}, {0.95, GradeA}, {0.9, GradeA},
		{0.89, GradeB}, {0.75, GradeB},
		{0.74, GradeC}, {0.6, GradeC},
		{0.59, GradeD}, {0.4, GradeD},
		{0.39, GradeE}, {0, GradeE},
		{-0.5, GradeE}, {1.5, GradeA}, // clamped
	}
	for _, tc := range cases {
		if got := GradeOf(tc.score); got != tc.want {
			t.Errorf("GradeOf(%v) = %v, want %v", tc.score, got, tc.want)
		}
	}
	lo, hi, err := GradeB.Bounds()
	if err != nil || lo != 0.75 || hi != 0.9 {
		t.Errorf("GradeB bounds = %v, %v, %v", lo, hi, err)
	}
	if !GradeA.Valid() || Grade("Z").Valid() {
		t.Error("grade validity")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	c := DefaultConfig()
	c.Quality = MinimumQuality
	c.Convention = SameTail
	c.Percentile = 90
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"gaming\"") {
		t.Error("JSON should use readable keys")
	}
	back, err := ReadConfigJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Percentile != 90 || back.Quality != MinimumQuality || back.Convention != SameTail {
		t.Errorf("scalar fields lost: %+v", back)
	}
	if back.RequirementWeights[Gaming][Latency] != 5 {
		t.Error("Table 1 weight lost in round trip")
	}
	if back.Thresholds[Gaming][Latency].High != 30 {
		t.Error("threshold lost in round trip")
	}
	found := false
	for _, d := range back.Datasets {
		if d.Name == DatasetOokla && !d.Measures(Loss) && d.Measures(Download) {
			found = true
		}
	}
	if !found {
		t.Error("dataset capabilities lost in round trip")
	}
}

func TestReadConfigJSONErrors(t *testing.T) {
	cases := []string{
		"{not json",
		`{"quality":"superb"}`,
		`{"convention":"weird"}`,
		`{"use_case_weights":{"doomscrolling":1}}`,
		`{"requirement_weights":{"gaming":{"vibes":1}}}`,
		`{"thresholds":{"nope":{}}}`,
		`{"datasets":[{"name":"x","capabilities":["vibes"]}]}`,
		`{}`, // valid JSON but fails validation
	}
	for _, in := range cases {
		if _, err := ReadConfigJSON(strings.NewReader(in)); err == nil {
			t.Errorf("config %q should fail", in)
		}
	}
}

func TestLeaveOneOut(t *testing.T) {
	agg := allPass()
	agg.Set(DatasetOokla, Download, 0.1, 100) // the dissenter
	c := DefaultConfig()
	full, outs, err := c.LeaveOneOutAnalysis(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("want 3 leave-one-out rows, got %d", len(outs))
	}
	for _, o := range outs {
		if o.Dataset == DatasetOokla {
			// Removing the dissenter should raise the score to 1.
			if math.Abs(o.Score-1) > 1e-12 || o.Delta <= 0 {
				t.Errorf("without ookla: score %v delta %v", o.Score, o.Delta)
			}
		} else {
			// Removing an agreeing dataset moves the score down or not at
			// all (the dissenter gains relative weight).
			if o.Delta > 1e-12 {
				t.Errorf("without %s: delta %v should be <= 0", o.Dataset, o.Delta)
			}
		}
	}
	if full.IQB >= 1 {
		t.Error("full score should be below 1 with a dissenter")
	}
}

func TestWeightSensitivity(t *testing.T) {
	agg := allPass()
	agg.Set(DatasetOokla, Download, 0.1, 100)
	c := DefaultConfig()
	perts, err := c.WeightSensitivity(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(perts) != 24 { // 6 use cases x 4 requirements
		t.Fatalf("want 24 perturbations, got %d", len(perts))
	}
	// Sorted by range descending.
	for i := 1; i < len(perts); i++ {
		if perts[i].Range > perts[i-1].Range+1e-15 {
			t.Error("perturbations not sorted by range")
		}
	}
	// Download weights are the sensitive ones here (only download has a
	// dissenting dataset); the top perturbation must be a download cell.
	if perts[0].Requirement != Download.String() {
		t.Errorf("most sensitive cell = %s/%s, want a download cell", perts[0].UseCaseName, perts[0].Requirement)
	}
	// On uniform all-pass data the score is 1 regardless of weights.
	flat, err := c.WeightSensitivity(allPass())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range flat {
		if p.Range > 1e-12 { // allow float rounding in the re-normalization
			t.Errorf("all-pass perturbation range = %v, want ~0", p.Range)
		}
	}
}

func TestThresholdSweep(t *testing.T) {
	// NDT latency aggregate at 40 ms: gaming high bar sweeps across it.
	agg := allPass()
	agg.Set(DatasetNDT, Latency, 40, 100)
	agg.Set(DatasetCloudflare, Latency, 40, 100)
	agg.Set(DatasetOokla, Latency, 40, 100)
	c := DefaultConfig()
	points, err := c.ThresholdSweep(agg, Gaming, Latency, []float64{20, 30, 39, 41, 60, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("want 6 points, got %d", len(points))
	}
	// Score is monotone non-decreasing in a lower-better threshold.
	for i := 1; i < len(points); i++ {
		if points[i].Score < points[i-1].Score-1e-12 {
			t.Errorf("sweep not monotone at %v", points[i].Threshold)
		}
	}
	// The crossover happens between 39 and 41.
	if points[2].Score >= points[3].Score {
		t.Error("crossing the aggregate should raise the score")
	}
	if _, err := c.ThresholdSweep(agg, Gaming, Latency, nil); err == nil {
		t.Error("empty sweep should error")
	}
}

func TestThresholdSweepMinimumQuality(t *testing.T) {
	agg := allPass()
	agg.Set(DatasetNDT, Download, 8, 100)
	agg.Set(DatasetCloudflare, Download, 8, 100)
	agg.Set(DatasetOokla, Download, 8, 100)
	c := DefaultConfig()
	c.Quality = MinimumQuality
	points, err := c.ThresholdSweep(agg, VideoStreaming, Download, []float64{5, 7.9, 8.1, 20})
	if err != nil {
		t.Fatal(err)
	}
	// Higher-better threshold: score is monotone non-increasing.
	for i := 1; i < len(points); i++ {
		if points[i].Score > points[i-1].Score+1e-12 {
			t.Errorf("sweep not monotone at %v", points[i].Threshold)
		}
	}
}

func TestAggregatesAccessors(t *testing.T) {
	agg := NewAggregates()
	if _, ok := agg.Get("ndt", Download); ok {
		t.Error("empty aggregates should have nothing")
	}
	if agg.Samples("ndt", Download) != 0 {
		t.Error("empty samples should be 0")
	}
	agg.Set("ndt", Download, 42, 7)
	if v, ok := agg.Get("ndt", Download); !ok || v != 42 {
		t.Errorf("Get = %v, %v", v, ok)
	}
	if agg.Samples("ndt", Download) != 7 {
		t.Error("samples lost")
	}
}
