// Package rng provides a small deterministic random number generator and
// the distribution samplers the synthetic measurement substrate needs.
//
// The simulator must be reproducible across runs and platforms, so the
// package implements its own xoshiro256** generator seeded through
// splitmix64 rather than relying on math/rand's global state. Every
// component of the simulation derives an independent child stream from a
// parent via Fork, which keeps experiments stable when one component adds
// or removes draws.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** pseudo random generator.
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, so that nearby
// integer seeds still produce decorrelated streams.
func New(seed uint64) *Source {
	var s Source
	sm := seed
	for i := range s.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		s.s[i] = z
	}
	// xoshiro must not start in the all-zero state.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

// Fork derives an independent child stream labelled by tag. Two forks of
// the same source with different tags are decorrelated; the parent's own
// stream is unaffected.
func (s *Source) Fork(tag string) *Source {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(tag); i++ {
		h ^= uint64(tag[i])
		h *= 1099511628211
	}
	return New(h ^ s.Uint64())
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Range returns a uniform value in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (s *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// LogNormal returns a log-normally distributed value whose underlying
// normal has parameters mu and sigma.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// LogNormalFromMoments returns a log-normal sample with the given
// arithmetic mean and coefficient of variation (stddev/mean). This is the
// natural parameterization for "typical throughput X with heavy right
// tail" access-network models.
func (s *Source) LogNormalFromMoments(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return s.LogNormal(mu, math.Sqrt(sigma2))
}

// Exponential returns an exponentially distributed value with the given
// mean (i.e. rate 1/mean).
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return -mean * math.Log(1-s.Float64())
}

// Pareto returns a Pareto(xm, alpha) sample: heavy-tailed with minimum xm.
func (s *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		return xm
	}
	return xm / math.Pow(1-s.Float64(), 1/alpha)
}

// Weibull returns a Weibull(scale, shape) sample; shape < 1 gives a heavy
// tail, shape > 1 concentrates around the scale.
func (s *Source) Weibull(scale, shape float64) float64 {
	if scale <= 0 || shape <= 0 {
		return 0
	}
	return scale * math.Pow(-math.Log(1-s.Float64()), 1/shape)
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation above 30.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(s.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			return 0
		}
		return n
	}
	limit := math.Exp(-mean)
	p := 1.0
	n := 0
	for {
		p *= s.Float64()
		if p <= limit {
			return n
		}
		n++
	}
}

// Categorical draws an index from the unnormalized weights. It panics on
// empty weights and treats negative weights as zero. If all weights are
// zero it returns a uniform index.
func (s *Source) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Categorical with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return s.Intn(len(weights))
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the first n elements using the provided swap function,
// with Fisher-Yates.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Jitter returns value scaled by a uniform factor in [1-frac, 1+frac].
// It is a convenience for "roughly x, give or take frac".
func (s *Source) Jitter(value, frac float64) float64 {
	if frac <= 0 {
		return value
	}
	return value * s.Range(1-frac, 1+frac)
}
