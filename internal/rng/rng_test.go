package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDecorrelated(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent seeds produced %d identical draws of 1000", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Errorf("seed 0 produced repeats: %d unique of 100", len(seen))
	}
}

func TestFork(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork("netem")
	c2 := parent.Fork("geo")
	if c1.Uint64() == c2.Uint64() {
		t.Error("differently tagged forks should differ")
	}
	// Forks with the same tag from identically seeded parents agree.
	p1, p2 := New(7), New(7)
	f1, f2 := p1.Fork("x"), p2.Fork("x")
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatal("same-tag forks of same-seed parents diverged")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	s := New(5)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[s.Intn(10)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(10) bucket %d has %d of 10000, want ~1000", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestBool(t *testing.T) {
	s := New(6)
	if s.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) must be true")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", p)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(8)
	const n = 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(sd-3) > 0.05 {
		t.Errorf("normal stddev = %v, want ~3", sd)
	}
}

func TestLogNormalFromMoments(t *testing.T) {
	s := New(9)
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.LogNormalFromMoments(100, 0.5)
		if v <= 0 {
			t.Fatal("log-normal must be positive")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-100) > 2 {
		t.Errorf("log-normal mean = %v, want ~100", mean)
	}
	if v := s.LogNormalFromMoments(0, 0.5); v != 0 {
		t.Errorf("non-positive mean should yield 0, got %v", v)
	}
	if v := s.LogNormalFromMoments(50, 0); v != 50 {
		t.Errorf("zero cv should return the mean, got %v", v)
	}
}

func TestExponential(t *testing.T) {
	s := New(10)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exponential(5)
		if v < 0 {
			t.Fatal("exponential must be non-negative")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-5) > 0.1 {
		t.Errorf("exponential mean = %v, want ~5", mean)
	}
	if s.Exponential(0) != 0 {
		t.Error("zero mean should yield 0")
	}
}

func TestPareto(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
	if v := s.Pareto(0, 1); v != 0 {
		t.Errorf("degenerate Pareto should return xm, got %v", v)
	}
}

func TestWeibull(t *testing.T) {
	s := New(12)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Weibull(10, 2)
		if v < 0 {
			t.Fatal("Weibull must be non-negative")
		}
		sum += v
	}
	// Mean of Weibull(scale=10, shape=2) is 10*Gamma(1.5) ~ 8.862.
	if mean := sum / n; math.Abs(mean-8.862) > 0.15 {
		t.Errorf("Weibull mean = %v, want ~8.862", mean)
	}
}

func TestPoisson(t *testing.T) {
	s := New(13)
	for _, mean := range []float64{0.5, 4, 50} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			v := s.Poisson(mean)
			if v < 0 {
				t.Fatal("Poisson must be non-negative")
			}
			sum += v
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if s.Poisson(0) != 0 {
		t.Error("Poisson(0) must be 0")
	}
}

func TestCategorical(t *testing.T) {
	s := New(14)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[s.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket drawn %d times", counts[1])
	}
	if p := float64(counts[2]) / n; math.Abs(p-0.75) > 0.02 {
		t.Errorf("bucket 2 rate = %v, want ~0.75", p)
	}
	// All-zero weights fall back to uniform.
	z := s.Categorical([]float64{0, 0})
	if z != 0 && z != 1 {
		t.Errorf("uniform fallback out of range: %d", z)
	}
}

func TestCategoricalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Categorical(nil) should panic")
		}
	}()
	New(1).Categorical(nil)
}

func TestShuffle(t *testing.T) {
	s := New(15)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 8 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestJitter(t *testing.T) {
	s := New(16)
	for i := 0; i < 1000; i++ {
		v := s.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter out of band: %v", v)
		}
	}
	if v := s.Jitter(100, 0); v != 100 {
		t.Errorf("zero jitter should be identity, got %v", v)
	}
}

func TestRange(t *testing.T) {
	s := New(17)
	for i := 0; i < 1000; i++ {
		v := s.Range(5, 7)
		if v < 5 || v >= 7 {
			t.Fatalf("Range out of [5,7): %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Normal(0, 1)
	}
}
