package ookla

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"iqb/internal/netem"
	"iqb/internal/units"
)

// Client runs a multi-connection test against a Server.
type Client struct {
	Addr string
	// Bytes is the per-flow transfer size. Zero defaults to 4 MB.
	Bytes int64
	// Pings is the latency sample count. Zero defaults to 10.
	Pings int
	// UploadRate paces the aggregate upload across flows.
	UploadRate units.Throughput
}

// Run executes pings, a parallel download, and a parallel upload.
func (c *Client) Run(ctx context.Context) (TestResult, error) {
	bytes := c.Bytes
	if bytes <= 0 {
		bytes = 4 << 20
	}
	pings := c.Pings
	if pings <= 0 {
		pings = 10
	}

	var res TestResult
	// First-sample init, not a zero sentinel: a 0 ms ping is a valid min.
	minRTT := 0.0
	for i := 0; i < pings; i++ {
		rtt, err := c.ping(ctx)
		if err != nil {
			return TestResult{}, fmt.Errorf("ookla: ping %d: %w", i, err)
		}
		if i == 0 || rtt < minRTT {
			minRTT = rtt
		}
	}
	res.LatencyMS = minRTT

	down, err := c.parallel(ctx, bytes, c.downloadOne)
	if err != nil {
		return TestResult{}, fmt.Errorf("ookla: download: %w", err)
	}
	res.DownloadMbps = down

	up, err := c.parallel(ctx, bytes, c.uploadOne)
	if err != nil {
		return TestResult{}, fmt.Errorf("ookla: upload: %w", err)
	}
	res.UploadMbps = up
	return res, nil
}

func (c *Client) dial(ctx context.Context) (net.Conn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.Addr)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(2 * TestDuration)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

func (c *Client) ping(ctx context.Context) (float64, error) {
	conn, err := c.dial(ctx)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	start := time.Now()
	if _, err := io.WriteString(conn, "PING\n"); err != nil {
		return 0, err
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return 0, err
	}
	return float64(time.Since(start)) / float64(time.Millisecond), nil
}

// parallel runs one transfer per flow concurrently and returns the
// aggregate throughput.
func (c *Client) parallel(ctx context.Context, bytes int64, one func(context.Context, int64) (int64, error)) (float64, error) {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int64
		first error
	)
	start := time.Now()
	for i := 0; i < Flows; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, err := one(ctx, bytes)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && first == nil {
				first = err
			}
			total += n
		}()
	}
	wg.Wait()
	if first != nil {
		return 0, first
	}
	return units.ThroughputFromTransfer(total, time.Since(start)).Mbps(), nil
}

func (c *Client) downloadOne(ctx context.Context, bytes int64) (int64, error) {
	conn, err := c.dial(ctx)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "DOWNLOAD %d\n", bytes); err != nil {
		return 0, err
	}
	n, err := io.Copy(io.Discard, conn)
	if err != nil {
		return n, err
	}
	if n != bytes {
		return n, fmt.Errorf("got %d of %d bytes", n, bytes)
	}
	return n, nil
}

func (c *Client) uploadOne(ctx context.Context, bytes int64) (int64, error) {
	conn, err := c.dial(ctx)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "UPLOAD\n"); err != nil {
		return 0, err
	}
	var shaper *netem.Shaper
	if c.UploadRate > 0 {
		perFlow := units.Throughput(c.UploadRate.Mbps() / Flows)
		shaper, err = netem.NewShaper(perFlow)
		if err != nil {
			return 0, err
		}
	}
	chunk := make([]byte, 32<<10)
	var sent int64
	for sent < bytes {
		n := int64(len(chunk))
		if n > bytes-sent {
			n = bytes - sent
		}
		if shaper != nil {
			shaper.Pace(int(n))
		}
		if _, err := conn.Write(chunk[:n]); err != nil {
			return sent, err
		}
		sent += n
	}
	// Half-close to signal EOF, then read the server's acknowledgement.
	if tc, ok := conn.(*net.TCPConn); ok {
		if err := tc.CloseWrite(); err != nil {
			return sent, err
		}
	}
	ack := make([]byte, 64)
	if _, err := conn.Read(ack); err != nil && err != io.EOF {
		return sent, fmt.Errorf("reading ack: %w", err)
	}
	return sent, nil
}
