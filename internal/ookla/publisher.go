package ookla

import (
	"fmt"
	"sort"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/netem"
	"iqb/internal/rng"
	"iqb/internal/stats"
	"iqb/internal/tcpmodel"
	"iqb/internal/units"
)

// Simulate produces a raw multi-connection result for one subscriber
// without sockets: Flows parallel streams for the standard duration, and
// min-of-pings latency.
func Simulate(path netem.Path, rho float64, src *rng.Source) (TestResult, error) {
	down, err := tcpmodel.Run(path, tcpmodel.Config{
		Direction: tcpmodel.Download,
		Duration:  TestDuration,
		Flows:     Flows,
		Rho:       rho,
	}, src)
	if err != nil {
		return TestResult{}, fmt.Errorf("ookla: simulating download: %w", err)
	}
	up, err := tcpmodel.Run(path, tcpmodel.Config{
		Direction: tcpmodel.Upload,
		Duration:  TestDuration,
		Flows:     Flows,
		Rho:       rho,
	}, src)
	if err != nil {
		return TestResult{}, fmt.Errorf("ookla: simulating upload: %w", err)
	}
	return TestResult{
		DownloadMbps: down.Goodput.Mbps(),
		UploadMbps:   up.Goodput.Mbps(),
		LatencyMS:    minMilliseconds(tcpmodel.Ping(path, 10, rho, src)),
	}, nil
}

// minMilliseconds returns the smallest latency sample in milliseconds,
// initialized from the first sample rather than a zero sentinel — a
// legitimate 0 ms ping must win the min, not read as "unset". Returns 0
// for an empty slice.
func minMilliseconds(ls []units.Latency) float64 {
	minRTT := 0.0
	for i, l := range ls {
		ms := l.Milliseconds()
		if i == 0 || ms < minRTT {
			minRTT = ms
		}
	}
	return minRTT
}

// RawSample is one subscriber test tagged with its origin, queued for
// aggregation.
type RawSample struct {
	Region string
	ASN    uint32
	Time   time.Time
	Result TestResult
	// Seq optionally orders samples within an aggregation group. Publish
	// sums group statistics in ascending Seq order, so producers that tag
	// samples with a deterministic sequence (the pipeline uses its job
	// IDs) get bit-identical aggregates no matter how samples were
	// interleaved across collectors. Untagged samples (Seq zero) keep
	// their arrival order.
	Seq int
}

// Publisher accumulates raw samples and emits quarterly aggregate
// records — the only form in which "Ookla" data enters the IQB pipeline,
// mirroring the real open-data release (means per region, no loss).
type Publisher struct {
	samples []RawSample
}

// NewPublisher returns an empty publisher.
func NewPublisher() *Publisher { return &Publisher{} }

// Add queues a raw sample.
func (p *Publisher) Add(s RawSample) error {
	if s.Region == "" {
		return fmt.Errorf("ookla: sample missing region")
	}
	if s.Time.IsZero() {
		return fmt.Errorf("ookla: sample missing time")
	}
	p.samples = append(p.samples, s)
	return nil
}

// Len reports queued samples.
func (p *Publisher) Len() int { return len(p.samples) }

// Merge appends every sample queued in other. Pipelines run one
// publisher per worker, lock-free, and merge after the workers join;
// the Seq ordering inside Publish makes the merge order irrelevant to
// the published aggregates.
func (p *Publisher) Merge(other *Publisher) {
	if other == nil {
		return
	}
	p.samples = append(p.samples, other.samples...)
}

// quarterOf formats a time as "2025Q2".
func quarterOf(t time.Time) string {
	return fmt.Sprintf("%dQ%d", t.Year(), (int(t.Month())-1)/3+1)
}

// quarterStart returns the first instant of the sample's quarter, the
// timestamp aggregates are published under.
func quarterStart(t time.Time) time.Time {
	q := (int(t.Month()) - 1) / 3
	return time.Date(t.Year(), time.Month(q*3+1), 1, 0, 0, 0, 0, time.UTC)
}

// Publish groups the queued samples by (region, ASN, quarter) and emits
// one aggregate record per group: mean download, mean upload, median
// latency — and no loss column. Groups smaller than minSamples are
// suppressed, mirroring the k-anonymity suppression of public releases.
func (p *Publisher) Publish(minSamples int) ([]dataset.Record, error) {
	if minSamples < 1 {
		minSamples = 1
	}
	type key struct {
		region  string
		asn     uint32
		quarter string
	}
	groups := map[key][]RawSample{}
	for _, s := range p.samples {
		k := key{s.Region, s.ASN, quarterOf(s.Time)}
		groups[k] = append(groups[k], s)
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].region != keys[j].region {
			return keys[i].region < keys[j].region
		}
		if keys[i].asn != keys[j].asn {
			return keys[i].asn < keys[j].asn
		}
		return keys[i].quarter < keys[j].quarter
	})

	var out []dataset.Record
	for _, k := range keys {
		g := groups[k]
		if len(g) < minSamples {
			continue
		}
		// Deterministic aggregation order regardless of collector
		// interleaving; stable so untagged samples keep arrival order.
		sort.SliceStable(g, func(i, j int) bool { return g[i].Seq < g[j].Seq })
		downs := make([]float64, len(g))
		ups := make([]float64, len(g))
		lats := make([]float64, len(g))
		for i, s := range g {
			downs[i] = s.Result.DownloadMbps
			ups[i] = s.Result.UploadMbps
			lats[i] = s.Result.LatencyMS
		}
		meanDown, err := stats.Mean(downs)
		if err != nil {
			return nil, err
		}
		meanUp, _ := stats.Mean(ups)
		medLat, _ := stats.Median(lats)

		rec := dataset.NewRecord(
			fmt.Sprintf("%s/AS%d/%s", k.region, k.asn, k.quarter),
			"ookla", k.region, quarterStart(g[0].Time),
		)
		rec.ASN = k.asn
		rec.SetValue(dataset.Download, meanDown)
		rec.SetValue(dataset.Upload, meanUp)
		rec.SetValue(dataset.Latency, medLat)
		// Deliberately no loss: the public aggregate has no such column.
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("ookla: aggregate for %v: %w", k, err)
		}
		out = append(out, rec)
	}
	return out, nil
}
