package ookla

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/netem"
	"iqb/internal/rng"
	"iqb/internal/units"
)

// TestMinMillisecondsZeroSample pins the min-RTT fix: a legitimate 0 ms
// ping must win the min instead of being treated as "unset".
func TestMinMillisecondsZeroSample(t *testing.T) {
	samples := []units.Latency{
		units.Latency(5 * time.Millisecond),
		0,
		units.Latency(12 * time.Millisecond),
	}
	if got := minMilliseconds(samples); got != 0 {
		t.Errorf("min with a 0 ms sample = %v, want 0", got)
	}
	if got := minMilliseconds(samples[:1]); got != 5 {
		t.Errorf("single-sample min = %v, want 5", got)
	}
	if got := minMilliseconds(nil); got != 0 {
		t.Errorf("empty min = %v, want 0", got)
	}
}

func testPath() netem.Path {
	return netem.Path{
		Tech:     netem.Cable,
		DownMbps: 60,
		UpMbps:   15,
		BaseRTT:  units.LatencyFromMillis(15),
		JitterMS: 3,
		Loss:     0.0005,
		BloatMS:  60,
		Shared:   0.5,
	}
}

func TestNewServerValidates(t *testing.T) {
	if _, err := NewServer(netem.Path{}, 0.2, 1, nil); err == nil {
		t.Error("invalid path should error")
	}
}

func startServer(t *testing.T, path netem.Path) string {
	t.Helper()
	srv, err := NewServer(path, 0.2, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String()
}

func TestLiveMultiConnection(t *testing.T) {
	addr := startServer(t, testPath())
	client := &Client{
		Addr:       addr,
		Bytes:      512 << 10, // keep the live test quick
		Pings:      3,
		UploadRate: 15 * units.Mbps,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := client.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadMbps <= 0 || res.DownloadMbps > 65 {
		t.Errorf("download = %v Mbps for a 60 Mbps path", res.DownloadMbps)
	}
	if res.UploadMbps <= 0 || res.UploadMbps > 25 {
		t.Errorf("upload = %v Mbps", res.UploadMbps)
	}
	if res.LatencyMS < 10 {
		t.Errorf("latency = %v ms below emulated floor", res.LatencyMS)
	}
}

func TestServerCommandErrors(t *testing.T) {
	addr := startServer(t, testPath())
	for _, cmd := range []string{"FLY\n", "DOWNLOAD\n", "DOWNLOAD abc\n", "DOWNLOAD -5\n", "\n"} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte(cmd)); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 16)
		if n, _ := conn.Read(buf); n > 0 {
			t.Errorf("command %q should not produce output, got %q", strings.TrimSpace(cmd), buf[:n])
		}
		conn.Close()
	}
}

func TestServerPing(t *testing.T) {
	addr := startServer(t, testPath())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := conn.Write([]byte("PING\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "PONG\n" {
		t.Errorf("reply = %q", buf)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("PING should be delayed by the emulated RTT")
	}
}

func TestClientDeadServer(t *testing.T) {
	client := &Client{Addr: "127.0.0.1:1", Bytes: 1024, Pings: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := client.Run(ctx); err == nil {
		t.Error("dead server should error")
	}
}

func TestSimulate(t *testing.T) {
	res, err := Simulate(testPath(), 0.3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadMbps <= 0 || res.DownloadMbps > 60 {
		t.Errorf("download = %v", res.DownloadMbps)
	}
	if res.UploadMbps <= 0 || res.UploadMbps > 15 {
		t.Errorf("upload = %v", res.UploadMbps)
	}
	if res.LatencyMS < 10 {
		t.Errorf("latency = %v", res.LatencyMS)
	}
}

func TestSimulateMultiFlowBeatsSingleOnLossyPath(t *testing.T) {
	// The multi-connection methodology should be at least as good as a
	// single stream on the same lossy path (it recovers independently).
	lossy := testPath()
	lossy.Loss = 0.01
	multi, err := Simulate(lossy, 0.4, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if multi.DownloadMbps <= 0 {
		t.Error("multi-flow download should be positive")
	}
}

func TestQuarterOf(t *testing.T) {
	cases := []struct {
		m    time.Month
		want string
	}{
		{time.January, "2025Q1"}, {time.March, "2025Q1"},
		{time.April, "2025Q2"}, {time.June, "2025Q2"},
		{time.July, "2025Q3"}, {time.December, "2025Q4"},
	}
	for _, tc := range cases {
		ts := time.Date(2025, tc.m, 15, 0, 0, 0, 0, time.UTC)
		if got := quarterOf(ts); got != tc.want {
			t.Errorf("quarterOf(%v) = %q, want %q", tc.m, got, tc.want)
		}
	}
	qs := quarterStart(time.Date(2025, time.May, 20, 13, 0, 0, 0, time.UTC))
	if qs != time.Date(2025, time.April, 1, 0, 0, 0, 0, time.UTC) {
		t.Errorf("quarterStart = %v", qs)
	}
}

func TestPublisher(t *testing.T) {
	p := NewPublisher()
	base := time.Date(2025, 5, 1, 0, 0, 0, 0, time.UTC)
	// Two regions; region A has 3 samples, region B only 1.
	for i, down := range []float64{100, 110, 120} {
		err := p.Add(RawSample{
			Region: "XA-01-001", ASN: 64500,
			Time:   base.Add(time.Duration(i) * time.Hour),
			Result: TestResult{DownloadMbps: down, UploadMbps: down / 10, LatencyMS: 20 + float64(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Add(RawSample{
		Region: "XA-01-002", ASN: 64500, Time: base,
		Result: TestResult{DownloadMbps: 5, UploadMbps: 1, LatencyMS: 80},
	}); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Errorf("Len = %d", p.Len())
	}

	recs, err := p.Publish(2) // suppress groups under 2 samples
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 aggregate (small group suppressed), got %d", len(recs))
	}
	r := recs[0]
	if r.Dataset != "ookla" || r.Region != "XA-01-001" || r.ASN != 64500 {
		t.Errorf("aggregate = %+v", r)
	}
	if r.DownloadMbps != 110 { // mean of 100,110,120
		t.Errorf("mean download = %v, want 110", r.DownloadMbps)
	}
	if r.LatencyMS != 21 { // median of 20,21,22
		t.Errorf("median latency = %v, want 21", r.LatencyMS)
	}
	if r.Has(dataset.Loss) {
		t.Error("ookla aggregates must not carry loss")
	}
	if !strings.Contains(r.ID, "2025Q2") {
		t.Errorf("aggregate ID = %q should carry the quarter", r.ID)
	}
	if !r.Time.Equal(time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("aggregate time = %v, want quarter start", r.Time)
	}

	// minSamples 1 publishes both groups.
	recs, err = p.Publish(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("want 2 aggregates, got %d", len(recs))
	}
}

func TestPublisherAddErrors(t *testing.T) {
	p := NewPublisher()
	if err := p.Add(RawSample{ASN: 1, Time: time.Now()}); err == nil {
		t.Error("missing region should error")
	}
	if err := p.Add(RawSample{Region: "XA"}); err == nil {
		t.Error("missing time should error")
	}
}

func TestPublisherDeterministicOrder(t *testing.T) {
	mk := func() *Publisher {
		p := NewPublisher()
		ts := time.Date(2025, 2, 1, 0, 0, 0, 0, time.UTC)
		for _, region := range []string{"XA-02-001", "XA-01-001", "XA-01-002"} {
			p.Add(RawSample{Region: region, ASN: 64500, Time: ts, Result: TestResult{DownloadMbps: 10, UploadMbps: 1, LatencyMS: 20}})
		}
		return p
	}
	a, err := mk().Publish(1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := mk().Publish(1)
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("publish order not deterministic")
		}
	}
	if a[0].Region != "XA-01-001" {
		t.Errorf("first aggregate = %s, want sorted order", a[0].Region)
	}
}
