// Package ookla implements an Ookla-style measurement system: a
// multi-connection transfer test (several parallel TCP flows, unlike
// NDT's single stream) whose results are not published raw but as
// region-level aggregates — and, matching Ookla's public open data, the
// aggregates carry no packet-loss column. The IQB dataset weights have to
// cope with that gap, which is exactly the behaviour this substrate
// preserves.
package ookla

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"iqb/internal/netem"
	"iqb/internal/rng"
	"iqb/internal/units"
)

// Flows is the number of parallel connections the test opens.
const Flows = 4

// TestDuration is the standard transfer duration per direction.
const TestDuration = 15 * time.Second

// TestResult is one subscriber's raw multi-connection test outcome.
// It is an input to the Publisher, never a dataset record by itself.
type TestResult struct {
	DownloadMbps float64
	UploadMbps   float64
	LatencyMS    float64 // min of latency samples, Ookla-style
}

// Server is a minimal line-command transfer server. Each connection
// accepts one command:
//
//	DOWNLOAD <bytes>\n — server streams that many shaped bytes
//	UPLOAD\n           — server discards until EOF, replies with count
//	PING\n             — server replies PONG after one emulated RTT
//
// The per-connection share of the path is capacity/Flows, emulating the
// parallel flows splitting the same bottleneck.
type Server struct {
	path netem.Path
	rho  float64
	seed uint64
	log  *slog.Logger

	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup
}

// NewServer builds a server emulating path at utilization rho.
func NewServer(path netem.Path, rho float64, seed uint64, logger *slog.Logger) (*Server, error) {
	if err := path.Validate(); err != nil {
		return nil, err
	}
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Server{path: path, rho: rho, seed: seed, log: logger}, nil
}

// Listen binds addr and serves until Close.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ookla: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for id := uint64(0); ; id++ {
			conn, err := ln.Accept()
			if err != nil {
				if !errors.Is(err, net.ErrClosed) {
					s.log.Error("ookla accept", "err", err)
				}
				return
			}
			s.wg.Add(1)
			go func(c net.Conn, id uint64) {
				defer s.wg.Done()
				defer c.Close()
				if err := s.handle(c, id); err != nil && !errors.Is(err, io.EOF) {
					s.log.Error("ookla session", "err", err)
				}
			}(conn, id)
		}
	}()
	return ln.Addr(), nil
}

// Close stops the listener and waits for sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn, id uint64) error {
	if err := conn.SetDeadline(time.Now().Add(2 * TestDuration)); err != nil {
		return err
	}
	src := rng.New(s.seed).Fork(fmt.Sprintf("conn-%d", id))
	r := bufio.NewReader(io.LimitReader(conn, 1<<30))
	line, err := r.ReadString('\n')
	if err != nil {
		return err
	}
	st := s.path.Observe(s.rho, src)
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return fmt.Errorf("ookla: empty command")
	}
	switch fields[0] {
	case "PING":
		time.Sleep(st.RTT.Duration())
		_, err := io.WriteString(conn, "PONG\n")
		return err
	case "DOWNLOAD":
		if len(fields) != 2 {
			return fmt.Errorf("ookla: DOWNLOAD needs a byte count")
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || n <= 0 || n > 1<<32 {
			return fmt.Errorf("ookla: bad byte count %q", fields[1])
		}
		// Each of the client's parallel flows gets a fair share.
		share := units.Throughput(st.AvailDown.Mbps() / Flows)
		shaper, err := netem.NewShaper(share)
		if err != nil {
			return err
		}
		chunk := make([]byte, 64<<10)
		for n > 0 {
			c := int64(len(chunk))
			if c > n {
				c = n
			}
			shaper.Pace(int(c))
			if _, err := conn.Write(chunk[:c]); err != nil {
				return err
			}
			n -= c
		}
		return nil
	case "UPLOAD":
		count, err := io.Copy(io.Discard, r)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(conn, "OK %d\n", count)
		return err
	default:
		return fmt.Errorf("ookla: unknown command %q", fields[0])
	}
}
