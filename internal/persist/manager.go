package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/telemetry"
)

const (
	walSubdir = "wal"
	metaName  = "META.json"
)

// Recovery summarizes what Open reconstructed from disk.
type Recovery struct {
	// FromSnapshot is true when a manifest + snapshot were loaded.
	FromSnapshot bool `json:"from_snapshot"`
	// SnapshotRecords is how many records the snapshot contributed.
	SnapshotRecords int `json:"snapshot_records"`
	// WALBatches and WALRecords count what replay contributed on top.
	WALBatches int `json:"wal_batches"`
	WALRecords int `json:"wal_records"`
	// WALDuplicateBatches counts replayed batches skipped because the
	// store already held them — the footprint of a writer retrying a
	// batch whose append was durable but reported an error (rotation
	// or fsync failure after the frame hit disk).
	WALDuplicateBatches int `json:"wal_duplicate_batches,omitempty"`
	// TornTail is true when the WAL ended in a truncated or
	// checksum-broken frame that was cut away — a crash mid-append.
	TornTail bool `json:"torn_tail"`
	// ScavengedSegments names leftover WAL segment files (abandoned by
	// a rotation whose unlink failed) that open removed.
	ScavengedSegments []string `json:"scavenged_segments,omitempty"`
	// Elapsed is how long recovery took.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// HasData reports whether the directory held any durable state.
func (r Recovery) HasData() bool {
	return r.FromSnapshot || r.WALRecords > 0
}

// Status is a point-in-time view of the durable store, shaped for the
// /v1/health endpoint.
type Status struct {
	Dir         string `json:"dir"`
	WALRecords  uint64 `json:"wal_records"`
	WALSegments int    `json:"wal_segments"`
	WALBytes    int64  `json:"wal_bytes"`
	// WALSinceSnapshotRecords and WALSinceSnapshotBytes measure WAL
	// growth past the latest snapshot — the records a recovery would
	// replay and the on-disk bytes it would read to do so (segment
	// granularity). The WAL-growth snapshot trigger fires on the byte
	// figure.
	WALSinceSnapshotRecords uint64    `json:"wal_since_snapshot_records"`
	WALSinceSnapshotBytes   int64     `json:"wal_since_snapshot_bytes"`
	WALWrite                WALStats  `json:"wal_write"`
	SnapshotOffset          uint64    `json:"snapshot_offset"`
	SnapshotRecords         int       `json:"snapshot_records"`
	SnapshotAt              time.Time `json:"snapshot_at"`
	Recovery                Recovery  `json:"recovery"`
}

// Manager owns one data directory: it recovers a dataset store from
// snapshot + WAL on Open, tees every subsequent batch to the WAL via
// the store's ingest hook, and cuts snapshots (compacting covered WAL
// segments) on demand. Safe for concurrent use.
type Manager struct {
	dir        string
	log        *Log
	store      *dataset.Store
	removeHook func() // deregisters the WAL tee from the store's hook chain

	// growBytes arms the WAL-growth snapshot trigger; growthC carries
	// its (coalesced) signals to whoever runs the snapshot loop.
	growBytes int64
	growthC   chan struct{}

	// Lock-free snapshot-activity counters, exposed as telemetry
	// collectors when Options.Metrics is set.
	snapshots     atomic.Uint64
	growthSignals atomic.Uint64

	// snapMu serializes snapshots; mu guards only the status fields,
	// so Status never waits behind a snapshot's file I/O.
	snapMu      sync.Mutex
	mu          sync.Mutex
	snapOffset  uint64
	snapRecords int
	snapAt      time.Time
	recovery    Recovery
}

// Open recovers (or initializes) the durable store in dir and returns a
// manager whose store is wired to tee every ingested batch to the WAL.
// Recovery order: snapshot first, then WAL frames past the manifest's
// covered offset — so it restores exactly the acknowledged writes, in
// acknowledgment order, without re-running any pipeline.
func Open(dir string, o Options) (*Manager, error) {
	started := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating data dir: %w", err)
	}
	rs, man, hasSnap, err := loadSnapshot(dir)
	if err != nil {
		return nil, err
	}
	log, err := OpenLog(filepath.Join(dir, walSubdir), o)
	if err != nil {
		return nil, err
	}
	if hasSnap && log.Offset() < man.WALOffset {
		return nil, errors.Join(
			fmt.Errorf("persist: WAL ends at record %d but the snapshot covers %d (missing WAL segments)",
				log.Offset(), man.WALOffset),
			log.Close())
	}

	store := dataset.NewStoreWith(o.Store)
	m := &Manager{dir: dir, log: log, store: store,
		growBytes: o.SnapshotWALBytes, growthC: make(chan struct{}, 1)}
	m.registerMetrics(o.Metrics)
	if hasSnap {
		if err := store.AddBatch(rs); err != nil {
			return nil, errors.Join(fmt.Errorf("persist: loading snapshot into store: %w", err), log.Close())
		}
		m.snapOffset = man.WALOffset
		m.snapRecords = man.Records
		m.snapAt = man.SavedAt
	}
	rec := Recovery{FromSnapshot: hasSnap, SnapshotRecords: len(rs), TornTail: log.TornTail(),
		ScavengedSegments: log.Scavenged()}
	err = log.Replay(man.WALOffset, func(batch []dataset.Record) error {
		if err := store.AddBatch(batch); err != nil {
			// Append acks durability the instant the frame lands; an
			// error after that (rotation, fsync) makes the writer
			// retry an already-logged batch, so replay must be
			// idempotent over exact duplicates.
			if errors.Is(err, dataset.ErrDuplicate) {
				rec.WALDuplicateBatches++
				return nil
			}
			return err
		}
		rec.WALBatches++
		rec.WALRecords += len(batch)
		return nil
	})
	if err != nil {
		return nil, errors.Join(fmt.Errorf("persist: replaying WAL: %w", err), log.Close())
	}
	// Only now install the tee: replayed batches must not be re-logged.
	// The tee joins the store's ordered hook chain, so other observers
	// (e.g. a scored-region cache) can coexist with the WAL on the same
	// store. With the growth trigger armed, a commit-phase observer
	// rides along: it fires after the batch is both durable and
	// shard-visible, and only checks a couple of counters, so it adds
	// nothing measurable to the write path.
	hooks := dataset.Hooks{Ingest: log.Append}
	if m.growBytes > 0 {
		hooks.Commit = m.noteGrowth
	}
	m.removeHook = store.AddHooks(hooks)
	if m.growBytes > 0 && m.log.SizePast(m.snapOffset) >= m.growBytes {
		// The recovered dir already owes more replay than the
		// threshold allows (e.g. a crash outran the snapshot loop):
		// signal immediately so the loop snapshots soon after boot.
		m.signalGrowth()
	}
	rec.Elapsed = time.Since(started)
	m.recovery = rec
	return m, nil
}

// noteGrowth is the commit-phase hook behind the WAL-growth snapshot
// trigger: when the uncovered WAL crosses the configured threshold it
// nudges growthC (non-blocking; signals coalesce).
func (m *Manager) noteGrowth(rs []dataset.Record) {
	m.mu.Lock()
	off := m.snapOffset
	m.mu.Unlock()
	if m.log.SizePast(off) >= m.growBytes {
		m.signalGrowth()
	}
}

func (m *Manager) signalGrowth() {
	m.growthSignals.Add(1)
	select {
	case m.growthC <- struct{}{}:
	default:
	}
}

// registerMetrics exposes the manager's snapshot activity on r (nil
// means run uninstrumented). Collectors read atomics or the short
// status mutex — never snapMu, so a scrape cannot wait behind an
// in-flight snapshot's file I/O.
func (m *Manager) registerMetrics(r *telemetry.Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("iqb_snapshots_total",
		"Snapshots cut (wall-clock ticks and growth-trigger alike).", nil,
		func() float64 { return float64(m.snapshots.Load()) })
	r.CounterFunc("iqb_snapshot_growth_signals_total",
		"WAL-growth snapshot trigger firings (coalesced signals counted individually).", nil,
		func() float64 { return float64(m.growthSignals.Load()) })
	r.GaugeFunc("iqb_wal_since_snapshot_bytes",
		"On-disk WAL bytes a recovery would replay past the latest snapshot.", nil,
		func() float64 {
			m.mu.Lock()
			off := m.snapOffset
			m.mu.Unlock()
			return float64(m.log.SizePast(off))
		})
}

// GrowthC delivers a signal each time the WAL grows past
// Options.SnapshotWALBytes since the latest snapshot (coalesced; never
// signaled when the trigger is disabled). Receivers should respond with
// SnapshotIfGrown, which re-checks the condition so a raced wall-clock
// snapshot does not cause a redundant one.
func (m *Manager) GrowthC() <-chan struct{} { return m.growthC }

// Store is the recovered, WAL-backed dataset store.
func (m *Manager) Store() *dataset.Store { return m.store }

// Recovery reports what Open reconstructed.
func (m *Manager) Recovery() Recovery {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recovery
}

// Snapshot cuts an atomic point-in-time snapshot and compacts WAL
// segments it covers. The store is quiesced only while the record set
// and WAL offset are captured; the file writes happen with ingestion
// already flowing again.
func (m *Manager) Snapshot() (SnapshotInfo, error) {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	return m.snapshotLocked()
}

// SnapshotIfGrown cuts a snapshot only if the WAL still exceeds the
// growth threshold — the receiving end of GrowthC. Re-checking under
// the snapshot lock means a signal that raced a wall-clock snapshot
// (which already covered the growth) becomes a cheap no-op instead of
// a redundant full-store snapshot. cut reports whether one was taken.
func (m *Manager) SnapshotIfGrown() (info SnapshotInfo, cut bool, err error) {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	if m.growBytes <= 0 {
		return SnapshotInfo{}, false, nil
	}
	m.mu.Lock()
	off := m.snapOffset
	m.mu.Unlock()
	if m.log.SizePast(off) < m.growBytes {
		return SnapshotInfo{}, false, nil
	}
	info, err = m.snapshotLocked()
	return info, err == nil, err
}

// snapshotLocked is the snapshot body; the caller holds snapMu.
func (m *Manager) snapshotLocked() (SnapshotInfo, error) {
	var (
		rs  []dataset.Record
		off uint64
	)
	m.store.Quiesce(func() {
		rs = m.store.Select(dataset.Filter{})
		off = m.log.Offset()
	})
	info, err := writeSnapshot(m.dir, rs, off, time.Now())
	if err != nil {
		return SnapshotInfo{}, err
	}
	if err := m.log.Compact(off); err != nil {
		return SnapshotInfo{}, err
	}
	m.mu.Lock()
	m.snapOffset = info.WALOffset
	m.snapRecords = info.Records
	m.snapAt = info.SavedAt
	m.mu.Unlock()
	m.snapshots.Add(1)
	return info, nil
}

// Status reports the durable store's current shape.
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	off := m.log.Offset()
	return Status{
		Dir:                     m.dir,
		WALRecords:              off,
		WALSegments:             m.log.Segments(),
		WALBytes:                m.log.SizeBytes(),
		WALSinceSnapshotRecords: off - m.snapOffset,
		WALSinceSnapshotBytes:   m.log.SizePast(m.snapOffset),
		WALWrite:                m.log.Stats(),
		SnapshotOffset:          m.snapOffset,
		SnapshotRecords:         m.snapRecords,
		SnapshotAt:              m.snapAt,
		Recovery:                m.recovery,
	}
}

// SetMeta durably records small key/value metadata about the data dir
// (the iqbserver stores its world seed here so a restart rebuilds the
// same geography the records were measured against).
func (m *Manager) SetMeta(meta map[string]string) error {
	body, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: encoding meta: %w", err)
	}
	path := filepath.Join(m.dir, metaName)
	tmp := path + tmpSuffix
	if err := writeFileSync(tmp, append(body, '\n')); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: publishing meta: %w", err)
	}
	return syncDir(m.dir)
}

// Meta reads the metadata written by SetMeta; a missing file yields an
// empty map.
func (m *Manager) Meta() (map[string]string, error) {
	body, err := os.ReadFile(filepath.Join(m.dir, metaName))
	if errors.Is(err, fs.ErrNotExist) {
		return map[string]string{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: reading meta: %w", err)
	}
	meta := map[string]string{}
	if err := json.Unmarshal(body, &meta); err != nil {
		return nil, fmt.Errorf("persist: decoding meta: %w", err)
	}
	return meta, nil
}

// Close detaches the WAL tee from the store's hook chain and closes the
// WAL. The store remains usable in memory; further writes are no longer
// persisted. Other hook-chain observers are untouched.
func (m *Manager) Close() error {
	m.removeHook()
	return m.log.Close()
}
