package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/telemetry"
)

// WAL on-disk format. Each segment file starts with an 8-byte magic and
// holds a sequence of frames:
//
//	[4B payload length][4B record count][4B CRC32C of payload][payload]
//
// where the payload is an NDJSON batch in the dataset wire form.
// Segments are named by the record offset of their first record,
// zero-padded so lexical order is offset order; the name, not a file
// header, carries the offset so accounting survives compaction.
const (
	segMagic     = "IQBWAL1\n"
	frameHdrSize = 12
	segSuffix    = ".wal"
	// maxFrameBytes bounds a single frame; anything larger in a header
	// is treated as damage, not data.
	maxFrameBytes = 256 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks a frame that ends before its header says it should, or
// fails its checksum — what a crash mid-append leaves behind. It is
// recoverable at the tail of the last segment and corruption anywhere
// else.
var errTorn = errors.New("persist: torn frame")

// errLogClosed is returned by appends against a closed log.
var errLogClosed = errors.New("persist: log is closed")

// WALFile is the file-operation surface the WAL uses. *os.File
// implements it; persist's crash tests substitute a fault-injecting
// implementation (short writes, fsync errors, kill-points mid-frame) to
// make the durability contract executable.
type WALFile interface {
	io.Reader
	io.Writer
	io.Closer
	WriteAt(p []byte, off int64) (n int, err error)
	Truncate(size int64) error
	Sync() error
}

// WALFS is the filesystem behind the WAL's segment files. Production
// code always uses the real filesystem (osFS); tests inject faults via
// Options.fs.
type WALFS interface {
	OpenFile(name string, flag int, perm os.FileMode) (WALFile, error)
	Open(name string) (WALFile, error)
	Remove(name string) error
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (WALFile, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (WALFile, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Remove(name string) error { return os.Remove(name) }
func (osFS) SyncDir(dir string) error { return syncDir(dir) }

// walSegment is a sealed (non-active) segment.
type walSegment struct {
	name  string
	start uint64 // record offset of the segment's first record
	size  int64  // on-disk bytes, fixed at seal time
}

// walReq is one writer's frame waiting in the group-commit queue. The
// committer answers on done exactly once: nil when the frame is
// durable, the group's shared error otherwise.
type walReq struct {
	frame []byte
	count uint32
	done  chan error
}

// WALStats counts the write path's work over this process's lifetime
// (not persisted). Under group commit, Fsyncs < AppendedFrames is the
// whole point: concurrent writers share syncs.
type WALStats struct {
	// AppendedFrames counts frames durably appended (one per batch).
	AppendedFrames uint64 `json:"appended_frames"`
	// Fsyncs counts syncs performed to make frames durable (segment
	// creation and compaction syncs are not included).
	Fsyncs uint64 `json:"fsyncs"`
	// GroupCommits counts committer rounds, each one write+sync
	// covering every frame queued while the previous round was in
	// flight (plus the group window).
	GroupCommits uint64 `json:"group_commits"`
	// MaxGroupFrames is the largest number of frames a single group
	// commit has covered.
	MaxGroupFrames int `json:"max_group_frames"`
	// Rollbacks counts failed appends rolled back to the pre-append
	// boundary (write or sync errors, serial and group paths alike).
	Rollbacks uint64 `json:"rollbacks"`
	// Wedges counts rollbacks whose truncate also failed, wedging the
	// log until a reopen (at most one per process, since a wedged log
	// refuses further appends).
	Wedges uint64 `json:"wedges"`
}

// Log is a segmented append-only write-ahead log of dataset record
// batches. It is safe for concurrent use.
//
// In sync mode (the default), concurrent Appends coalesce into group
// commits: each caller frames its batch, queues it, and blocks; a
// committer goroutine writes every frame queued during the in-flight
// write+sync as one write and one fsync, then fans the result back to
// each waiter. A failed group write or sync is rolled back (the file
// truncated to the pre-group boundary, best-effort) and every waiter in
// the group receives the error. Options.NoGroupCommit restores the
// serial fsync-per-Append path; Options.NoSync bypasses the queue
// entirely, as unsynced appends have no fsync to share.
//
// Metadata readers (Offset, Stats, SizeBytes, SizePast, Segments) never
// take l.mu: counters are atomics and segment geometry sits behind the
// short segMu, so health checks and metric scrapes return immediately
// even while the committer holds l.mu across an fsync.
type Log struct {
	dir    string
	segMax int64
	noSync bool
	fs     WALFS

	// Group-commit queue. Appenders push under qmu and block on their
	// request's done channel; the committer drains pending in batches.
	group         bool
	groupWindow   time.Duration
	qmu           sync.Mutex
	qcond         *sync.Cond
	pending       []*walReq
	qclosed       bool
	committerDone chan struct{}

	// Lock-free write-path counters. Writers bump these while holding
	// l.mu (so they stay mutually consistent with the file), but
	// readers only Load — a scrape never queues behind an fsync.
	offset         atomic.Uint64 // records appended across the log's lifetime
	appendedFrames atomic.Uint64
	fsyncs         atomic.Uint64
	groupCommits   atomic.Uint64
	maxGroupFrames atomic.Int64 // written only by the single committer goroutine
	rollbacks      atomic.Uint64
	wedges         atomic.Uint64

	// segMu guards the segment geometry below. Mutators hold BOTH
	// l.mu (serializing against other mutators and the file itself)
	// and segMu for the metadata write; readers take just one of the
	// two, so SizeBytes/SizePast/Segments stay responsive while l.mu
	// is held across a write+fsync.
	segMu       sync.Mutex
	activeStart uint64 // record offset at which the active segment starts
	activeSize  int64  // bytes written to the active segment
	old         []walSegment

	mu         sync.Mutex
	active     WALFile
	activeName string
	torn       bool     // whether open found and truncated a torn tail
	scavenged  []string // leftover segment files removed at open
	closed     bool
	// wedged is set when a failed write could not be rolled back: a
	// possibly-partial frame is stuck mid-file, and appending past it
	// would put durable frames behind a tear that the next recovery
	// truncates away. A wedged log fails all appends and compactions
	// until a reopen re-establishes a clean tail.
	wedged bool

	// Owned telemetry (nil-safe no-ops when no registry is attached):
	// distributions the counters above cannot carry.
	fsyncSeconds *telemetry.Histogram // latency of each durability fsync
	groupFrames  *telemetry.Histogram // frames folded into each group commit
}

// errWedged fails operations on a log whose last failed write could not
// be rolled back; reopening truncates the tear and recovers.
var errWedged = errors.New("persist: log is wedged behind an unrollbackable partial write; reopen to recover")

func segName(start uint64) string {
	return fmt.Sprintf("%020d%s", start, segSuffix)
}

// segScan is one segment's scan result during open.
type segScan struct {
	seg     walSegment
	records uint64
	goodEnd int64
	torn    bool
}

// OpenLog opens (or creates) the WAL in dir, verifying every sealed
// segment and recovering the active segment's tail: a torn final frame
// is truncated away so subsequent appends start at a clean boundary.
// Leftover segment files abandoned by a rotation whose unlink failed
// are scavenged (see scavengeLeftovers) instead of bricking the reopen
// with a false corruption refusal.
func OpenLog(dir string, o Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating wal dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: reading wal dir: %w", err)
	}
	var segs []walSegment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		start, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("persist: segment %s has a malformed offset name: %w", name, err)
		}
		segs = append(segs, walSegment{name: name, start: start})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })

	l := &Log{dir: dir, segMax: o.segmentBytes(), noSync: o.NoSync, fs: o.fileSystem()}
	l.registerMetrics(o.Metrics)

	scans := make([]segScan, 0, len(segs))
	for _, seg := range segs {
		records, goodEnd, torn, err := scanSegment(l.fs, filepath.Join(dir, seg.name))
		if err != nil {
			return nil, fmt.Errorf("persist: segment %s: %w", seg.name, err)
		}
		scans = append(scans, segScan{seg: seg, records: records, goodEnd: goodEnd, torn: torn})
	}
	kept, err := l.scavengeLeftovers(scans)
	if err != nil {
		return nil, err
	}

	if len(kept) == 0 {
		if err := l.createSegmentLocked(0); err != nil {
			return nil, err
		}
		l.startCommitter(o)
		return l, nil
	}

	for i, sc := range kept {
		seg, records, goodEnd, torn := sc.seg, sc.records, sc.goodEnd, sc.torn
		last := i == len(kept)-1
		if torn && !last {
			return nil, fmt.Errorf("persist: segment %s: torn frame in sealed segment (corruption)", seg.name)
		}
		if !last {
			if want := kept[i+1].seg.start; seg.start+records != want {
				return nil, fmt.Errorf("persist: segment %s holds %d records from offset %d but next segment starts at %d (corruption)",
					seg.name, records, seg.start, want)
			}
			seg.size = goodEnd // a clean sealed segment ends at its last frame
			l.old = append(l.old, seg)
			continue
		}
		// Active (last) segment: truncate any torn tail and reopen for
		// appending.
		path := filepath.Join(dir, seg.name)
		if torn {
			if err := truncateSegment(l.fs, path, goodEnd); err != nil {
				return nil, err
			}
			l.torn = true
			if goodEnd < int64(len(segMagic)) {
				goodEnd = int64(len(segMagic))
			}
		}
		f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("persist: opening active segment: %w", err)
		}
		l.active = f
		l.activeName = seg.name
		l.activeStart = seg.start
		l.activeSize = goodEnd
		l.offset.Store(seg.start + records)
	}
	l.startCommitter(o)
	return l, nil
}

// scavengeLeftovers removes segment files abandoned by a failed
// rotation whose unlink also failed. Such a leftover holds no complete
// frames (at most the magic, possibly torn), yet its offset-named start
// sits inside a neighbor's record range, so the contiguity check would
// refuse the whole directory as corrupt — durable, acknowledged data
// bricked by an empty file.
//
// The detection rule follows from the rotation invariants: a leftover
// is exactly a clean magic and nothing more (the abandoned file was
// synced after its magic and never received a frame), and a sealed
// segment is never legitimately empty (rotation and compaction only
// seal a segment that received frames). So a frameless untorn non-last
// segment is a leftover; a frameless LAST segment is a leftover only
// when the previous kept segment's records extend past its start —
// otherwise it is a legitimately fresh active segment. A frameless
// segment with trailing garbage (torn) is NOT a leftover: that shape
// is a damaged sealed segment, and it still fails open as corruption.
// Only files with zero complete frames are ever removed, so no durable
// record can be lost, and the contiguity check still runs on the
// survivors.
func (l *Log) scavengeLeftovers(scans []segScan) ([]segScan, error) {
	kept := make([]segScan, 0, len(scans))
	for i, sc := range scans {
		frameless := sc.records == 0 && !sc.torn && sc.goodEnd <= int64(len(segMagic))
		leftover := false
		if frameless {
			if i < len(scans)-1 {
				leftover = true
			} else if n := len(kept); n > 0 {
				prev := kept[n-1]
				leftover = prev.seg.start+prev.records > sc.seg.start
			}
		}
		if !leftover {
			kept = append(kept, sc)
			continue
		}
		if err := l.fs.Remove(filepath.Join(l.dir, sc.seg.name)); err != nil {
			return nil, fmt.Errorf("persist: scavenging leftover segment %s: %w", sc.seg.name, err)
		}
		l.scavenged = append(l.scavenged, sc.seg.name)
	}
	if len(l.scavenged) > 0 && !l.noSync {
		// Make the unlinks durable before trusting the surviving chain.
		if err := l.fs.SyncDir(l.dir); err != nil {
			return nil, fmt.Errorf("persist: syncing wal dir after scavenge: %w", err)
		}
	}
	return kept, nil
}

// registerMetrics exposes the log's write-path counters and latency
// distributions on r (nil means run uninstrumented). The collectors
// only Load atomics or take segMu, honoring the registry's non-blocking
// scrape contract: none of them can queue behind l.mu.
func (l *Log) registerMetrics(r *telemetry.Registry) {
	if r == nil {
		return
	}
	l.fsyncSeconds = r.Histogram("iqb_wal_fsync_seconds",
		"Latency of WAL durability fsyncs (serial and group commit).", nil)
	l.groupFrames = r.Histogram("iqb_wal_group_frames",
		"Frames folded into each group commit.", nil)
	r.CounterFunc("iqb_wal_appended_frames_total",
		"Frames durably appended to the WAL (one per batch).", nil,
		func() float64 { return float64(l.appendedFrames.Load()) })
	r.CounterFunc("iqb_wal_fsyncs_total",
		"Fsyncs performed to make WAL frames durable.", nil,
		func() float64 { return float64(l.fsyncs.Load()) })
	r.CounterFunc("iqb_wal_group_commits_total",
		"Group-commit rounds (one shared write+fsync each).", nil,
		func() float64 { return float64(l.groupCommits.Load()) })
	r.CounterFunc("iqb_wal_rollbacks_total",
		"Failed appends rolled back to the pre-append boundary.", nil,
		func() float64 { return float64(l.rollbacks.Load()) })
	r.CounterFunc("iqb_wal_wedges_total",
		"Rollbacks whose truncate failed, wedging the log until reopen.", nil,
		func() float64 { return float64(l.wedges.Load()) })
	r.CounterFunc("iqb_wal_records_total",
		"Records appended over the log's lifetime (the WAL offset).", nil,
		func() float64 { return float64(l.offset.Load()) })
	r.GaugeFunc("iqb_wal_max_group_frames",
		"Largest number of frames one group commit has covered.", nil,
		func() float64 { return float64(l.maxGroupFrames.Load()) })
	r.GaugeFunc("iqb_wal_size_bytes",
		"On-disk bytes across all WAL segments.", nil,
		func() float64 { return float64(l.SizeBytes()) })
	r.GaugeFunc("iqb_wal_segments",
		"WAL segment files currently on disk.", nil,
		func() float64 { return float64(l.Segments()) })
}

// startCommitter launches the group-commit goroutine when the options
// call for one (sync mode, group commit not disabled).
func (l *Log) startCommitter(o Options) {
	l.group = !o.NoSync && !o.NoGroupCommit
	if !l.group {
		return
	}
	l.groupWindow = o.GroupWindow
	l.qcond = sync.NewCond(&l.qmu)
	l.committerDone = make(chan struct{})
	go l.committer()
}

// truncateSegment cuts a segment back to its last clean frame boundary,
// rewriting the magic if the tear landed inside it, and fsyncs.
func truncateSegment(fs WALFS, path string, goodEnd int64) (err error) {
	f, ferr := fs.OpenFile(path, os.O_RDWR, 0o644)
	if ferr != nil {
		return fmt.Errorf("persist: opening torn segment: %w", ferr)
	}
	// The segment was truncated and fsynced for durability; a close
	// failure afterwards still puts that durability in question.
	defer func() { err = errors.Join(err, f.Close()) }()
	if goodEnd < int64(len(segMagic)) {
		// The crash landed inside the segment header (mid-rotation):
		// reset to an empty, well-formed segment.
		goodEnd = 0
	}
	if err := f.Truncate(goodEnd); err != nil {
		return fmt.Errorf("persist: truncating torn tail: %w", err)
	}
	if goodEnd == 0 {
		if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
			return fmt.Errorf("persist: rewriting segment magic: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("persist: syncing truncated segment: %w", err)
	}
	return nil
}

// scanSegment validates one segment's frames without decoding payloads.
// It returns the record count, the byte offset just past the last clean
// frame, and whether the segment ends in a torn frame.
func scanSegment(fs WALFS, path string) (records uint64, goodEnd int64, torn bool, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		// Shorter than the magic: a crash during segment creation.
		return 0, 0, true, nil
	}
	if string(magic) != segMagic {
		return 0, 0, false, fmt.Errorf("bad segment magic %q", magic)
	}
	goodEnd = int64(len(segMagic))
	for {
		count, payload, ferr := readFrame(br)
		if ferr == io.EOF {
			return records, goodEnd, false, nil
		}
		if errors.Is(ferr, errTorn) {
			return records, goodEnd, true, nil
		}
		if ferr != nil {
			return 0, 0, false, ferr
		}
		records += uint64(count)
		goodEnd += frameHdrSize + int64(len(payload))
	}
}

// readFrame reads one frame. io.EOF means a clean end at a frame
// boundary; errTorn means the bytes give out mid-frame or the checksum
// fails.
func readFrame(br *bufio.Reader) (count uint32, payload []byte, err error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, errTorn // partial header
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	count = binary.LittleEndian.Uint32(hdr[4:8])
	sum := binary.LittleEndian.Uint32(hdr[8:12])
	if length == 0 || length > maxFrameBytes {
		return 0, nil, errTorn
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, errTorn // partial payload
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return 0, nil, errTorn
	}
	return count, payload, nil
}

// createSegmentLocked starts a fresh segment at the given record offset
// and makes it the active one. The caller holds l.mu (or is OpenLog).
func (l *Log) createSegmentLocked(start uint64) error {
	name := segName(start)
	path := filepath.Join(l.dir, name)
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: creating segment: %w", err)
	}
	// A half-created segment must not survive a failed rotation, or
	// the retry's O_EXCL open would fail forever on the leftover.
	abandon := func() {
		//iqbvet:ignore syncerr the half-created segment is removed right after; the open/write error is the one that matters
		f.Close()
		l.fs.Remove(path)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		abandon()
		return fmt.Errorf("persist: writing segment magic: %w", err)
	}
	if !l.noSync {
		if err := f.Sync(); err != nil {
			abandon()
			return fmt.Errorf("persist: syncing new segment: %w", err)
		}
		if err := l.fs.SyncDir(l.dir); err != nil {
			abandon()
			return err
		}
	}
	if l.active != nil {
		if err := l.active.Close(); err != nil {
			abandon()
			return fmt.Errorf("persist: closing sealed segment: %w", err)
		}
	}
	l.segMu.Lock()
	if l.active != nil {
		l.old = append(l.old, walSegment{name: l.activeName, start: l.activeStart, size: l.activeSize})
	}
	l.activeStart = start
	l.activeSize = int64(len(segMagic))
	l.segMu.Unlock()
	l.active = f
	l.activeName = name
	l.offset.Store(start)
	return nil
}

// encodeFrame wraps a batch in the WAL's [len|count|crc|payload] frame.
func encodeFrame(rs []dataset.Record) ([]byte, error) {
	var payload bytes.Buffer
	if err := dataset.WriteNDJSON(&payload, rs); err != nil {
		return nil, fmt.Errorf("persist: encoding batch: %w", err)
	}
	if payload.Len() > maxFrameBytes {
		return nil, fmt.Errorf("persist: batch frame %d bytes exceeds %d; split the batch", payload.Len(), maxFrameBytes)
	}
	frame := make([]byte, frameHdrSize+payload.Len())
	binary.LittleEndian.PutUint32(frame[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(rs)))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.Checksum(payload.Bytes(), crcTable))
	copy(frame[frameHdrSize:], payload.Bytes())
	return frame, nil
}

// Append frames the batch and makes it durable. When Append returns nil
// the batch is on disk (fsynced, unless the log was opened with
// NoSync); a non-nil error means the batch must be treated as not
// written (a torn partial write is truncated away on the next open).
//
// Under group commit, concurrent callers block while the committer
// folds their frames into one shared write+sync; a group failure
// surfaces the same error to every caller in the group.
func (l *Log) Append(rs []dataset.Record) error {
	if len(rs) == 0 {
		return nil
	}
	frame, err := encodeFrame(rs)
	if err != nil {
		return err
	}
	if !l.group {
		return l.appendSerial(frame, uint32(len(rs)))
	}
	req := &walReq{frame: frame, count: uint32(len(rs)), done: make(chan error, 1)}
	l.qmu.Lock()
	if l.qclosed {
		l.qmu.Unlock()
		return errLogClosed
	}
	l.pending = append(l.pending, req)
	l.qcond.Signal()
	l.qmu.Unlock()
	return <-req.done
}

// appendSerial is the non-grouped write path: one frame, one write,
// one fsync (unless NoSync), all under the log mutex.
func (l *Log) appendSerial(frame []byte, count uint32) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errLogClosed
	}
	if l.wedged {
		return errWedged
	}
	// On any failure the frame's durability is unknown, so roll the
	// file back to the pre-append boundary: the caller treats an
	// errored batch as not written, and a frame that survived anyway
	// would resurface on recovery as a batch the store never applied.
	// Replay tolerates those (exact-duplicate skip, or an unacked
	// batch the workload submitted), but the rollback itself must not
	// be best-effort — see rollbackLocked, which wedges the log when
	// the truncate fails too.
	if _, err := l.active.Write(frame); err != nil {
		l.rollbackLocked()
		return fmt.Errorf("persist: appending frame: %w", err)
	}
	if !l.noSync {
		stop := l.fsyncSeconds.Time()
		//iqbvet:ignore lockio l.mu serializes the segment file itself, never its metadata: health and metric readers use atomics and segMu, and group commit moves waiting writers onto channels
		err := l.active.Sync()
		stop()
		if err != nil {
			l.rollbackLocked()
			return fmt.Errorf("persist: syncing frame: %w", err)
		}
		l.fsyncs.Add(1)
	}
	l.appendedFrames.Add(1)
	l.segMu.Lock()
	l.activeSize += int64(len(frame))
	l.segMu.Unlock()
	l.offset.Add(uint64(count))
	if l.activeSize >= l.segMax {
		// The frame is already durable, so a failed rotation must not
		// turn the ack into an error: keep the oversized segment
		// active and let the next append retry the rotation.
		_ = l.createSegmentLocked(l.offset.Load())
	}
	return nil
}

// rollbackLocked rolls the active segment back to the pre-append
// boundary after a failed write or sync. If the rollback truncate also
// fails, a frame of unknown durability is stuck past the accounted
// tail: it may be torn (partial write), and even a completely-written
// frame may silently never reach disk (a failed fsync can drop the
// dirty pages while every later fsync succeeds), so appending past it
// would park acknowledged frames behind a possible hole for the next
// recovery to truncate away — or, via rotation, seal a segment whose
// scanned record count contradicts the next segment's offset name. The
// log wedges instead: every later append and compaction fails loudly
// until a reopen rescans the bytes that actually survived, losing only
// unacknowledged data.
func (l *Log) rollbackLocked() {
	l.rollbacks.Add(1)
	if terr := l.active.Truncate(l.activeSize); terr != nil {
		l.wedged = true
		l.wedges.Add(1)
	}
}

// committer is the group-commit loop: it drains every frame queued
// while the previous round's write+sync was in flight (plus frames
// arriving during the configured group window) and commits them as one
// group. It exits once the log is closed and the queue is empty, so a
// Close never strands a blocked writer — frames already queued are
// flushed, not failed.
func (l *Log) committer() {
	defer close(l.committerDone)
	for {
		l.qmu.Lock()
		for len(l.pending) == 0 && !l.qclosed {
			l.qcond.Wait()
		}
		if len(l.pending) == 0 && l.qclosed {
			l.qmu.Unlock()
			return
		}
		group := l.pending
		l.pending = nil
		closing := l.qclosed
		l.qmu.Unlock()
		if l.groupWindow > 0 && !closing {
			// Hold the commit open briefly so writers that arrive
			// just behind the first frame share its fsync instead of
			// paying for their own in the next round.
			time.Sleep(l.groupWindow)
			l.qmu.Lock()
			group = append(group, l.pending...)
			l.pending = nil
			l.qmu.Unlock()
		}
		l.commitGroup(group)
	}
}

// commitGroup writes every queued frame in one write, fsyncs once, and
// fans the shared result back to each waiter. On failure the file is
// rolled back to the pre-group boundary (best-effort) and every waiter
// in the group receives the same error.
func (l *Log) commitGroup(group []*walReq) {
	total := 0
	var records uint64
	for _, r := range group {
		total += len(r.frame)
		records += uint64(r.count)
	}
	buf := make([]byte, 0, total)
	for _, r := range group {
		buf = append(buf, r.frame...)
	}

	l.mu.Lock()
	err := func() error {
		if l.closed {
			return errLogClosed
		}
		if l.wedged {
			return errWedged
		}
		if _, werr := l.active.Write(buf); werr != nil {
			l.rollbackLocked()
			return fmt.Errorf("persist: appending group of %d frames: %w", len(group), werr)
		}
		stop := l.fsyncSeconds.Time()
		//iqbvet:ignore lockio the committer's shared fsync is the point of group commit; writers wait on ack channels, and metadata readers use atomics and segMu — nothing queues behind this l.mu hold
		serr := l.active.Sync()
		stop()
		if serr != nil {
			l.rollbackLocked()
			return fmt.Errorf("persist: syncing group of %d frames: %w", len(group), serr)
		}
		return nil
	}()
	if err == nil {
		l.segMu.Lock()
		l.activeSize += int64(total)
		l.segMu.Unlock()
		l.offset.Add(records)
		l.appendedFrames.Add(uint64(len(group)))
		l.fsyncs.Add(1)
		l.groupCommits.Add(1)
		if int64(len(group)) > l.maxGroupFrames.Load() {
			// Only this goroutine writes maxGroupFrames, so the
			// load/store pair cannot lose an update.
			l.maxGroupFrames.Store(int64(len(group)))
		}
		l.groupFrames.Observe(float64(len(group)))
		if l.activeSize >= l.segMax {
			// Frames are already durable; a failed rotation must not
			// turn the acks into errors (same contract as the serial
			// path).
			_ = l.createSegmentLocked(l.offset.Load())
		}
	}
	l.mu.Unlock()
	for _, r := range group {
		r.done <- err
	}
}

// Replay streams every batch whose records lie past the `from` record
// offset, in append order. It fails if `from` falls inside a batch:
// snapshots cut at batch boundaries, so a split batch means the
// manifest and the log disagree.
func (l *Log) Replay(from uint64, fn func(rs []dataset.Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs := append(append([]walSegment(nil), l.old...), walSegment{name: l.activeName, start: l.activeStart})
	for i, seg := range segs {
		end := l.offset.Load()
		if i+1 < len(segs) {
			end = segs[i+1].start
		}
		if end <= from {
			continue
		}
		if err := l.replaySegment(seg, from, fn); err != nil {
			return fmt.Errorf("persist: segment %s: %w", seg.name, err)
		}
	}
	return nil
}

func (l *Log) replaySegment(seg walSegment, from uint64, fn func(rs []dataset.Record) error) error {
	f, err := l.fs.Open(filepath.Join(l.dir, seg.name))
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != segMagic {
		return fmt.Errorf("bad segment magic")
	}
	cum := seg.start
	for {
		count, payload, ferr := readFrame(br)
		if ferr == io.EOF || errors.Is(ferr, errTorn) {
			// A torn tail past the open-time truncation point cannot
			// happen on the sealed prefix; the active segment was
			// already truncated at open, so EOF semantics apply.
			return nil
		}
		if ferr != nil {
			return ferr
		}
		frameEnd := cum + uint64(count)
		if frameEnd <= from {
			cum = frameEnd
			continue
		}
		if cum < from {
			return fmt.Errorf("offset %d splits a batch spanning [%d,%d) (manifest/log mismatch)", from, cum, frameEnd)
		}
		rs, err := dataset.ReadNDJSON(bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("decoding batch at offset %d: %w", cum, err)
		}
		if uint32(len(rs)) != count {
			return fmt.Errorf("batch at offset %d decodes to %d records, header says %d", cum, len(rs), count)
		}
		if err := fn(rs); err != nil {
			return err
		}
		cum = frameEnd
	}
}

// Compact seals the active segment if it holds records covered by
// `through`, then deletes sealed segments whose every record is covered.
// The snapshot path calls this with the manifest's WAL offset.
func (l *Log) Compact(through uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errLogClosed
	}
	if l.wedged {
		// Sealing a wedged active segment would bury its torn frame in
		// a sealed segment, which recovery treats as hard corruption.
		return errWedged
	}
	if l.activeStart < through && l.activeSize > int64(len(segMagic)) {
		if err := l.createSegmentLocked(l.offset.Load()); err != nil {
			return err
		}
	}
	// Removal commits per segment (and tolerates an already-missing
	// file), so one failed unlink never leaves deleted segments
	// tracked — that would poison every later Compact with ENOENT.
	var kept []walSegment
	var firstErr error
	removed := false
	for i, seg := range l.old {
		end := l.activeStart
		if i+1 < len(l.old) {
			end = l.old[i+1].start
		}
		if end > through {
			kept = append(kept, seg)
			continue
		}
		if err := l.fs.Remove(filepath.Join(l.dir, seg.name)); err != nil && !os.IsNotExist(err) {
			if firstErr == nil {
				firstErr = fmt.Errorf("persist: removing compacted segment: %w", err)
			}
			kept = append(kept, seg)
			continue
		}
		removed = true
	}
	l.segMu.Lock()
	l.old = kept
	l.segMu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	if removed && !l.noSync {
		return l.fs.SyncDir(l.dir)
	}
	return nil
}

// Offset reports how many records have been appended over the log's
// lifetime (surviving compaction, which only drops covered segments).
// Lock-free: never waits on the committer's l.mu.
func (l *Log) Offset() uint64 { return l.offset.Load() }

// TornTail reports whether opening the log found (and truncated) a torn
// final frame — evidence of a crash mid-append.
func (l *Log) TornTail() bool { return l.torn }

// Scavenged reports the leftover segment files (abandoned by a failed
// rotation) that open removed, in offset order. Set once at open, then
// only read.
func (l *Log) Scavenged() []string { return append([]string(nil), l.scavenged...) }

// Segments reports how many segment files the log currently holds.
// Takes only segMu, never l.mu.
func (l *Log) Segments() int {
	l.segMu.Lock()
	defer l.segMu.Unlock()
	return len(l.old) + 1
}

// Stats reports the write path's work counters. Lock-free: each field
// is an atomic load, so Stats returns immediately even mid-fsync. The
// fields are read individually, not as one snapshot, which is fine for
// monotone counters read for monitoring.
func (l *Log) Stats() WALStats {
	return WALStats{
		AppendedFrames: l.appendedFrames.Load(),
		Fsyncs:         l.fsyncs.Load(),
		GroupCommits:   l.groupCommits.Load(),
		MaxGroupFrames: int(l.maxGroupFrames.Load()),
		Rollbacks:      l.rollbacks.Load(),
		Wedges:         l.wedges.Load(),
	}
}

// SizeBytes reports the log's current on-disk size from tracked
// segment sizes — no filesystem syscalls and no l.mu, so health checks
// and metric scrapes never stall behind appenders or their fsyncs.
func (l *Log) SizeBytes() int64 {
	l.segMu.Lock()
	defer l.segMu.Unlock()
	total := l.activeSize
	for _, seg := range l.old {
		total += seg.size
	}
	return total
}

// SizePast reports the on-disk bytes of segments holding records past
// the given offset — the bytes a recovery from that offset would read.
// Granularity is whole segments (a boundary segment counts fully,
// matching what replay actually reads), so the snapshot growth trigger
// measures exactly the replay work it exists to bound. Takes only
// segMu, never l.mu.
func (l *Log) SizePast(offset uint64) int64 {
	l.segMu.Lock()
	defer l.segMu.Unlock()
	var total int64
	for i, seg := range l.old {
		end := l.activeStart
		if i+1 < len(l.old) {
			end = l.old[i+1].start
		}
		if end > offset {
			total += seg.size
		}
	}
	if l.offset.Load() > offset {
		total += l.activeSize
	}
	return total
}

// Close flushes queued group commits, syncs, and closes the active
// segment. Appends already queued are committed and acknowledged;
// further appends fail.
func (l *Log) Close() error {
	if l.group {
		l.qmu.Lock()
		if !l.qclosed {
			l.qclosed = true
			l.qcond.Broadcast()
		}
		l.qmu.Unlock()
		// The committer drains the queue before exiting, so waiters
		// enqueued ahead of Close get durable acks, not errors.
		<-l.committerDone
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	f := l.active
	l.mu.Unlock()
	// The final sync runs outside every lock: each other file user
	// holds l.mu for its whole operation and checks closed first, so
	// once closed is set under the mutex nothing else can touch f.
	if !l.noSync {
		if err := f.Sync(); err != nil {
			return errors.Join(fmt.Errorf("persist: syncing on close: %w", err), f.Close())
		}
	}
	return f.Close()
}
