package persist

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"iqb/internal/dataset"
)

// WAL on-disk format. Each segment file starts with an 8-byte magic and
// holds a sequence of frames:
//
//	[4B payload length][4B record count][4B CRC32C of payload][payload]
//
// where the payload is an NDJSON batch in the dataset wire form.
// Segments are named by the record offset of their first record,
// zero-padded so lexical order is offset order; the name, not a file
// header, carries the offset so accounting survives compaction.
const (
	segMagic     = "IQBWAL1\n"
	frameHdrSize = 12
	segSuffix    = ".wal"
	// maxFrameBytes bounds a single frame; anything larger in a header
	// is treated as damage, not data.
	maxFrameBytes = 256 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks a frame that ends before its header says it should, or
// fails its checksum — what a crash mid-append leaves behind. It is
// recoverable at the tail of the last segment and corruption anywhere
// else.
var errTorn = errors.New("persist: torn frame")

// walSegment is a sealed (non-active) segment.
type walSegment struct {
	name  string
	start uint64 // record offset of the segment's first record
	size  int64  // on-disk bytes, fixed at seal time
}

// Log is a segmented append-only write-ahead log of dataset record
// batches. It is safe for concurrent use; Append serializes writers.
type Log struct {
	dir    string
	segMax int64
	noSync bool

	mu          sync.Mutex
	active      *os.File
	activeName  string
	activeStart uint64 // record offset at which the active segment starts
	activeSize  int64  // bytes written to the active segment
	old         []walSegment
	offset      uint64 // records appended across the log's lifetime
	torn        bool   // whether open found and truncated a torn tail
	closed      bool
}

func segName(start uint64) string {
	return fmt.Sprintf("%020d%s", start, segSuffix)
}

// OpenLog opens (or creates) the WAL in dir, verifying every sealed
// segment and recovering the active segment's tail: a torn final frame
// is truncated away so subsequent appends start at a clean boundary.
func OpenLog(dir string, o Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: creating wal dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: reading wal dir: %w", err)
	}
	var segs []walSegment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		start, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("persist: segment %s has a malformed offset name: %w", name, err)
		}
		segs = append(segs, walSegment{name: name, start: start})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })

	l := &Log{dir: dir, segMax: o.segmentBytes(), noSync: o.NoSync}
	if len(segs) == 0 {
		if err := l.createSegmentLocked(0); err != nil {
			return nil, err
		}
		return l, nil
	}

	for i, seg := range segs {
		last := i == len(segs)-1
		records, goodEnd, torn, err := scanSegment(filepath.Join(dir, seg.name))
		if err != nil {
			return nil, fmt.Errorf("persist: segment %s: %w", seg.name, err)
		}
		if torn && !last {
			return nil, fmt.Errorf("persist: segment %s: torn frame in sealed segment (corruption)", seg.name)
		}
		if !last {
			if want := segs[i+1].start; seg.start+records != want {
				return nil, fmt.Errorf("persist: segment %s holds %d records from offset %d but next segment starts at %d (corruption)",
					seg.name, records, seg.start, want)
			}
			seg.size = goodEnd // a clean sealed segment ends at its last frame
			l.old = append(l.old, seg)
			continue
		}
		// Active (last) segment: truncate any torn tail and reopen for
		// appending.
		path := filepath.Join(dir, seg.name)
		if torn {
			if err := truncateSegment(path, goodEnd); err != nil {
				return nil, err
			}
			l.torn = true
			if goodEnd < int64(len(segMagic)) {
				goodEnd = int64(len(segMagic))
			}
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("persist: opening active segment: %w", err)
		}
		l.active = f
		l.activeName = seg.name
		l.activeStart = seg.start
		l.activeSize = goodEnd
		l.offset = seg.start + records
	}
	return l, nil
}

// truncateSegment cuts a segment back to its last clean frame boundary,
// rewriting the magic if the tear landed inside it, and fsyncs.
func truncateSegment(path string, goodEnd int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("persist: opening torn segment: %w", err)
	}
	defer f.Close()
	if goodEnd < int64(len(segMagic)) {
		// The crash landed inside the segment header (mid-rotation):
		// reset to an empty, well-formed segment.
		goodEnd = 0
	}
	if err := f.Truncate(goodEnd); err != nil {
		return fmt.Errorf("persist: truncating torn tail: %w", err)
	}
	if goodEnd == 0 {
		if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
			return fmt.Errorf("persist: rewriting segment magic: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("persist: syncing truncated segment: %w", err)
	}
	return nil
}

// scanSegment validates one segment's frames without decoding payloads.
// It returns the record count, the byte offset just past the last clean
// frame, and whether the segment ends in a torn frame.
func scanSegment(path string) (records uint64, goodEnd int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		// Shorter than the magic: a crash during segment creation.
		return 0, 0, true, nil
	}
	if string(magic) != segMagic {
		return 0, 0, false, fmt.Errorf("bad segment magic %q", magic)
	}
	goodEnd = int64(len(segMagic))
	for {
		count, payload, ferr := readFrame(br)
		if ferr == io.EOF {
			return records, goodEnd, false, nil
		}
		if errors.Is(ferr, errTorn) {
			return records, goodEnd, true, nil
		}
		if ferr != nil {
			return 0, 0, false, ferr
		}
		records += uint64(count)
		goodEnd += frameHdrSize + int64(len(payload))
	}
}

// readFrame reads one frame. io.EOF means a clean end at a frame
// boundary; errTorn means the bytes give out mid-frame or the checksum
// fails.
func readFrame(br *bufio.Reader) (count uint32, payload []byte, err error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, errTorn // partial header
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	count = binary.LittleEndian.Uint32(hdr[4:8])
	sum := binary.LittleEndian.Uint32(hdr[8:12])
	if length == 0 || length > maxFrameBytes {
		return 0, nil, errTorn
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, errTorn // partial payload
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return 0, nil, errTorn
	}
	return count, payload, nil
}

// createSegmentLocked starts a fresh segment at the given record offset
// and makes it the active one. The caller holds l.mu (or is OpenLog).
func (l *Log) createSegmentLocked(start uint64) error {
	name := segName(start)
	path := filepath.Join(l.dir, name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: creating segment: %w", err)
	}
	// A half-created segment must not survive a failed rotation, or
	// the retry's O_EXCL open would fail forever on the leftover.
	abandon := func() {
		f.Close()
		os.Remove(path)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		abandon()
		return fmt.Errorf("persist: writing segment magic: %w", err)
	}
	if !l.noSync {
		if err := f.Sync(); err != nil {
			abandon()
			return fmt.Errorf("persist: syncing new segment: %w", err)
		}
		if err := syncDir(l.dir); err != nil {
			abandon()
			return err
		}
	}
	if l.active != nil {
		if err := l.active.Close(); err != nil {
			abandon()
			return fmt.Errorf("persist: closing sealed segment: %w", err)
		}
		l.old = append(l.old, walSegment{name: l.activeName, start: l.activeStart, size: l.activeSize})
	}
	l.active = f
	l.activeName = name
	l.activeStart = start
	l.activeSize = int64(len(segMagic))
	l.offset = start
	return nil
}

// Append frames the batch and writes it to the active segment,
// fsyncing unless the log was opened with NoSync. When Append returns
// nil the batch is durable; a non-nil error means the batch must be
// treated as not written (a torn partial write is truncated away on the
// next open).
func (l *Log) Append(rs []dataset.Record) error {
	if len(rs) == 0 {
		return nil
	}
	var payload bytes.Buffer
	if err := dataset.WriteNDJSON(&payload, rs); err != nil {
		return fmt.Errorf("persist: encoding batch: %w", err)
	}
	if payload.Len() > maxFrameBytes {
		return fmt.Errorf("persist: batch frame %d bytes exceeds %d; split the batch", payload.Len(), maxFrameBytes)
	}
	frame := make([]byte, frameHdrSize+payload.Len())
	binary.LittleEndian.PutUint32(frame[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(rs)))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.Checksum(payload.Bytes(), crcTable))
	copy(frame[frameHdrSize:], payload.Bytes())

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("persist: log is closed")
	}
	// On any failure the frame's durability is unknown, so roll the
	// file back to the pre-append boundary (best-effort): the caller
	// treats an errored batch as not written, and a frame that
	// survived anyway would resurface on recovery as a write the store
	// vetoed. Replay tolerates exact duplicates, but not resurrection.
	if _, err := l.active.Write(frame); err != nil {
		l.active.Truncate(l.activeSize)
		return fmt.Errorf("persist: appending frame: %w", err)
	}
	if !l.noSync {
		if err := l.active.Sync(); err != nil {
			l.active.Truncate(l.activeSize)
			return fmt.Errorf("persist: syncing frame: %w", err)
		}
	}
	l.activeSize += int64(len(frame))
	l.offset += uint64(len(rs))
	if l.activeSize >= l.segMax {
		// The frame is already durable, so a failed rotation must not
		// turn the ack into an error: keep the oversized segment
		// active and let the next append retry the rotation.
		_ = l.createSegmentLocked(l.offset)
	}
	return nil
}

// Replay streams every batch whose records lie past the `from` record
// offset, in append order. It fails if `from` falls inside a batch:
// snapshots cut at batch boundaries, so a split batch means the
// manifest and the log disagree.
func (l *Log) Replay(from uint64, fn func(rs []dataset.Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs := append(append([]walSegment(nil), l.old...), walSegment{name: l.activeName, start: l.activeStart})
	for i, seg := range segs {
		end := l.offset
		if i+1 < len(segs) {
			end = segs[i+1].start
		}
		if end <= from {
			continue
		}
		if err := l.replaySegment(seg, from, fn); err != nil {
			return fmt.Errorf("persist: segment %s: %w", seg.name, err)
		}
	}
	return nil
}

func (l *Log) replaySegment(seg walSegment, from uint64, fn func(rs []dataset.Record) error) error {
	f, err := os.Open(filepath.Join(l.dir, seg.name))
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != segMagic {
		return fmt.Errorf("bad segment magic")
	}
	cum := seg.start
	for {
		count, payload, ferr := readFrame(br)
		if ferr == io.EOF || errors.Is(ferr, errTorn) {
			// A torn tail past the open-time truncation point cannot
			// happen on the sealed prefix; the active segment was
			// already truncated at open, so EOF semantics apply.
			return nil
		}
		if ferr != nil {
			return ferr
		}
		frameEnd := cum + uint64(count)
		if frameEnd <= from {
			cum = frameEnd
			continue
		}
		if cum < from {
			return fmt.Errorf("offset %d splits a batch spanning [%d,%d) (manifest/log mismatch)", from, cum, frameEnd)
		}
		rs, err := dataset.ReadNDJSON(bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("decoding batch at offset %d: %w", cum, err)
		}
		if uint32(len(rs)) != count {
			return fmt.Errorf("batch at offset %d decodes to %d records, header says %d", cum, len(rs), count)
		}
		if err := fn(rs); err != nil {
			return err
		}
		cum = frameEnd
	}
}

// Compact seals the active segment if it holds records covered by
// `through`, then deletes sealed segments whose every record is covered.
// The snapshot path calls this with the manifest's WAL offset.
func (l *Log) Compact(through uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("persist: log is closed")
	}
	if l.activeStart < through && l.activeSize > int64(len(segMagic)) {
		if err := l.createSegmentLocked(l.offset); err != nil {
			return err
		}
	}
	// Removal commits per segment (and tolerates an already-missing
	// file), so one failed unlink never leaves deleted segments
	// tracked — that would poison every later Compact with ENOENT.
	var kept []walSegment
	var firstErr error
	removed := false
	for i, seg := range l.old {
		end := l.activeStart
		if i+1 < len(l.old) {
			end = l.old[i+1].start
		}
		if end > through {
			kept = append(kept, seg)
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, seg.name)); err != nil && !os.IsNotExist(err) {
			if firstErr == nil {
				firstErr = fmt.Errorf("persist: removing compacted segment: %w", err)
			}
			kept = append(kept, seg)
			continue
		}
		removed = true
	}
	l.old = kept
	if firstErr != nil {
		return firstErr
	}
	if removed && !l.noSync {
		return syncDir(l.dir)
	}
	return nil
}

// Offset reports how many records have been appended over the log's
// lifetime (surviving compaction, which only drops covered segments).
func (l *Log) Offset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.offset
}

// TornTail reports whether opening the log found (and truncated) a torn
// final frame — evidence of a crash mid-append.
func (l *Log) TornTail() bool { return l.torn }

// Segments reports how many segment files the log currently holds.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.old) + 1
}

// SizeBytes reports the log's current on-disk size from tracked
// segment sizes — no filesystem syscalls, so health checks never stall
// appenders on stat calls.
func (l *Log) SizeBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.activeSize
	for _, seg := range l.old {
		total += seg.size
	}
	return total
}

// Close syncs and closes the active segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if !l.noSync {
		if err := l.active.Sync(); err != nil {
			l.active.Close()
			return fmt.Errorf("persist: syncing on close: %w", err)
		}
	}
	return l.active.Close()
}
