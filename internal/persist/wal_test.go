package persist

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"iqb/internal/dataset"
)

func walRecord(id string, v float64) dataset.Record {
	r := dataset.NewRecord(id, "ndt", "XA-01", time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC))
	r.DownloadMbps = v
	return r
}

func walBatch(prefix string, n int) []dataset.Record {
	rs := make([]dataset.Record, n)
	for i := range rs {
		rs[i] = walRecord(fmt.Sprintf("%s-%d", prefix, i), float64(10+i))
	}
	return rs
}

func replayAll(t *testing.T, l *Log, from uint64) [][]dataset.Record {
	t.Helper()
	var out [][]dataset.Record
	if err := l.Replay(from, func(rs []dataset.Record) error {
		out = append(out, rs)
		return nil
	}); err != nil {
		t.Fatalf("Replay(%d): %v", from, err)
	}
	return out
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]dataset.Record{walBatch("a", 3), walBatch("b", 1), walBatch("c", 5)}
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Offset(); got != 9 {
		t.Fatalf("offset = %d, want 9", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: offsets and contents must survive.
	l2, err := OpenLog(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Offset(); got != 9 {
		t.Fatalf("reopened offset = %d, want 9", got)
	}
	if l2.TornTail() {
		t.Fatal("clean log reported a torn tail")
	}
	got := replayAll(t, l2, 0)
	if len(got) != len(batches) {
		t.Fatalf("replayed %d batches, want %d", len(got), len(batches))
	}
	for i := range batches {
		if len(got[i]) != len(batches[i]) {
			t.Fatalf("batch %d: %d records, want %d", i, len(got[i]), len(batches[i]))
		}
		for j := range batches[i] {
			if got[i][j].ID != batches[i][j].ID || got[i][j].DownloadMbps != batches[i][j].DownloadMbps {
				t.Fatalf("batch %d record %d mismatch: %+v vs %+v", i, j, got[i][j], batches[i][j])
			}
		}
	}

	// Replay from a batch boundary skips covered frames.
	tail := replayAll(t, l2, 4)
	if len(tail) != 1 || len(tail[0]) != 5 {
		t.Fatalf("Replay(4) returned %d batches, want 1 of 5 records", len(tail))
	}
	// An offset splitting a batch is a manifest/log mismatch.
	if err := l2.Replay(2, func([]dataset.Record) error { return nil }); err == nil {
		t.Fatal("Replay accepted an offset inside a batch")
	}
}

func TestLogSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every batch rotates.
	l, err := OpenLog(dir, Options{NoSync: true, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(walBatch(fmt.Sprintf("b%d", i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Segments(); got < 5 {
		t.Fatalf("expected >= 5 segments after rotation, got %d", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Offset(); got != 10 {
		t.Fatalf("offset across segments = %d, want 10", got)
	}
	if got := replayAll(t, l2, 0); len(got) != 5 {
		t.Fatalf("replayed %d batches across segments, want 5", len(got))
	}
}

// corruptTail appends garbage to the newest WAL segment, simulating a
// crash mid-append.
func corruptTail(t *testing.T, dir string, garbage []byte) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("globbing segments: %v (%d found)", err, len(segs))
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return last
}

func TestLogTornTailVariants(t *testing.T) {
	// A frame header claiming more payload than exists.
	tornFrame := func() []byte {
		var hdr [frameHdrSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], 4096)
		binary.LittleEndian.PutUint32(hdr[4:8], 7)
		binary.LittleEndian.PutUint32(hdr[8:12], 0xdeadbeef)
		return append(hdr[:], []byte("only a little payload")...)
	}
	cases := []struct {
		name    string
		garbage []byte
	}{
		{"partial header", []byte{0x10, 0x00}},
		{"truncated payload", tornFrame()},
		{"zero fill", make([]byte, 64)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := OpenLog(dir, Options{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Append(walBatch("good", 3)); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			corruptTail(t, dir, tc.garbage)

			l2, err := OpenLog(dir, Options{NoSync: true})
			if err != nil {
				t.Fatalf("open after torn tail: %v", err)
			}
			defer l2.Close()
			if !l2.TornTail() {
				t.Fatal("torn tail not reported")
			}
			if got := l2.Offset(); got != 3 {
				t.Fatalf("offset after truncation = %d, want 3", got)
			}
			if got := replayAll(t, l2, 0); len(got) != 1 || len(got[0]) != 3 {
				t.Fatalf("replay after truncation returned %d batches", len(got))
			}
			// The log must accept appends cleanly after truncation.
			if err := l2.Append(walBatch("after", 2)); err != nil {
				t.Fatal(err)
			}
			if got := replayAll(t, l2, 0); len(got) != 2 {
				t.Fatalf("replay after post-tear append returned %d batches, want 2", len(got))
			}
		})
	}
}

// TestLogCorruptCRCTail flips a payload byte of the final frame: the
// checksum catches it and the frame is discarded as a torn tail.
func TestLogCorruptCRCTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(walBatch("a", 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(walBatch("b", 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(0))
	body, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	body[len(body)-2] ^= 0xff // inside the last frame's payload
	if err := os.WriteFile(seg, body, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("open after CRC damage: %v", err)
	}
	defer l2.Close()
	if !l2.TornTail() {
		t.Fatal("CRC-broken tail not reported as torn")
	}
	if got := l2.Offset(); got != 2 {
		t.Fatalf("offset = %d, want 2 (second batch discarded)", got)
	}
}

// TestLogCorruptionInSealedSegment: the same damage that is a
// recoverable torn tail in the last segment is hard corruption in a
// sealed one — refusing to open beats silently dropping interior data.
func TestLogCorruptionInSealedSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{NoSync: true, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(walBatch(fmt.Sprintf("b%d", i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	first := filepath.Join(dir, segName(0))
	body, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	body[len(body)-2] ^= 0xff
	if err := os.WriteFile(first, body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(dir, Options{NoSync: true}); err == nil ||
		!strings.Contains(err.Error(), "corruption") {
		t.Fatalf("open over sealed-segment damage: err = %v, want corruption error", err)
	}
}

func TestLogCompact(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{NoSync: true, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		if err := l.Append(walBatch(fmt.Sprintf("b%d", i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Segments()
	// Snapshot covered the first three batches (6 records).
	if err := l.Compact(6); err != nil {
		t.Fatal(err)
	}
	if after := l.Segments(); after >= before {
		t.Fatalf("compaction did not drop segments: %d -> %d", before, after)
	}
	// Uncovered data must survive compaction.
	got := replayAll(t, l, 6)
	if len(got) != 1 || got[0][0].ID != "b3-0" {
		t.Fatalf("post-compaction replay lost data: %v batches", len(got))
	}
	// Compacting everything leaves an operable log.
	if err := l.Compact(8); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(walBatch("post", 1)); err != nil {
		t.Fatal(err)
	}
	if got := l.Offset(); got != 9 {
		t.Fatalf("offset after compaction+append = %d, want 9", got)
	}
}

// TestLogCompactToleratesMissingSegment: a segment file that is already
// gone (deleted out of band, or unlinked in a Compact whose later step
// failed) must read as "removed", not poison every future compaction.
func TestLogCompactToleratesMissingSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{NoSync: true, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if err := l.Append(walBatch(fmt.Sprintf("b%d", i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(filepath.Join(dir, segName(0))); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(4); err != nil {
		t.Fatalf("Compact over a missing segment: %v", err)
	}
	got := replayAll(t, l, 4)
	if len(got) != 1 {
		t.Fatalf("replay after compaction returned %d batches, want 1", len(got))
	}
}
