package persist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"iqb/internal/dataset"
)

// manifestName is the file naming the current snapshot; it is replaced
// atomically (temp + fsync + rename), so there is always either no
// manifest or a complete one.
const (
	manifestName = "MANIFEST.json"
	snapPrefix   = "snap-"
	snapSuffix   = ".ndjson"
	tmpSuffix    = ".tmp"
)

// manifest describes the current snapshot: which file holds it, its
// integrity checksum, and the WAL record offset it covers. Recovery
// loads the snapshot and replays only WAL frames past WALOffset.
type manifest struct {
	Version   int       `json:"version"`
	Snapshot  string    `json:"snapshot"`
	Records   int       `json:"records"`
	WALOffset uint64    `json:"wal_offset"`
	CRC32C    uint32    `json:"crc32c"`
	SavedAt   time.Time `json:"saved_at"`
}

const manifestVersion = 1

// SnapshotInfo reports one completed snapshot.
type SnapshotInfo struct {
	Path      string    `json:"path"`
	Records   int       `json:"records"`
	WALOffset uint64    `json:"wal_offset"`
	Bytes     int64     `json:"bytes"`
	SavedAt   time.Time `json:"saved_at"`
}

// writeSnapshot atomically persists the record set as the current
// snapshot covering walOffset: the NDJSON body lands under a temp name,
// is fsynced, renamed into place, and only then does the manifest flip
// to it (again via temp + fsync + rename). A crash anywhere in the
// sequence leaves the previous snapshot intact and loadable.
func writeSnapshot(dir string, rs []dataset.Record, walOffset uint64, now time.Time) (SnapshotInfo, error) {
	name := fmt.Sprintf("%s%020d%s", snapPrefix, walOffset, snapSuffix)
	path := filepath.Join(dir, name)
	tmp := path + tmpSuffix

	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("persist: creating snapshot temp: %w", err)
	}
	// fail abandons the temp file, keeping its close error alongside the
	// one that got us here.
	fail := func(ferr error) (SnapshotInfo, error) {
		cerr := f.Close()
		os.Remove(tmp)
		return SnapshotInfo{}, errors.Join(ferr, cerr)
	}
	crc := crc32.New(crcTable)
	bw := bufio.NewWriterSize(io.MultiWriter(f, crc), 256<<10)
	if err := dataset.WriteNDJSON(bw, rs); err != nil {
		return fail(fmt.Errorf("persist: encoding snapshot: %w", err))
	}
	if err := bw.Flush(); err != nil {
		return fail(fmt.Errorf("persist: flushing snapshot: %w", err))
	}
	size, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return fail(fmt.Errorf("persist: sizing snapshot: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("persist: syncing snapshot: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return SnapshotInfo{}, fmt.Errorf("persist: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return SnapshotInfo{}, fmt.Errorf("persist: publishing snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return SnapshotInfo{}, err
	}

	m := manifest{
		Version:   manifestVersion,
		Snapshot:  name,
		Records:   len(rs),
		WALOffset: walOffset,
		CRC32C:    crc.Sum32(),
		SavedAt:   now.UTC(),
	}
	if err := writeManifest(dir, m); err != nil {
		return SnapshotInfo{}, err
	}
	removeStaleSnapshots(dir, name)
	return SnapshotInfo{Path: path, Records: len(rs), WALOffset: walOffset, Bytes: size, SavedAt: m.SavedAt}, nil
}

func writeManifest(dir string, m manifest) error {
	body, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: encoding manifest: %w", err)
	}
	path := filepath.Join(dir, manifestName)
	tmp := path + tmpSuffix
	if err := writeFileSync(tmp, append(body, '\n')); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: publishing manifest: %w", err)
	}
	return syncDir(dir)
}

// writeFileSync writes a small file and fsyncs it.
func writeFileSync(path string, body []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: creating %s: %w", filepath.Base(path), err)
	}
	fail := func(ferr error) error {
		cerr := f.Close()
		os.Remove(path)
		return errors.Join(ferr, cerr)
	}
	if _, err := f.Write(body); err != nil {
		return fail(fmt.Errorf("persist: writing %s: %w", filepath.Base(path), err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("persist: syncing %s: %w", filepath.Base(path), err))
	}
	return f.Close()
}

// removeStaleSnapshots deletes snapshot bodies (and orphaned temp
// files) other than the one the manifest now names. Best-effort: a
// leftover file wastes space but breaks nothing.
func removeStaleSnapshots(dir, keep string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || name == keep {
			continue
		}
		stale := strings.HasSuffix(name, tmpSuffix) ||
			(strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix))
		if stale {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// loadSnapshot reads the manifest and its snapshot body, verifying the
// checksum. ok is false when no manifest exists (a fresh or WAL-only
// data dir).
func loadSnapshot(dir string) (rs []dataset.Record, m manifest, ok bool, err error) {
	body, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, manifest{}, false, nil
	}
	if err != nil {
		return nil, manifest{}, false, fmt.Errorf("persist: reading manifest: %w", err)
	}
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, manifest{}, false, fmt.Errorf("persist: decoding manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, manifest{}, false, fmt.Errorf("persist: manifest version %d not supported", m.Version)
	}
	snap, err := os.ReadFile(filepath.Join(dir, m.Snapshot))
	if err != nil {
		return nil, manifest{}, false, fmt.Errorf("persist: reading snapshot %s: %w", m.Snapshot, err)
	}
	if sum := crc32.Checksum(snap, crcTable); sum != m.CRC32C {
		return nil, manifest{}, false, fmt.Errorf("persist: snapshot %s checksum %08x, manifest says %08x (corruption)", m.Snapshot, sum, m.CRC32C)
	}
	rs, err = dataset.ReadNDJSON(bytes.NewReader(snap))
	if err != nil {
		return nil, manifest{}, false, fmt.Errorf("persist: decoding snapshot %s: %w", m.Snapshot, err)
	}
	if len(rs) != m.Records {
		return nil, manifest{}, false, fmt.Errorf("persist: snapshot %s holds %d records, manifest says %d", m.Snapshot, len(rs), m.Records)
	}
	return rs, m, true, nil
}
