package persist

import (
	"os"
	"path/filepath"
	"testing"

	"iqb/internal/dataset"
)

// These tests pin scavenge-on-open: a rotation that fails after its new
// segment file is created abandons the file, and when the abandoning
// unlink ALSO fails, an empty offset-named segment is left on disk. The
// neighbor segment keeps growing past the leftover's start, so before
// scavenging, reopening the directory refused the whole WAL as corrupt
// — acknowledged durable data bricked by an empty file.

// failRotation arms the fault pair that produces a leftover: the
// rotation's directory sync fails (abandoning the new segment) and the
// abandon's Remove fails too (stranding the file).
func failRotation(fs *faultFS, rotations int) {
	fs.failNextDirSyncs(rotations)
	fs.setFailRemove(true)
}

// TestScavengeLeftoverSegmentOnReopen: leftover in the middle of the
// chain. Without scavenging this reopen failed the contiguity check.
func TestScavengeLeftoverSegmentOnReopen(t *testing.T) {
	dir := t.TempDir()
	fs := newFaultFS()
	// SegmentBytes 1: every append crosses the threshold and attempts a
	// rotation, so the test controls exactly which rotation fails.
	l, err := OpenLog(dir, Options{SegmentBytes: 1, NoGroupCommit: true, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	// Append a: durable, then a successful rotation seals segment 0.
	if err := l.Append(walBatch("a", 3)); err != nil {
		t.Fatal(err)
	}
	// Append b: durable in the new active segment; the rotation at
	// offset 5 fails after the segment file exists, and the unlink
	// fails too — the acked append must still succeed.
	failRotation(fs, 1)
	if err := l.Append(walBatch("b", 2)); err != nil {
		t.Fatalf("acked append failed because its rotation failed: %v", err)
	}
	fs.clearFaults()
	leftover := segName(5)
	if _, err := os.Stat(filepath.Join(dir, leftover)); err != nil {
		t.Fatalf("fault plan did not strand leftover %s: %v", leftover, err)
	}
	// Append c: the active segment grows past the leftover's start, and
	// the retried rotation succeeds at offset 9.
	if err := l.Append(walBatch("c", 4)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen with a leftover segment: %v", err)
	}
	defer l2.Close()
	if got := l2.Scavenged(); len(got) != 1 || got[0] != leftover {
		t.Fatalf("scavenged = %v, want [%s]", got, leftover)
	}
	if _, err := os.Stat(filepath.Join(dir, leftover)); !os.IsNotExist(err) {
		t.Fatalf("leftover %s still on disk after scavenge (stat err %v)", leftover, err)
	}
	if got := l2.Offset(); got != 9 {
		t.Fatalf("recovered offset = %d, want 9", got)
	}
	batches := replayAll(t, l2, 0)
	if len(batches) != 3 {
		t.Fatalf("replay returned %d batches, want the 3 acked ones", len(batches))
	}
	for i, wantFirst := range []string{"a-0", "b-0", "c-0"} {
		if batches[i][0].ID != wantFirst {
			t.Fatalf("batch %d starts with %s, want %s", i, batches[i][0].ID, wantFirst)
		}
	}
}

// TestScavengeKeepsLegitimateFreshActive: a frameless LAST segment
// whose start equals the previous segment's end is exactly what a
// successful rotation produces — it must be kept, not scavenged, even
// when an earlier leftover in the same directory is removed.
func TestScavengeKeepsLegitimateFreshActive(t *testing.T) {
	dir := t.TempDir()
	fs := newFaultFS()
	l, err := OpenLog(dir, Options{SegmentBytes: 1, NoGroupCommit: true, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(walBatch("a", 3)); err != nil {
		t.Fatal(err)
	}
	// Two consecutive failed rotations: leftovers at offsets 5 and 6.
	failRotation(fs, 2)
	if err := l.Append(walBatch("b", 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(walBatch("c", 1)); err != nil {
		t.Fatal(err)
	}
	fs.clearFaults()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// On disk: seg 0 (3 records), seg 3 (b+c, covers [3,6)), leftover 5
	// (inside seg 3's range), leftover 6. Segment 6 is indistinguishable
	// from a fresh active a successful rotation would have created, and
	// keeping it is harmless — only segment 5 may go.
	l2, err := OpenLog(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.Scavenged(); len(got) != 1 || got[0] != segName(5) {
		t.Fatalf("scavenged = %v, want exactly [%s]", got, segName(5))
	}
	if _, err := os.Stat(filepath.Join(dir, segName(6))); err != nil {
		t.Fatalf("legitimate fresh active %s was removed: %v", segName(6), err)
	}
	if got := l2.Offset(); got != 6 {
		t.Fatalf("recovered offset = %d, want 6", got)
	}
	if got := replayAll(t, l2, 0); len(got) != 3 {
		t.Fatalf("replay returned %d batches, want 3", len(got))
	}
	// The recovered log must keep working: appends land in the kept
	// fresh active segment.
	if err := l2.Append(walBatch("d", 2)); err != nil {
		t.Fatalf("append after scavenge: %v", err)
	}
	if got := l2.Offset(); got != 8 {
		t.Fatalf("offset after post-scavenge append = %d, want 8", got)
	}
}

// TestManagerReportsScavengedSegments: the manager surfaces scavenging
// in Recovery, and the recovered store holds every acknowledged record.
func TestManagerReportsScavengedSegments(t *testing.T) {
	dir := t.TempDir()
	fs := newFaultFS()
	m, err := Open(dir, Options{SegmentBytes: 1, NoGroupCommit: true, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store().AddBatch(walBatch("seed", 3)); err != nil {
		t.Fatal(err)
	}
	failRotation(fs, 1)
	if err := m.Store().AddBatch(walBatch("during", 2)); err != nil {
		t.Fatalf("acked batch failed because its rotation failed: %v", err)
	}
	fs.clearFaults()
	if err := m.Store().AddBatch(walBatch("after", 2)); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen with leftover: %v", err)
	}
	defer re.Close()
	rec := re.Recovery()
	if len(rec.ScavengedSegments) != 1 {
		t.Fatalf("Recovery.ScavengedSegments = %v, want one entry", rec.ScavengedSegments)
	}
	if got, want := re.Store().Len(), 7; got != want {
		t.Fatalf("recovered store holds %d records, want %d", got, want)
	}
	for _, r := range re.Store().Select(dataset.Filter{}) {
		if r.ID == "" {
			t.Fatal("recovered a record without an ID")
		}
	}
}
