// Package persist makes the in-memory dataset store durable: a
// segmented, CRC-framed append-only write-ahead log of record batches
// plus atomic point-in-time snapshots, so a server restarts by reading
// files instead of re-running the measurement pipeline.
//
// # Design
//
// Every batch entering the store is first framed and appended to the
// WAL (via the store's ingest hook, before any shard is mutated), so an
// acknowledged write is always recoverable. Batches are encoded in the
// same NDJSON wire form the dataset codecs use, wrapped in a
// [length, record-count, CRC32C] frame; segments rotate at a size
// threshold and are named by the record offset at which they start, so
// offset accounting survives compaction.
//
// Concurrent appends group-commit: writers queue their frames and a
// committer goroutine folds everything queued during the in-flight
// fsync (plus an optional Options.GroupWindow) into one write and one
// sync, fanning the shared result back to every waiter — so the
// per-batch fsync tax amortizes across parallel writers without
// weakening the ack contract (Append still returns only once the frame
// is durable).
//
// Snapshots are cut on demand, and the manager can additionally signal
// a WAL-growth trigger (Options.SnapshotWALBytes): once the uncovered
// WAL exceeds the threshold, GrowthC fires so a background loop cuts a
// snapshot without waiting for its wall-clock tick, bounding how much
// replay a recovery can ever owe.
//
// A snapshot is the full record set at one instant, written
// temp-file → fsync → rename, with a MANIFEST (written the same way)
// naming the snapshot file, its checksum, and the WAL record offset it
// covers. Snapshots are cut under Store.Quiesce, so the captured
// records and the captured offset describe the same point in time;
// compaction then drops WAL segments wholly covered by the manifest.
//
// Recovery loads the manifest's snapshot (if any), replays WAL frames
// past the covered offset, and tolerates a torn tail: a truncated or
// CRC-broken final frame — the signature of a crash mid-append — is
// truncated away, while the same damage anywhere else is reported as
// corruption. Because the store's aggregates are pure functions of the
// record multiset, a recovered store answers ScoreAll/ranking queries
// bit-identically to the one that wrote the log.
package persist

import (
	"fmt"
	"os"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/telemetry"
)

// DefaultSegmentBytes is the WAL rotation threshold: large enough that
// frame framing overhead is negligible, small enough that compaction
// reclaims space promptly.
const DefaultSegmentBytes = 8 << 20

// Options configures the durable store.
type Options struct {
	// SegmentBytes rotates the active WAL segment once it exceeds this
	// size; <= 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips the fsync after each WAL append. Appends then only
	// survive an OS crash if the page cache was flushed — acceptable
	// for tests and throughput benchmarks, not for production. NoSync
	// also bypasses the group-commit queue: with no fsync to share,
	// coalescing buys nothing.
	NoSync bool
	// GroupWindow is how long the WAL's group committer holds a commit
	// open for more writers after picking up its first queued frame,
	// trading that much latency for fewer fsyncs. 0 still
	// group-commits: frames queued while the previous write+sync was
	// in flight coalesce into the next one. Ignored with NoSync or
	// NoGroupCommit.
	GroupWindow time.Duration
	// NoGroupCommit restores the serial write path: every sync-mode
	// Append performs its own write and fsync under the log mutex.
	// Kept as the wal-fsync baseline for benchmarks and bisection;
	// group commit is otherwise always on in sync mode.
	NoGroupCommit bool
	// SnapshotWALBytes arms the manager's WAL-growth snapshot trigger:
	// once the WAL holds at least this many on-disk bytes not covered
	// by the latest snapshot, the manager signals Manager.GrowthC so a
	// snapshot loop can cut one without waiting for a wall-clock tick
	// — bounding replay-at-recovery work under heavy ingest. <= 0
	// disables the trigger.
	SnapshotWALBytes int64
	// Store configures the dataset store geometry built during
	// recovery.
	Store dataset.Options

	// Metrics, when non-nil, registers the WAL's and snapshot
	// manager's self-observability series (append/fsync/rollback
	// counters, fsync-latency and group-fold-size histograms, replay
	// debt gauges) on the given registry. All registered collectors
	// read lock-free counters or short in-memory mutexes, so a scrape
	// never waits behind the committer's fsync.
	Metrics *telemetry.Registry

	// FS substitutes the WAL's file operations; nil means the real
	// filesystem. This is the fault-injection seam: persist's crash
	// tests (and httpapi's blocked-fsync scrape test) inject short
	// writes, fsync errors, and kill-points here. Production code
	// never sets it.
	FS WALFS
}

func (o Options) fileSystem() WALFS {
	if o.FS == nil {
		return osFS{}
	}
	return o.FS
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

// syncDir fsyncs a directory so a just-created, renamed, or removed
// directory entry is durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("persist: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: syncing dir %s: %w", path, err)
	}
	return nil
}
