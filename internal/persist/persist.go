// Package persist makes the in-memory dataset store durable: a
// segmented, CRC-framed append-only write-ahead log of record batches
// plus atomic point-in-time snapshots, so a server restarts by reading
// files instead of re-running the measurement pipeline.
//
// # Design
//
// Every batch entering the store is first framed and appended to the
// WAL (via the store's ingest hook, before any shard is mutated), so an
// acknowledged write is always recoverable. Batches are encoded in the
// same NDJSON wire form the dataset codecs use, wrapped in a
// [length, record-count, CRC32C] frame; segments rotate at a size
// threshold and are named by the record offset at which they start, so
// offset accounting survives compaction.
//
// A snapshot is the full record set at one instant, written
// temp-file → fsync → rename, with a MANIFEST (written the same way)
// naming the snapshot file, its checksum, and the WAL record offset it
// covers. Snapshots are cut under Store.Quiesce, so the captured
// records and the captured offset describe the same point in time;
// compaction then drops WAL segments wholly covered by the manifest.
//
// Recovery loads the manifest's snapshot (if any), replays WAL frames
// past the covered offset, and tolerates a torn tail: a truncated or
// CRC-broken final frame — the signature of a crash mid-append — is
// truncated away, while the same damage anywhere else is reported as
// corruption. Because the store's aggregates are pure functions of the
// record multiset, a recovered store answers ScoreAll/ranking queries
// bit-identically to the one that wrote the log.
package persist

import (
	"fmt"
	"os"

	"iqb/internal/dataset"
)

// DefaultSegmentBytes is the WAL rotation threshold: large enough that
// frame framing overhead is negligible, small enough that compaction
// reclaims space promptly.
const DefaultSegmentBytes = 8 << 20

// Options configures the durable store.
type Options struct {
	// SegmentBytes rotates the active WAL segment once it exceeds this
	// size; <= 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips the fsync after each WAL append. Appends then only
	// survive an OS crash if the page cache was flushed — acceptable
	// for tests and throughput benchmarks, not for production.
	NoSync bool
	// Store configures the dataset store geometry built during
	// recovery.
	Store dataset.Options
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

// syncDir fsyncs a directory so a just-created, renamed, or removed
// directory entry is durable.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("persist: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: syncing dir %s: %w", path, err)
	}
	return nil
}
