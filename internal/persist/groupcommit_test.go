package persist

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"iqb/internal/dataset"
)

// TestGroupCommitExactlyOnceFewerFsyncs drives N parallel writers
// through the group-committed WAL and checks both sides of the
// bargain: every acked batch is present exactly once after a reopen,
// and the fsync count (observed by the injection layer) is strictly
// less than the batch count — the syncs were genuinely shared.
func TestGroupCommitExactlyOnceFewerFsyncs(t *testing.T) {
	dir := t.TempDir()
	fs := newFaultFS()
	l, err := OpenLog(dir, Options{GroupWindow: 2 * time.Millisecond, FS: fs})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers   = 8
		perWriter = 25
		perBatch  = 2
	)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < perWriter; b++ {
				if err := l.Append(walBatch(fmt.Sprintf("w%d-b%d", w, b), perBatch)); err != nil {
					errs[w] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}

	const batches = writers * perWriter
	stats := l.Stats()
	if stats.AppendedFrames != batches {
		t.Fatalf("appended frames = %d, want %d", stats.AppendedFrames, batches)
	}
	if stats.Fsyncs >= batches {
		t.Fatalf("log counted %d fsyncs for %d batches; group commit shared nothing", stats.Fsyncs, batches)
	}
	if stats.MaxGroupFrames < 2 {
		t.Fatalf("max group size = %d, want >= 2 under %d parallel writers", stats.MaxGroupFrames, writers)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The injection layer sees every file sync — append groups plus
	// segment bookkeeping — and even that total must be beaten by the
	// batch count, or the coalescing isn't real.
	if syncs := fs.fileSyncCount(); syncs >= batches {
		t.Fatalf("%d file syncs for %d batches; want strictly fewer", syncs, batches)
	}

	// Exactly once: reopen and replay everything.
	l2, err := OpenLog(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Offset(); got != batches*perBatch {
		t.Fatalf("reopened offset = %d, want %d", got, batches*perBatch)
	}
	seen := map[string]int{}
	if err := l2.Replay(0, func(rs []dataset.Record) error {
		for _, r := range rs {
			seen[r.ID]++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != batches*perBatch {
		t.Fatalf("replay saw %d distinct records, want %d", len(seen), batches*perBatch)
	}
	for w := 0; w < writers; w++ {
		for b := 0; b < perWriter; b++ {
			for i := 0; i < perBatch; i++ {
				id := fmt.Sprintf("w%d-b%d-%d", w, b, i)
				if seen[id] != 1 {
					t.Fatalf("record %s replayed %d times, want exactly once", id, seen[id])
				}
			}
		}
	}
}

// TestGroupCommitCloseFlushesQueuedAppends: writers already queued when
// Close lands must get durable acks, not errors — Close drains the
// committer, it does not strand it.
func TestGroupCommitCloseFlushesQueuedAppends(t *testing.T) {
	dir := t.TempDir()
	// A wide window so appends are very likely still queued (the
	// committer holding the group open) when Close arrives.
	l, err := OpenLog(dir, Options{GroupWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = l.Append(walBatch(fmt.Sprintf("q%d", i), 1))
		}()
	}
	time.Sleep(5 * time.Millisecond) // let the appends enqueue
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	acked := 0
	for _, err := range errs {
		if err == nil {
			acked++
		}
	}
	// Anything acked must be on disk; anything errored must be absent.
	l2, err := OpenLog(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := int(l2.Offset()); got != acked {
		t.Fatalf("reopened offset = %d, but %d appends were acked", got, acked)
	}
}

// TestAppendAfterCloseFails covers both write paths' closed checks.
func TestAppendAfterCloseFails(t *testing.T) {
	for _, mode := range []string{"group", "serial"} {
		t.Run(mode, func(t *testing.T) {
			l, err := OpenLog(t.TempDir(), Options{NoGroupCommit: mode == "serial"})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if err := l.Append(walBatch("late", 1)); err == nil {
				t.Fatal("append after Close succeeded")
			}
			if err := l.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
		})
	}
}
