package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"iqb/internal/dataset"
)

// storeFingerprint captures everything recovery promises to preserve:
// the full record set in acknowledgment order plus a spread of
// aggregate answers.
func storeFingerprint(t *testing.T, s *dataset.Store) map[string]any {
	t.Helper()
	// Records are fingerprinted through their wire encoding: NaN (the
	// "missing metric" sentinel) is omitted there, whereas
	// reflect.DeepEqual would report NaN != NaN on the structs.
	var wire bytes.Buffer
	if err := dataset.WriteNDJSON(&wire, s.Select(dataset.Filter{})); err != nil {
		t.Fatalf("encoding records: %v", err)
	}
	fp := map[string]any{
		"records":  wire.String(),
		"datasets": s.DatasetCounts(),
		"regions":  s.Regions(),
	}
	for _, q := range []float64{5, 50, 95} {
		v, n, err := s.AggregateCount(dataset.Filter{}, dataset.Download, q)
		if err != nil {
			t.Fatalf("aggregate p%v: %v", q, err)
		}
		fp[fmt.Sprintf("p%v", q)] = v
		fp["n"] = n
	}
	groups, err := s.GroupAggregate(dataset.Filter{}, dataset.ByRegion, dataset.Download, 50)
	if err != nil {
		t.Fatalf("group aggregate: %v", err)
	}
	fp["groups"] = groups
	return fp
}

func TestManagerRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Recovery().HasData() {
		t.Fatal("fresh dir reported recovered data")
	}
	for i := 0; i < 4; i++ {
		if err := m.Store().AddBatch(walBatch(fmt.Sprintf("b%d", i), 3)); err != nil {
			t.Fatal(err)
		}
	}
	want := storeFingerprint(t, m.Store())
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rec := m2.Recovery()
	if rec.FromSnapshot || rec.WALRecords != 12 || rec.WALBatches != 4 {
		t.Fatalf("recovery = %+v, want 4 WAL batches / 12 records, no snapshot", rec)
	}
	if got := storeFingerprint(t, m2.Store()); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered store differs:\n got %v\nwant %v", got, want)
	}
	// The recovered log continues from the durable offset.
	if err := m2.Store().Add(walRecord("post-recovery", 1)); err != nil {
		t.Fatal(err)
	}
	if got := m2.Status().WALRecords; got != 13 {
		t.Fatalf("WAL offset after recovery+add = %d, want 13", got)
	}
}

func TestManagerSnapshotCompactionAndRecovery(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := m.Store().AddBatch(walBatch(fmt.Sprintf("pre%d", i), 4)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 20 || info.WALOffset != 20 {
		t.Fatalf("snapshot info = %+v, want 20 records at offset 20", info)
	}
	if _, err := os.Stat(info.Path); err != nil {
		t.Fatalf("snapshot body missing: %v", err)
	}
	// No temp droppings survive a successful snapshot.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("leftover temp files: %v", tmps)
	}
	// Post-snapshot writes go to the WAL only.
	for i := 0; i < 3; i++ {
		if err := m.Store().AddBatch(walBatch(fmt.Sprintf("post%d", i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	want := storeFingerprint(t, m.Store())
	st := m.Status()
	if st.SnapshotOffset != 20 || st.WALRecords != 26 {
		t.Fatalf("status = %+v, want snapshot at 20, WAL at 26", st)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rec := m2.Recovery()
	if !rec.FromSnapshot || rec.SnapshotRecords != 20 || rec.WALRecords != 6 || rec.WALBatches != 3 {
		t.Fatalf("recovery = %+v, want snapshot of 20 + 3 WAL batches of 6", rec)
	}
	if got := storeFingerprint(t, m2.Store()); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered store differs from pre-restart store")
	}

	// A second snapshot supersedes the first and compacts its segments.
	info2, err := m2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info2.WALOffset != 26 || info2.Records != 26 {
		t.Fatalf("second snapshot info = %+v", info2)
	}
	if _, err := os.Stat(info.Path); !os.IsNotExist(err) {
		t.Fatalf("stale snapshot body not removed (err=%v)", err)
	}
	m3state := m2.Status()
	if m3state.SnapshotOffset != 26 {
		t.Fatalf("status after second snapshot = %+v", m3state)
	}
}

// TestManagerCrashTornTail simulates the acceptance scenario: a crash
// mid-append leaves a truncated final frame; recovery must restore
// exactly the acknowledged writes and report the tear.
func TestManagerCrashTornTail(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store().AddBatch(walBatch("acked", 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := m.Store().AddBatch(walBatch("acked2", 3)); err != nil {
		t.Fatal(err)
	}
	want := storeFingerprint(t, m.Store())
	// Crash: no Close; a partial frame lands on the active segment.
	corruptTail(t, filepath.Join(dir, walSubdir), []byte{0x42, 0x42, 0x42})

	m2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("recovery after crash: %v", err)
	}
	defer m2.Close()
	rec := m2.Recovery()
	if !rec.TornTail {
		t.Fatal("torn tail not reported")
	}
	if !rec.FromSnapshot || rec.WALRecords != 3 {
		t.Fatalf("recovery = %+v, want snapshot + 3 WAL records", rec)
	}
	if got := storeFingerprint(t, m2.Store()); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered store differs from acknowledged state")
	}
}

// TestManagerReplayTolerantOfDuplicateBatches: Append acks durability
// the moment the frame lands, so an error reported after that point
// (failed rotation or fsync) makes the writer retry a batch the WAL
// already holds. Recovery must skip the duplicate instead of refusing
// to boot.
func TestManagerReplayTolerantOfDuplicateBatches(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	batch := walBatch("retried", 3)
	if err := m.Store().AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	want := storeFingerprint(t, m.Store())
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the retry: the identical batch appended to the WAL a
	// second time, behind the manager's back.
	l, err := OpenLog(filepath.Join(dir, walSubdir), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(batch); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("recovery over a duplicated batch: %v", err)
	}
	defer m2.Close()
	rec := m2.Recovery()
	if rec.WALDuplicateBatches != 1 || rec.WALBatches != 1 || rec.WALRecords != 3 {
		t.Fatalf("recovery = %+v, want 1 applied batch + 1 duplicate skipped", rec)
	}
	if got := storeFingerprint(t, m2.Store()); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered store differs after duplicate skip")
	}
}

// TestManagerWALGrowthTrigger: with SnapshotWALBytes armed, WAL growth
// past the threshold signals GrowthC, SnapshotIfGrown cuts a snapshot
// (and only then), and the since-snapshot counters reset.
func TestManagerWALGrowthTrigger(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{NoSync: true, SnapshotWALBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Below the threshold: no signal, and SnapshotIfGrown declines.
	if err := m.Store().AddBatch(walBatch("small", 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-m.GrowthC():
		t.Fatal("growth signaled below the threshold")
	default:
	}
	if _, cut, err := m.SnapshotIfGrown(); err != nil || cut {
		t.Fatalf("SnapshotIfGrown below threshold: cut=%v err=%v", cut, err)
	}
	st := m.Status()
	if st.WALSinceSnapshotRecords != 1 || st.WALSinceSnapshotBytes <= 0 {
		t.Fatalf("since-snapshot counters = %d records / %d bytes, want 1 record and > 0 bytes",
			st.WALSinceSnapshotRecords, st.WALSinceSnapshotBytes)
	}

	// Cross the threshold: the commit hook must signal.
	for i := 0; m.Status().WALSinceSnapshotBytes < 512; i++ {
		if err := m.Store().AddBatch(walBatch(fmt.Sprintf("grow%d", i), 4)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-m.GrowthC():
	default:
		t.Fatal("no growth signal although the WAL crossed the threshold")
	}
	info, cut, err := m.SnapshotIfGrown()
	if err != nil || !cut {
		t.Fatalf("SnapshotIfGrown past threshold: cut=%v err=%v", cut, err)
	}
	if info.Records != m.Store().Len() {
		t.Fatalf("growth snapshot covered %d records, store holds %d", info.Records, m.Store().Len())
	}
	st = m.Status()
	if st.WALSinceSnapshotRecords != 0 || st.WALSinceSnapshotBytes >= 512 {
		t.Fatalf("since-snapshot counters after snapshot = %d records / %d bytes, want reset",
			st.WALSinceSnapshotRecords, st.WALSinceSnapshotBytes)
	}
	// The signal space is drained and stays quiet until new growth.
	if _, cut, _ := m.SnapshotIfGrown(); cut {
		t.Fatal("SnapshotIfGrown re-cut with no new growth")
	}
}

// TestManagerGrowthSignaledAtOpen: a recovered dir that already owes
// more replay than the threshold allows signals immediately, so the
// snapshot loop catches up right after boot instead of waiting for
// fresh ingest.
func TestManagerGrowthSignaledAtOpen(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := m.Store().AddBatch(walBatch(fmt.Sprintf("b%d", i), 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(dir, Options{NoSync: true, SnapshotWALBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	select {
	case <-m2.GrowthC():
	default:
		t.Fatal("no growth signal at open despite an over-threshold WAL")
	}
}

func TestManagerMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := m.Meta()
	if err != nil || len(empty) != 0 {
		t.Fatalf("fresh meta = %v, %v", empty, err)
	}
	want := map[string]string{"seed": "42", "tests_per_county": "120"}
	if err := m.SetMeta(want); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got, err := m2.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("meta = %v, want %v", got, want)
	}
}
