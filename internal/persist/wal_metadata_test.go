package persist

import (
	"os"
	"sync/atomic"
	"testing"
	"time"

	"iqb/internal/dataset"
)

// gatedFS parks file Syncs on a channel so a test can hold the
// committer inside its fsync (under l.mu) and probe what still answers.
type gatedFS struct {
	blocking atomic.Bool
	parked   chan struct{}
	gate     chan struct{}
}

func newGatedFS() *gatedFS {
	return &gatedFS{parked: make(chan struct{}, 8), gate: make(chan struct{})}
}

func (g *gatedFS) OpenFile(name string, flag int, perm os.FileMode) (WALFile, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &gatedFile{File: f, fs: g}, nil
}

func (g *gatedFS) Open(name string) (WALFile, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return &gatedFile{File: f, fs: g}, nil
}

func (g *gatedFS) Remove(name string) error { return os.Remove(name) }
func (g *gatedFS) SyncDir(dir string) error { return nil }

type gatedFile struct {
	*os.File
	fs *gatedFS
}

func (f *gatedFile) Sync() error {
	if f.fs.blocking.Load() {
		f.fs.parked <- struct{}{}
		<-f.fs.gate
	}
	return f.File.Sync()
}

// TestMetadataReadersNeverTakeCommitterMutex pins the lock-free
// metadata contract directly on the Log: with an append parked inside
// its fsync — the committer holding l.mu — Offset, Stats, SizeBytes,
// SizePast, and Segments must all return immediately.
func TestMetadataReadersNeverTakeCommitterMutex(t *testing.T) {
	fs := newGatedFS()
	l, err := OpenLog(t.TempDir(), Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]dataset.Record{walRecord("meta-probe", 50)}); err != nil {
		t.Fatal(err)
	}

	fs.blocking.Store(true)
	appendDone := make(chan error, 1)
	go func() {
		appendDone <- l.Append([]dataset.Record{walRecord("meta-probe-2", 50)})
	}()
	select {
	case <-fs.parked:
	case <-time.After(5 * time.Second):
		t.Fatal("append never reached the gated fsync")
	}

	readersDone := make(chan struct{})
	go func() {
		defer close(readersDone)
		if got := l.Offset(); got != 1 {
			t.Errorf("Offset during fsync = %d, want 1 (second append unacked)", got)
		}
		st := l.Stats()
		if st.AppendedFrames != 1 || st.Fsyncs != 1 {
			t.Errorf("Stats during fsync = %+v, want 1 appended frame / 1 fsync", st)
		}
		if l.SizeBytes() <= int64(len(segMagic)) {
			t.Error("SizeBytes during fsync reported an empty log")
		}
		if got := l.Segments(); got != 1 {
			t.Errorf("Segments during fsync = %d, want 1", got)
		}
		if l.SizePast(0) <= 0 {
			t.Error("SizePast during fsync reported nothing to replay")
		}
	}()
	select {
	case <-readersDone:
	case <-time.After(2 * time.Second):
		t.Fatal("metadata readers blocked behind the committer's fsync")
	}

	fs.blocking.Store(false)
	close(fs.gate)
	if err := <-appendDone; err != nil {
		t.Fatalf("gated append failed: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
