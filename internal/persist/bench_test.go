package persist

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"iqb/internal/dataset"
	"iqb/internal/pipeline"
)

// benchBatches pre-builds distinct batches so the benchmark loop
// measures ingestion, not record construction.
func benchBatches(n, per int) [][]dataset.Record {
	out := make([][]dataset.Record, n)
	for i := range out {
		out[i] = walBatch(fmt.Sprintf("bench-%d", i), per)
	}
	return out
}

// BenchmarkIngest compares store ingest throughput with the WAL tee
// off, on without fsync, and on with fsync — the durability tax the
// paper's "decoupled acquisition" architecture pays per batch.
func BenchmarkIngest(b *testing.B) {
	const per = 256
	for _, mode := range []string{"memory", "wal-nosync", "wal-fsync"} {
		b.Run(mode, func(b *testing.B) {
			batches := benchBatches(b.N, per)
			var store *dataset.Store
			switch mode {
			case "memory":
				store = dataset.NewStore()
			default:
				m, err := Open(b.TempDir(), Options{NoSync: mode == "wal-nosync"})
				if err != nil {
					b.Fatal(err)
				}
				defer m.Close()
				store = m.Store()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := store.AddBatch(batches[i]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(per), "records/op")
		})
	}
}

// BenchmarkIngestParallel measures the write-path cost group commit
// exists to amortize: 1/4/16 parallel writers pushing batches through
// the fsynced WAL, serial fsync-per-batch (wal-fsync, the old write
// path) versus the group committer (group-commit). The fsyncs/batch
// metric shows the sharing directly: 1.0 for the serial arm, shrinking
// with writer count for the grouped one.
func BenchmarkIngestParallel(b *testing.B) {
	const per = 64
	for _, writers := range []int{1, 4, 16} {
		for _, mode := range []string{"wal-fsync", "group-commit"} {
			b.Run(fmt.Sprintf("writers=%d/%s", writers, mode), func(b *testing.B) {
				m, err := Open(b.TempDir(), Options{NoGroupCommit: mode == "wal-fsync"})
				if err != nil {
					b.Fatal(err)
				}
				defer m.Close()
				store := m.Store()
				batches := benchBatches(b.N, per)
				b.ResetTimer()
				var next atomic.Int64
				next.Store(-1)
				var wg sync.WaitGroup
				errs := make([]error, writers)
				for w := 0; w < writers; w++ {
					w := w
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := next.Add(1)
							if i >= int64(b.N) {
								return
							}
							if err := store.AddBatch(batches[i]); err != nil {
								errs[w] = err
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
				st := m.Status()
				b.ReportMetric(float64(st.WALWrite.Fsyncs)/float64(b.N), "fsyncs/batch")
				b.ReportMetric(float64(per), "records/op")
			})
		}
	}
}

// benchSpec is the workload both recovery benchmarks restore: large
// enough that pipeline simulation visibly dominates file reads.
func benchSpec() pipeline.Spec {
	spec := pipeline.DefaultSpec()
	spec.Geo.States = 2
	spec.Geo.CountiesPer = 2
	spec.TestsPerCounty = 50
	spec.Days = 3
	spec.OoklaMinGroup = 2
	return spec
}

// BenchmarkRecoverVsPipelineReplay is the tentpole's payoff measured:
// restoring a server's store by re-running the full measurement
// pipeline versus reading it back from snapshot + WAL. Both arms end
// with an identical store (the recovery test asserts bit-equality; this
// one measures time).
func BenchmarkRecoverVsPipelineReplay(b *testing.B) {
	spec := benchSpec()

	b.Run("pipeline-replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := pipeline.Run(context.Background(), spec)
			if err != nil {
				b.Fatal(err)
			}
			if res.Store.Len() == 0 {
				b.Fatal("empty store")
			}
		}
	})

	for _, arm := range []struct {
		name     string
		snapshot bool
	}{
		{"recover-wal-only", false},
		{"recover-snapshot", true},
	} {
		b.Run(arm.name, func(b *testing.B) {
			dir := b.TempDir()
			m, err := Open(dir, Options{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			spec := spec
			spec.Store = m.Store()
			if _, err := pipeline.Run(context.Background(), spec); err != nil {
				b.Fatal(err)
			}
			if arm.snapshot {
				if _, err := m.Snapshot(); err != nil {
					b.Fatal(err)
				}
			}
			if err := m.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := Open(dir, Options{NoSync: true})
				if err != nil {
					b.Fatal(err)
				}
				if m.Store().Len() == 0 {
					b.Fatal("empty recovered store")
				}
				m.Close()
			}
		})
	}
}
