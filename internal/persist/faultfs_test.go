package persist

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// This file is the fault-injection layer behind persist's crash tests:
// a WALFS that wraps the real filesystem and injects the failures a
// disk and a dying process actually produce — short writes, fsync
// errors, failed rollback truncates, and a kill-point after which every
// operation fails (the in-process stand-in for SIGKILL). It also counts
// file syncs, which is how the group-commit tests prove that N acked
// batches cost fewer than N fsyncs.

// Sentinel fault errors. Production code never sees these types; tests
// match them with errors.Is through the persist error wrapping.
var (
	errKilled        = errors.New("faultfs: killed")
	errSyncInjected  = errors.New("faultfs: injected sync failure")
	errTruncInject   = errors.New("faultfs: injected truncate failure")
	errDirSyncInject = errors.New("faultfs: injected dir-sync failure")
	errRemoveInject  = errors.New("faultfs: injected remove failure")
)

// faultFS implements WALFS over the real filesystem with an injectable
// fault plan. All fields are guarded by mu; the same faultFS is shared
// by every file it opens, so a kill-point covers the whole log at once.
type faultFS struct {
	mu sync.Mutex

	// Counters.
	fileSyncs int   // file Sync attempts (successful or injected-fail)
	dirSyncs  int   // directory syncs
	wrote     int64 // bytes successfully written through the layer

	// Fault plan.
	killAt       int64 // kill once wrote reaches this many bytes; <0 disarmed
	killed       bool
	failSyncs    int     // fail the next N file Syncs (transient)
	syncErrs     []error // the distinct injected sync-error instances, in order
	failTruncate bool    // fail Truncate calls while set (breaks rollback)
	failDirSyncs int     // fail the next N directory syncs (fails a rotation)
	failRemove   bool    // fail Remove calls while set (leaves leftovers)
}

func newFaultFS() *faultFS {
	return &faultFS{killAt: -1}
}

// killAfterBytes arms the kill-point: the write that would carry the
// cumulative byte count past the threshold lands only its prefix up to
// it (a torn frame), and every operation after that fails with
// errKilled — the filesystem view of a process that died mid-append.
func (f *faultFS) killAfterBytes(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.killAt = f.wrote + n
}

// failNextSyncs makes the next n file Sync calls fail, each with a
// distinct error instance (so tests can count how many sync attempts a
// set of waiter errors traces back to).
func (f *faultFS) failNextSyncs(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncs = n
}

// setFailTruncate toggles Truncate failures, which turn an append error
// into an unrollbackable one.
func (f *faultFS) setFailTruncate(fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failTruncate = fail
}

// failNextDirSyncs makes the next n directory syncs fail — the fault
// that aborts a segment rotation after its magic is already on disk.
func (f *faultFS) failNextDirSyncs(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failDirSyncs = n
}

// setFailRemove toggles Remove failures, which turn an abandoned
// rotation into a leftover segment file on disk.
func (f *faultFS) setFailRemove(fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failRemove = fail
}

// clearFaults disarms every pending fault (but not a kill already
// triggered, which is permanent by design).
func (f *faultFS) clearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.killAt = -1
	f.failSyncs = 0
	f.failTruncate = false
	f.failDirSyncs = 0
	f.failRemove = false
}

func (f *faultFS) fileSyncCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fileSyncs
}

func (f *faultFS) syncErrors() []error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]error(nil), f.syncErrs...)
}

func (f *faultFS) isKilled() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed
}

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (WALFile, error) {
	f.mu.Lock()
	killed := f.killed
	f.mu.Unlock()
	if killed {
		return nil, errKilled
	}
	file, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *faultFS) Open(name string) (WALFile, error) {
	f.mu.Lock()
	killed := f.killed
	f.mu.Unlock()
	if killed {
		return nil, errKilled
	}
	file, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *faultFS) Remove(name string) error {
	f.mu.Lock()
	killed, failRemove := f.killed, f.failRemove
	f.mu.Unlock()
	if killed {
		return errKilled
	}
	if failRemove {
		return errRemoveInject
	}
	return os.Remove(name)
}

func (f *faultFS) SyncDir(dir string) error {
	f.mu.Lock()
	if f.killed {
		f.mu.Unlock()
		return errKilled
	}
	f.dirSyncs++
	if f.failDirSyncs > 0 {
		f.failDirSyncs--
		f.mu.Unlock()
		return errDirSyncInject
	}
	f.mu.Unlock()
	return syncDir(dir)
}

// faultFile routes one file's operations through the shared fault plan.
type faultFile struct {
	fs *faultFS
	f  *os.File
}

func (w *faultFile) Read(p []byte) (int, error) {
	w.fs.mu.Lock()
	killed := w.fs.killed
	w.fs.mu.Unlock()
	if killed {
		return 0, errKilled
	}
	return w.f.Read(p)
}

func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.fs.killed {
		return 0, errKilled
	}
	if w.fs.killAt >= 0 && w.fs.wrote+int64(len(p)) > w.fs.killAt {
		// The kill lands inside this write: the file keeps only the
		// prefix up to the kill-point — a torn frame — and the
		// process is dead from here on.
		n := int(w.fs.killAt - w.fs.wrote)
		if n < 0 {
			n = 0
		}
		if n > 0 {
			n, _ = w.f.Write(p[:n])
		}
		w.fs.wrote += int64(n)
		w.fs.killed = true
		return n, errKilled
	}
	n, err := w.f.Write(p)
	w.fs.wrote += int64(n)
	return n, err
}

func (w *faultFile) WriteAt(p []byte, off int64) (int, error) {
	w.fs.mu.Lock()
	killed := w.fs.killed
	w.fs.mu.Unlock()
	if killed {
		return 0, errKilled
	}
	return w.f.WriteAt(p, off)
}

func (w *faultFile) Truncate(size int64) error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.fs.killed {
		return errKilled
	}
	if w.fs.failTruncate {
		return errTruncInject
	}
	return w.f.Truncate(size)
}

func (w *faultFile) Sync() error {
	w.fs.mu.Lock()
	if w.fs.killed {
		w.fs.mu.Unlock()
		return errKilled
	}
	w.fs.fileSyncs++
	if w.fs.failSyncs > 0 {
		w.fs.failSyncs--
		err := fmt.Errorf("%w #%d", errSyncInjected, len(w.fs.syncErrs))
		w.fs.syncErrs = append(w.fs.syncErrs, err)
		w.fs.mu.Unlock()
		return err
	}
	w.fs.mu.Unlock()
	return w.f.Sync()
}

func (w *faultFile) Close() error {
	// Close stays allowed after a kill: the test harness tears the
	// dead log down with Log.Close, and leaking the descriptor would
	// trip the race detector's file-handle accounting across the many
	// property-test iterations.
	return w.f.Close()
}
