package persist

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"iqb/internal/dataset"
)

// These tests make the durability contract executable: faults injected
// under the WAL (faultfs_test.go) stand in for dying disks and killed
// processes, and recovery afterwards must restore exactly what the
// contract promises — every acknowledged batch, whole batches only,
// nothing from outside the submitted workload.

// TestGroupAppendErrorFansOutToAllWaiters: when the shared fsync of a
// group commit fails, every writer whose frame rode in that group must
// see the error (none may believe its batch is durable), and the log
// must keep working once the fault clears.
func TestGroupAppendErrorFansOutToAllWaiters(t *testing.T) {
	dir := t.TempDir()
	fs := newFaultFS()
	l, err := OpenLog(dir, Options{GroupWindow: 200 * time.Millisecond, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	fs.failNextSyncs(100) // every sync fails until cleared

	const writers = 4
	errs := make([]error, writers)
	var gate, done sync.WaitGroup
	gate.Add(1)
	done.Add(writers)
	for i := 0; i < writers; i++ {
		go func(i int) {
			defer done.Done()
			gate.Wait()
			errs[i] = l.Append(walBatch(fmt.Sprintf("w%d", i), 2))
		}(i)
	}
	gate.Done()
	done.Wait()

	// Every waiter errored, and the errors trace back to fewer sync
	// attempts than there were waiters — proof that waiters shared a
	// group's fsync (and its failure) rather than each paying alone.
	instances := fs.syncErrors()
	distinct := map[error]bool{}
	for i, e := range errs {
		if e == nil {
			t.Fatalf("writer %d was acked although every fsync failed", i)
		}
		if !errors.Is(e, errSyncInjected) {
			t.Fatalf("writer %d error %v does not wrap the injected sync failure", i, e)
		}
		for _, inst := range instances {
			if errors.Is(e, inst) {
				distinct[inst] = true
			}
		}
	}
	if len(distinct) >= writers {
		t.Fatalf("no fan-out: %d waiters saw %d distinct sync failures", writers, len(distinct))
	}
	// The failed groups were rolled back: nothing was acknowledged,
	// nothing is accounted.
	if got := l.Offset(); got != 0 {
		t.Fatalf("offset after failed groups = %d, want 0", got)
	}

	// The same log recovers in place once the fault clears.
	fs.clearFaults()
	if err := l.Append(walBatch("after", 3)); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen after injected sync failures: %v", err)
	}
	defer l2.Close()
	if got := l2.Offset(); got != 3 {
		t.Fatalf("reopened offset = %d, want 3 (only the post-fault batch)", got)
	}
	got := replayAll(t, l2, 0)
	if len(got) != 1 || got[0][0].ID != "after-0" {
		t.Fatalf("replay after reopen returned %d batches, want 1 post-fault batch", len(got))
	}
}

// TestKillPointMidFrameReopensRecoverable: a kill-point that tears a
// frame mid-write must surface an error to the writer, and a reopen
// (the "new process") must truncate the tear and keep every
// acknowledged batch.
func TestKillPointMidFrameReopensRecoverable(t *testing.T) {
	dir := t.TempDir()
	fs := newFaultFS()
	l, err := OpenLog(dir, Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(walBatch("acked", 3)); err != nil {
		t.Fatal(err)
	}
	fs.killAfterBytes(7) // the next frame dies 7 bytes in: a torn header
	if err := l.Append(walBatch("lost", 2)); !errors.Is(err, errKilled) {
		t.Fatalf("append across the kill-point = %v, want errKilled", err)
	}
	l.Close() // the dead process's descriptor going away

	l2, err := OpenLog(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer l2.Close()
	if !l2.TornTail() {
		t.Fatal("kill mid-frame not reported as a torn tail")
	}
	if got := l2.Offset(); got != 3 {
		t.Fatalf("offset after reopen = %d, want 3 (acked batch only)", got)
	}
	if got := replayAll(t, l2, 0); len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("replay after kill returned %v batches", len(got))
	}
	if err := l2.Append(walBatch("post", 1)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestWedgedLogFailsLoudlyUntilReopen: when a partial write cannot be
// rolled back (truncate fails too), the log must refuse further appends
// and compactions — appending past the tear would strand durable frames
// behind it, to be silently dropped by the next recovery's tail
// truncation. A reopen truncates the tear and recovers.
func TestWedgedLogFailsLoudlyUntilReopen(t *testing.T) {
	dir := t.TempDir()
	fs := newFaultFS()
	// Serial path so the wedge is reached deterministically in one call.
	l, err := OpenLog(dir, Options{NoGroupCommit: true, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(walBatch("acked", 2)); err != nil {
		t.Fatal(err)
	}
	// A kill tears the next frame AND takes the rollback truncate with
	// it — the exact shape of a process dying mid-append.
	fs.killAfterBytes(5)
	if err := l.Append(walBatch("torn", 2)); !errors.Is(err, errKilled) {
		t.Fatalf("torn append = %v, want errKilled", err)
	}
	if err := l.Append(walBatch("next", 1)); !errors.Is(err, errWedged) {
		t.Fatalf("append on a wedged log = %v, want errWedged", err)
	}
	if err := l.Compact(1); !errors.Is(err, errWedged) {
		t.Fatalf("compact on a wedged log = %v, want errWedged", err)
	}
	l.Close()

	l2, err := OpenLog(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen of a wedged log: %v", err)
	}
	defer l2.Close()
	if !l2.TornTail() || l2.Offset() != 2 {
		t.Fatalf("reopen: torn=%v offset=%d, want torn tail and the acked batch", l2.TornTail(), l2.Offset())
	}
}

// TestFailedSyncRollbackFailureWedgesLog: a frame whose fsync failed
// and whose rollback truncate also failed has unknown durability — a
// failed fsync may have dropped the frame's pages even though every
// later fsync would succeed, so appending past it would park acked
// frames behind a possible hole for the next recovery to truncate
// away (and a rotation would seal a segment whose scanned record count
// contradicts the next segment's offset name). The log must wedge, and
// a reopen must recover whatever actually survived — acked batches
// always, the unacked orphan only if its bytes made it.
func TestFailedSyncRollbackFailureWedgesLog(t *testing.T) {
	dir := t.TempDir()
	fs := newFaultFS()
	l, err := OpenLog(dir, Options{NoGroupCommit: true, SegmentBytes: 64, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(walBatch("a", 2)); err != nil {
		t.Fatal(err)
	}
	fs.failNextSyncs(1)
	fs.setFailTruncate(true)
	if err := l.Append(walBatch("orphan", 2)); !errors.Is(err, errSyncInjected) {
		t.Fatalf("append with failing sync+truncate = %v, want injected sync error", err)
	}
	fs.clearFaults()
	// The log refuses to append or compact past the unrollbackable
	// frame — no acked data may ever land behind it.
	if err := l.Append(walBatch("b", 2)); !errors.Is(err, errWedged) {
		t.Fatalf("append after failed rollback = %v, want errWedged", err)
	}
	if err := l.Compact(2); !errors.Is(err, errWedged) {
		t.Fatalf("compact after failed rollback = %v, want errWedged", err)
	}
	l.Close()

	// Reopen rescans the surviving bytes: the acked batch, plus the
	// orphan (whose write did reach the test filesystem) as an
	// unacked-but-durable batch — the shape recovery already tolerates.
	l2, err := OpenLog(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("reopen after wedge: %v", err)
	}
	defer l2.Close()
	if got := l2.Offset(); got != 4 {
		t.Fatalf("offset = %d, want 4 (acked batch + surviving orphan)", got)
	}
	if got := replayAll(t, l2, 0); len(got) != 2 {
		t.Fatalf("replay returned %d batches, want 2", len(got))
	}
	if err := l2.Append(walBatch("post", 1)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

// crashBatch builds one uniquely-identified batch with varied regions
// and values, so the recovered store's aggregates actually depend on
// which batches survived.
func crashBatch(prefix string, n int, rng *rand.Rand) []dataset.Record {
	regions := []string{"XA-01", "XA-02", "XA-01-001"}
	rs := make([]dataset.Record, n)
	for i := range rs {
		r := dataset.NewRecord(fmt.Sprintf("%s-%d", prefix, i), "ndt",
			regions[rng.Intn(len(regions))],
			time.Date(2025, 6, 2, rng.Intn(24), 0, 0, 0, time.UTC))
		r.DownloadMbps = 1 + 100*rng.Float64()
		rs[i] = r
	}
	return rs
}

// crashFingerprint captures the store as a multiset: records in
// ID-sorted wire form plus a spread of aggregates. Insertion order is
// deliberately erased — recovery replays in WAL order, the reference
// store is fed in submission order, and the store's contract says the
// answers are functions of the multiset alone.
func crashFingerprint(t *testing.T, s *dataset.Store) map[string]any {
	t.Helper()
	rs := s.Select(dataset.Filter{})
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
	var wire bytes.Buffer
	if err := dataset.WriteNDJSON(&wire, rs); err != nil {
		t.Fatalf("encoding records: %v", err)
	}
	fp := map[string]any{
		"records":  wire.String(),
		"datasets": s.DatasetCounts(),
		"regions":  s.Regions(),
	}
	for _, q := range []float64{5, 50, 95} {
		v, n, err := s.AggregateCount(dataset.Filter{}, dataset.Download, q)
		if err != nil {
			t.Fatalf("aggregate p%v: %v", q, err)
		}
		fp[fmt.Sprintf("p%v", q)] = v
		fp["n"] = n
	}
	groups, err := s.GroupAggregate(dataset.Filter{}, dataset.ByRegion, dataset.Download, 50)
	if err != nil {
		t.Fatalf("group aggregate: %v", err)
	}
	fp["groups"] = groups
	return fp
}

// TestCrashRecoveryRandomized is the property test pinning the
// durability contract under chaos: randomized interleavings of
// concurrent group-committed appends, snapshots, and compactions, with
// transient sync/truncate faults and (usually) a kill-point somewhere
// in the WAL byte stream. After the crash, recovery must yield a store
// that (a) contains every durably-acknowledged batch, (b) contains only
// whole batches from the submitted workload — an unacked batch may be
// dropped or may survive, both are legal crash outcomes — and (c) is
// bit-identical to a reference store fed the same surviving batches.
func TestCrashRecoveryRandomized(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%02d", seed), func(t *testing.T) {
			t.Parallel()
			crashIteration(t, seed)
		})
	}
}

func crashIteration(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed*7919 + 17))
	dir := t.TempDir()
	fs := newFaultFS()
	opts := Options{
		SegmentBytes: int64(256 + rng.Intn(2048)),
		GroupWindow:  time.Duration(rng.Intn(3)) * time.Millisecond,
		FS:           fs,
	}
	m, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Fault plan: usually a kill-point somewhere in the byte stream
	// (sometimes never reached — the clean-interleaving control), plus
	// a chaos goroutine sprinkling transient sync failures and
	// rollback-breaking truncate failures.
	if rng.Intn(4) > 0 {
		fs.killAfterBytes(int64(200 + rng.Intn(12000)))
	}

	const (
		writers          = 3
		batchesPerWriter = 12
	)
	submitted := make([]map[string][]dataset.Record, writers)
	acked := make([]map[string]bool, writers)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // chaos
		defer wg.Done()
		crng := rand.New(rand.NewSource(seed*31 + 7))
		for i := 0; i < 4; i++ {
			time.Sleep(time.Duration(crng.Intn(4)) * time.Millisecond)
			switch crng.Intn(3) {
			case 0:
				fs.failNextSyncs(1 + crng.Intn(2))
			case 1:
				fs.setFailTruncate(true)
				time.Sleep(time.Millisecond)
				fs.setFailTruncate(false)
			}
		}
	}()
	for w := 0; w < writers; w++ {
		w := w
		submitted[w] = map[string][]dataset.Record{}
		acked[w] = map[string]bool{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed*131 + int64(w)))
			for b := 0; b < batchesPerWriter; b++ {
				prefix := fmt.Sprintf("s%d-w%d-b%d", seed, w, b)
				rs := crashBatch(prefix, 1+wrng.Intn(4), wrng)
				submitted[w][prefix] = rs
				err := m.Store().AddBatch(rs)
				if err == nil {
					acked[w][prefix] = true
					continue
				}
				if errors.Is(err, errKilled) || errors.Is(err, errWedged) {
					return // the process is dead
				}
				// Transient failure: sometimes retry once. The WAL may
				// already hold the errored frame (failed rollback), so
				// this is also what exercises recovery's duplicate
				// tolerance.
				if wrng.Intn(2) == 0 {
					switch err2 := m.Store().AddBatch(rs); {
					case err2 == nil:
						acked[w][prefix] = true
					case errors.Is(err2, errKilled) || errors.Is(err2, errWedged):
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // snapshots + compaction racing the writers
		defer wg.Done()
		srng := rand.New(rand.NewSource(seed*947 + 3))
		for i := 0; i < 3; i++ {
			time.Sleep(time.Duration(srng.Intn(5)) * time.Millisecond)
			m.Snapshot() // failures (killed compaction, ...) are part of the chaos
		}
	}()
	wg.Wait()
	m.Close() // dead or alive, recovery below starts from the files

	m2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("recovery after crash: %v", err)
	}
	defer m2.Close()

	got := map[string]int{}
	for _, r := range m2.Store().Select(dataset.Filter{}) {
		got[r.ID]++
	}
	var present [][]dataset.Record
	total := 0
	for w := range submitted {
		for prefix, rs := range submitted[w] {
			have := 0
			for _, r := range rs {
				if got[r.ID] > 0 {
					have++
				}
			}
			if have != 0 && have != len(rs) {
				t.Fatalf("batch %s recovered partially: %d of %d records", prefix, have, len(rs))
			}
			if acked[w][prefix] && have == 0 {
				t.Fatalf("durably-acked batch %s lost by recovery", prefix)
			}
			if have == len(rs) {
				present = append(present, rs)
				total += len(rs)
			}
		}
	}
	if m2.Store().Len() != total {
		t.Fatalf("recovered store holds %d records but only %d belong to submitted batches",
			m2.Store().Len(), total)
	}

	ref := dataset.NewStore()
	for _, rs := range present {
		if err := ref.AddBatch(rs); err != nil {
			t.Fatalf("feeding reference store: %v", err)
		}
	}
	want := crashFingerprint(t, ref)
	if first := crashFingerprint(t, m2.Store()); !reflect.DeepEqual(first, want) {
		t.Fatalf("recovered store differs from reference fed the same surviving batches:\n got %v\nwant %v", first, want)
	}

	// Recovery is idempotent: reopening the recovered dir yields the
	// same store again.
	m2.Close()
	m3, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer m3.Close()
	if again := crashFingerprint(t, m3.Store()); !reflect.DeepEqual(again, want) {
		t.Fatal("second recovery differs from the first")
	}
}
