package scorecache

import (
	"errors"
	"sort"
	"time"

	"iqb/internal/iqb"
)

// Ranked is one row of the cached county ranking, best-first.
type Ranked struct {
	Region string
	Score  iqb.Score
}

// rankRow is the view's record of one county.
type rankRow struct {
	code  string
	score iqb.Score
	// ver is the county's invalidation version the score is valid at;
	// valid is false when the score was computed while ingestion was in
	// flight and must be recomputed on the next request.
	ver    uint64
	valid  bool
	noData bool
	ranked bool // present in the sorted slice
}

// rowLess is the ranking order: IQB descending, ties by code ascending —
// identical to the uncached handler's sort, so cached and uncached
// rankings are byte-identical.
func rowLess(aIQB float64, aCode string, bIQB float64, bCode string) bool {
	if aIQB != bIQB {
		return aIQB > bIQB
	}
	return aCode < bCode
}

// rankPos returns the sorted-slice position of (iqb, code): the index
// of the first row that does not order before it.
func (c *Cache) rankPos(iqb float64, code string) int {
	return sort.Search(len(c.ranked), func(i int) bool {
		r := c.ranked[i]
		return !rowLess(r.score.IQB, r.code, iqb, code)
	})
}

// removeRanked drops a row from the sorted slice.
func (c *Cache) removeRanked(row *rankRow) {
	if !row.ranked {
		return
	}
	i := c.rankPos(row.score.IQB, row.code)
	for i < len(c.ranked) && c.ranked[i] != row {
		i++ // equal-key neighbors; walk to the exact row
	}
	if i < len(c.ranked) {
		c.ranked = append(c.ranked[:i], c.ranked[i+1:]...)
	}
	row.ranked = false
}

// insertRanked places a row at its sorted position.
func (c *Cache) insertRanked(row *rankRow) {
	i := c.rankPos(row.score.IQB, row.code)
	c.ranked = append(c.ranked, nil)
	copy(c.ranked[i+1:], c.ranked[i:])
	c.ranked[i] = row
	row.ranked = true
}

// Ranking returns the counties ranked best-first over the unbounded
// time window, repairing only the rows whose regions were invalidated
// since the last call: each dirty county is rescored (through the score
// cache, so concurrent callers collapse into one computation) and moved
// to its new sorted position. Counties with no usable data are left
// out; counties whose scoring failed outright are skipped, logged, and
// counted in omitted, so one bad region no longer takes the whole
// ranking down.
func (c *Cache) Ranking(counties []string) (rows []Ranked, omitted int) {
	c.rankMu.Lock()
	defer c.rankMu.Unlock()
	for _, code := range counties {
		row := c.rankRow[code]
		if row != nil && row.valid && row.ver == c.regionVer(code) {
			continue
		}
		res, _ := c.get(code, time.Time{}, time.Time{})
		if row != nil {
			c.removeRanked(row)
		}
		c.mu.Lock()
		c.stats.RankingRepairs++
		c.mu.Unlock()
		if res.err != nil && !errors.Is(res.err, iqb.ErrNoUsableData) {
			// Skip-and-log: drop the row so the county is retried on the
			// next request, and let the rest of the ranking stand.
			delete(c.rankRow, code)
			c.log.Error("ranking: scoring region failed; omitting", "region", code, "err", res.err)
			omitted++
			continue
		}
		row = &rankRow{code: code, ver: res.ver, valid: res.clean}
		if res.err != nil {
			row.noData = true
		} else {
			row.score = res.score
			c.insertRanked(row)
		}
		c.rankRow[code] = row
	}
	rows = make([]Ranked, len(c.ranked))
	for i, r := range c.ranked {
		rows[i] = Ranked{Region: r.code, Score: r.score}
	}
	return rows, omitted
}
