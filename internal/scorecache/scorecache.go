// Package scorecache caches per-region iqb.Score results computed from
// a dataset.Store, invalidating them precisely when ingestion commits
// new records — the read-path twin of internal/persist's write-path
// durability.
//
// # Keying and invalidation
//
// Entries are keyed by (region, from, to, config hash). Every committed
// batch bumps an invalidation version for each region code it touched
// and for every hierarchical ancestor of those codes ("XA-01-002" also
// invalidates "XA-01" and "XA", whose subtree scores depend on it), and
// evicts exactly the cached windows that contain at least one of the
// batch's record timestamps. Cached scores for untouched siblings and
// for time windows the batch cannot affect survive.
//
// # Consistency
//
// The cache subscribes to the store's ordered hook chain (so it coexists
// with the persistence layer's WAL tee): the Ingest phase marks the
// touched regions in-flight before any shard is mutated, and the Commit
// phase — which the store fires only after the whole batch is visible —
// clears the mark, bumps the versions, and evicts. A score computed
// while any overlapping batch was in flight, or across a version change,
// is served to its requester but never retained, so a cache hit is
// always a score of a fully applied record multiset. Concurrent cold
// misses for one key are collapsed into a single computation.
//
// # Ranking
//
// The cache also maintains the county ranking as an incrementally
// repaired sorted view: an invalidated county is rescored and moved to
// its new position; everything else keeps its cached score and slot.
package scorecache

import (
	"errors"
	"log/slog"
	"strings"
	"sync"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/iqb"
	"iqb/internal/telemetry"
)

// errScorePanic is what flight followers observe when the computation
// they joined panicked; the panic itself propagates to the leader's
// caller.
var errScorePanic = errors.New("scorecache: scoring panicked")

// Outcome says how a Score call was served.
type Outcome int

// Score outcomes.
const (
	// Hit served a retained entry.
	Hit Outcome = iota
	// Miss computed the score and retained it.
	Miss
	// MissUncacheable computed the score while an overlapping batch was
	// in flight (or committed mid-computation); the result was served
	// but not retained.
	MissUncacheable
	// SharedFlight joined another caller's in-progress computation.
	SharedFlight
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case MissUncacheable:
		return "miss-uncacheable"
	case SharedFlight:
		return "shared-flight"
	default:
		return "unknown"
	}
}

// Stats is a point-in-time view of cache effectiveness, shaped for the
// /v1/health endpoint.
type Stats struct {
	// Entries is the number of retained scores.
	Entries int `json:"entries"`
	// Hits and Misses count Score calls served from / computed into the
	// cache; Uncacheable counts computations that could not be retained
	// because ingestion was in flight.
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Uncacheable uint64 `json:"uncacheable"`
	// SharedFlights counts calls that joined a concurrent computation
	// instead of starting their own.
	SharedFlights uint64 `json:"shared_flights"`
	// Invalidations counts committed batches observed; Evictions counts
	// entries they dropped.
	Invalidations uint64 `json:"invalidations"`
	Evictions     uint64 `json:"evictions"`
	// RankingRepairs counts county rows rescored and re-sorted in the
	// incremental ranking view.
	RankingRepairs uint64 `json:"ranking_repairs"`
	// ConfigHash identifies the scoring configuration the entries were
	// computed under.
	ConfigHash string `json:"config_hash"`
}

// DefaultMaxEntries caps retained scores. Unbounded-window entries are
// bounded by the region count, but from/to are client-controlled on
// /v1/score, so distinct windows could otherwise grow the cache without
// limit.
const DefaultMaxEntries = 1 << 16

// key identifies one cached score. Zero from/to bounds are encoded via
// the *Zero flags so the zero time and the Unix epoch cannot collide.
type key struct {
	region           string
	fromZero, toZero bool
	fromNS, toNS     int64
	cfg              string
}

func boundNS(t time.Time) (bool, int64) {
	if t.IsZero() {
		return true, 0
	}
	return false, t.UnixNano()
}

// entry is one retained score (or its deterministic no-data error).
type entry struct {
	score  iqb.Score
	err    error
	noData bool
}

// flight is one in-progress computation other callers can join.
type flight struct {
	done chan struct{}
	res  result
}

// result carries a computed score plus the bookkeeping the ranking view
// needs: the region version it is valid at and whether it was retained
// (computed from a fully applied record multiset).
type result struct {
	score iqb.Score
	err   error
	ver   uint64
	clean bool
}

// Cache is a versioned scored-region cache bound to one store and one
// scoring configuration. Create with New, detach with Close. Safe for
// concurrent use. Cached iqb.Score values are shared between callers
// and must be treated as immutable.
type Cache struct {
	store   *dataset.Store
	cfg     iqb.Config
	cfgHash string
	log     *slog.Logger
	remove  func() // deregisters the hook-chain observer

	// scoreFn computes an uncached score; tests substitute it to count
	// or fail computations. Defaults to cfg.ScoreRegion.
	scoreFn func(region string, from, to time.Time) (iqb.Score, error)

	mu         sync.Mutex
	maxEntries int
	entries    map[key]*entry
	byRegion   map[string]map[key]struct{} // region -> its keys, for eviction
	ver        map[string]uint64           // region (incl. ancestors) -> commit version
	pending    map[string]int              // region (incl. ancestors) -> in-flight batches
	flights    map[key]*flight
	stats      Stats

	// rankMu serializes ranking repairs; it is acquired before mu and
	// never the other way around.
	rankMu  sync.Mutex
	rankRow map[string]*rankRow
	ranked  []*rankRow // sorted: IQB descending, ties by code ascending
}

// New builds a cache over store scored with cfg and registers it on the
// store's hook chain. The logger may be nil.
func New(store *dataset.Store, cfg iqb.Config, logger *slog.Logger) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hash, err := cfg.Hash()
	if err != nil {
		return nil, err
	}
	if logger == nil {
		logger = slog.Default()
	}
	c := &Cache{
		store:      store,
		cfg:        cfg,
		cfgHash:    hash,
		log:        logger,
		maxEntries: DefaultMaxEntries,
		entries:    map[key]*entry{},
		byRegion:   map[string]map[key]struct{}{},
		ver:        map[string]uint64{},
		pending:    map[string]int{},
		flights:    map[key]*flight{},
		rankRow:    map[string]*rankRow{},
	}
	c.stats.ConfigHash = hash
	c.scoreFn = func(region string, from, to time.Time) (iqb.Score, error) {
		return cfg.ScoreRegion(store, region, from, to)
	}
	c.remove = store.AddHooks(dataset.Hooks{
		Ingest: c.onIngest,
		Commit: c.onCommit,
		Abort:  c.onAbort,
	})
	return c, nil
}

// Close detaches the cache from the store's hook chain. The cache stops
// observing ingestion and must not be used afterwards.
func (c *Cache) Close() { c.remove() }

// ConfigHash identifies the scoring configuration behind every entry.
func (c *Cache) ConfigHash() string { return c.cfgHash }

// ancestorsAndSelf expands a hierarchical region code into itself plus
// every ancestor prefix: "XA-01-002" -> XA-01-002, XA-01, XA. A batch
// touching a county invalidates every subtree score above it.
func ancestorsAndSelf(code string, visit func(string)) {
	visit(code)
	for {
		i := strings.LastIndexByte(code, '-')
		if i < 0 {
			return
		}
		code = code[:i]
		visit(code)
	}
}

// timeRange is the record-timestamp span a batch contributed to one
// region (including via descendants).
type timeRange struct {
	min, max time.Time
}

// touchedRegions maps every region a batch affects — each record's code
// and all its ancestors — to the batch's timestamp span there.
func touchedRegions(rs []dataset.Record) map[string]timeRange {
	out := make(map[string]timeRange)
	for _, r := range rs {
		ancestorsAndSelf(r.Region, func(code string) {
			tr, ok := out[code]
			if !ok {
				out[code] = timeRange{min: r.Time, max: r.Time}
				return
			}
			if r.Time.Before(tr.min) {
				tr.min = r.Time
			}
			if r.Time.After(tr.max) {
				tr.max = r.Time
			}
			out[code] = tr
		})
	}
	return out
}

// windowTouches reports whether a cached [from, to) window (zero bounds
// unbounded) contains any instant of the batch's span in that region.
func windowTouches(k key, tr timeRange) bool {
	if !k.fromZero && tr.max.UnixNano() < k.fromNS {
		return false
	}
	if !k.toZero && tr.min.UnixNano() >= k.toNS {
		return false
	}
	return true
}

// onIngest marks the touched regions in flight before any shard is
// mutated; scores computed from here on cannot be retained until the
// batch commits or aborts. It never vetoes.
func (c *Cache) onIngest(rs []dataset.Record) error {
	c.mu.Lock()
	for code := range touchedRegions(rs) {
		c.pending[code]++
	}
	c.mu.Unlock()
	return nil
}

// onAbort unwinds onIngest for a batch a later hook vetoed.
func (c *Cache) onAbort(rs []dataset.Record) {
	c.mu.Lock()
	c.decPending(rs)
	c.mu.Unlock()
}

func (c *Cache) decPending(rs []dataset.Record) {
	for code := range touchedRegions(rs) {
		if c.pending[code]--; c.pending[code] <= 0 {
			delete(c.pending, code)
		}
	}
}

// onCommit fires once the batch is fully visible in the shards: clear
// the in-flight marks, bump each touched region's version, and evict
// exactly the cached windows the batch's timestamps fall into.
func (c *Cache) onCommit(rs []dataset.Record) {
	touched := touchedRegions(rs)
	c.mu.Lock()
	c.stats.Invalidations++
	for code, tr := range touched {
		if c.pending[code]--; c.pending[code] <= 0 {
			delete(c.pending, code)
		}
		c.ver[code]++
		for k := range c.byRegion[code] {
			if windowTouches(k, tr) {
				delete(c.entries, k)
				delete(c.byRegion[code], k)
				c.stats.Evictions++
			}
		}
		if len(c.byRegion[code]) == 0 {
			delete(c.byRegion, code)
		}
	}
	c.mu.Unlock()
}

// Score returns the region subtree's score for the [from, to) window
// (zero bounds unbounded), from cache when possible. The error is
// iqb.ErrNoUsableData-compatible exactly as Config.ScoreRegion's is.
func (c *Cache) Score(region string, from, to time.Time) (iqb.Score, Outcome, error) {
	res, out := c.get(region, from, to)
	return res.score, out, res.err
}

// get is Score plus the version/cleanliness bookkeeping Ranking needs.
func (c *Cache) get(region string, from, to time.Time) (result, Outcome) {
	k := key{region: region, cfg: c.cfgHash}
	k.fromZero, k.fromNS = boundNS(from)
	k.toZero, k.toNS = boundNS(to)

	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		res := result{score: e.score, err: e.err, ver: c.ver[region], clean: true}
		c.stats.Hits++
		c.mu.Unlock()
		return res, Hit
	}
	if f, ok := c.flights[k]; ok {
		c.stats.SharedFlights++
		c.mu.Unlock()
		<-f.done
		return f.res, SharedFlight
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	v0 := c.ver[region]
	clean0 := c.pending[region] == 0
	c.mu.Unlock()

	// The flight must resolve even if scoring panics (the HTTP layer
	// recovers panics, so the process lives on): otherwise the key —
	// and, through the ranking view's lock, every future ranking —
	// would block forever on a done channel nobody closes.
	completed := false
	defer func() {
		if completed {
			return
		}
		c.mu.Lock()
		delete(c.flights, k)
		c.stats.Misses++
		c.stats.Uncacheable++
		c.mu.Unlock()
		f.res = result{err: errScorePanic, ver: v0}
		close(f.done)
	}()
	score, err := c.scoreFn(region, from, to)
	completed = true

	c.mu.Lock()
	delete(c.flights, k)
	noData := errors.Is(err, iqb.ErrNoUsableData)
	// Retain only scores provably computed from a fully applied record
	// multiset: no overlapping batch in flight when the computation
	// started or finished, and no commit in between. Deterministic
	// no-data outcomes are retained too (they spare the ranking view a
	// rescore of empty counties); other errors are never retained.
	cacheable := clean0 && c.pending[region] == 0 && c.ver[region] == v0 &&
		(err == nil || noData)
	out := MissUncacheable
	c.stats.Misses++
	if cacheable {
		if len(c.entries) >= c.maxEntries {
			c.evictForSpaceLocked()
		}
		c.entries[k] = &entry{score: score, err: err, noData: noData}
		if c.byRegion[region] == nil {
			c.byRegion[region] = map[key]struct{}{}
		}
		c.byRegion[region][k] = struct{}{}
		out = Miss
	} else {
		c.stats.Uncacheable++
	}
	f.res = result{score: score, err: err, ver: v0, clean: cacheable}
	c.mu.Unlock()
	close(f.done)
	return f.res, out
}

// evictForSpaceLocked drops one entry to make room at the cap,
// preferring a windowed entry: their key space is client-controlled
// (from/to on /v1/score) and therefore unbounded, while
// unbounded-window entries back the ranking view and number at most one
// per region. Map iteration order makes the victim effectively random.
// Callers hold c.mu.
func (c *Cache) evictForSpaceLocked() {
	var victim *key
	for k := range c.entries {
		k := k
		if !k.fromZero || !k.toZero {
			victim = &k
			break
		}
		if victim == nil {
			victim = &k
		}
	}
	if victim == nil {
		return
	}
	delete(c.entries, *victim)
	if br := c.byRegion[victim.region]; br != nil {
		delete(br, *victim)
		if len(br) == 0 {
			delete(c.byRegion, victim.region)
		}
	}
	c.stats.Evictions++
}

// Stats snapshots cache effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// RegisterMetrics exposes the cache's effectiveness counters on r (nil
// is a no-op). The collectors sample the authoritative counters via
// Stats — one short c.mu hold per sample, never the scoring
// singleflight — instead of double-counting on the hot path.
func (c *Cache) RegisterMetrics(r *telemetry.Registry) {
	if r == nil {
		return
	}
	sample := func(f func(Stats) float64) func() float64 {
		return func() float64 { return f(c.Stats()) }
	}
	r.CounterFunc("iqb_scorecache_hits_total",
		"Score calls served from the cache.", nil,
		sample(func(s Stats) float64 { return float64(s.Hits) }))
	r.CounterFunc("iqb_scorecache_misses_total",
		"Score calls computed into the cache.", nil,
		sample(func(s Stats) float64 { return float64(s.Misses) }))
	r.CounterFunc("iqb_scorecache_uncacheable_total",
		"Computations not retained because ingestion was in flight.", nil,
		sample(func(s Stats) float64 { return float64(s.Uncacheable) }))
	r.CounterFunc("iqb_scorecache_shared_flights_total",
		"Calls that joined a concurrent computation instead of starting their own.", nil,
		sample(func(s Stats) float64 { return float64(s.SharedFlights) }))
	r.CounterFunc("iqb_scorecache_invalidations_total",
		"Committed batches observed by the invalidation hook.", nil,
		sample(func(s Stats) float64 { return float64(s.Invalidations) }))
	r.CounterFunc("iqb_scorecache_evictions_total",
		"Cached scores dropped by invalidation or capacity.", nil,
		sample(func(s Stats) float64 { return float64(s.Evictions) }))
	r.CounterFunc("iqb_scorecache_ranking_repairs_total",
		"County rows rescored and re-sorted in the incremental ranking view.", nil,
		sample(func(s Stats) float64 { return float64(s.RankingRepairs) }))
	r.GaugeFunc("iqb_scorecache_entries",
		"Scores currently retained.", nil,
		sample(func(s Stats) float64 { return float64(s.Entries) }))
}

func (c *Cache) regionVer(code string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ver[code]
}
