package scorecache

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"testing"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/iqb"
	"iqb/internal/persist"
)

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// rec builds a fully populated record for one dataset/region.
func rec(id, ds, region string, ts time.Time, down float64) dataset.Record {
	r := dataset.NewRecord(id, ds, region, ts)
	r.DownloadMbps = down
	r.UploadMbps = down / 4
	r.LatencyMS = 15
	r.LossFrac = 0.001
	return r
}

// seedCounty fills one county with n good records per dataset.
func seedCounty(t testing.TB, s *dataset.Store, county string, n int) {
	t.Helper()
	ts := time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC)
	var batch []dataset.Record
	for _, ds := range []string{"ndt", "cloudflare", "ookla"} {
		for i := 0; i < n; i++ {
			batch = append(batch, rec(fmt.Sprintf("%s-%s-%d", county, ds, i), ds, county, ts, 200))
		}
	}
	if err := s.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
}

func newCache(t testing.TB, s *dataset.Store) *Cache {
	t.Helper()
	c, err := New(s, iqb.DefaultConfig(), testLogger())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func scoreJSON(t testing.TB, sc iqb.Score) string {
	t.Helper()
	b, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestScoreHitMissAndPreciseInvalidation: a second read hits; ingesting
// into one county evicts that county and its ancestors but leaves the
// sibling county's entry alone.
func TestScoreHitMissAndPreciseInvalidation(t *testing.T) {
	s := dataset.NewStore()
	seedCounty(t, s, "XA-01-001", 15)
	seedCounty(t, s, "XA-01-002", 15)
	c := newCache(t, s)

	zero := time.Time{}
	s1, out, err := c.Score("XA-01-001", zero, zero)
	if err != nil || out != Miss {
		t.Fatalf("first read: outcome=%v err=%v", out, err)
	}
	if _, out, _ = c.Score("XA-01-001", zero, zero); out != Hit {
		t.Fatalf("second read outcome = %v, want hit", out)
	}
	if _, out, _ = c.Score("XA-01-002", zero, zero); out != Miss {
		t.Fatalf("sibling first read outcome = %v", out)
	}
	// Ancestor subtree scores cache too.
	if _, out, _ = c.Score("XA-01", zero, zero); out != Miss {
		t.Fatalf("state first read outcome = %v", out)
	}

	// Ingest into county 001: county 001 and the state are invalidated,
	// county 002 survives.
	if err := s.AddBatch([]dataset.Record{rec("new", "ndt", "XA-01-001", time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC), 5)}); err != nil {
		t.Fatal(err)
	}
	s1b, out, err := c.Score("XA-01-001", zero, zero)
	if err != nil || out != Miss {
		t.Fatalf("post-ingest county read: outcome=%v err=%v", out, err)
	}
	if scoreJSON(t, s1) == scoreJSON(t, s1b) {
		t.Fatal("county score unchanged by an ingested bad record")
	}
	if _, out, _ = c.Score("XA-01", zero, zero); out != Miss {
		t.Fatalf("state read after descendant ingest = %v, want miss", out)
	}
	if _, out, _ = c.Score("XA-01-002", zero, zero); out != Hit {
		t.Fatalf("sibling read after unrelated ingest = %v, want hit", out)
	}

	st := c.Stats()
	if st.Evictions == 0 || st.Invalidations != 1 || st.ConfigHash == "" {
		t.Fatalf("stats = %+v", st)
	}
}

// TestWindowPreciseInvalidation: a batch only evicts cached windows its
// record timestamps fall into.
func TestWindowPreciseInvalidation(t *testing.T) {
	s := dataset.NewStore()
	seedCounty(t, s, "XA-01-001", 15) // records at 2025-06-01 12:00
	c := newCache(t, s)

	june1 := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	june2 := june1.AddDate(0, 0, 1)
	june3 := june1.AddDate(0, 0, 2)
	if _, out, err := c.Score("XA-01-001", june1, june2); err != nil || out != Miss {
		t.Fatalf("windowed read: outcome=%v err=%v", out, err)
	}
	if _, out, _ := c.Score("XA-01-001", june1, june2); out != Hit {
		t.Fatal("windowed entry not cached")
	}

	// New record on June 2: outside the [June 1, June 2) window.
	if err := s.Add(rec("later", "ndt", "XA-01-001", june2.Add(6*time.Hour), 50)); err != nil {
		t.Fatal(err)
	}
	if _, out, _ := c.Score("XA-01-001", june1, june2); out != Hit {
		t.Fatal("batch outside the window evicted it")
	}
	// A window containing June 2 must miss.
	if _, out, err := c.Score("XA-01-001", june1, june3); err != nil || out != Miss {
		t.Fatalf("covering window: outcome=%v err=%v", out, err)
	}
}

// TestNoUsableDataIsCached: empty regions resolve from cache instead of
// rescoring on every request.
func TestNoUsableDataIsCached(t *testing.T) {
	s := dataset.NewStore()
	c := newCache(t, s)
	zero := time.Time{}
	_, out, err := c.Score("XZ-99", zero, zero)
	if !errors.Is(err, iqb.ErrNoUsableData) || out != Miss {
		t.Fatalf("empty region: outcome=%v err=%v", out, err)
	}
	_, out, err = c.Score("XZ-99", zero, zero)
	if !errors.Is(err, iqb.ErrNoUsableData) || out != Hit {
		t.Fatalf("empty region second read: outcome=%v err=%v", out, err)
	}
}

// TestSingleflight: concurrent cold misses for one key run the scoring
// function once; everyone else joins the flight.
func TestSingleflight(t *testing.T) {
	s := dataset.NewStore()
	seedCounty(t, s, "XA-01-001", 15)
	c := newCache(t, s)

	var mu sync.Mutex
	computes := 0
	inner := c.scoreFn
	gate := make(chan struct{})
	c.scoreFn = func(region string, from, to time.Time) (iqb.Score, error) {
		mu.Lock()
		computes++
		mu.Unlock()
		<-gate
		return inner(region, from, to)
	}

	const readers = 8
	var wg sync.WaitGroup
	outcomes := make([]Outcome, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, out, err := c.Score("XA-01-001", time.Time{}, time.Time{})
			if err != nil {
				t.Error(err)
			}
			outcomes[i] = out
		}(i)
	}
	// Let the followers pile onto the flight, then release it.
	for {
		c.mu.Lock()
		n := c.stats.SharedFlights
		c.mu.Unlock()
		if n == readers-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if computes != 1 {
		t.Fatalf("scoring ran %d times for %d concurrent readers", computes, readers)
	}
	misses, shared := 0, 0
	for _, out := range outcomes {
		switch out {
		case Miss:
			misses++
		case SharedFlight:
			shared++
		}
	}
	if misses != 1 || shared != readers-1 {
		t.Fatalf("outcomes = %v", outcomes)
	}
}

// TestInFlightBatchBlocksRetention: a score computed while an
// overlapping batch is mid-application is served but never retained.
func TestInFlightBatchBlocksRetention(t *testing.T) {
	s := dataset.NewStore()
	seedCounty(t, s, "XA-01-001", 15)
	c := newCache(t, s)

	// A blocking hook registered after the cache: the cache's Ingest
	// phase (pending mark) has run by the time the batch parks here.
	hold := make(chan struct{})
	parked := make(chan struct{})
	remove := s.AddIngestHook(func(rs []dataset.Record) error {
		close(parked)
		<-hold
		return nil
	})
	defer remove()

	done := make(chan error, 1)
	go func() {
		done <- s.AddBatch([]dataset.Record{rec("inflight", "ndt", "XA-01-001", time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC), 5)})
	}()
	<-parked

	// Computed mid-flight: served, not retained.
	if _, out, err := c.Score("XA-01-001", time.Time{}, time.Time{}); err != nil || out != MissUncacheable {
		t.Fatalf("mid-flight read: outcome=%v err=%v", out, err)
	}
	close(hold)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// After commit: a fresh miss (nothing stale was retained), then hits.
	if _, out, err := c.Score("XA-01-001", time.Time{}, time.Time{}); err != nil || out != Miss {
		t.Fatalf("post-commit read: outcome=%v err=%v", out, err)
	}
	if _, out, _ := c.Score("XA-01-001", time.Time{}, time.Time{}); out != Hit {
		t.Fatal("post-commit entry not retained")
	}
	if st := c.Stats(); st.Uncacheable == 0 {
		t.Fatalf("stats did not count the uncacheable compute: %+v", st)
	}
}

// TestAbortedBatchUnwindsPending: a batch vetoed by a later hook must
// not leave the cache permanently convinced ingestion is in flight.
func TestAbortedBatchUnwindsPending(t *testing.T) {
	s := dataset.NewStore()
	seedCounty(t, s, "XA-01-001", 15)
	c := newCache(t, s)

	boom := errors.New("disk full")
	remove := s.AddIngestHook(func(rs []dataset.Record) error { return boom })
	if err := s.Add(rec("vetoed", "ndt", "XA-01-001", time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC), 5)); !errors.Is(err, boom) {
		t.Fatalf("expected veto, got %v", err)
	}
	remove()

	// The abort cleared the pending mark, so a fresh compute is retained.
	if _, out, err := c.Score("XA-01-001", time.Time{}, time.Time{}); err != nil || out != Miss {
		t.Fatalf("post-abort read: outcome=%v err=%v", out, err)
	}
	if _, out, _ := c.Score("XA-01-001", time.Time{}, time.Time{}); out != Hit {
		t.Fatal("post-abort entry not retained")
	}
}

// TestFlightResolvesOnPanic: a panicking scoring function must not
// leave the flight registered forever — followers get an error, the
// panic propagates to the leader's caller (the HTTP layer recovers
// panics, so the process survives), and the key works again afterwards.
func TestFlightResolvesOnPanic(t *testing.T) {
	s := dataset.NewStore()
	seedCounty(t, s, "XA-01-001", 15)
	c := newCache(t, s)

	inner := c.scoreFn
	joined := make(chan struct{})
	c.scoreFn = func(region string, from, to time.Time) (iqb.Score, error) {
		<-joined // wait until a follower is on the flight
		panic("synthetic scoring panic")
	}

	follower := make(chan error, 1)
	leader := make(chan any, 1)
	go func() {
		defer func() { leader <- recover() }()
		c.Score("XA-01-001", time.Time{}, time.Time{})
		leader <- nil
	}()
	// Wait for the leader's flight, join it, then release the panic.
	for {
		c.mu.Lock()
		n := len(c.flights)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	go func() {
		_, _, err := c.Score("XA-01-001", time.Time{}, time.Time{})
		follower <- err
	}()
	for {
		c.mu.Lock()
		n := c.stats.SharedFlights
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(joined)

	if rec := <-leader; rec == nil {
		t.Fatal("leader did not observe the panic")
	}
	if err := <-follower; !errors.Is(err, errScorePanic) {
		t.Fatalf("follower err = %v, want errScorePanic", err)
	}

	// The key recovers: a fresh compute succeeds and is retained.
	c.scoreFn = inner
	if _, out, err := c.Score("XA-01-001", time.Time{}, time.Time{}); err != nil || out != Miss {
		t.Fatalf("post-panic read: outcome=%v err=%v", out, err)
	}
	if _, out, _ := c.Score("XA-01-001", time.Time{}, time.Time{}); out != Hit {
		t.Fatal("post-panic entry not retained")
	}
}

// TestEntryCapEvictsWindowedFirst: the cache cannot grow without bound
// on client-chosen windows, and making room sacrifices windowed entries
// before the unbounded ones that back the ranking.
func TestEntryCapEvictsWindowedFirst(t *testing.T) {
	s := dataset.NewStore()
	seedCounty(t, s, "XA-01-001", 15)
	c := newCache(t, s)
	c.mu.Lock()
	c.maxEntries = 3
	c.mu.Unlock()

	zero := time.Time{}
	if _, out, err := c.Score("XA-01-001", zero, zero); err != nil || out != Miss {
		t.Fatalf("unbounded read: outcome=%v err=%v", out, err)
	}
	base := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		from := base.Add(time.Duration(i) * time.Minute)
		if _, _, err := c.Score("XA-01-001", from, base.AddDate(0, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries > 3 {
		t.Fatalf("entries = %d, want <= cap 3", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("cap produced no evictions")
	}
	// The unbounded entry survived the windowed churn.
	if _, out, _ := c.Score("XA-01-001", zero, zero); out != Hit {
		t.Fatalf("unbounded entry evicted before windowed ones: outcome=%v", out)
	}
}

// TestRankingIncrementalRepair: a ranking is cached; ingesting into one
// county rescored exactly that county, and the order is repaired.
func TestRankingIncrementalRepair(t *testing.T) {
	s := dataset.NewStore()
	counties := []string{"XA-01-001", "XA-01-002", "XA-01-003"}
	seedCounty(t, s, "XA-01-001", 15)
	seedCounty(t, s, "XA-01-002", 15)
	// 003 stays empty: no usable data, excluded from rows.
	c := newCache(t, s)

	rows, omitted := c.Ranking(counties)
	if omitted != 0 || len(rows) != 2 {
		t.Fatalf("rows=%d omitted=%d", len(rows), omitted)
	}
	repairs0 := c.Stats().RankingRepairs
	if repairs0 != 3 {
		t.Fatalf("cold ranking repaired %d rows, want 3", repairs0)
	}

	// Unchanged store: no repairs, same rows.
	rows2, _ := c.Ranking(counties)
	if c.Stats().RankingRepairs != repairs0 {
		t.Fatalf("warm ranking repaired rows: %+v", c.Stats())
	}
	if fmt.Sprint(rows2) != fmt.Sprint(rows) {
		t.Fatal("warm ranking differs from cold")
	}

	// Degrade county 001 hard enough to flip the order.
	ts := time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC)
	var bad []dataset.Record
	for _, ds := range []string{"ndt", "cloudflare", "ookla"} {
		for i := 0; i < 40; i++ {
			r := rec(fmt.Sprintf("bad-%s-%d", ds, i), ds, "XA-01-001", ts, 1)
			r.LatencyMS = 900
			r.LossFrac = 0.2
			bad = append(bad, r)
		}
	}
	if err := s.AddBatch(bad); err != nil {
		t.Fatal(err)
	}
	rows3, _ := c.Ranking(counties)
	if got := c.Stats().RankingRepairs - repairs0; got != 1 {
		t.Fatalf("repaired %d rows after single-county ingest, want 1", got)
	}
	if rows3[0].Region != "XA-01-002" || rows3[1].Region != "XA-01-001" {
		t.Fatalf("order not repaired: %v then %v", rows3[0].Region, rows3[1].Region)
	}

	// Filling the empty county pulls it into the ranking.
	seedCounty(t, s, "XA-01-003", 15)
	rows4, _ := c.Ranking(counties)
	if len(rows4) != 3 {
		t.Fatalf("rows after filling empty county = %d", len(rows4))
	}
}

// TestRankingOmitsFailedRegion: a county whose scoring fails with a
// non-ErrNoUsableData error is skipped and counted, not fatal, and is
// retried on the next request.
func TestRankingOmitsFailedRegion(t *testing.T) {
	s := dataset.NewStore()
	seedCounty(t, s, "XA-01-001", 15)
	seedCounty(t, s, "XA-01-002", 15)
	c := newCache(t, s)

	inner := c.scoreFn
	fail := true
	c.scoreFn = func(region string, from, to time.Time) (iqb.Score, error) {
		if fail && region == "XA-01-002" {
			return iqb.Score{}, errors.New("synthetic scoring failure")
		}
		return inner(region, from, to)
	}

	rows, omitted := c.Ranking([]string{"XA-01-001", "XA-01-002"})
	if omitted != 1 || len(rows) != 1 || rows[0].Region != "XA-01-001" {
		t.Fatalf("rows=%v omitted=%d", rows, omitted)
	}
	// Once the failure clears, the county rejoins.
	fail = false
	rows, omitted = c.Ranking([]string{"XA-01-001", "XA-01-002"})
	if omitted != 0 || len(rows) != 2 {
		t.Fatalf("after recovery rows=%d omitted=%d", len(rows), omitted)
	}
}

// TestWALAndCacheHooksCoexist is the acceptance check for the hook
// chain: the persistence layer's WAL tee and the score cache's
// invalidation hooks live on one store, and both keep working — every
// batch lands durably in the WAL and still invalidates the cache.
func TestWALAndCacheHooksCoexist(t *testing.T) {
	m, err := persist.Open(t.TempDir(), persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s := m.Store()
	c := newCache(t, s)

	seedCounty(t, s, "XA-01-001", 15)
	if got, want := m.Status().WALRecords, uint64(s.Len()); got != want {
		t.Fatalf("WAL holds %d records, store %d", got, want)
	}

	zero := time.Time{}
	before, out, err := c.Score("XA-01-001", zero, zero)
	if err != nil || out != Miss {
		t.Fatalf("first read: outcome=%v err=%v", out, err)
	}
	if _, out, _ = c.Score("XA-01-001", zero, zero); out != Hit {
		t.Fatal("cache not retaining on a WAL-backed store")
	}

	// One more batch: teed to the WAL *and* invalidating the cache.
	walBefore := m.Status().WALRecords
	if err := s.Add(rec("both", "ndt", "XA-01-001", time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC), 2)); err != nil {
		t.Fatal(err)
	}
	if got := m.Status().WALRecords; got != walBefore+1 {
		t.Fatalf("WAL records = %d, want %d", got, walBefore+1)
	}
	after, out, err := c.Score("XA-01-001", zero, zero)
	if err != nil || out != Miss {
		t.Fatalf("post-ingest read: outcome=%v err=%v", out, err)
	}
	if scoreJSON(t, before) == scoreJSON(t, after) {
		t.Fatal("cache served the pre-ingest score after a WAL-teed batch")
	}
}

// TestCacheNeverServesPartialBatch is the ingest-during-read race test:
// concurrent writers stream fixed-size batches into counties while
// readers hammer Score and Ranking. Every batch carries batchSize
// records per dataset for one county, so any score computed from a
// partially applied batch would show a per-dataset sample count that is
// not a multiple of batchSize. Cache hits — and, after the writers
// drain, every cached answer — must never show one.
func TestCacheNeverServesPartialBatch(t *testing.T) {
	const (
		batchSize = 7
		batches   = 25
	)
	counties := []string{"XA-01-001", "XA-01-002"}
	datasets := []string{"ndt", "cloudflare", "ookla"}

	s := dataset.NewStore()
	c := newCache(t, s)
	cfg := iqb.DefaultConfig()

	checkMultiples := func(sc iqb.Score, where string) {
		for _, uc := range sc.UseCases {
			for _, rq := range uc.Requirements {
				for _, cell := range rq.Datasets {
					if cell.Samples%batchSize != 0 {
						t.Errorf("%s: %s/%s/%s has %d samples, not a multiple of %d — partial batch observed",
							where, uc.Name, rq.Name, cell.Dataset, cell.Samples, batchSize)
					}
				}
			}
		}
	}

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers: one per county, fixed-size batches.
	for _, county := range counties {
		writers.Add(1)
		go func(county string) {
			defer writers.Done()
			ts := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
			for b := 0; b < batches; b++ {
				var batch []dataset.Record
				for _, ds := range datasets {
					for i := 0; i < batchSize; i++ {
						batch = append(batch, rec(fmt.Sprintf("%s-%s-%d-%d", county, ds, b, i), ds, county, ts, 100+float64(b)))
					}
				}
				if err := s.AddBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(county)
	}
	// Readers: cache hits must never expose a partial batch.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, county := range counties {
					sc, out, err := c.Score(county, time.Time{}, time.Time{})
					if err != nil {
						continue
					}
					if out == Hit {
						checkMultiples(sc, "live hit "+county)
					}
				}
				rows, _ := c.Ranking(counties)
				_ = rows
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	// Quiesced store: every cached answer must now equal a fresh uncached
	// computation, byte for byte — a retained partial-batch score would
	// fail here.
	for _, county := range append([]string{"XA-01", "XA"}, counties...) {
		cached, _, err := c.Score(county, time.Time{}, time.Time{})
		if err != nil {
			t.Fatalf("%s: %v", county, err)
		}
		checkMultiples(cached, "final "+county)
		fresh, err := cfg.ScoreRegion(s, county, time.Time{}, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if scoreJSON(t, cached) != scoreJSON(t, fresh) {
			t.Fatalf("%s: cached score differs from fresh computation", county)
		}
	}
	rows, omitted := c.Ranking(counties)
	if omitted != 0 || len(rows) != len(counties) {
		t.Fatalf("final ranking rows=%d omitted=%d", len(rows), omitted)
	}
	for _, row := range rows {
		checkMultiples(row.Score, "final ranking "+row.Region)
	}
}
