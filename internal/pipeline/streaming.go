package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"iqb/internal/cfspeed"
	"iqb/internal/dataset"
	"iqb/internal/geo"
	"iqb/internal/iqb"
	"iqb/internal/ndt"
	"iqb/internal/netem"
	"iqb/internal/ookla"
	"iqb/internal/rng"
)

// StreamingResult is the memory-bounded counterpart of Result: raw
// records are folded into DDSketch-backed cells at ingestion time and
// never retained.
type StreamingResult struct {
	World  *World
	Sketch *dataset.Sketcher
	// Ingested counts records folded per dataset name.
	Ingested map[string]int
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
}

// RunStreaming executes the same workload as Run but through the
// sketch-based ingestion path — the mode a production deployment
// ingesting archives too large to hold would use. The job schedule,
// subscriber draws, and simulated tests are identical to Run for the
// same spec, so sketch-vs-exact comparisons (experiment E11) isolate the
// aggregation data structure.
//
// Ingestion is shared-nothing, mirroring Run: each worker folds records
// into its own Sketcher and queues raw Ookla samples on its own
// collector, and both are merged only after the workers join. Because
// sketcher cells are pure functions of the value multiset (exact cells
// sort, promoted cells are order-independent DDSketches) and Ookla
// aggregation orders samples by job ID, ScoreAll output is bit-identical
// for any Workers value — the same fixed-seed determinism contract Run
// carries.
func RunStreaming(ctx context.Context, spec Spec) (*StreamingResult, error) {
	world, err := BuildWorld(spec)
	if err != nil {
		return nil, err
	}
	//iqbvet:ignore walltime Elapsed is wall-clock telemetry only; no simulation or scoring state depends on it
	started := time.Now()

	jobs := buildJobs(world, spec)

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobCh := make(chan job)
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	var failed atomic.Bool
	fail := func(err error) {
		failed.Store(true)
		errOnce.Do(func() { firstErr = err })
	}

	// Shared-nothing collectors and sketchers, merged after the join.
	pubs := make([]*ookla.Publisher, workers)
	sketches := make([]*dataset.Sketcher, workers)
	ingestedBy := make([]map[string]int, workers)
	for w := 0; w < workers; w++ {
		pubs[w] = ookla.NewPublisher()
		sketches[w] = dataset.NewSketcher(0)
		ingestedBy[w] = map[string]int{}
		wg.Add(1)
		go func(pub *ookla.Publisher, sk *dataset.Sketcher, counts map[string]int) {
			defer wg.Done()
			for j := range jobCh {
				if failed.Load() {
					continue // drain so the feeder never blocks
				}
				rec, raw, err := produceRecord(world, spec, j)
				if err != nil {
					fail(err)
					continue
				}
				if raw != nil {
					if err := pub.Add(*raw); err != nil {
						fail(err)
					}
					continue
				}
				if err := sk.Ingest(rec); err != nil {
					fail(err)
					continue
				}
				counts[rec.Dataset]++
			}
		}(pubs[w], sketches[w], ingestedBy[w])
	}

feed:
	for _, j := range jobs {
		select {
		case <-ctx.Done():
			fail(ctx.Err())
			break feed
		case jobCh <- j:
		}
	}
	close(jobCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	publisher := ookla.NewPublisher()
	sketch := dataset.NewSketcher(0)
	ingested := map[string]int{}
	for w := 0; w < workers; w++ {
		publisher.Merge(pubs[w])
		if err := sketch.Merge(sketches[w]); err != nil {
			return nil, fmt.Errorf("pipeline: merging worker sketcher: %w", err)
		}
		for ds, n := range ingestedBy[w] {
			ingested[ds] += n
		}
	}

	aggregates, err := publisher.Publish(spec.OoklaMinGroup)
	if err != nil {
		return nil, fmt.Errorf("pipeline: publishing ookla aggregates: %w", err)
	}
	for _, rec := range aggregates {
		if err := sketch.Ingest(rec); err != nil {
			return nil, fmt.Errorf("pipeline: sketching ookla aggregate: %w", err)
		}
		ingested[rec.Dataset]++
	}
	return &StreamingResult{
		World:    world,
		Sketch:   sketch,
		Ingested: ingested,
		//iqbvet:ignore walltime Elapsed is wall-clock telemetry only; no simulation or scoring state depends on it
		Elapsed: time.Since(started),
	}, nil
}

// buildJobs constructs the deterministic job schedule shared by Run and
// RunStreaming.
func buildJobs(world *World, spec Spec) []job {
	root := rng.New(spec.Seed)
	sched := root.Fork("schedule")
	window := time.Duration(spec.Days) * 24 * time.Hour
	var jobs []job
	id := 0
	for _, county := range world.DB.Regions(geo.County) {
		for _, ds := range []string{"ndt", "cloudflare", "ookla"} {
			n := sched.Poisson(float64(spec.TestsPerCounty))
			if n < 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				var at time.Time
				for {
					at = spec.Start.Add(time.Duration(sched.Float64() * float64(window)))
					hour := float64(at.Hour()) + float64(at.Minute())/60
					if sched.Bool(0.25 + netem.Diurnal(hour)) {
						break
					}
				}
				jobs = append(jobs, job{id: id, dataset: ds, county: county, at: at})
				id++
			}
		}
	}
	return jobs
}

// produceRecord runs one scheduled test and returns either a dataset
// record (ndt/cloudflare) or a raw ookla sample destined for the
// publisher.
func produceRecord(world *World, spec Spec, j job) (dataset.Record, *ookla.RawSample, error) {
	src := rng.New(spec.Seed).Fork(fmt.Sprintf("job-%d", j.id))
	sub, err := world.DrawSubscriber(j.county, src)
	if err != nil {
		return dataset.Record{}, nil, err
	}
	hour := float64(j.at.Hour()) + float64(j.at.Minute())/60
	rho := netem.Diurnal(hour) * src.Range(0.8, 1.2)
	if rho > 0.9 {
		rho = 0.9
	}
	switch j.dataset {
	case "ndt":
		res, err := ndt.Simulate(sub.Path, rho, src)
		if err != nil {
			return dataset.Record{}, nil, err
		}
		rec, err := res.ToRecord(fmt.Sprintf("ndt-%d", j.id), sub.Region, sub.ASN, sub.Tech.String(), j.at)
		return rec, nil, err
	case "cloudflare":
		res, err := cfspeed.Simulate(sub.Path, rho, src)
		if err != nil {
			return dataset.Record{}, nil, err
		}
		rec, err := res.ToRecord(fmt.Sprintf("cf-%d", j.id), sub.Region, sub.ASN, sub.Tech.String(), j.at)
		return rec, nil, err
	case "ookla":
		res, err := ookla.Simulate(sub.Path, rho, src)
		if err != nil {
			return dataset.Record{}, nil, err
		}
		// Seq carries the deterministic job ID so the publisher
		// aggregates groups in a worker-count-independent order.
		return dataset.Record{}, &ookla.RawSample{Region: sub.Region, ASN: sub.ASN, Time: j.at, Result: res, Seq: j.id}, nil
	default:
		return dataset.Record{}, nil, fmt.Errorf("pipeline: unknown dataset %q", j.dataset)
	}
}

// ScoreAll scores every region from the sketch.
func (r *StreamingResult) ScoreAll(cfg iqb.Config) (map[string]iqb.Score, error) {
	scores := map[string]iqb.Score{}
	for _, code := range r.World.DB.AllRegions() {
		s, err := cfg.ScoreSketcher(r.Sketch, code)
		if err != nil {
			return nil, fmt.Errorf("pipeline: sketch-scoring %s: %w", code, err)
		}
		scores[code] = s
	}
	return scores, nil
}
