// Package pipeline orchestrates the full IQB data path end to end:
// synthesize a geography and subscriber population, schedule measurement
// tests over a time window with diurnal load, run the three measurement
// systems (NDT-style, Cloudflare-style, Ookla-style) for each scheduled
// test, collect the records into a store — Ookla via its aggregate
// publisher — and score every region with the IQB framework.
//
// Execution is deterministic for a fixed Spec: every job derives its own
// random stream from the spec seed, Ookla aggregation orders samples by
// job ID before summing, and the store's aggregates are order-independent
// by construction — so ScoreAll output is bit-identical for any Workers
// value. Ingestion is shared-nothing: workers buffer records and flush
// them to the sharded store in batches, and each worker queues raw Ookla
// samples on its own collector, merged only after the workers join.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/geo"
	"iqb/internal/iqb"
	"iqb/internal/netem"
	"iqb/internal/ookla"
	"iqb/internal/rng"
)

// Spec configures a pipeline run.
type Spec struct {
	// Geo shapes the synthetic country.
	Geo geo.SynthSpec
	// Seed drives all randomness.
	Seed uint64
	// Start is the beginning of the measurement window.
	Start time.Time
	// Days is the window length in days.
	Days int
	// TestsPerCounty is the approximate number of tests per county per
	// dataset over the window.
	TestsPerCounty int
	// ISPQualitySpread draws a per-ISP quality multiplier in
	// [1-spread, 1+spread], modelling investment differences.
	ISPQualitySpread float64
	// Workers bounds concurrent test execution; 0 means GOMAXPROCS.
	Workers int
	// OoklaMinGroup is the publisher's suppression threshold.
	OoklaMinGroup int
	// Store, when non-nil, receives the run's records instead of a
	// fresh in-memory store. iqbserver passes a WAL-backed store here
	// so ingestion is durable from the first batch; the store must be
	// empty, since records are added, never replaced.
	Store *dataset.Store
}

// DefaultSpec returns a laptop-scale run: the default geography, one
// week, 120 tests per county per dataset.
func DefaultSpec() Spec {
	return Spec{
		Geo:              geo.DefaultSynthSpec(),
		Seed:             42,
		Start:            time.Date(2025, 6, 2, 0, 0, 0, 0, time.UTC),
		Days:             7,
		TestsPerCounty:   120,
		ISPQualitySpread: 0.25,
		OoklaMinGroup:    5,
	}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Days < 1 {
		return fmt.Errorf("pipeline: days %d must be >= 1", s.Days)
	}
	if s.TestsPerCounty < 1 {
		return fmt.Errorf("pipeline: tests per county %d must be >= 1", s.TestsPerCounty)
	}
	if s.Start.IsZero() {
		return fmt.Errorf("pipeline: start time required")
	}
	if s.ISPQualitySpread < 0 || s.ISPQualitySpread >= 1 {
		return fmt.Errorf("pipeline: quality spread %v out of [0,1)", s.ISPQualitySpread)
	}
	return nil
}

// World is the synthesized ground truth: geography plus per-ISP quality.
type World struct {
	DB         *geo.DB
	Profiles   map[netem.Tech]netem.Profile
	ISPQuality map[uint32]float64
}

// BuildWorld synthesizes the geography and ISP qualities for a spec.
func BuildWorld(spec Spec) (*World, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(spec.Seed)
	db, err := geo.Synthesize(spec.Geo, root.Fork("geo"))
	if err != nil {
		return nil, err
	}
	qsrc := root.Fork("isp-quality")
	quality := map[uint32]float64{}
	for _, isp := range db.ISPs() {
		quality[isp.ASN] = qsrc.Range(1-spec.ISPQualitySpread, 1+spec.ISPQualitySpread)
	}
	return &World{
		DB:         db,
		Profiles:   netem.DefaultProfiles(),
		ISPQuality: quality,
	}, nil
}

// Subscriber is one synthetic household: a region, an ISP, a technology,
// and a concrete path.
type Subscriber struct {
	Region string
	ASN    uint32
	Tech   netem.Tech
	Path   netem.Path
}

// DrawSubscriber samples a subscriber in the given county: ISP by market
// share, technology by the county character's mix, and a concrete path
// from the technology profile scaled by the ISP's quality.
func (w *World) DrawSubscriber(county string, src *rng.Source) (Subscriber, error) {
	region, ok := w.DB.Region(county)
	if !ok {
		return Subscriber{}, fmt.Errorf("pipeline: unknown county %q", county)
	}
	market := w.DB.Market(county)
	if len(market) == 0 {
		return Subscriber{}, fmt.Errorf("pipeline: county %q has no market", county)
	}
	weights := make([]float64, len(market))
	for i, m := range market {
		weights[i] = m.Share
	}
	asn := market[src.Categorical(weights)].ASN

	mix := netem.DefaultMixFor(region.Character)
	tech := mix.Draw(src)
	path := netem.DrawPath(w.Profiles[tech], w.ISPQuality[asn], src)
	return Subscriber{Region: county, ASN: asn, Tech: tech, Path: path}, nil
}

// job is one scheduled test.
type job struct {
	id      int
	dataset string
	county  string
	at      time.Time
}

// Result carries everything a run produces.
type Result struct {
	World *World
	Store *dataset.Store
	// Counts tallies records per dataset name.
	Counts map[string]int
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
}

// flushBatch is how many records a worker buffers before handing them to
// the store in one AddBatch call. It amortizes shard locking without
// letting per-worker buffers grow past a few memory pages.
const flushBatch = 256

// Run executes the full pipeline.
//
// Ingestion is shared-nothing until the join: each worker buffers
// records and flushes them to the sharded store in batches, and queues
// raw Ookla samples on its own collector. After the workers join, the
// collectors merge and publish. Determinism for a fixed Spec.Seed is
// unaffected by Workers: every job derives its own random stream from
// its job ID, Ookla aggregation orders samples by job ID, and the
// store's aggregates are pure functions of the record multiset.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	world, err := BuildWorld(spec)
	if err != nil {
		return nil, err
	}
	//iqbvet:ignore walltime Elapsed is wall-clock telemetry only; no simulation or scoring state depends on it
	started := time.Now()

	// Deterministic job list: per county, per dataset, a Poisson-ish
	// schedule of tests across the window, biased toward evening hours
	// because measurement volume follows usage.
	jobs := buildJobs(world, spec)

	store := spec.Store
	if store == nil {
		store = dataset.NewStore()
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobCh := make(chan job)
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	var failed atomic.Bool
	fail := func(err error) {
		failed.Store(true)
		errOnce.Do(func() { firstErr = err })
	}

	pubs := make([]*ookla.Publisher, workers)
	for w := 0; w < workers; w++ {
		pubs[w] = ookla.NewPublisher()
		wg.Add(1)
		go func(pub *ookla.Publisher) {
			defer wg.Done()
			buf := make([]dataset.Record, 0, flushBatch)
			flush := func() error {
				if len(buf) == 0 {
					return nil
				}
				err := store.AddBatch(buf)
				buf = buf[:0]
				return err
			}
			for j := range jobCh {
				if failed.Load() {
					continue // drain so the feeder never blocks
				}
				rec, raw, err := produceRecord(world, spec, j)
				if err != nil {
					fail(err)
					continue
				}
				if raw != nil {
					if err := pub.Add(*raw); err != nil {
						fail(err)
					}
					continue
				}
				buf = append(buf, rec)
				if len(buf) >= flushBatch {
					if err := flush(); err != nil {
						fail(err)
					}
				}
			}
			if err := flush(); err != nil {
				fail(err)
			}
		}(pubs[w])
	}

feed:
	for _, j := range jobs {
		select {
		case <-ctx.Done():
			fail(ctx.Err())
			break feed
		case jobCh <- j:
		}
	}
	close(jobCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Merge the per-worker collectors and publish the Ookla aggregates
	// into the store.
	publisher := ookla.NewPublisher()
	for _, pub := range pubs {
		publisher.Merge(pub)
	}
	aggregates, err := publisher.Publish(spec.OoklaMinGroup)
	if err != nil {
		return nil, fmt.Errorf("pipeline: publishing ookla aggregates: %w", err)
	}
	if err := store.AddBatch(aggregates); err != nil {
		return nil, fmt.Errorf("pipeline: storing ookla aggregates: %w", err)
	}

	return &Result{
		World:  world,
		Store:  store,
		Counts: store.DatasetCounts(),
		//iqbvet:ignore walltime Elapsed is wall-clock telemetry only; no simulation or scoring state depends on it
		Elapsed: time.Since(started),
	}, nil
}

// RegionScore pairs a region with its score.
type RegionScore struct {
	Region    string
	Character geo.Character
	Score     iqb.Score
}

// ScoreAll scores every county in the result plus each state and the
// country (hierarchical region prefixes pick up descendants' records).
func (r *Result) ScoreAll(cfg iqb.Config) (map[string]iqb.Score, error) {
	scores := map[string]iqb.Score{}
	for _, code := range r.World.DB.AllRegions() {
		s, err := cfg.ScoreRegion(r.Store, code, time.Time{}, time.Time{})
		if err != nil {
			return nil, fmt.Errorf("pipeline: scoring %s: %w", code, err)
		}
		scores[code] = s
	}
	return scores, nil
}

// RankCounties returns county scores sorted best-first.
func (r *Result) RankCounties(cfg iqb.Config) ([]RegionScore, error) {
	var out []RegionScore
	for _, code := range r.World.DB.Regions(geo.County) {
		s, err := cfg.ScoreRegion(r.Store, code, time.Time{}, time.Time{})
		if err != nil {
			return nil, fmt.Errorf("pipeline: scoring %s: %w", code, err)
		}
		region, _ := r.World.DB.Region(code)
		out = append(out, RegionScore{Region: code, Character: region.Character, Score: s})
	}
	// Stable sort by score descending, then code for determinism.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.Score.IQB > a.Score.IQB || (b.Score.IQB == a.Score.IQB && b.Region < a.Region) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out, nil
}

// ISPScore pairs an ISP with its country-wide score and the simulation's
// ground-truth quality multiplier, enabling rank-recovery checks.
type ISPScore struct {
	ASN         uint32
	Name        string
	TrueQuality float64
	Score       iqb.Score
}

// RankISPs scores each ISP across the whole country, best first.
func (r *Result) RankISPs(cfg iqb.Config) ([]ISPScore, error) {
	var out []ISPScore
	for _, isp := range r.World.DB.ISPs() {
		s, err := cfg.ScoreFiltered(r.Store, dataset.Filter{ASN: isp.ASN})
		if err != nil {
			return nil, fmt.Errorf("pipeline: scoring AS%d: %w", isp.ASN, err)
		}
		out = append(out, ISPScore{
			ASN:         isp.ASN,
			Name:        isp.Name,
			TrueQuality: r.World.ISPQuality[isp.ASN],
			Score:       s,
		})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.Score.IQB > a.Score.IQB || (b.Score.IQB == a.Score.IQB && b.ASN < a.ASN) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out, nil
}
