package pipeline

import (
	"context"
	"testing"
	"time"

	"iqb/internal/dataset"
	"iqb/internal/geo"
	"iqb/internal/iqb"
	"iqb/internal/rng"
)

// smallSpec keeps pipeline tests fast.
func smallSpec() Spec {
	s := DefaultSpec()
	s.Geo.States = 2
	s.Geo.CountiesPer = 2
	s.TestsPerCounty = 25
	s.Days = 3
	s.OoklaMinGroup = 2
	return s
}

func TestSpecValidate(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Spec){
		func(s *Spec) { s.Days = 0 },
		func(s *Spec) { s.TestsPerCounty = 0 },
		func(s *Spec) { s.Start = time.Time{} },
		func(s *Spec) { s.ISPQualitySpread = 1 },
	}
	for i, mut := range cases {
		s := DefaultSpec()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestBuildWorld(t *testing.T) {
	w, err := BuildWorld(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.DB.Regions(geo.County)) != 4 {
		t.Error("world geography wrong size")
	}
	for asn, q := range w.ISPQuality {
		if q < 0.75 || q > 1.25 {
			t.Errorf("ISP %d quality %v out of spread", asn, q)
		}
	}
	bad := smallSpec()
	bad.Days = 0
	if _, err := BuildWorld(bad); err == nil {
		t.Error("invalid spec should error")
	}
}

func TestDrawSubscriber(t *testing.T) {
	w, err := BuildWorld(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	county := w.DB.Regions(geo.County)[0]
	for i := 0; i < 50; i++ {
		sub, err := w.DrawSubscriber(county, src)
		if err != nil {
			t.Fatal(err)
		}
		if sub.Region != county {
			t.Errorf("subscriber region = %s", sub.Region)
		}
		if err := sub.Path.Validate(); err != nil {
			t.Errorf("subscriber path invalid: %v", err)
		}
		if _, ok := w.ISPQuality[sub.ASN]; !ok {
			t.Errorf("subscriber ASN %d unknown", sub.ASN)
		}
	}
	if _, err := w.DrawSubscriber("nowhere", src); err == nil {
		t.Error("unknown county should error")
	}
}

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(context.Background(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Len() == 0 {
		t.Fatal("no records produced")
	}
	// All three datasets must be present.
	for _, name := range []string{"ndt", "cloudflare", "ookla"} {
		if res.Counts[name] == 0 {
			t.Errorf("no %s records", name)
		}
	}
	// Ookla records are aggregates: far fewer than raw tests, no loss.
	if res.Counts["ookla"] >= res.Counts["ndt"] {
		t.Errorf("ookla aggregates (%d) should be fewer than ndt tests (%d)",
			res.Counts["ookla"], res.Counts["ndt"])
	}
	for _, rec := range res.Store.Select(dataset.Filter{Dataset: "ookla"}) {
		if rec.Has(dataset.Loss) {
			t.Fatal("ookla record carries loss")
		}
	}
	// NDT raw tests carry all four metrics.
	ndtRecs := res.Store.Select(dataset.Filter{Dataset: "ndt"})
	for _, m := range dataset.AllMetrics() {
		if !ndtRecs[0].Has(m) {
			t.Errorf("ndt record missing %v", m)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	spec := smallSpec()
	spec.Workers = 4
	a, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = 1
	b, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Same record counts regardless of worker count.
	for name, n := range a.Counts {
		if b.Counts[name] != n {
			t.Errorf("%s count differs: %d vs %d", name, n, b.Counts[name])
		}
	}
	// And the aggregates (hence scores) must be identical.
	cfg := iqb.DefaultConfig()
	sa, err := a.ScoreAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.ScoreAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for region, s := range sa {
		if sb[region].IQB != s.IQB {
			t.Errorf("region %s IQB differs across worker counts: %v vs %v", region, s.IQB, sb[region].IQB)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, smallSpec()); err == nil {
		t.Error("cancelled context should error")
	}
}

func TestScoreAllAndRank(t *testing.T) {
	res, err := Run(context.Background(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	cfg := iqb.DefaultConfig()
	scores, err := res.ScoreAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Country + 2 states + 4 counties.
	if len(scores) != 7 {
		t.Errorf("scored %d regions, want 7", len(scores))
	}
	for region, s := range scores {
		if s.IQB < 0 || s.IQB > 1 {
			t.Errorf("region %s IQB %v out of [0,1]", region, s.IQB)
		}
	}
	ranked, err := res.RankCounties(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 4 {
		t.Fatalf("ranked %d counties", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score.IQB > ranked[i-1].Score.IQB {
			t.Error("ranking not descending")
		}
	}
}

// TestUrbanBeatsRural is the headline shape check (experiment E4): with
// enough counties, fiber-heavy urban regions must outscore
// satellite/DSL-heavy rural ones on average.
func TestUrbanBeatsRural(t *testing.T) {
	spec := smallSpec()
	spec.Geo.States = 4
	spec.Geo.CountiesPer = 4
	spec.Geo.UrbanFraction = 0.4
	spec.TestsPerCounty = 40
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := res.RankCounties(iqb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var urbanSum, urbanN, ruralSum, ruralN float64
	for _, rs := range ranked {
		switch rs.Character {
		case geo.Urban:
			urbanSum += rs.Score.IQB
			urbanN++
		case geo.Rural:
			ruralSum += rs.Score.IQB
			ruralN++
		}
	}
	if urbanN == 0 || ruralN == 0 {
		t.Skip("seeded world lacks one character class")
	}
	if urbanSum/urbanN <= ruralSum/ruralN {
		t.Errorf("urban mean %v should beat rural mean %v",
			urbanSum/urbanN, ruralSum/ruralN)
	}
}

func TestRunStreamingEndToEnd(t *testing.T) {
	res, err := RunStreaming(context.Background(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ndt", "cloudflare", "ookla"} {
		if res.Ingested[name] == 0 {
			t.Errorf("no %s records ingested", name)
		}
	}
	if res.Sketch.Cells() == 0 {
		t.Fatal("sketch is empty")
	}
	scores, err := res.ScoreAll(iqb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for region, s := range scores {
		if s.IQB < 0 || s.IQB > 1 {
			t.Errorf("region %s sketch IQB %v out of range", region, s.IQB)
		}
	}
}

// TestStreamingMatchesExact is the E11 equivalence check in miniature:
// the sketch-based path and the exact path run the identical workload,
// so their scores must agree (binary thresholds absorb the sketch
// cells' small quantile error).
func TestStreamingMatchesExact(t *testing.T) {
	spec := smallSpec()
	exact, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := RunStreaming(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := iqb.DefaultConfig()
	exactScores, err := exact.ScoreAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamScores, err := stream.ScoreAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for region, es := range exactScores {
		ss := streamScores[region]
		if diff := es.IQB - ss.IQB; diff > 0.15 || diff < -0.15 {
			t.Errorf("region %s: exact %v vs sketch %v", region, es.IQB, ss.IQB)
		}
	}
}

func TestRunStreamingCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunStreaming(ctx, smallSpec()); err == nil {
		t.Error("cancelled context should error")
	}
}

func TestRunStreamingInvalidSpec(t *testing.T) {
	bad := smallSpec()
	bad.Days = 0
	if _, err := RunStreaming(context.Background(), bad); err == nil {
		t.Error("invalid spec should error")
	}
}

func TestRankISPs(t *testing.T) {
	res, err := Run(context.Background(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	cfg := iqb.DefaultConfig()
	cfg.Quality = iqb.MinimumQuality
	ranked, err := res.RankISPs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("ranked %d ISPs, want 3", len(ranked))
	}
	for i, isp := range ranked {
		if isp.Name == "" || isp.TrueQuality <= 0 {
			t.Errorf("ISP row %d incomplete: %+v", i, isp)
		}
		if i > 0 && isp.Score.IQB > ranked[i-1].Score.IQB {
			t.Error("ISP ranking not descending")
		}
	}
}
