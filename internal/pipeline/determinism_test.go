package pipeline

import (
	"context"
	"runtime"
	"testing"

	"iqb/internal/iqb"
)

// TestStreamingScoreAllDeterministicAcrossWorkerCounts is the streaming
// twin of TestScoreAllDeterministicAcrossWorkerCounts: for a fixed
// Spec.Seed, RunStreaming followed by ScoreAll must produce
// bit-identical scores for every worker count.
// This exercises the shared-nothing streaming path — one Sketcher per
// worker, merged after the join — and the sketcher's order-independent
// DDSketch-backed cells; with the old order-sensitive t-digest cells the
// merged quantiles drifted with worker count.
func TestStreamingScoreAllDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := iqb.DefaultConfig()
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	type outcome struct {
		workers  int
		cells    int
		ingested map[string]int
		scores   map[string]iqb.Score
	}
	var outcomes []outcome
	for _, w := range workerCounts {
		spec := smallSpec()
		spec.Workers = w
		res, err := RunStreaming(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		scores, err := res.ScoreAll(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		outcomes = append(outcomes, outcome{w, res.Sketch.Cells(), res.Ingested, scores})
	}

	ref := outcomes[0]
	for _, o := range outcomes[1:] {
		if o.cells != ref.cells {
			t.Errorf("sketch cells: %d with 1 worker, %d with %d workers", ref.cells, o.cells, o.workers)
		}
		for name, n := range ref.ingested {
			if o.ingested[name] != n {
				t.Errorf("dataset %s: %d ingested with 1 worker, %d with %d workers",
					name, n, o.ingested[name], o.workers)
			}
		}
		if len(o.scores) != len(ref.scores) {
			t.Errorf("scored %d regions with %d workers, %d with 1", len(o.scores), o.workers, len(ref.scores))
		}
		for region, rs := range ref.scores {
			os := o.scores[region]
			if os.IQB != rs.IQB || os.Grade != rs.Grade || os.Coverage != rs.Coverage {
				t.Errorf("region %s: workers=1 (IQB %v, %s, cov %v) vs workers=%d (IQB %v, %s, cov %v)",
					region, rs.IQB, rs.Grade, rs.Coverage, o.workers, os.IQB, os.Grade, os.Coverage)
			}
		}
	}
}

// TestScoreAllDeterministicAcrossWorkerCounts is the determinism
// regression pin: for a fixed Spec.Seed, pipeline.Run followed by
// ScoreAll must produce bit-identical scores for every worker count.
// This exercises the whole shared-nothing ingestion path — per-worker
// record batches into the sharded store, per-worker Ookla collectors
// merged after the join — and the store's order-independent aggregation.
func TestScoreAllDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := iqb.DefaultConfig()
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	type outcome struct {
		workers int
		counts  map[string]int
		scores  map[string]iqb.Score
		isps    []ISPScore
	}
	var outcomes []outcome
	for _, w := range workerCounts {
		spec := smallSpec()
		spec.Workers = w
		res, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		scores, err := res.ScoreAll(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		isps, err := res.RankISPs(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		outcomes = append(outcomes, outcome{w, res.Counts, scores, isps})
	}

	ref := outcomes[0]
	for _, o := range outcomes[1:] {
		for name, n := range ref.counts {
			if o.counts[name] != n {
				t.Errorf("dataset %s: %d records with 1 worker, %d with %d workers",
					name, n, o.counts[name], o.workers)
			}
		}
		if len(o.scores) != len(ref.scores) {
			t.Errorf("scored %d regions with %d workers, %d with 1", len(o.scores), o.workers, len(ref.scores))
		}
		for region, rs := range ref.scores {
			os := o.scores[region]
			if os.IQB != rs.IQB || os.Grade != rs.Grade || os.Coverage != rs.Coverage {
				t.Errorf("region %s: workers=1 (IQB %v, %s, cov %v) vs workers=%d (IQB %v, %s, cov %v)",
					region, rs.IQB, rs.Grade, rs.Coverage, o.workers, os.IQB, os.Grade, os.Coverage)
			}
		}
		for i := range ref.isps {
			if o.isps[i].ASN != ref.isps[i].ASN || o.isps[i].Score.IQB != ref.isps[i].Score.IQB {
				t.Errorf("ISP rank %d differs across worker counts: AS%d (%v) vs AS%d (%v)",
					i, ref.isps[i].ASN, ref.isps[i].Score.IQB, o.isps[i].ASN, o.isps[i].Score.IQB)
			}
		}
	}
}
