package pipeline

import (
	"context"
	"runtime"
	"testing"

	"iqb/internal/iqb"
)

// TestScoreAllDeterministicAcrossWorkerCounts is the determinism
// regression pin: for a fixed Spec.Seed, pipeline.Run followed by
// ScoreAll must produce bit-identical scores for every worker count.
// This exercises the whole shared-nothing ingestion path — per-worker
// record batches into the sharded store, per-worker Ookla collectors
// merged after the join — and the store's order-independent aggregation.
func TestScoreAllDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := iqb.DefaultConfig()
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}

	type outcome struct {
		workers int
		counts  map[string]int
		scores  map[string]iqb.Score
		isps    []ISPScore
	}
	var outcomes []outcome
	for _, w := range workerCounts {
		spec := smallSpec()
		spec.Workers = w
		res, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		scores, err := res.ScoreAll(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		isps, err := res.RankISPs(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		outcomes = append(outcomes, outcome{w, res.Counts, scores, isps})
	}

	ref := outcomes[0]
	for _, o := range outcomes[1:] {
		for name, n := range ref.counts {
			if o.counts[name] != n {
				t.Errorf("dataset %s: %d records with 1 worker, %d with %d workers",
					name, n, o.counts[name], o.workers)
			}
		}
		if len(o.scores) != len(ref.scores) {
			t.Errorf("scored %d regions with %d workers, %d with 1", len(o.scores), o.workers, len(ref.scores))
		}
		for region, rs := range ref.scores {
			os := o.scores[region]
			if os.IQB != rs.IQB || os.Grade != rs.Grade || os.Coverage != rs.Coverage {
				t.Errorf("region %s: workers=1 (IQB %v, %s, cov %v) vs workers=%d (IQB %v, %s, cov %v)",
					region, rs.IQB, rs.Grade, rs.Coverage, o.workers, os.IQB, os.Grade, os.Coverage)
			}
		}
		for i := range ref.isps {
			if o.isps[i].ASN != ref.isps[i].ASN || o.isps[i].Score.IQB != ref.isps[i].Score.IQB {
				t.Errorf("ISP rank %d differs across worker counts: AS%d (%v) vs AS%d (%v)",
					i, ref.isps[i].ASN, ref.isps[i].Score.IQB, o.isps[i].ASN, o.isps[i].Score.IQB)
			}
		}
	}
}
