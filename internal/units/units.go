// Package units defines the typed physical quantities the IQB framework
// measures and compares: throughput in megabits per second, round-trip
// latency in milliseconds, and packet loss as a fraction.
//
// Each quantity knows its comparison direction (whether larger values are
// better), so threshold checks elsewhere in the tree never need to special
// case individual metrics.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Direction reports whether larger values of a metric indicate better
// network quality.
type Direction int

const (
	// HigherBetter marks metrics such as throughput where more is better.
	HigherBetter Direction = iota
	// LowerBetter marks metrics such as latency and loss where less is better.
	LowerBetter
)

// String returns a human readable name for the direction.
func (d Direction) String() string {
	switch d {
	case HigherBetter:
		return "higher-better"
	case LowerBetter:
		return "lower-better"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Meets reports whether value satisfies threshold under this direction:
// value >= threshold for HigherBetter, value <= threshold for LowerBetter.
func (d Direction) Meets(value, threshold float64) bool {
	if d == HigherBetter {
		return value >= threshold
	}
	return value <= threshold
}

// Better reports whether a is strictly better than b under this direction.
func (d Direction) Better(a, b float64) bool {
	if d == HigherBetter {
		return a > b
	}
	return a < b
}

// Throughput is a data rate in megabits per second.
type Throughput float64

// Common throughput constants.
const (
	Kbps Throughput = 0.001
	Mbps Throughput = 1
	Gbps Throughput = 1000
)

// Mbps returns the rate as a float64 number of megabits per second.
func (t Throughput) Mbps() float64 { return float64(t) }

// BitsPerSecond returns the rate in bits per second.
func (t Throughput) BitsPerSecond() float64 { return float64(t) * 1e6 }

// BytesPerSecond returns the rate in bytes per second.
func (t Throughput) BytesPerSecond() float64 { return float64(t) * 1e6 / 8 }

// String formats the throughput with an adaptive unit.
func (t Throughput) String() string {
	switch {
	case math.Abs(float64(t)) >= 1000:
		return trimZeros(fmt.Sprintf("%.2f", float64(t)/1000)) + " Gbit/s"
	case math.Abs(float64(t)) >= 1:
		return trimZeros(fmt.Sprintf("%.2f", float64(t))) + " Mbit/s"
	default:
		return trimZeros(fmt.Sprintf("%.1f", float64(t)*1000)) + " kbit/s"
	}
}

// TimeToTransfer returns how long it takes to move n bytes at this rate.
// It returns a very large duration for non-positive rates.
func (t Throughput) TimeToTransfer(n int64) time.Duration {
	if t <= 0 {
		return time.Duration(math.MaxInt64)
	}
	seconds := float64(n) / t.BytesPerSecond()
	if seconds > math.MaxInt64/float64(time.Second) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(seconds * float64(time.Second))
}

// ThroughputFromTransfer computes the achieved rate for n bytes moved in d.
func ThroughputFromTransfer(n int64, d time.Duration) Throughput {
	if d <= 0 {
		return 0
	}
	return Throughput(float64(n) * 8 / d.Seconds() / 1e6)
}

// ParseThroughput parses strings such as "25", "25Mbps", "1.5 Gbit/s",
// "800kbps" into a Throughput. A bare number is interpreted as Mbps.
func ParseThroughput(s string) (Throughput, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: empty throughput")
	}
	num := s
	mult := 1.0
	lower := strings.ToLower(s)
	for _, u := range []struct {
		suffix string
		mult   float64
	}{
		{"gbit/s", 1000}, {"gbps", 1000}, {"gb/s", 8000},
		{"mbit/s", 1}, {"mbps", 1}, {"mb/s", 8},
		{"kbit/s", 0.001}, {"kbps", 0.001}, {"kb/s", 0.008},
		{"bit/s", 1e-6}, {"bps", 1e-6},
	} {
		if strings.HasSuffix(lower, u.suffix) {
			num = strings.TrimSpace(s[:len(s)-len(u.suffix)])
			mult = u.mult
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad throughput %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative throughput %q", s)
	}
	return Throughput(v * mult), nil
}

// Latency is a round-trip time. It is a distinct type from time.Duration so
// that dataset records and thresholds cannot silently mix units; the zero
// value means "not measured".
type Latency time.Duration

// Common latency constants.
const (
	Millisecond Latency = Latency(time.Millisecond)
	Second      Latency = Latency(time.Second)
)

// Milliseconds returns the latency as a float64 number of milliseconds.
func (l Latency) Milliseconds() float64 {
	return float64(time.Duration(l)) / float64(time.Millisecond)
}

// Duration converts the latency back to a time.Duration.
func (l Latency) Duration() time.Duration { return time.Duration(l) }

// String formats the latency in milliseconds.
func (l Latency) String() string {
	return trimZeros(fmt.Sprintf("%.2f", l.Milliseconds())) + " ms"
}

// LatencyFromMillis builds a Latency from a float64 millisecond count.
func LatencyFromMillis(ms float64) Latency {
	return Latency(ms * float64(time.Millisecond))
}

// ParseLatency parses strings such as "50", "50ms", "1.2s" into a Latency.
// A bare number is interpreted as milliseconds.
func ParseLatency(s string) (Latency, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: empty latency")
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		if v < 0 {
			return 0, fmt.Errorf("units: negative latency %q", s)
		}
		return LatencyFromMillis(v), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("units: bad latency %q: %w", s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("units: negative latency %q", s)
	}
	return Latency(d), nil
}

// LossRate is a packet loss fraction in [0, 1].
type LossRate float64

// Percent returns the loss as a percentage in [0, 100].
func (r LossRate) Percent() float64 { return float64(r) * 100 }

// String formats the loss as a percentage.
func (r LossRate) String() string {
	return trimZeros(fmt.Sprintf("%.3f", r.Percent())) + "%"
}

// Valid reports whether the rate is within [0, 1].
func (r LossRate) Valid() bool { return r >= 0 && r <= 1 && !math.IsNaN(float64(r)) }

// LossFromPercent builds a LossRate from a percentage value.
func LossFromPercent(pct float64) LossRate { return LossRate(pct / 100) }

// ParseLossRate parses strings such as "0.5%", "1%", "0.005" into a LossRate.
// A bare number is interpreted as a fraction if <= 1, otherwise as a percent.
func ParseLossRate(s string) (LossRate, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: empty loss rate")
	}
	pct := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad loss rate %q: %w", s, err)
	}
	if pct {
		v /= 100
	} else if v > 1 {
		v /= 100
	}
	r := LossRate(v)
	if !r.Valid() {
		return 0, fmt.Errorf("units: loss rate %q out of range [0,1]", s)
	}
	return r, nil
}

// trimZeros removes trailing fractional zeros ("25.00" -> "25",
// "1.50" -> "1.5") without touching integer parts.
func trimZeros(s string) string {
	if !strings.Contains(s, ".") {
		return s
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}
