package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDirectionMeets(t *testing.T) {
	tests := []struct {
		dir        Direction
		value, thr float64
		want       bool
	}{
		{HigherBetter, 25, 25, true},
		{HigherBetter, 24.9, 25, false},
		{HigherBetter, 100, 25, true},
		{LowerBetter, 50, 50, true},
		{LowerBetter, 50.1, 50, false},
		{LowerBetter, 10, 50, true},
	}
	for _, tt := range tests {
		if got := tt.dir.Meets(tt.value, tt.thr); got != tt.want {
			t.Errorf("%v.Meets(%v, %v) = %v, want %v", tt.dir, tt.value, tt.thr, got, tt.want)
		}
	}
}

func TestDirectionBetter(t *testing.T) {
	if !HigherBetter.Better(2, 1) {
		t.Error("HigherBetter: 2 should beat 1")
	}
	if HigherBetter.Better(1, 1) {
		t.Error("HigherBetter: equal is not strictly better")
	}
	if !LowerBetter.Better(1, 2) {
		t.Error("LowerBetter: 1 should beat 2")
	}
}

func TestDirectionString(t *testing.T) {
	if HigherBetter.String() != "higher-better" || LowerBetter.String() != "lower-better" {
		t.Errorf("unexpected direction strings: %v %v", HigherBetter, LowerBetter)
	}
	if Direction(9).String() == "" {
		t.Error("unknown direction should still format")
	}
}

func TestThroughputConversions(t *testing.T) {
	tp := 100 * Mbps
	if got := tp.BitsPerSecond(); got != 100e6 {
		t.Errorf("BitsPerSecond = %v, want 1e8", got)
	}
	if got := tp.BytesPerSecond(); got != 12.5e6 {
		t.Errorf("BytesPerSecond = %v, want 1.25e7", got)
	}
	if got := (1 * Gbps).Mbps(); got != 1000 {
		t.Errorf("Gbps.Mbps = %v, want 1000", got)
	}
	if got := (1 * Kbps).Mbps(); got != 0.001 {
		t.Errorf("Kbps.Mbps = %v, want 0.001", got)
	}
}

func TestThroughputString(t *testing.T) {
	tests := []struct {
		tp   Throughput
		want string
	}{
		{25, "25 Mbit/s"},
		{1500, "1.5 Gbit/s"},
		{0.5, "500 kbit/s"},
		{12.34, "12.34 Mbit/s"},
	}
	for _, tt := range tests {
		if got := tt.tp.String(); got != tt.want {
			t.Errorf("Throughput(%v).String() = %q, want %q", float64(tt.tp), got, tt.want)
		}
	}
}

func TestTimeToTransfer(t *testing.T) {
	// 100 Mbit/s moves 12.5 MB per second.
	d := (100 * Mbps).TimeToTransfer(12_500_000)
	if want := time.Second; d < want-time.Millisecond || d > want+time.Millisecond {
		t.Errorf("TimeToTransfer = %v, want ~%v", d, want)
	}
	if d := Throughput(0).TimeToTransfer(1); d != time.Duration(math.MaxInt64) {
		t.Errorf("zero rate should return max duration, got %v", d)
	}
}

func TestThroughputFromTransfer(t *testing.T) {
	got := ThroughputFromTransfer(12_500_000, time.Second)
	if math.Abs(got.Mbps()-100) > 1e-9 {
		t.Errorf("ThroughputFromTransfer = %v, want 100 Mbps", got)
	}
	if got := ThroughputFromTransfer(1, 0); got != 0 {
		t.Errorf("zero duration should yield 0, got %v", got)
	}
}

func TestThroughputRoundTrip(t *testing.T) {
	f := func(bytes uint32) bool {
		n := int64(bytes) + 1
		d := (50 * Mbps).TimeToTransfer(n)
		back := ThroughputFromTransfer(n, d)
		return math.Abs(back.Mbps()-50) < 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseThroughput(t *testing.T) {
	tests := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"25", 25, true},
		{"25Mbps", 25, true},
		{"25 Mbit/s", 25, true},
		{"1.5Gbps", 1500, true},
		{"800kbps", 0.8, true},
		{"8MB/s", 64, true},
		{"1000000bps", 1, true},
		{"", 0, false},
		{"fast", 0, false},
		{"-5", 0, false},
	}
	for _, tt := range tests {
		got, err := ParseThroughput(tt.in)
		if tt.ok != (err == nil) {
			t.Errorf("ParseThroughput(%q) err = %v, want ok=%v", tt.in, err, tt.ok)
			continue
		}
		if tt.ok && math.Abs(got.Mbps()-tt.want) > 1e-9 {
			t.Errorf("ParseThroughput(%q) = %v, want %v", tt.in, got.Mbps(), tt.want)
		}
	}
}

func TestLatency(t *testing.T) {
	l := LatencyFromMillis(50)
	if l.Milliseconds() != 50 {
		t.Errorf("Milliseconds = %v, want 50", l.Milliseconds())
	}
	if l.Duration() != 50*time.Millisecond {
		t.Errorf("Duration = %v, want 50ms", l.Duration())
	}
	if got := l.String(); got != "50 ms" {
		t.Errorf("String = %q, want \"50 ms\"", got)
	}
}

func TestParseLatency(t *testing.T) {
	tests := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"50", 50, true},
		{"50ms", 50, true},
		{"1.2s", 1200, true},
		{"0", 0, true},
		{"", 0, false},
		{"-3", 0, false},
		{"-3ms", 0, false},
		{"slow", 0, false},
	}
	for _, tt := range tests {
		got, err := ParseLatency(tt.in)
		if tt.ok != (err == nil) {
			t.Errorf("ParseLatency(%q) err = %v, want ok=%v", tt.in, err, tt.ok)
			continue
		}
		if tt.ok && math.Abs(got.Milliseconds()-tt.want) > 1e-9 {
			t.Errorf("ParseLatency(%q) = %v ms, want %v", tt.in, got.Milliseconds(), tt.want)
		}
	}
}

func TestLossRate(t *testing.T) {
	r := LossFromPercent(0.5)
	if math.Abs(float64(r)-0.005) > 1e-12 {
		t.Errorf("LossFromPercent(0.5) = %v, want 0.005", float64(r))
	}
	if r.Percent() != 0.5 {
		t.Errorf("Percent = %v, want 0.5", r.Percent())
	}
	if got := r.String(); got != "0.5%" {
		t.Errorf("String = %q, want \"0.5%%\"", got)
	}
	if !r.Valid() || LossRate(-0.1).Valid() || LossRate(1.1).Valid() {
		t.Error("Valid() range check failed")
	}
	if LossRate(math.NaN()).Valid() {
		t.Error("NaN loss should be invalid")
	}
}

func TestParseLossRate(t *testing.T) {
	tests := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"0.5%", 0.005, true},
		{"1%", 0.01, true},
		{"0.005", 0.005, true},
		{"2.5", 0.025, true}, // >1 bare number treated as percent
		{"1", 1, true},       // exactly 1 stays a fraction
		{"", 0, false},
		{"200%", 0, false},
		{"oops", 0, false},
	}
	for _, tt := range tests {
		got, err := ParseLossRate(tt.in)
		if tt.ok != (err == nil) {
			t.Errorf("ParseLossRate(%q) err = %v, want ok=%v", tt.in, err, tt.ok)
			continue
		}
		if tt.ok && math.Abs(float64(got)-tt.want) > 1e-12 {
			t.Errorf("ParseLossRate(%q) = %v, want %v", tt.in, float64(got), tt.want)
		}
	}
}

func TestTrimZeros(t *testing.T) {
	tests := []struct{ in, want string }{
		{"25.00", "25"},
		{"1.50", "1.5"},
		{"100", "100"},
		{"0.001", "0.001"},
	}
	for _, tt := range tests {
		if got := trimZeros(tt.in); got != tt.want {
			t.Errorf("trimZeros(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
