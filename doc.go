// Package repro is the root of the Internet Quality Barometer (IQB)
// reproduction. The implementation lives under internal/ (see DESIGN.md
// for the system inventory); the runnable tools live under cmd/ and
// examples/; this package holds the repository-level benchmark suite
// (bench_test.go) that regenerates every table and figure plus
// micro-benchmarks for the sharded dataset store's write and
// streaming-aggregation paths.
//
// Durability: internal/persist backs the store with a segmented,
// CRC-framed write-ahead log and atomic snapshots, so cmd/iqbserver
// started with -data-dir recovers its store from disk (tolerating a
// torn WAL tail after a crash) instead of re-running the measurement
// pipeline. Concurrent appends group-commit — frames queued during the
// in-flight fsync share one write+sync — and snapshots trigger on WAL
// growth (-snapshot-wal-bytes) as well as wall clock, bounding replay
// debt under heavy ingest. The durability contract is executable: a
// fault-injection file layer (short writes, fsync errors, kill-points
// mid-frame) drives a randomized crash-recovery property test, and
// internal/persist's benchmarks quantify the WAL ingest tax, the
// group-commit recovery of it under parallel writers, and the
// recovery-vs-replay win.
//
// Read path: internal/scorecache caches per-region scores keyed by
// (region, time window, config hash) and invalidates them precisely
// when ingestion commits — it subscribes to the dataset store's ordered
// hook chain (coexisting with the WAL tee) and maintains the county
// ranking as an incrementally repaired sorted view, so cmd/iqbserver's
// /v1/score and /v1/ranking serve cached results that are byte-identical
// to uncached scoring; internal/httpapi's cold-vs-warm benchmarks
// quantify the win.
//
// Write path: internal/ingest turns the boot-time-only store into a
// live streaming target. POST /v1/ingest accepts NDJSON record batches
// through an admission-controlled queue — writers enqueue cheaply and
// block until their records are durable, a single drainer folds queued
// batches into large AddBatch commits through the store's ordered hook
// chain (WAL tee, scorecache invalidation, snapshot growth signals all
// fire unchanged), and a full queue sheds with a typed overload error
// that httpapi maps to 429 + Retry-After. cmd/iqbsim is the matching
// closed-loop load generator (mixed ingest/score/ranking traffic,
// DDSketch latency percentiles as JSON), run as a CI smoke against a
// WAL-backed server so the end-to-end write path has a macro-benchmark.
// The overload property test pins the contract: shed batches never
// appear, and every 202-accepted record survives kill-and-restart.
//
// Contracts: the invariants those subsystems rely on — fixed-seed
// bit-determinism, no fsync while a shared lock is held, no discarded
// write-path Sync/Close/Truncate errors — are machine-checked by the
// repo's own vet suite, internal/analyzers, run as a required CI step
// via `go run ./cmd/iqbvet ./...`. Intentional exceptions are annotated
// in the source with //iqbvet:ignore <analyzer> <reason>; see README.md
// for the rule-by-rule contract.
package repro
