// Package repro is the root of the Internet Quality Barometer (IQB)
// reproduction. The implementation lives under internal/ (see DESIGN.md
// for the system inventory); the runnable tools live under cmd/ and
// examples/; this package holds the repository-level benchmark suite
// (bench_test.go) that regenerates every table and figure plus
// micro-benchmarks for the sharded dataset store's write and
// streaming-aggregation paths.
package repro
